// Degradation-tier profiles: how campaign workloads cheapen under load.
//
// The service core (core/service.hpp) only *assigns* a DegradeTier at
// admission time from queue pressure; what a tier means is a workload
// decision, centralized here so benches, tests, and the job adapters
// (service/jobs.hpp) all degrade the same way. The mapping follows the
// graceful-degradation ladder of the issue: under moderate pressure
// campaigns sample instead of sweeping exhaustively, under heavy pressure
// they return the cheapest answer still worth recording.
//
//   tier      trial_scale  dse_grid_stride  dna_max_passes  campaign_early_stop
//   kFull         1.0            1               4           disabled
//   kReduced      0.5            2               3           95% CI, 10% rel
//   kMinimal      0.25           4               2           90% CI, 20% rel
//
// Degraded tiers carry a statistical stopping rule alongside the blunt
// trial_scale cut: a campaign routed through the early-stop config keeps
// its full trial budget but stops as soon as the KPI confidence interval
// is tight enough, so light-tailed workloads finish far below trial_scale
// while heavy-tailed ones keep the budget instead of silently losing half
// their precision.
//
// kFull profiles are exact identities (scale 1, stride 1, early stop
// disabled), so a tier-aware call site running at kFull is bit-identical
// to the pre-service code path -- that invariant is what lets
// bench_resilience / bench_fault_campaign route their trial counts through
// here while keeping their CI digests unchanged at the default tier.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "core/sampling.hpp"
#include "core/service.hpp"
#include "hls/dse.hpp"

namespace icsc::service {

/// Knobs one degradation tier turns. Extend here (not at call sites) when
/// a new workload learns to degrade.
struct TierProfile {
  /// Multiplier on Monte-Carlo trial counts / repeat counts (>= minimum 1
  /// after scaling; see scaled_trials).
  double trial_scale = 1.0;
  /// Keep every stride-th value of each DSE space axis (1 = full grid).
  int dse_grid_stride = 1;
  /// Cap on DNA re-read passes (the archival pipeline's dominant cost).
  int dna_max_passes = 4;
  /// CI early stopping for Monte-Carlo campaigns. When enabled, tier-aware
  /// adapters keep the job's *full* trial budget and let the sequential
  /// controller stop at convergence, instead of applying trial_scale.
  /// Disabled at kFull (bit-identical invariant).
  core::sampling::EarlyStopConfig campaign_early_stop;
};

TierProfile tier_profile(core::DegradeTier tier);

/// `full` trials scaled by the tier's trial_scale, clamped to >= 1 so a
/// degraded campaign still produces at least one sample.
std::size_t scaled_trials(std::size_t full, core::DegradeTier tier);

/// Every stride-th element of each axis of `space` (always keeping the
/// first). stride <= 1 returns the space unchanged.
hls::DseSpace strided_space(const hls::DseSpace& space, int stride);

/// Parses "full" / "reduced" / "minimal" (the --tier= bench flag values);
/// nullopt for anything else.
std::optional<core::DegradeTier> parse_tier(std::string_view name);

/// Parses "interactive" / "batch" / "background" (the --priority= bench
/// flag values); nullopt for anything else.
std::optional<core::PriorityClass> parse_priority(std::string_view name);

}  // namespace icsc::service
