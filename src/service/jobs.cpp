#include "service/jobs.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "approx/conv.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "service/degrade.hpp"

namespace icsc::service {

namespace {

/// Spin (cheaply) until the job is cancelled: the deterministic "stuck
/// body" the watchdog tests point at. Never heartbeats.
void stall_until_cancelled(core::JobContext& ctx) {
  while (!ctx.cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

std::shared_ptr<core::ResultStore> open_shared_store(const std::string& dir) {
  // Process-wide registry of live store handles, keyed by directory. A
  // weak_ptr entry lets an idle store close (releasing its lock-file fd)
  // while concurrent jobs on the same tenant share one handle.
  static std::mutex registry_mutex;
  static std::map<std::string, std::weak_ptr<core::ResultStore>> registry;
  const std::lock_guard<std::mutex> lock(registry_mutex);
  auto& slot = registry[dir];
  if (auto store = slot.lock()) return store;
  core::ResultStoreConfig config;
  config.dir = dir;
  auto store = std::make_shared<core::ResultStore>(config);
  slot = store;
  return store;
}

JobBody make_dse_job(DseJobOptions options,
                     std::shared_ptr<hls::DseResult> out) {
  return [options = std::move(options),
          out = std::move(out)](core::JobContext& ctx) {
    hls::DseConfig config = options.config;
    const TierProfile profile = tier_profile(ctx.tier());
    config.space = strided_space(config.space, profile.dse_grid_stride);
    config.cancel = ctx.cancel();
    if (config.checkpoint_path.empty()) {
      config.checkpoint_path = ctx.checkpoint_path("dse.snap");
    }
    if (!config.result_store && !options.store_root.empty()) {
      // Per-tenant durable tier: repeat submissions of the same campaign
      // -- any job id, across service restarts -- are served from disk.
      // Store open failures degrade to a normal (store-less) run rather
      // than failing the job.
      try {
        config.result_store =
            open_shared_store(options.store_root + "/" + ctx.tenant());
      } catch (const core::Error&) {
        config.result_store = nullptr;
      }
    }
    ctx.heartbeat();
    hls::DseResult result;
    if (config.checkpoint_path.empty()) {
      // No durable state available: run open-loop in one shot (still
      // cancellable at the sweep's own poll points).
      result = hls::dse_exhaustive(options.kernel, config);
    } else {
      // Bounded batches against the snapshot: each round resumes from the
      // last durable prefix and folds at most batch_units more points, so
      // every round boundary is a heartbeat and a resumable checkpoint.
      const std::size_t batch = options.batch_units ? options.batch_units : 16;
      std::size_t previous_total = 0;
      for (;;) {
        config.unit_budget = batch;
        result = hls::dse_exhaustive(options.kernel, config);
        ctx.heartbeat();
        ctx.note_checkpoint(config.checkpoint_path);
        if (options.stall_after_units > 0 &&
            result.evaluations >= options.stall_after_units) {
          stall_until_cancelled(ctx);
          break;
        }
        if (result.completed || ctx.cancelled()) break;
        if (result.evaluations <= previous_total) break;  // no forward progress
        previous_total = result.evaluations;
      }
    }
    if (out) *out = std::move(result);
  };
}

JobBody make_fault_campaign_job(
    FaultCampaignJobOptions options,
    std::shared_ptr<core::CampaignRunOutcome> out) {
  return [options = std::move(options),
          out = std::move(out)](core::JobContext& ctx) {
    // Degraded tiers with a stopping rule keep the full statistical budget
    // and stop at CI convergence; tiers without one (kFull stays
    // bit-identical) fall back to the blunt trial_scale cut.
    const TierProfile profile = tier_profile(ctx.tier());
    const std::size_t trials =
        profile.campaign_early_stop.enabled
            ? options.trials
            : scaled_trials(options.trials, ctx.tier());
    const core::FaultCampaign campaign(options.seed, trials);
    core::CampaignRunOptions run;
    run.cancel = ctx.cancel();
    run.early_stop = profile.campaign_early_stop;
    run.checkpoint_path = ctx.checkpoint_path("campaign.snap");
    ctx.heartbeat();
    core::CampaignRunOutcome outcome;
    if (run.checkpoint_path.empty()) {
      outcome = campaign.run(options.trial, run);
    } else {
      const std::size_t batch =
          options.batch_trials ? options.batch_trials : 4;
      std::size_t previous_total = 0;
      for (;;) {
        run.trial_budget = batch;
        outcome = campaign.run(options.trial, run);
        ctx.heartbeat();
        ctx.note_checkpoint(run.checkpoint_path);
        if (outcome.completed || ctx.cancelled()) break;
        if (outcome.results.size() <= previous_total) break;
        previous_total = outcome.results.size();
      }
    }
    if (out) *out = std::move(outcome);
  };
}

JobBody make_dna_job(DnaJobOptions options,
                     std::shared_ptr<hetero::dna::ArchivalSimResult> out) {
  return [options = std::move(options),
          out = std::move(out)](core::JobContext& ctx) {
    hetero::dna::ArchivalSimParams params = options.params;
    const TierProfile profile = tier_profile(ctx.tier());
    params.reread.max_passes =
        std::min(params.reread.max_passes, profile.dna_max_passes);
    hetero::dna::ArchivalRunOptions run;
    run.cancel = ctx.cancel();
    run.journal_path = ctx.checkpoint_path("dna.journal");
    run.journal_batch = options.journal_batch;
    ctx.heartbeat();
    hetero::dna::ArchivalSimResult result;
    if (run.journal_path.empty()) {
      result = hetero::dna::run_archival_sim(params, run);
    } else {
      const std::size_t batch =
          options.batch_budget ? options.batch_budget : 4;
      std::size_t previous_resumed = 0;
      bool first = true;
      for (;;) {
        run.batch_budget = batch;
        result = hetero::dna::run_archival_sim(params, run);
        ctx.heartbeat();
        ctx.note_checkpoint(run.journal_path);
        if (result.completed || ctx.cancelled()) break;
        // resumed_batches counts records replayed this invocation; it must
        // grow round over round while sequencing advances.
        if (!first && result.resumed_batches <= previous_resumed) break;
        previous_resumed = result.resumed_batches;
        first = false;
      }
    }
    if (out) *out = result;
  };
}

JobBody make_mvm_job(MvmJobOptions options, std::shared_ptr<double> out) {
  return [options, out = std::move(out)](core::JobContext& ctx) {
    ctx.heartbeat();
    if (ctx.cancelled()) return;
    core::Rng rng(options.seed);
    core::TensorF weights({options.dim, options.dim});
    for (auto& v : weights.data()) {
      v = static_cast<float>(rng.normal(0.0, 0.5));
    }
    imc::CrossbarConfig config = options.config;
    config.seed = options.seed;
    const int trials = static_cast<int>(scaled_trials(
        static_cast<std::size_t>(std::max(1, options.trials)), ctx.tier()));
    const double rmse = imc::crossbar_mvm_rmse(weights, config, trials, 1.0,
                                               options.seed ^ 0x5EED);
    ctx.heartbeat();
    if (out) *out = rmse;
  };
}

// ---------------------------------------------------------------------------
// Coalesced same-shape MVM batching.

namespace {

/// Per-group gather state living in JobContext::batch_state(): inputs
/// packed row-major plus each member's result slot, in member order.
struct MvmGather {
  std::vector<float> inputs;
  std::vector<std::shared_ptr<std::vector<double>>> slots;
};

}  // namespace

struct MvmBatchClient::Shared {
  Shared(const core::TensorF& weights, const imc::CrossbarConfig& config)
      : crossbar(weights, config) {}
  imc::Crossbar crossbar;
  /// Serialises device passes: distinct groups minted by one client can
  /// reach their scatter pass on different dispatcher threads.
  std::mutex device_mutex;
  std::atomic<std::uint64_t> passes{0};
};

MvmBatchClient::MvmBatchClient(MvmBatchOptions options)
    : options_(std::move(options)) {
  if (options_.dim == 0) {
    throw core::Error("service::MvmBatchClient", "dim must be >= 1");
  }
  core::Rng rng(options_.seed);
  core::TensorF weights({options_.dim, options_.dim});
  for (auto& v : weights.data()) {
    v = static_cast<float>(rng.normal(0.0, 0.5));
  }
  imc::CrossbarConfig config = options_.config;
  config.seed = options_.seed;
  shared_ = std::make_shared<Shared>(weights, config);
  crossbar_ = std::shared_ptr<imc::Crossbar>(shared_, &shared_->crossbar);
  // Unique per instance: same-shape clients own different device state, so
  // cross-client batching would scatter through the wrong array.
  static std::atomic<std::uint64_t> next_client{0};
  key_ = "mvm:" + std::to_string(options_.dim) + "x" +
         std::to_string(options_.dim) + ":seed" +
         std::to_string(options_.seed) + ":client" +
         std::to_string(next_client.fetch_add(1, std::memory_order_relaxed));
}

std::uint64_t MvmBatchClient::device_passes() const {
  return shared_->passes.load(std::memory_order_relaxed);
}

core::JobRequest MvmBatchClient::make_request(
    std::vector<float> x, std::shared_ptr<std::vector<double>> out) {
  if (x.size() != options_.dim) {
    throw core::Error("service::MvmBatchClient", "input length mismatch",
                      "got " + std::to_string(x.size()) + ", expected " +
                          std::to_string(options_.dim));
  }
  core::JobRequest request;
  request.tenant = options_.tenant;
  request.priority = options_.priority;
  request.coalesce_key = key_;
  request.cost_estimate_seconds = options_.cost_estimate_seconds;
  request.body = [shared = shared_, x = std::move(x),
                  out = std::move(out)](core::JobContext& ctx) mutable {
    auto& state = ctx.batch_state();
    if (!state) {
      auto fresh = std::make_shared<MvmGather>();
      fresh->inputs.reserve(x.size() * ctx.batch_size());
      fresh->slots.reserve(ctx.batch_size());
      state = std::move(fresh);
    }
    auto* gather = static_cast<MvmGather*>(state.get());
    gather->inputs.insert(gather->inputs.end(), x.begin(), x.end());
    gather->slots.push_back(std::move(out));  // body runs at most once
    ctx.heartbeat();
    if (ctx.batch_index() + 1 != ctx.batch_size()) return;
    // Last live member: one device pass over every gathered input, then
    // scatter in member order. `count` comes from the gather (not
    // batch_size()) so a member that threw before gathering shrinks the
    // pass instead of misaligning it.
    const std::size_t count = gather->slots.size();
    std::vector<double> ys;
    {
      const std::lock_guard<std::mutex> lock(shared->device_mutex);
      ys = shared->crossbar.matvec_raw_batch(gather->inputs, count);
      shared->passes.fetch_add(1, std::memory_order_relaxed);
    }
    const std::size_t out_dim = ys.size() / count;
    for (std::size_t i = 0; i < count; ++i) {
      if (gather->slots[i]) {
        gather->slots[i]->assign(ys.begin() + i * out_dim,
                                 ys.begin() + (i + 1) * out_dim);
      }
    }
  };
  return request;
}

// ---------------------------------------------------------------------------
// Coalesced (deduplicated) design-point evaluations.

core::JobRequest make_dse_eval_request(DseEvalOptions options,
                                       std::shared_ptr<hls::DesignPoint> out) {
  core::JobRequest request;
  request.tenant = options.tenant;
  request.priority = options.priority;
  request.cost_estimate_seconds = options.cost_estimate_seconds;
  request.coalesce_key =
      "dse:" + options.kernel.name() + ":" +
      std::to_string(options.kernel.size()) + ":u" +
      std::to_string(options.unroll) + ":a" +
      std::to_string(options.budget.alus) + "m" +
      std::to_string(options.budget.muls) + "d" +
      std::to_string(options.budget.divs) + "p" +
      std::to_string(options.budget.mem_ports) + ":i" +
      std::to_string(options.config.iterations) +
      (options.config.pipelined ? ":pipe" : "") + ":" +
      options.config.device.part;
  request.body = [options = std::move(options),
                  out = std::move(out)](core::JobContext& ctx) {
    // Same key => identical evaluation: the first member of a coalesced
    // group pays for the pipeline pass and parks the point in the shared
    // slot; every member (the first included) copies it out.
    auto& state = ctx.batch_state();
    if (!state) {
      state = std::make_shared<hls::DesignPoint>(hls::evaluate_design(
          options.kernel, options.unroll, options.budget, options.config));
    }
    ctx.heartbeat();
    if (out) *out = *static_cast<hls::DesignPoint*>(state.get());
  };
  return request;
}

JobBody make_conv_job(ConvJobOptions options, std::shared_ptr<double> out) {
  return [options, out = std::move(out)](core::JobContext& ctx) {
    ctx.heartbeat();
    core::Rng rng(options.seed);
    approx::ConvLayer layer;
    layer.weights = core::TensorF(
        {options.out_channels, options.in_channels, options.kernel,
         options.kernel});
    for (auto& v : layer.weights.data()) {
      v = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
    layer.bias.assign(options.out_channels, 0.0f);
    approx::FeatureMap input(
        {options.in_channels, options.height, options.width});
    for (auto& v : input.data()) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const approx::QuantConfig quant;
    const int repeats = static_cast<int>(scaled_trials(
        static_cast<std::size_t>(std::max(1, options.repeats)), ctx.tier()));
    double checksum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      if (ctx.cancelled()) break;
      const approx::FeatureMap result = layer.apply(input, quant);
      checksum = 0.0;
      for (const float v : result.data()) checksum += v;
      ctx.heartbeat();
    }
    if (out) *out = checksum;
  };
}

JobBody make_scf_job(ScfJobOptions options,
                     std::shared_ptr<scf::ModelInferenceEstimate> out) {
  return [options = std::move(options),
          out = std::move(out)](core::JobContext& ctx) {
    ctx.heartbeat();
    if (ctx.cancelled()) return;
    const int layers = static_cast<int>(scaled_trials(
        static_cast<std::size_t>(std::max(1, options.layers)), ctx.tier()));
    const scf::TransformerModel model(options.model, layers);
    const auto estimate = scf::estimate_model_inference(model, options.fabric);
    ctx.heartbeat();
    if (out) *out = estimate;
  };
}

ResubmitResult submit_with_backoff(core::CampaignService& service,
                                   core::JobRequest request,
                                   const core::RetryPolicy& policy,
                                   std::function<void(double)> sleep) {
  if (!sleep) {
    sleep = [](double seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    };
  }
  ResubmitResult result;
  result.retry = core::retry_until(
      policy,
      [&](int) {
        result.outcome = service.submit(request);
        return result.outcome.admitted;
      },
      [&](double seconds) {
        // The service's hint dominates when it promises relief later than
        // the schedule would retry.
        sleep(std::max(seconds, result.outcome.retry_after_seconds));
      });
  return result;
}

}  // namespace icsc::service
