// Tier-aware job adapters: subsystem campaigns as CampaignService bodies.
//
// Each make_*_job factory wraps one subsystem entry point -- HLS design
// space exploration, Monte-Carlo fault campaigns, IMC crossbar MVM,
// approximate convolution, the DNA archival pipeline, and the SCF
// transformer estimate -- as a type-erased service job body. The adapters
// own the glue the service contract requires:
//
//   Result plumbing -- bodies return nothing; producers pass a shared_ptr
//     result slot the body fills, and read it back after poll() reports a
//     terminal state. (A slot outlives both the caller's stack frame and
//     the service, so late-draining cancelled bodies never write freed
//     memory.)
//   Degradation -- bodies read JobContext::tier() and map it through
//     service/degrade.hpp (sampled trials, strided DSE grids, fewer DNA
//     re-read passes). At kFull every adapter is bit-identical to calling
//     the subsystem directly.
//   Heartbeats + resumable checkpoints -- long campaigns run in bounded
//     batches (unit_budget / trial_budget / batch_budget) against a
//     checkpoint file under the service scratch dir, heartbeating and
//     note_checkpoint()-ing between batches. That single loop shape is what
//     makes the watchdog story work end to end: a kill at any batch
//     boundary leaves a durable snapshot the journal points at, and
//     resubmitting the same job resumes instead of restarting.
//   Cancellation -- the JobContext token (deadline folded in) is threaded
//     into each subsystem's own CancelToken slot, so bodies drain at the
//     subsystem's native poll points and return flagged partials.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/fault.hpp"
#include "core/result_store.hpp"
#include "core/retry.hpp"
#include "core/service.hpp"
#include "hetero/dna/storage_sim.hpp"
#include "hls/dse.hpp"
#include "imc/crossbar.hpp"
#include "scf/fabric.hpp"
#include "scf/model.hpp"
#include "scf/transformer.hpp"

namespace icsc::service {

using JobBody = std::function<void(core::JobContext&)>;

// ---------------------------------------------------------------------------
// HLS design-space exploration.

struct DseJobOptions {
  hls::Kernel kernel{"empty"};  // callers replace with their real kernel
  hls::DseConfig config;
  /// Design points evaluated per heartbeat/checkpoint round.
  std::size_t batch_units = 16;
  /// Root directory for the durable cross-run result store
  /// (core/result_store.hpp). When non-empty the body opens (or reuses --
  /// handles are shared process-wide per directory) a per-tenant store at
  /// `store_root + "/" + ctx.tenant()`, so a repeat submission of the same
  /// campaign -- same tenant, any job id, across service restarts -- is
  /// served from disk without re-running the sweep. Empty disables the
  /// durable tier; an explicit config.result_store wins over this.
  std::string store_root;
  /// Test hook: after this many completed units the body stops
  /// heartbeating and spins until cancelled -- a deterministic "stuck job"
  /// for the watchdog tests (0 disables).
  std::size_t stall_after_units = 0;
};

/// Opens (or reuses) the process-wide shared ResultStore handle for `dir`.
/// One handle per directory: the store's own flock serialises cross-process
/// access, and sharing the in-process handle keeps its index/counters
/// coherent across jobs. Creates the directory chain as needed.
std::shared_ptr<core::ResultStore> open_shared_store(const std::string& dir);

/// Exhaustive DSE as a service job. kReduced/kMinimal tiers stride the
/// sweep grid (degrade.hpp); progress checkpoints to
/// ctx.checkpoint_path("dse.snap") when the service has a scratch dir.
JobBody make_dse_job(DseJobOptions options,
                     std::shared_ptr<hls::DseResult> out);

// ---------------------------------------------------------------------------
// Monte-Carlo fault campaign (any subsystem's trial function).

struct FaultCampaignJobOptions {
  std::uint64_t seed = 1;
  /// Full-tier trial count; degraded tiers sample scaled_trials() of it.
  std::size_t trials = 32;
  /// Trials folded per heartbeat/checkpoint round.
  std::size_t batch_trials = 4;
  std::function<core::TrialResult(std::uint64_t, std::size_t)> trial;
};

JobBody make_fault_campaign_job(FaultCampaignJobOptions options,
                                std::shared_ptr<core::CampaignRunOutcome> out);

// ---------------------------------------------------------------------------
// DNA archival pipeline.

struct DnaJobOptions {
  hetero::dna::ArchivalSimParams params;
  /// Strands per journal record (heartbeat granularity).
  std::size_t journal_batch = 64;
  /// Sequencing batches per heartbeat round.
  std::size_t batch_budget = 4;
};

/// Archival sim as a service job; degraded tiers cap re-read passes.
/// Sequencing progress journals to ctx.checkpoint_path("dna.journal").
JobBody make_dna_job(DnaJobOptions options,
                     std::shared_ptr<hetero::dna::ArchivalSimResult> out);

// ---------------------------------------------------------------------------
// Small interactive jobs: IMC crossbar MVM, approximate conv, SCF estimate.

struct MvmJobOptions {
  std::size_t dim = 24;
  std::uint64_t seed = 1;
  /// Full-tier RMSE trial count (degraded tiers sample fewer).
  int trials = 4;
  imc::CrossbarConfig config;
};

/// Programs a random crossbar and measures MVM RMSE against the exact
/// product; `out` receives the RMSE.
JobBody make_mvm_job(MvmJobOptions options, std::shared_ptr<double> out);

// ---------------------------------------------------------------------------
// Coalesced same-shape MVM batching.

struct MvmBatchOptions {
  std::size_t dim = 8;
  std::uint64_t seed = 1;
  imc::CrossbarConfig config;
  std::string tenant = "default";
  core::PriorityClass priority = core::PriorityClass::kBatch;
  /// Per-MVM cost estimate handed to the service (drives DRR debit and the
  /// doomed-shed / batching-window deadline checks).
  double cost_estimate_seconds = 0.0;
};

/// Client for coalesced small MVMs against one shared crossbar. The client
/// programs a crossbar once (random weights from `seed`, like make_mvm_job)
/// and hands out coalescible JobRequests: every request carries the
/// client's coalesce_key, its body gathers the input and result slot into
/// JobContext::batch_state(), and the *last* member of each coalesced
/// group issues a single Crossbar::matvec_raw_batch over all gathered
/// inputs and scatters the per-member outputs. Because the batch
/// serialises vectors in member order over the same stateful analog read
/// stream, the results are bit-identical to submitting the same inputs
/// solo in the same order against an identically-programmed crossbar.
///
/// The coalesce key is unique per client instance: two clients with the
/// same shape own different crossbars (different device state and RNG
/// stream), so batching across them would scatter one client's inputs
/// through the other's array. Submit through one client to batch.
///
/// Request bodies share ownership of the crossbar, so the client may be
/// destroyed while jobs are still queued or draining. A mutex serialises
/// device passes across dispatcher threads (distinct groups of the same
/// client can finish concurrently).
class MvmBatchClient {
 public:
  explicit MvmBatchClient(MvmBatchOptions options);

  /// Shape/config fingerprint the service groups requests on.
  const std::string& coalesce_key() const { return key_; }

  /// One MVM as a coalescible request. `x` must hold dim elements; `out`
  /// receives the raw bitline sums (dim doubles) once poll() reports
  /// kDone. If the scatter pass itself throws (shape mismatch -- impossible
  /// for requests minted by one client), only the last member fails.
  core::JobRequest make_request(std::vector<float> x,
                                std::shared_ptr<std::vector<double>> out);

  /// Device passes issued so far (one per coalesced group or solo run) --
  /// the denominator of the amortisation story.
  std::uint64_t device_passes() const;

  /// The shared crossbar (callers read energy/health accounting off it).
  imc::Crossbar& crossbar() { return *crossbar_; }

 private:
  struct Shared;  // crossbar + device mutex + pass counter
  MvmBatchOptions options_;
  std::string key_;
  std::shared_ptr<Shared> shared_;
  std::shared_ptr<imc::Crossbar> crossbar_;
};

// ---------------------------------------------------------------------------
// Coalesced (deduplicated) single design-point evaluations.

struct DseEvalOptions {
  hls::Kernel kernel{"empty"};
  int unroll = 1;
  hls::ResourceBudget budget;
  hls::DseConfig config;
  std::string tenant = "default";
  core::PriorityClass priority = core::PriorityClass::kBatch;
  double cost_estimate_seconds = 0.0;
};

/// One memoized hls::evaluate_design call as a coalescible request. The
/// coalesce key fingerprints (kernel name/size, unroll, budget, device,
/// iterations, pipelined), so a coalesced group holds *identical*
/// evaluations: the first member evaluates once and every member's slot
/// receives the same DesignPoint -- N queued duplicates cost one pipeline
/// pass. Callers must keep distinct kernels under distinct names (the key
/// cannot hash the op graph cheaply).
core::JobRequest make_dse_eval_request(DseEvalOptions options,
                                       std::shared_ptr<hls::DesignPoint> out);

struct ConvJobOptions {
  std::size_t out_channels = 4;
  std::size_t in_channels = 4;
  std::size_t kernel = 3;
  std::size_t height = 32;
  std::size_t width = 32;
  std::uint64_t seed = 1;
  /// Full-tier forward passes (degraded tiers run fewer).
  int repeats = 2;
};

/// Repeated quantized conv forward passes; `out` receives the final
/// feature map's element sum (a cheap order-independent checksum).
JobBody make_conv_job(ConvJobOptions options, std::shared_ptr<double> out);

struct ScfJobOptions {
  scf::TransformerConfig model;
  /// Full-tier encoder depth (degraded tiers estimate a shallower model).
  int layers = 2;
  scf::FabricConfig fabric;
};

JobBody make_scf_job(ScfJobOptions options,
                     std::shared_ptr<scf::ModelInferenceEstimate> out);

// ---------------------------------------------------------------------------
// Resubmission under overload.

/// Outcome of submit_with_backoff: the final SubmitOutcome (admitted, or
/// the last rejection) plus the retry loop's accounting.
struct ResubmitResult {
  core::SubmitOutcome outcome;
  core::RetryStats retry;
};

/// Submits `request`, retrying rejections on the policy's delay schedule
/// (core/retry.hpp) -- the intended pairing is decorrelated jitter plus a
/// max-elapsed cap, so colliding clients spread out instead of retrying in
/// lockstep, and give up in bounded time. Each sleep honours the service's
/// retry-after hint when it exceeds the scheduled delay. `sleep` defaults
/// to a real std::this_thread sleep; tests inject a recorder to stay
/// instant.
ResubmitResult submit_with_backoff(
    core::CampaignService& service, core::JobRequest request,
    const core::RetryPolicy& policy,
    std::function<void(double)> sleep = {});

}  // namespace icsc::service
