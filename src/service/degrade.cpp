#include "service/degrade.hpp"

#include <algorithm>
#include <cmath>

namespace icsc::service {

TierProfile tier_profile(core::DegradeTier tier) {
  TierProfile profile;  // kFull: exact identity, early stop disabled
  switch (tier) {
    case core::DegradeTier::kReduced:
      profile.trial_scale = 0.5;
      profile.dse_grid_stride = 2;
      profile.dna_max_passes = 3;
      profile.campaign_early_stop.enabled = true;
      profile.campaign_early_stop.confidence = 0.95;
      profile.campaign_early_stop.relative_half_width = 0.10;
      profile.campaign_early_stop.min_trials = 12;
      profile.campaign_early_stop.check_every = 4;
      break;
    case core::DegradeTier::kMinimal:
      profile.trial_scale = 0.25;
      profile.dse_grid_stride = 4;
      profile.dna_max_passes = 2;
      profile.campaign_early_stop.enabled = true;
      profile.campaign_early_stop.confidence = 0.90;
      profile.campaign_early_stop.relative_half_width = 0.20;
      profile.campaign_early_stop.min_trials = 6;
      profile.campaign_early_stop.check_every = 2;
      break;
    case core::DegradeTier::kFull:
      break;
  }
  return profile;
}

std::size_t scaled_trials(std::size_t full, core::DegradeTier tier) {
  if (full == 0) return 0;
  const double scale = tier_profile(tier).trial_scale;
  const auto scaled =
      static_cast<std::size_t>(std::llround(static_cast<double>(full) * scale));
  return std::max<std::size_t>(1, scaled);
}

namespace {

std::vector<int> strided_axis(const std::vector<int>& axis, int stride) {
  std::vector<int> kept;
  for (std::size_t i = 0; i < axis.size();
       i += static_cast<std::size_t>(stride)) {
    kept.push_back(axis[i]);
  }
  return kept;
}

}  // namespace

hls::DseSpace strided_space(const hls::DseSpace& space, int stride) {
  if (stride <= 1) return space;
  hls::DseSpace out;
  out.unroll_factors = strided_axis(space.unroll_factors, stride);
  out.alu_counts = strided_axis(space.alu_counts, stride);
  out.mul_counts = strided_axis(space.mul_counts, stride);
  out.mem_port_counts = strided_axis(space.mem_port_counts, stride);
  return out;
}

std::optional<core::DegradeTier> parse_tier(std::string_view name) {
  if (name == "full") return core::DegradeTier::kFull;
  if (name == "reduced") return core::DegradeTier::kReduced;
  if (name == "minimal") return core::DegradeTier::kMinimal;
  return std::nullopt;
}

std::optional<core::PriorityClass> parse_priority(std::string_view name) {
  if (name == "interactive") return core::PriorityClass::kInteractive;
  if (name == "batch") return core::PriorityClass::kBatch;
  if (name == "background") return core::PriorityClass::kBackground;
  return std::nullopt;
}

}  // namespace icsc::service
