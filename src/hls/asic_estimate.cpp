#include "hls/asic_estimate.hpp"

namespace icsc::hls {

AsicNode node_45nm() { return {"45nm (reference)", 45.0, 1.0, 1.0, 1.0, 1.2}; }

AsicNode node_28nm() {
  // ~0.45x area, ~0.5x energy vs 45nm; leakage roughly flat per um2.
  return {"28nm", 28.0, 0.45, 0.5, 0.8, 1.8};
}

AsicNode node_12nm() {
  // FinFET: strong area/energy scaling, leakage well controlled.
  return {"12nm FinFET (GF12-class)", 12.0, 0.12, 0.22, 0.4, 2.6};
}

namespace {

/// 45nm standard-cell characterisation per FU instance.
struct AsicFuCost {
  double area_um2;
  double energy_pj_per_op;  // dynamic, at nominal voltage
};

AsicFuCost asic_fu_cost(FuClass cls) {
  switch (cls) {
    case FuClass::kAlu: return {1200.0, 0.9};       // 32b adder/cmp/mux
    case FuClass::kMul: return {9000.0, 3.1};       // 32b array multiplier
    case FuClass::kDiv: return {14000.0, 12.0};     // iterative divider
    case FuClass::kMemPort: return {5000.0, 4.5};   // SRAM/AXI port share
    case FuClass::kNone: return {0.0, 0.0};
  }
  return {0.0, 0.0};
}

constexpr double kRegisterAreaUm2 = 180.0;  // 32b register, 45nm
constexpr double kRegisterEnergyPj = 0.12;
constexpr double kControlAreaPerCycleUm2 = 60.0;  // FSM state logic
constexpr double kLeakageMwPerMm2_45 = 25.0;

}  // namespace

AsicReport estimate_kernel_asic(const Kernel& kernel, const Schedule& schedule,
                                const Binding& binding, const AsicNode& node) {
  AsicReport report;
  double area = 0.0;
  double energy_per_run_pj = 0.0;

  // Functional units: area per instance, energy per executed op.
  for (const auto& [cls, count] : binding.instances) {
    area += asic_fu_cost(cls).area_um2 * count;
  }
  for (const auto& op : kernel.ops()) {
    energy_per_run_pj += asic_fu_cost(op_fu_class(op.kind)).energy_pj_per_op;
  }

  // Registers + control.
  area += kRegisterAreaUm2 * binding.max_live_values;
  area += kControlAreaPerCycleUm2 * schedule.makespan;
  energy_per_run_pj +=
      kRegisterEnergyPj * binding.max_live_values * schedule.makespan;

  // Node scaling.
  area *= node.area_scale;
  energy_per_run_pj *= node.energy_scale;

  report.area_um2 = area;
  report.area_mm2 = area * 1e-6;
  report.clock_ghz = node.max_clock_ghz;
  report.latency_us =
      static_cast<double>(schedule.makespan) / (node.max_clock_ghz * 1e3);
  report.energy_per_run_nj = energy_per_run_pj * 1e-3;
  report.dynamic_power_mw =
      report.latency_us > 0 ? report.energy_per_run_nj / report.latency_us
                            : 0.0;
  report.leakage_mw =
      report.area_mm2 * kLeakageMwPerMm2_45 * node.leakage_scale;
  return report;
}

AsicReport synthesize_asic(const Kernel& kernel, const ResourceBudget& budget,
                           const AsicNode& node) {
  const Schedule schedule = schedule_list(kernel, budget);
  const Binding binding = bind_kernel(kernel, schedule);
  return estimate_kernel_asic(kernel, schedule, binding, node);
}

}  // namespace icsc::hls
