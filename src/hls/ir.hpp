// Dataflow intermediate representation for the mini HLS flow (Sec. III).
//
// Bambu consumes "C/C++ specifications, but also compiler intermediate
// representations (IRs) generated from AI frameworks". Our IR is a small
// SSA dataflow graph: each operation produces one value, operands refer to
// producer indices, and operation kinds carry the latency/resource-class
// information the scheduler and the estimator need. A kernel library
// provides the dataflow graphs the Sec. III experiments schedule (FIR,
// GEMM tiles, SpMV rows, BFS frontier expansion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icsc::hls {

enum class OpKind {
  kInput,    // kernel argument / stream read
  kConst,    // literal
  kAdd,      // integer/fixed add-sub class
  kMul,      // multiplier
  kDiv,      // iterative divider
  kCmp,      // comparison / logic
  kSelect,   // multiplexer
  kLoad,     // external memory read (uses a memory port)
  kStore,    // external memory write
  kOutput    // kernel result
};

/// Resource class an operation occupies during execution.
enum class FuClass { kNone, kAlu, kMul, kDiv, kMemPort };

/// Latency in cycles and the functional-unit class for each op kind.
int op_latency(OpKind kind);
FuClass op_fu_class(OpKind kind);
const char* op_name(OpKind kind);

struct Op {
  OpKind kind = OpKind::kConst;
  std::vector<std::size_t> operands;  // producer value ids
};

/// A pure dataflow kernel: ops in topological order (operands < consumer).
class Kernel {
public:
  explicit Kernel(std::string name) : name_(std::move(name)) {}

  std::size_t add_op(OpKind kind, std::vector<std::size_t> operands = {});

  // Builder conveniences.
  std::size_t input() { return add_op(OpKind::kInput); }
  std::size_t constant() { return add_op(OpKind::kConst); }
  std::size_t add(std::size_t a, std::size_t b) { return add_op(OpKind::kAdd, {a, b}); }
  std::size_t mul(std::size_t a, std::size_t b) { return add_op(OpKind::kMul, {a, b}); }
  std::size_t div(std::size_t a, std::size_t b) { return add_op(OpKind::kDiv, {a, b}); }
  std::size_t cmp(std::size_t a, std::size_t b) { return add_op(OpKind::kCmp, {a, b}); }
  std::size_t select(std::size_t c, std::size_t a, std::size_t b) {
    return add_op(OpKind::kSelect, {c, a, b});
  }
  std::size_t load(std::size_t addr) { return add_op(OpKind::kLoad, {addr}); }
  std::size_t store(std::size_t addr, std::size_t value) {
    return add_op(OpKind::kStore, {addr, value});
  }
  void output(std::size_t value) { add_op(OpKind::kOutput, {value}); }

  const std::string& name() const { return name_; }
  const std::vector<Op>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  /// Length of the longest latency path (lower bound on any schedule).
  int critical_path() const;

  /// Count of ops per functional-unit class.
  std::size_t count_class(FuClass cls) const;

  /// Validates SSA ordering (every operand precedes its consumer).
  bool is_well_formed() const;

private:
  std::string name_;
  std::vector<Op> ops_;
};

/// Kernel library used by the Sec. III experiments.
/// taps-tap FIR filter body (one output sample).
Kernel make_fir_kernel(int taps);
/// Dot product of length n (the GEMM inner loop body).
Kernel make_dot_kernel(int n);
/// One SpMV row with nnz non-zeros: indirect loads x[col[e]].
Kernel make_spmv_row_kernel(int nnz);
/// BFS frontier expansion for a vertex with `degree` neighbours: load
/// neighbour levels, compare, select, store updates.
Kernel make_bfs_expand_kernel(int degree);
/// Unrolls a kernel `factor` times (independent copies, shared inputs):
/// the HLS "unroll" knob the DSE sweeps.
Kernel unroll_kernel(const Kernel& kernel, int factor);

}  // namespace icsc::hls
