// Operation chaining (Sec. III HLS optimisations).
//
// Production HLS schedulers pack chains of dependent combinational
// operations into a single clock cycle when their accumulated delay fits
// the clock period -- the "chaining" directive. Without it, every 1-cycle
// op burns a full cycle and short-latency kernels become FSM-bound. We
// model per-op combinational delays and produce a chained schedule
// (cycle, intra-cycle offset) under ALU resource constraints, to compare
// cycle counts and wall-clock latency against the unchained baseline
// across clock targets.
#pragma once

#include "hls/scheduling.hpp"

namespace icsc::hls {

/// Combinational delay of one operation in nanoseconds (post-routing,
/// 7-series-class fabric). Multi-cycle ops are pipelined and not chainable.
double op_delay_ns(OpKind kind);

/// True if the op may share a cycle with its producer (single-cycle
/// combinational ops only).
bool op_chainable(OpKind kind);

struct ChainedSchedule {
  std::vector<int> start_cycle;
  std::vector<double> offset_ns;  // intra-cycle start of chainable ops
  int makespan = 0;               // cycles
  double clock_ns = 0.0;

  double latency_ns() const { return makespan * clock_ns; }
};

/// Schedules with chaining at the given clock period. ALU/mem/mul/div
/// budgets bound the number of ops *starting* per cycle per class (the
/// binding-level sharing model).
ChainedSchedule schedule_chained(const Kernel& kernel,
                                 const ResourceBudget& budget,
                                 double clock_ns);

/// Dependences hold (time order), chains fit the period, resources hold.
bool chained_schedule_is_valid(const Kernel& kernel,
                               const ChainedSchedule& schedule,
                               const ResourceBudget& budget);

}  // namespace icsc::hls
