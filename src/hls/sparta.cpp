#include "hls/sparta.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <string>
#include <unordered_set>

#include "core/error.hpp"
#include "core/fault.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace icsc::hls {

namespace {

/// Set-associative LRU memory-side cache over line addresses (1 way =
/// direct mapped).
class SetAssociativeCache {
public:
  SetAssociativeCache(int lines, int line_bytes, int ways)
      : line_bytes_(std::max(1, line_bytes)),
        ways_(std::max(1, ways)),
        sets_(std::max(1, std::max(1, lines) / std::max(1, ways))),
        tags_(static_cast<std::size_t>(sets_) * ways_, -1),
        age_(static_cast<std::size_t>(sets_) * ways_, 0) {}

  bool access(std::int64_t address) {
    const std::int64_t line = address / line_bytes_;
    const std::size_t set =
        static_cast<std::size_t>(line) % static_cast<std::size_t>(sets_);
    const std::size_t base = set * static_cast<std::size_t>(ways_);
    ++clock_;
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + w] == line) {
        age_[base + w] = clock_;
        return true;
      }
    }
    // Miss: evict the LRU way of the set.
    std::size_t victim = base;
    for (int w = 1; w < ways_; ++w) {
      if (age_[base + w] < age_[victim]) victim = base + w;
    }
    tags_[victim] = line;
    age_[victim] = clock_;
    return false;
  }

private:
  int line_bytes_;
  int ways_;
  int sets_;
  std::vector<std::int64_t> tags_;
  std::vector<std::uint64_t> age_;
  std::uint64_t clock_ = 0;
};

struct Context {
  std::vector<std::size_t> task_queue;  // indices into the task list
  std::size_t current_task = 0;         // position within task_queue
  std::size_t current_step = 0;         // position within the task
  std::uint64_t ready_at = 0;           // cycle the context can run again

  bool done() const { return current_task >= task_queue.size(); }
};

struct Lane {
  std::vector<Context> contexts;
  std::uint64_t now = 0;
  std::uint64_t busy_cycles = 0;
};

}  // namespace

SpartaStats simulate_sparta(const std::vector<SpartaTask>& tasks,
                            const SpartaConfig& config) {
  SpartaStats stats;
  const int lanes = std::max(1, config.lanes);
  const int contexts = std::max(1, config.contexts_per_lane);

  // Partition tasks over (lane, context) slots.
  std::vector<Lane> lane_state(lanes);
  for (auto& lane : lane_state) lane.contexts.resize(contexts);
  const std::size_t slots = static_cast<std::size_t>(lanes) * contexts;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    std::size_t slot;
    if (config.partition == TaskPartition::kRoundRobin) {
      slot = t % slots;
    } else {
      const std::size_t per_slot = (tasks.size() + slots - 1) / slots;
      slot = t / per_slot;
    }
    lane_state[slot % lanes].contexts[slot / lanes].task_queue.push_back(t);
  }

  SetAssociativeCache cache(config.cache_lines, config.cache_line_bytes,
                            config.cache_ways);
  std::vector<std::uint64_t> channel_free(
      static_cast<std::size_t>(std::max(1, config.mem_channels)), 0);

  // Global order: always advance the lane with the smallest local time so
  // shared-resource (cache, channel) ordering is consistent.
  auto lane_has_work = [&](const Lane& lane) {
    for (const auto& ctx : lane.contexts) {
      if (!ctx.done()) return true;
    }
    return false;
  };

  using LaneKey = std::pair<std::uint64_t, int>;  // (time, lane id)
  std::priority_queue<LaneKey, std::vector<LaneKey>, std::greater<>> agenda;
  for (int l = 0; l < lanes; ++l) {
    if (lane_has_work(lane_state[l])) agenda.push({0, l});
  }

  while (!agenda.empty()) {
    const auto [when, lane_id] = agenda.top();
    agenda.pop();
    Lane& lane = lane_state[lane_id];
    lane.now = std::max(lane.now, when);
    if (!lane_has_work(lane)) continue;

    // Pick the ready context with the earliest ready_at (round-robin-ish,
    // deterministic); if none ready, idle until the first becomes ready.
    int chosen = -1;
    std::uint64_t earliest_ready = ~0ull;
    for (int c = 0; c < contexts; ++c) {
      const Context& ctx = lane.contexts[c];
      if (ctx.done()) continue;
      if (ctx.ready_at <= lane.now &&
          (chosen < 0 || ctx.ready_at < lane.contexts[chosen].ready_at)) {
        chosen = c;
      }
      earliest_ready = std::min(earliest_ready, ctx.ready_at);
    }
    if (chosen < 0) {
      lane.now = std::max(lane.now, earliest_ready);
      agenda.push({lane.now, lane_id});
      continue;
    }

    Context& ctx = lane.contexts[chosen];
    const SpartaTask& task = tasks[ctx.task_queue[ctx.current_task]];
    if (ctx.current_step >= task.steps.size()) {
      // Task complete; move to the next one in this context's queue.
      ++stats.tasks_executed;
      ++ctx.current_task;
      ctx.current_step = 0;
      if (lane_has_work(lane)) agenda.push({lane.now, lane_id});
      continue;
    }

    const TaskStep& step = task.steps[ctx.current_step++];
    // Compute phase occupies the lane datapath.
    lane.now += static_cast<std::uint64_t>(std::max(0, step.compute_cycles));
    lane.busy_cycles += static_cast<std::uint64_t>(std::max(0, step.compute_cycles));

    if (step.address >= 0) {
      ++stats.mem_requests;
      lane.busy_cycles += 1;  // issue cycle
      lane.now += 1;
      if (step.address < config.private_scratchpad_bytes) {
        // Lane-private scratchpad: fast local access, no NoC traffic.
        ++stats.scratchpad_hits;
        ctx.ready_at =
            lane.now + static_cast<std::uint64_t>(config.scratchpad_latency);
        agenda.push({lane.now, lane_id});
        continue;
      }
      const bool hit = cache.access(step.address);
      if (hit) {
        ++stats.cache_hits;
        ctx.ready_at = lane.now + static_cast<std::uint64_t>(config.cache_hit_latency);
      } else {
        const std::size_t channel =
            static_cast<std::size_t>(step.address / config.cache_line_bytes) %
            channel_free.size();
        const std::uint64_t issue = std::max(lane.now, channel_free[channel]);
        channel_free[channel] =
            issue + static_cast<std::uint64_t>(config.channel_gap_cycles);
        ctx.ready_at =
            issue + static_cast<std::uint64_t>(config.mem_latency_cycles);
      }
      // Context blocks; the lane pays the switch penalty and looks for
      // another ready context immediately after.
      lane.now += static_cast<std::uint64_t>(config.context_switch_cycles);
    }
    agenda.push({lane.now, lane_id});
  }

  std::uint64_t total = 0;
  double busy_fraction_sum = 0.0;
  for (const auto& lane : lane_state) {
    total = std::max(total, lane.now);
  }
  stats.cycles = std::max<std::uint64_t>(total, 1);
  for (const auto& lane : lane_state) {
    busy_fraction_sum += static_cast<double>(lane.busy_cycles) /
                         static_cast<double>(stats.cycles);
  }
  stats.lane_utilization = busy_fraction_sum / static_cast<double>(lanes);
  return stats;
}

namespace {

constexpr int kWordBytes = 4;

}  // namespace

std::vector<SpartaTask> make_spmv_tasks(const core::CsrGraph& graph) {
  std::vector<SpartaTask> tasks;
  tasks.reserve(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    SpartaTask task;
    for (std::uint32_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1];
         ++e) {
      task.steps.push_back(
          {1, static_cast<std::int64_t>(graph.column_indices[e]) * kWordBytes});
    }
    if (!task.steps.empty()) tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<SpartaTask> make_bfs_tasks(const core::CsrGraph& graph) {
  std::vector<SpartaTask> tasks;
  tasks.reserve(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    SpartaTask task;
    for (std::uint32_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1];
         ++e) {
      // Load level[w], compare, conditional store (modeled as compute).
      task.steps.push_back(
          {1, static_cast<std::int64_t>(graph.column_indices[e]) * kWordBytes});
      task.steps.push_back({1, -1});
    }
    if (!task.steps.empty()) tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<SpartaTask> make_pagerank_tasks(const core::CsrGraph& graph) {
  std::vector<SpartaTask> tasks;
  tasks.reserve(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    SpartaTask task;
    task.steps.push_back({2, -1});  // rank/degree division (pipelined)
    for (std::uint32_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1];
         ++e) {
      task.steps.push_back(
          {2, static_cast<std::int64_t>(graph.column_indices[e]) * kWordBytes});
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

SpartaConfig serial_baseline_config(const SpartaConfig& like) {
  SpartaConfig config = like;
  config.lanes = 1;
  config.contexts_per_lane = 1;
  config.mem_channels = 1;
  return config;
}

// ---------------------------------------------------------------------------
// SimPoint-style phase sampling.

namespace {

constexpr std::size_t kSignatureDims = 6;
using Signature = std::array<double, kSignatureDims>;

/// Static lane signature of one task interval. Cheap (no simulation): task
/// count, step count, irregular accesses, distinct line footprint, total
/// compute cycles, and access-to-footprint reuse -- the features that drive
/// the simulated KPIs (compute occupancy, cache behaviour, channel load).
Signature interval_signature(const std::vector<SpartaTask>& tasks,
                             std::size_t begin, std::size_t end,
                             const SpartaConfig& config) {
  const int line_bytes = std::max(1, config.cache_line_bytes);
  double steps = 0.0;
  double accesses = 0.0;
  double scratch = 0.0;
  double compute = 0.0;
  std::unordered_set<std::int64_t> lines;
  for (std::size_t t = begin; t < end; ++t) {
    for (const TaskStep& step : tasks[t].steps) {
      steps += 1.0;
      compute += static_cast<double>(std::max(0, step.compute_cycles));
      if (step.address < 0) continue;
      accesses += 1.0;
      if (step.address < config.private_scratchpad_bytes) {
        scratch += 1.0;
      } else {
        lines.insert(step.address / line_bytes);
      }
    }
  }
  const double distinct = static_cast<double>(lines.size());
  const double reuse = (accesses - scratch) / std::max(1.0, distinct);
  return {static_cast<double>(end - begin), steps,
          accesses,                         distinct,
          compute,                          reuse};
}

double distance2(const Signature& a, const Signature& b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < kSignatureDims; ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}

void check_sampling_config(const PhaseSamplingConfig& sampling) {
  if (sampling.interval_tasks == 0) {
    throw core::Error("hls::simulate_sparta_sampled",
                      "interval_tasks must be positive");
  }
  if (sampling.phases < 1) {
    throw core::Error("hls::simulate_sparta_sampled",
                      "phases must be at least 1");
  }
  if (sampling.samples_per_phase < 2) {
    throw core::Error("hls::simulate_sparta_sampled",
                      "samples_per_phase must be at least 2",
                      "a single-sample phase has no confidence interval");
  }
  if (sampling.kmeans_iters < 1) {
    throw core::Error("hls::simulate_sparta_sampled",
                      "kmeans_iters must be at least 1");
  }
  if (!(sampling.confidence > 0.0) || !(sampling.confidence < 1.0)) {
    throw core::Error("hls::simulate_sparta_sampled",
                      "confidence must be in (0, 1)");
  }
}

}  // namespace

SpartaStats sparta_isolated_reference(const std::vector<SpartaTask>& tasks,
                                      const SpartaConfig& config,
                                      std::size_t interval_tasks) {
  if (interval_tasks == 0) {
    throw core::Error("hls::sparta_isolated_reference",
                      "interval_tasks must be positive");
  }
  SpartaStats total;
  double util_cycles = 0.0;
  for (std::size_t begin = 0; begin < tasks.size(); begin += interval_tasks) {
    const std::size_t end = std::min(tasks.size(), begin + interval_tasks);
    const std::vector<SpartaTask> slice(tasks.begin() + begin,
                                        tasks.begin() + end);
    const SpartaStats s = simulate_sparta(slice, config);
    total.cycles += s.cycles;
    total.mem_requests += s.mem_requests;
    total.cache_hits += s.cache_hits;
    total.scratchpad_hits += s.scratchpad_hits;
    total.tasks_executed += s.tasks_executed;
    util_cycles += s.lane_utilization * static_cast<double>(s.cycles);
  }
  total.lane_utilization =
      total.cycles > 0 ? util_cycles / static_cast<double>(total.cycles) : 0.0;
  return total;
}

PhaseSampleStats simulate_sparta_sampled(const std::vector<SpartaTask>& tasks,
                                         const SpartaConfig& config,
                                         const PhaseSamplingConfig& sampling) {
  check_sampling_config(sampling);
  PhaseSampleStats out;
  out.confidence = sampling.confidence;
  if (tasks.empty()) return out;

  // 1. Slice into consecutive intervals; the last one may be partial.
  const std::size_t n =
      (tasks.size() + sampling.interval_tasks - 1) / sampling.interval_tasks;
  out.intervals = n;
  std::vector<std::pair<std::size_t, std::size_t>> bounds(n);
  std::vector<Signature> sig(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = i * sampling.interval_tasks;
    const std::size_t end =
        std::min(tasks.size(), begin + sampling.interval_tasks);
    bounds[i] = {begin, end};
    sig[i] = interval_signature(tasks, begin, end, config);
  }

  // 2. Min-max normalise each feature so no dimension dominates the
  // distance; a constant feature collapses to zero.
  for (std::size_t d = 0; d < kSignatureDims; ++d) {
    double lo = sig[0][d], hi = sig[0][d];
    for (const Signature& s : sig) {
      lo = std::min(lo, s[d]);
      hi = std::max(hi, s[d]);
    }
    const double range = hi - lo;
    for (Signature& s : sig) {
      s[d] = range > 0.0 ? (s[d] - lo) / range : 0.0;
    }
  }

  // 3. Deterministic k-means: farthest-first init from a hash-picked
  // interval, fixed Lloyd iterations, all ties to the lowest index.
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(sampling.phases), n);
  std::vector<Signature> centers;
  centers.reserve(k);
  centers.push_back(sig[core::fault_hash(sampling.seed, 0) % n]);
  std::vector<double> nearest(n, std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    std::size_t far = 0;
    double far_d2 = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      nearest[i] = std::min(nearest[i], distance2(sig[i], centers.back()));
      if (nearest[i] > far_d2) {
        far_d2 = nearest[i];
        far = i;
      }
    }
    centers.push_back(sig[far]);
  }
  std::vector<std::size_t> assign(n, 0);
  for (int iter = 0; iter < sampling.kmeans_iters; ++iter) {
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d2 = distance2(sig[i], centers[0]);
      for (std::size_t c = 1; c < centers.size(); ++c) {
        const double d2 = distance2(sig[i], centers[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (assign[i] != best) moved = true;
      assign[i] = best;
    }
    std::vector<Signature> sums(centers.size(), Signature{});
    std::vector<std::size_t> counts(centers.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < kSignatureDims; ++d) {
        sums[assign[i]][d] += sig[i][d];
      }
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      for (std::size_t d = 0; d < kSignatureDims; ++d) {
        centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!moved) break;
  }

  std::vector<std::vector<std::size_t>> members(centers.size());
  for (std::size_t i = 0; i < n; ++i) members[assign[i]].push_back(i);

  // 4. Per phase: the representative closest to the centroid plus
  // hash-picked extra samples, each simulated in isolation.
  struct PhaseAccum {
    std::size_t population = 0;  // N_c: intervals in the phase
    core::sampling::OnlineStats cycles;
    double mem = 0.0, hits = 0.0, scratch = 0.0, exec = 0.0;
    double util_cycles = 0.0;  // sum of utilization * cycles over samples
  };
  std::vector<PhaseAccum> phases;
  phases.reserve(centers.size());
  for (std::size_t c = 0; c < centers.size(); ++c) {
    if (members[c].empty()) continue;
    PhaseAccum acc;
    acc.population = members[c].size();

    std::size_t rep = members[c][0];
    double rep_d2 = distance2(sig[rep], centers[c]);
    for (std::size_t i : members[c]) {
      const double d2 = distance2(sig[i], centers[c]);
      if (d2 < rep_d2) {
        rep_d2 = d2;
        rep = i;
      }
    }
    std::vector<std::size_t> picks{rep};
    std::vector<std::size_t> rest;
    for (std::size_t i : members[c]) {
      if (i != rep) rest.push_back(i);
    }
    const std::size_t want = std::min<std::size_t>(
        static_cast<std::size_t>(sampling.samples_per_phase),
        members[c].size());
    for (std::size_t j = 1; j < want; ++j) {
      const std::size_t at = core::fault_hash(
                                 sampling.seed,
                                 (static_cast<std::uint64_t>(c) << 32) | j) %
                             rest.size();
      picks.push_back(rest[at]);
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(at));
    }
    std::sort(picks.begin(), picks.end());

    for (std::size_t i : picks) {
      const auto [begin, end] = bounds[i];
      const std::vector<SpartaTask> slice(tasks.begin() + begin,
                                          tasks.begin() + end);
      const SpartaStats s = simulate_sparta(slice, config);
      acc.cycles.push(static_cast<double>(s.cycles));
      acc.mem += static_cast<double>(s.mem_requests);
      acc.hits += static_cast<double>(s.cache_hits);
      acc.scratch += static_cast<double>(s.scratchpad_hits);
      acc.exec += static_cast<double>(s.tasks_executed);
      acc.util_cycles +=
          s.lane_utilization * static_cast<double>(s.cycles);
    }
    out.intervals_simulated += picks.size();
    phases.push_back(std::move(acc));
  }
  out.phases_used = phases.size();

  // 5. Stratified total with finite-population correction. A one-interval
  // phase is simulated exactly (its fpc is zero), so every variance term
  // with fpc > 0 has n_c >= 2 and the estimate is always finite.
  double total = 0.0;
  double variance = 0.0;
  double df_denom = 0.0;
  double mem = 0.0, hits = 0.0, scratch = 0.0, exec = 0.0;
  double util_cycles_total = 0.0;
  for (const PhaseAccum& acc : phases) {
    const double big_n = static_cast<double>(acc.population);
    const double small_n = static_cast<double>(acc.cycles.count());
    total += big_n * acc.cycles.mean();
    const double fpc = 1.0 - small_n / big_n;
    if (fpc > 0.0 && small_n >= 2.0) {
      const double term =
          fpc * big_n * big_n * acc.cycles.variance() / small_n;
      variance += term;
      df_denom += term * term / (small_n - 1.0);
    }
    const double scale = big_n / small_n;
    mem += scale * acc.mem;
    hits += scale * acc.hits;
    scratch += scale * acc.scratch;
    exec += scale * acc.exec;
    util_cycles_total += scale * acc.util_cycles;
  }
  out.cycles_estimate = total;
  if (variance > 0.0) {
    const double df =
        df_denom > 0.0 ? std::max(1.0, (variance * variance) / df_denom)
                       : 1.0;
    out.cycles_half_width =
        core::student_t_critical(df, sampling.confidence) *
        std::sqrt(variance);
  }

  out.reconstructed.cycles = static_cast<std::uint64_t>(
      std::llround(std::max(0.0, out.cycles_estimate)));
  out.reconstructed.mem_requests =
      static_cast<std::uint64_t>(std::llround(mem));
  out.reconstructed.cache_hits =
      static_cast<std::uint64_t>(std::llround(hits));
  out.reconstructed.scratchpad_hits =
      static_cast<std::uint64_t>(std::llround(scratch));
  out.reconstructed.tasks_executed =
      static_cast<std::uint64_t>(std::llround(exec));
  out.reconstructed.lane_utilization =
      total > 0.0 ? util_cycles_total / total : 0.0;

  ICSC_TRACE_COUNT("sampling.sparta.intervals", n);
  ICSC_TRACE_COUNT("sampling.sparta.simulated", out.intervals_simulated);
  ICSC_TRACE_COUNT("sampling.sparta.skipped", n - out.intervals_simulated);
  return out;
}

}  // namespace icsc::hls
