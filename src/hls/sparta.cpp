#include "hls/sparta.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace icsc::hls {

namespace {

/// Set-associative LRU memory-side cache over line addresses (1 way =
/// direct mapped).
class SetAssociativeCache {
public:
  SetAssociativeCache(int lines, int line_bytes, int ways)
      : line_bytes_(std::max(1, line_bytes)),
        ways_(std::max(1, ways)),
        sets_(std::max(1, std::max(1, lines) / std::max(1, ways))),
        tags_(static_cast<std::size_t>(sets_) * ways_, -1),
        age_(static_cast<std::size_t>(sets_) * ways_, 0) {}

  bool access(std::int64_t address) {
    const std::int64_t line = address / line_bytes_;
    const std::size_t set =
        static_cast<std::size_t>(line) % static_cast<std::size_t>(sets_);
    const std::size_t base = set * static_cast<std::size_t>(ways_);
    ++clock_;
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + w] == line) {
        age_[base + w] = clock_;
        return true;
      }
    }
    // Miss: evict the LRU way of the set.
    std::size_t victim = base;
    for (int w = 1; w < ways_; ++w) {
      if (age_[base + w] < age_[victim]) victim = base + w;
    }
    tags_[victim] = line;
    age_[victim] = clock_;
    return false;
  }

private:
  int line_bytes_;
  int ways_;
  int sets_;
  std::vector<std::int64_t> tags_;
  std::vector<std::uint64_t> age_;
  std::uint64_t clock_ = 0;
};

struct Context {
  std::vector<std::size_t> task_queue;  // indices into the task list
  std::size_t current_task = 0;         // position within task_queue
  std::size_t current_step = 0;         // position within the task
  std::uint64_t ready_at = 0;           // cycle the context can run again

  bool done() const { return current_task >= task_queue.size(); }
};

struct Lane {
  std::vector<Context> contexts;
  std::uint64_t now = 0;
  std::uint64_t busy_cycles = 0;
};

}  // namespace

SpartaStats simulate_sparta(const std::vector<SpartaTask>& tasks,
                            const SpartaConfig& config) {
  SpartaStats stats;
  const int lanes = std::max(1, config.lanes);
  const int contexts = std::max(1, config.contexts_per_lane);

  // Partition tasks over (lane, context) slots.
  std::vector<Lane> lane_state(lanes);
  for (auto& lane : lane_state) lane.contexts.resize(contexts);
  const std::size_t slots = static_cast<std::size_t>(lanes) * contexts;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    std::size_t slot;
    if (config.partition == TaskPartition::kRoundRobin) {
      slot = t % slots;
    } else {
      const std::size_t per_slot = (tasks.size() + slots - 1) / slots;
      slot = t / per_slot;
    }
    lane_state[slot % lanes].contexts[slot / lanes].task_queue.push_back(t);
  }

  SetAssociativeCache cache(config.cache_lines, config.cache_line_bytes,
                            config.cache_ways);
  std::vector<std::uint64_t> channel_free(
      static_cast<std::size_t>(std::max(1, config.mem_channels)), 0);

  // Global order: always advance the lane with the smallest local time so
  // shared-resource (cache, channel) ordering is consistent.
  auto lane_has_work = [&](const Lane& lane) {
    for (const auto& ctx : lane.contexts) {
      if (!ctx.done()) return true;
    }
    return false;
  };

  using LaneKey = std::pair<std::uint64_t, int>;  // (time, lane id)
  std::priority_queue<LaneKey, std::vector<LaneKey>, std::greater<>> agenda;
  for (int l = 0; l < lanes; ++l) {
    if (lane_has_work(lane_state[l])) agenda.push({0, l});
  }

  while (!agenda.empty()) {
    const auto [when, lane_id] = agenda.top();
    agenda.pop();
    Lane& lane = lane_state[lane_id];
    lane.now = std::max(lane.now, when);
    if (!lane_has_work(lane)) continue;

    // Pick the ready context with the earliest ready_at (round-robin-ish,
    // deterministic); if none ready, idle until the first becomes ready.
    int chosen = -1;
    std::uint64_t earliest_ready = ~0ull;
    for (int c = 0; c < contexts; ++c) {
      const Context& ctx = lane.contexts[c];
      if (ctx.done()) continue;
      if (ctx.ready_at <= lane.now &&
          (chosen < 0 || ctx.ready_at < lane.contexts[chosen].ready_at)) {
        chosen = c;
      }
      earliest_ready = std::min(earliest_ready, ctx.ready_at);
    }
    if (chosen < 0) {
      lane.now = std::max(lane.now, earliest_ready);
      agenda.push({lane.now, lane_id});
      continue;
    }

    Context& ctx = lane.contexts[chosen];
    const SpartaTask& task = tasks[ctx.task_queue[ctx.current_task]];
    if (ctx.current_step >= task.steps.size()) {
      // Task complete; move to the next one in this context's queue.
      ++stats.tasks_executed;
      ++ctx.current_task;
      ctx.current_step = 0;
      if (lane_has_work(lane)) agenda.push({lane.now, lane_id});
      continue;
    }

    const TaskStep& step = task.steps[ctx.current_step++];
    // Compute phase occupies the lane datapath.
    lane.now += static_cast<std::uint64_t>(std::max(0, step.compute_cycles));
    lane.busy_cycles += static_cast<std::uint64_t>(std::max(0, step.compute_cycles));

    if (step.address >= 0) {
      ++stats.mem_requests;
      lane.busy_cycles += 1;  // issue cycle
      lane.now += 1;
      if (step.address < config.private_scratchpad_bytes) {
        // Lane-private scratchpad: fast local access, no NoC traffic.
        ++stats.scratchpad_hits;
        ctx.ready_at =
            lane.now + static_cast<std::uint64_t>(config.scratchpad_latency);
        agenda.push({lane.now, lane_id});
        continue;
      }
      const bool hit = cache.access(step.address);
      if (hit) {
        ++stats.cache_hits;
        ctx.ready_at = lane.now + static_cast<std::uint64_t>(config.cache_hit_latency);
      } else {
        const std::size_t channel =
            static_cast<std::size_t>(step.address / config.cache_line_bytes) %
            channel_free.size();
        const std::uint64_t issue = std::max(lane.now, channel_free[channel]);
        channel_free[channel] =
            issue + static_cast<std::uint64_t>(config.channel_gap_cycles);
        ctx.ready_at =
            issue + static_cast<std::uint64_t>(config.mem_latency_cycles);
      }
      // Context blocks; the lane pays the switch penalty and looks for
      // another ready context immediately after.
      lane.now += static_cast<std::uint64_t>(config.context_switch_cycles);
    }
    agenda.push({lane.now, lane_id});
  }

  std::uint64_t total = 0;
  double busy_fraction_sum = 0.0;
  for (const auto& lane : lane_state) {
    total = std::max(total, lane.now);
  }
  stats.cycles = std::max<std::uint64_t>(total, 1);
  for (const auto& lane : lane_state) {
    busy_fraction_sum += static_cast<double>(lane.busy_cycles) /
                         static_cast<double>(stats.cycles);
  }
  stats.lane_utilization = busy_fraction_sum / static_cast<double>(lanes);
  return stats;
}

namespace {

constexpr int kWordBytes = 4;

}  // namespace

std::vector<SpartaTask> make_spmv_tasks(const core::CsrGraph& graph) {
  std::vector<SpartaTask> tasks;
  tasks.reserve(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    SpartaTask task;
    for (std::uint32_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1];
         ++e) {
      task.steps.push_back(
          {1, static_cast<std::int64_t>(graph.column_indices[e]) * kWordBytes});
    }
    if (!task.steps.empty()) tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<SpartaTask> make_bfs_tasks(const core::CsrGraph& graph) {
  std::vector<SpartaTask> tasks;
  tasks.reserve(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    SpartaTask task;
    for (std::uint32_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1];
         ++e) {
      // Load level[w], compare, conditional store (modeled as compute).
      task.steps.push_back(
          {1, static_cast<std::int64_t>(graph.column_indices[e]) * kWordBytes});
      task.steps.push_back({1, -1});
    }
    if (!task.steps.empty()) tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<SpartaTask> make_pagerank_tasks(const core::CsrGraph& graph) {
  std::vector<SpartaTask> tasks;
  tasks.reserve(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    SpartaTask task;
    task.steps.push_back({2, -1});  // rank/degree division (pipelined)
    for (std::uint32_t e = graph.row_offsets[v]; e < graph.row_offsets[v + 1];
         ++e) {
      task.steps.push_back(
          {2, static_cast<std::int64_t>(graph.column_indices[e]) * kWordBytes});
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

SpartaConfig serial_baseline_config(const SpartaConfig& like) {
  SpartaConfig config = like;
  config.lanes = 1;
  config.contexts_per_lane = 1;
  config.mem_channels = 1;
  return config;
}

}  // namespace icsc::hls
