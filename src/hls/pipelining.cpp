#include "hls/pipelining.hpp"

#include <algorithm>
#include <vector>

namespace icsc::hls {

namespace {

int occupancy_cycles(OpKind kind) {
  return kind == OpKind::kDiv ? op_latency(OpKind::kDiv) : 1;
}

/// Attempts a modulo schedule at a fixed II; returns true on success.
bool try_modulo_schedule(const Kernel& kernel, const ResourceBudget& budget,
                         int ii, Schedule& out) {
  const std::size_t n = kernel.size();
  const auto mob = mobility(kernel);
  out.start_cycle.assign(n, -1);
  out.makespan = 0;

  // Modulo reservation table: usage[class][slot] over II slots.
  std::vector<std::vector<int>> usage(5, std::vector<int>(ii, 0));
  auto class_index = [](FuClass cls) {
    switch (cls) {
      case FuClass::kAlu: return 0;
      case FuClass::kMul: return 1;
      case FuClass::kDiv: return 2;
      case FuClass::kMemPort: return 3;
      case FuClass::kNone: return 4;
    }
    return 4;
  };

  // Topological order with mobility priority (ops are already topological;
  // schedule in index order but choose start >= dependence-ready).
  std::vector<int> earliest(n, 0);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (mob[a] != mob[b]) return mob[a] < mob[b];
                     return a < b;
                   });
  // Mobility order can violate topology; iterate until all placed.
  std::vector<bool> placed(n, false);
  std::size_t placed_count = 0;
  while (placed_count < n) {
    bool progress = false;
    for (const std::size_t op_id : order) {
      if (placed[op_id]) continue;
      bool ready = true;
      int start = 0;
      for (const std::size_t operand : kernel.ops()[op_id].operands) {
        if (!placed[operand]) {
          ready = false;
          break;
        }
        start = std::max(start, out.start_cycle[operand] +
                                    op_latency(kernel.ops()[operand].kind));
      }
      if (!ready) continue;

      const FuClass cls = op_fu_class(kernel.ops()[op_id].kind);
      const int budget_units = budget.of(cls);
      const int occupancy = occupancy_cycles(kernel.ops()[op_id].kind);
      if (cls != FuClass::kNone && occupancy > ii) return false;

      // Search the first start cycle whose modulo slots have capacity.
      bool found = false;
      for (int candidate = start; candidate < start + ii; ++candidate) {
        if (cls == FuClass::kNone) {
          found = true;
          start = candidate;
          break;
        }
        bool fits = true;
        for (int c = 0; c < occupancy; ++c) {
          if (usage[class_index(cls)][(candidate + c) % ii] >= budget_units) {
            fits = false;
            break;
          }
        }
        if (fits) {
          found = true;
          start = candidate;
          break;
        }
      }
      if (!found) return false;
      if (cls != FuClass::kNone) {
        for (int c = 0; c < occupancy; ++c) {
          ++usage[class_index(cls)][(start + c) % ii];
        }
      }
      out.start_cycle[op_id] = start;
      out.makespan = std::max(out.makespan,
                              start + op_latency(kernel.ops()[op_id].kind));
      placed[op_id] = true;
      ++placed_count;
      progress = true;
    }
    if (!progress) return false;  // cyclic? cannot happen for a DAG
  }
  return true;
}

}  // namespace

PipelinedSchedule schedule_pipelined(const Kernel& kernel,
                                     const ResourceBudget& budget,
                                     int max_ii) {
  PipelinedSchedule result;
  for (int ii = min_initiation_interval(kernel, budget); ii <= max_ii; ++ii) {
    Schedule schedule;
    if (try_modulo_schedule(kernel, budget, ii, schedule)) {
      result.schedule = std::move(schedule);
      result.ii = ii;
      result.depth = (result.schedule.makespan + ii - 1) / ii;
      return result;
    }
  }
  return result;  // ii == 0 marks failure (unreachable for sane max_ii)
}

bool pipelined_schedule_is_valid(const Kernel& kernel,
                                 const PipelinedSchedule& pipelined,
                                 const ResourceBudget& budget) {
  const std::size_t n = kernel.size();
  const Schedule& s = pipelined.schedule;
  if (pipelined.ii <= 0 || s.start_cycle.size() != n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t operand : kernel.ops()[i].operands) {
      if (s.start_cycle[i] < s.start_cycle[operand] +
                                 op_latency(kernel.ops()[operand].kind)) {
        return false;
      }
    }
  }
  // Modulo resource check.
  for (const FuClass cls :
       {FuClass::kAlu, FuClass::kMul, FuClass::kDiv, FuClass::kMemPort}) {
    std::vector<int> usage(pipelined.ii, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (op_fu_class(kernel.ops()[i].kind) != cls) continue;
      for (int c = 0; c < occupancy_cycles(kernel.ops()[i].kind); ++c) {
        if (++usage[(s.start_cycle[i] + c) % pipelined.ii] > budget.of(cls)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace icsc::hls
