#include "hls/estimate.hpp"

#include <algorithm>

namespace icsc::hls {

FpgaDevice device_kintex7_410t() {
  return {"XC7K410T", 254200, 508400, 1540, 3180.0, 250.0};
}

FpgaDevice device_virtex7_485t() {
  return {"XC7VX485T", 303600, 607200, 2800, 4626.0, 230.0};
}

FpgaDevice device_alveo_u50() {
  return {"Alveo U50 (XCU50)", 872000, 1743000, 5952, 6039.0, 300.0};
}

FuCost fu_cost(FuClass cls) {
  switch (cls) {
    case FuClass::kAlu: return {64, 64, 0};        // 32b add/cmp/mux
    case FuClass::kMul: return {40, 120, 3};       // pipelined 32b DSP mul
    case FuClass::kDiv: return {550, 700, 0};      // iterative divider
    case FuClass::kMemPort: return {180, 220, 0};  // AXI master port share
    case FuClass::kNone: return {0, 0, 0};
  }
  return {0, 0, 0};
}

CostReport estimate_kernel(const Kernel& kernel, const Schedule& schedule,
                           const Binding& binding, const FpgaDevice& device) {
  CostReport report;
  for (const auto& [cls, count] : binding.instances) {
    const FuCost cost = fu_cost(cls);
    report.luts += cost.luts * count;
    report.ffs += cost.ffs * count;
    report.dsps += cost.dsps * count;
  }
  // Registers: 32-bit values; control FSM grows with schedule length.
  report.ffs += 32 * binding.max_live_values;
  report.luts += 2 * schedule.makespan + 200;  // FSM + glue

  // Local buffers: one BRAM-ish allocation per 16 memory ops touched
  // (spills / reorder buffers); kernels with no memory traffic need none.
  const std::size_t mem_ops = kernel.count_class(FuClass::kMemPort);
  report.bram_kb = 2.0 * static_cast<double>((mem_ops + 15) / 16);

  // Fmax degrades mildly with very wide ALU fan-in (routing pressure).
  const int alu_instances =
      binding.instances.count(FuClass::kAlu)
          ? binding.instances.at(FuClass::kAlu)
          : 0;
  report.fmax_mhz =
      device.base_fmax_mhz / (1.0 + 0.002 * static_cast<double>(alu_instances));
  report.cycles = schedule.makespan;
  report.latency_us = report.fmax_mhz > 0
                          ? static_cast<double>(report.cycles) /
                                report.fmax_mhz
                          : 0.0;

  const double lut_util = static_cast<double>(report.luts) / device.luts;
  const double ff_util = static_cast<double>(report.ffs) / device.ffs;
  const double dsp_util =
      device.dsps > 0 ? static_cast<double>(report.dsps) / device.dsps : 0.0;
  report.device_utilization = std::max({lut_util, ff_util, dsp_util});
  report.fits = report.device_utilization <= 1.0;
  return report;
}

}  // namespace icsc::hls
