// Functional-unit and register binding (Sec. III).
//
// After scheduling, operations sharing a resource class are bound to
// concrete FU instances (left-edge style interval assignment) and value
// lifetimes determine the register requirement. The binding feeds the area
// estimator: FU instances cost LUT/FF/DSP, live values cost registers.
#pragma once

#include <map>
#include <vector>

#include "hls/scheduling.hpp"

namespace icsc::hls {

struct Binding {
  /// fu_instance[i] = instance index within its class (-1 for kNone ops).
  std::vector<int> fu_instance;
  /// Instances actually used per class.
  std::map<FuClass, int> instances;
  /// Maximum simultaneously live values (register estimate).
  int max_live_values = 0;
};

/// Binds a scheduled kernel. Two ops may share an FU instance iff their
/// occupancy intervals do not overlap.
Binding bind_kernel(const Kernel& kernel, const Schedule& schedule);

/// Checks that no two ops bound to the same instance overlap in time.
bool binding_is_valid(const Kernel& kernel, const Schedule& schedule,
                      const Binding& binding);

}  // namespace icsc::hls
