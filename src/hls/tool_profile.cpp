#include "hls/tool_profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "hls/binding.hpp"

namespace icsc::hls {

ToolProfile bambu_profile() {
  ToolProfile tool;
  tool.name = "Bambu";
  tool.open_source = true;
  tool.inputs = {InputLanguage::kCpp, InputLanguage::kCompilerIr,
                 InputLanguage::kOpenMpCpp};
  tool.targets = {TargetKind::kAmdFpga, TargetKind::kIntelFpga,
                  TargetKind::kLatticeFpga, TargetKind::kAsicOpenRoad};
  tool.supports_sparta = true;
  tool.fmax_factor = 0.95;       // portable netlists leave timing margin
  tool.control_overhead = 1.00;
  return tool;
}

ToolProfile vitis_profile() {
  ToolProfile tool;
  tool.name = "Vitis HLS";
  tool.open_source = false;
  tool.inputs = {InputLanguage::kCpp};
  tool.targets = {TargetKind::kAmdFpga};
  tool.supports_sparta = false;
  tool.fmax_factor = 1.0;        // vendor back-end on vendor silicon
  tool.control_overhead = 1.08;  // heavier AXI/control scaffolding
  return tool;
}

bool tool_accepts(const ToolProfile& tool, InputLanguage input) {
  return std::find(tool.inputs.begin(), tool.inputs.end(), input) !=
         tool.inputs.end();
}

bool tool_targets(const ToolProfile& tool, TargetKind target) {
  return std::find(tool.targets.begin(), tool.targets.end(), target) !=
         tool.targets.end();
}

CostReport synthesize_with_tool(const Kernel& kernel,
                                const ResourceBudget& budget,
                                const ToolProfile& tool, InputLanguage input,
                                TargetKind target, const FpgaDevice& device) {
  if (!tool_accepts(tool, input)) {
    throw std::invalid_argument(tool.name + " does not accept this input");
  }
  if (!tool_targets(tool, target)) {
    throw std::invalid_argument(tool.name + " cannot target this device");
  }
  const Schedule schedule = schedule_list(kernel, budget);
  const Binding binding = bind_kernel(kernel, schedule);
  CostReport report = estimate_kernel(kernel, schedule, binding, device);
  report.fmax_mhz *= tool.fmax_factor;
  report.luts = static_cast<int>(report.luts * tool.control_overhead);
  report.latency_us = static_cast<double>(report.cycles) / report.fmax_mhz;
  return report;
}

std::vector<CapabilityRow> tool_capability_matrix() {
  return {
      {"license", "open source", "commercial"},
      {"C/C++ input", "yes", "yes"},
      {"compiler-IR input (AI frameworks [4])", "yes", "no"},
      {"OpenMP -> parallel accelerators (SPARTA [5])", "yes", "no"},
      {"non-AMD FPGA targets", "yes", "no"},
      {"ASIC via OpenROAD", "yes", "no"},
      {"visibility into the HLS flow", "full", "limited"},
  };
}

}  // namespace icsc::hls
