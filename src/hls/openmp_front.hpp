// Minimal OpenMP-directive front-end for the SPARTA flow (Sec. III).
//
// "SPARTA ... is triggered when the input design contains OpenMP directives
// to parallelize part of the application. In this specialized HLS flow,
// parallel regions are first translated into calls to OpenMP runtime
// primitives by the front-end Clang compiler, and then implemented through
// corresponding low-level hardware components in the synthesis backend."
//
// We model the front-end contract: a `#pragma omp parallel for` annotation
// (thread count, schedule kind, chunking) is lowered to the SPARTA hardware
// parameters (lane count, task partitioning) plus the runtime-primitive
// trace the backend would implement (fork/join, dynamic work stealing is
// approximated by round-robin interleaving).
#pragma once

#include <string>

#include "hls/sparta.hpp"

namespace icsc::hls {

enum class OmpSchedule { kStatic, kDynamic };

/// The subset of `#pragma omp parallel for` the front-end accepts.
struct OmpDirective {
  int num_threads = 4;
  OmpSchedule schedule = OmpSchedule::kDynamic;
};

/// Parses "parallel for num_threads(N) schedule(static|dynamic)".
/// Throws std::invalid_argument on malformed directives.
OmpDirective parse_omp_directive(const std::string& pragma_text);

/// Lowers the directive onto a SPARTA configuration: threads -> lanes,
/// schedule(static) -> blocked partition, schedule(dynamic) -> round-robin
/// (the hardware's cheap approximation of work stealing).
SpartaConfig lower_omp_to_sparta(const OmpDirective& directive,
                                 const SpartaConfig& base);

/// Runtime primitives the lowered region calls, in order (mirrors the
/// Clang -> libomp contract the SPARTA backend implements in hardware).
std::vector<std::string> lowered_runtime_calls(const OmpDirective& directive);

}  // namespace icsc::hls
