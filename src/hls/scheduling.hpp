// Operation scheduling for the mini HLS flow (Sec. III).
//
// The classic trio: ASAP (dependence-only lower bound), ALAP (against a
// deadline, yields mobility), and resource-constrained list scheduling with
// mobility-based priority -- the algorithm production HLS tools (including
// Bambu) build on. A pipelining helper computes the resource-constrained
// minimum initiation interval for loop kernels.
#pragma once

#include <map>
#include <vector>

#include "hls/ir.hpp"

namespace icsc::hls {

/// Available functional units per class (kNone is unconstrained).
struct ResourceBudget {
  int alus = 2;
  int muls = 1;
  int divs = 1;
  int mem_ports = 1;

  int of(FuClass cls) const;
};

struct Schedule {
  std::vector<int> start_cycle;  // per op
  int makespan = 0;              // total cycles (max finish)
};

/// Dependence-only as-soon-as-possible schedule.
Schedule schedule_asap(const Kernel& kernel);

/// As-late-as-possible against `deadline` (must be >= critical path).
Schedule schedule_alap(const Kernel& kernel, int deadline);

/// Per-op mobility = ALAP start - ASAP start, with ALAP at the critical
/// path deadline. Zero-mobility ops are on the critical path.
std::vector<int> mobility(const Kernel& kernel);

/// Resource-constrained list scheduling, priority = least mobility first.
/// Functional units are fully pipelined except the divider (II = latency)
/// and memory ports (one issue per cycle).
Schedule schedule_list(const Kernel& kernel, const ResourceBudget& budget);

/// Validates a schedule: operands finish before consumers start, and no
/// cycle oversubscribes a resource class.
bool schedule_is_valid(const Kernel& kernel, const Schedule& schedule,
                       const ResourceBudget& budget);

/// Resource-constrained minimum initiation interval of a pipelined loop
/// whose body is `kernel`: max over classes of ceil(uses / units).
int min_initiation_interval(const Kernel& kernel, const ResourceBudget& budget);

}  // namespace icsc::hls
