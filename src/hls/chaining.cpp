#include "hls/chaining.hpp"

#include <algorithm>
#include <map>

namespace icsc::hls {

double op_delay_ns(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kConst:
    case OpKind::kOutput:
      return 0.0;
    case OpKind::kAdd: return 1.2;     // carry chain
    case OpKind::kCmp: return 0.9;
    case OpKind::kSelect: return 0.6;  // LUT mux
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kLoad:
    case OpKind::kStore:
      return 0.0;  // registered / pipelined: full-cycle ops
  }
  return 0.0;
}

bool op_chainable(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kCmp:
    case OpKind::kSelect:
    case OpKind::kInput:
    case OpKind::kConst:
    case OpKind::kOutput:
      return true;
    default:
      return false;
  }
}

ChainedSchedule schedule_chained(const Kernel& kernel,
                                 const ResourceBudget& budget,
                                 double clock_ns) {
  const std::size_t n = kernel.size();
  ChainedSchedule s;
  s.clock_ns = clock_ns;
  s.start_cycle.assign(n, 0);
  s.offset_ns.assign(n, 0.0);

  // Per-cycle per-class start counters (sharing model).
  std::map<FuClass, std::map<int, int>> starts;

  for (std::size_t i = 0; i < n; ++i) {
    const Op& op = kernel.ops()[i];
    const OpKind kind = op.kind;
    // Earliest (cycle, intra-cycle offset) at which all operands are ready.
    int cycle = 0;
    double offset = 0.0;
    for (const std::size_t operand : op.operands) {
      const OpKind okind = kernel.ops()[operand].kind;
      int ready_cycle;
      double ready_offset;
      if (op_chainable(okind)) {
        // Combinational result: ready within the producer's cycle.
        ready_cycle = s.start_cycle[operand];
        ready_offset = s.offset_ns[operand] + op_delay_ns(okind);
      } else {
        // Registered result: ready at the start of the finish cycle.
        ready_cycle = s.start_cycle[operand] + op_latency(okind);
        ready_offset = 0.0;
      }
      if (ready_cycle > cycle ||
          (ready_cycle == cycle && ready_offset > offset)) {
        cycle = ready_cycle;
        offset = ready_offset;
      }
    }

    if (op_chainable(kind)) {
      // Fit the chain into the period, else spill to the next cycle.
      if (offset + op_delay_ns(kind) > clock_ns) {
        ++cycle;
        offset = 0.0;
      }
      // Resource constraint: at most budget.of(class) starts per cycle.
      const FuClass cls = op_fu_class(kind);
      if (cls != FuClass::kNone) {
        while (starts[cls][cycle] >= budget.of(cls)) {
          ++cycle;
          offset = 0.0;
        }
        ++starts[cls][cycle];
      }
      s.start_cycle[i] = cycle;
      s.offset_ns[i] = offset;
      s.makespan = std::max(s.makespan, cycle + 1);
    } else {
      // Full-cycle op: starts at a cycle boundary after its operands.
      if (offset > 0.0) ++cycle;
      const FuClass cls = op_fu_class(kind);
      if (cls != FuClass::kNone) {
        while (starts[cls][cycle] >= budget.of(cls)) ++cycle;
        ++starts[cls][cycle];
      }
      s.start_cycle[i] = cycle;
      s.offset_ns[i] = 0.0;
      s.makespan = std::max(s.makespan, cycle + op_latency(kind));
    }
  }
  return s;
}

bool chained_schedule_is_valid(const Kernel& kernel,
                               const ChainedSchedule& s,
                               const ResourceBudget& budget) {
  const std::size_t n = kernel.size();
  if (s.start_cycle.size() != n || s.offset_ns.size() != n) return false;
  std::map<FuClass, std::map<int, int>> starts;
  for (std::size_t i = 0; i < n; ++i) {
    const OpKind kind = kernel.ops()[i].kind;
    // Chain fits the period.
    if (op_chainable(kind) &&
        s.offset_ns[i] + op_delay_ns(kind) > s.clock_ns + 1e-9) {
      return false;
    }
    // Dependences: producer output precedes consumer start in time.
    for (const std::size_t operand : kernel.ops()[i].operands) {
      const OpKind okind = kernel.ops()[operand].kind;
      double producer_end;
      if (op_chainable(okind)) {
        producer_end = s.start_cycle[operand] * s.clock_ns +
                       s.offset_ns[operand] + op_delay_ns(okind);
      } else {
        producer_end =
            (s.start_cycle[operand] + op_latency(okind)) * s.clock_ns;
      }
      const double consumer_start =
          s.start_cycle[i] * s.clock_ns + s.offset_ns[i];
      if (consumer_start + 1e-9 < producer_end) return false;
    }
    const FuClass cls = op_fu_class(kind);
    if (cls != FuClass::kNone) {
      if (++starts[cls][s.start_cycle[i]] > budget.of(cls)) return false;
    }
  }
  return true;
}

}  // namespace icsc::hls
