#include "hls/scheduling.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace icsc::hls {

int ResourceBudget::of(FuClass cls) const {
  switch (cls) {
    case FuClass::kAlu: return alus;
    case FuClass::kMul: return muls;
    case FuClass::kDiv: return divs;
    case FuClass::kMemPort: return mem_ports;
    case FuClass::kNone: return std::numeric_limits<int>::max();
  }
  return 0;
}

Schedule schedule_asap(const Kernel& kernel) {
  Schedule s;
  s.start_cycle.resize(kernel.size(), 0);
  for (std::size_t i = 0; i < kernel.size(); ++i) {
    int start = 0;
    for (const std::size_t operand : kernel.ops()[i].operands) {
      start = std::max(start, s.start_cycle[operand] +
                                  op_latency(kernel.ops()[operand].kind));
    }
    s.start_cycle[i] = start;
    s.makespan = std::max(s.makespan, start + op_latency(kernel.ops()[i].kind));
  }
  return s;
}

Schedule schedule_alap(const Kernel& kernel, int deadline) {
  assert(deadline >= kernel.critical_path());
  Schedule s;
  const std::size_t n = kernel.size();
  // finish-by constraint propagated backwards.
  std::vector<int> latest_start(n, std::numeric_limits<int>::max());
  for (std::size_t i = n; i-- > 0;) {
    const int lat = op_latency(kernel.ops()[i].kind);
    if (latest_start[i] == std::numeric_limits<int>::max()) {
      latest_start[i] = deadline - lat;  // no consumers
    }
    for (const std::size_t operand : kernel.ops()[i].operands) {
      const int op_lat = op_latency(kernel.ops()[operand].kind);
      latest_start[operand] =
          std::min(latest_start[operand], latest_start[i] - op_lat);
    }
  }
  s.start_cycle = std::move(latest_start);
  for (std::size_t i = 0; i < n; ++i) {
    s.makespan = std::max(s.makespan,
                          s.start_cycle[i] + op_latency(kernel.ops()[i].kind));
  }
  return s;
}

std::vector<int> mobility(const Kernel& kernel) {
  const auto asap = schedule_asap(kernel);
  const auto alap = schedule_alap(kernel, kernel.critical_path());
  std::vector<int> out(kernel.size());
  for (std::size_t i = 0; i < kernel.size(); ++i) {
    out[i] = alap.start_cycle[i] - asap.start_cycle[i];
  }
  return out;
}

namespace {

/// Occupancy interval of an op on its FU: the divider blocks for its full
/// latency (not pipelined); everything else issues for one cycle.
int occupancy_cycles(OpKind kind) {
  return kind == OpKind::kDiv ? op_latency(OpKind::kDiv) : 1;
}

}  // namespace

Schedule schedule_list(const Kernel& kernel, const ResourceBudget& budget) {
  const std::size_t n = kernel.size();
  const auto mob = mobility(kernel);
  Schedule s;
  s.start_cycle.assign(n, -1);

  std::vector<int> remaining_deps(n, 0);
  std::vector<std::vector<std::size_t>> consumers(n);
  for (std::size_t i = 0; i < n; ++i) {
    remaining_deps[i] = static_cast<int>(kernel.ops()[i].operands.size());
    for (const std::size_t operand : kernel.ops()[i].operands) {
      consumers[operand].push_back(i);
    }
  }

  // busy_until[class][unit] = first free cycle of each FU instance.
  std::map<FuClass, std::vector<int>> busy;
  for (const FuClass cls :
       {FuClass::kAlu, FuClass::kMul, FuClass::kDiv, FuClass::kMemPort}) {
    const int count = budget.of(cls);
    busy[cls].assign(
        std::max(1, count == std::numeric_limits<int>::max() ? 1 : count), 0);
  }

  std::vector<int> earliest(n, 0);  // dependence-ready cycle
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining_deps[i] == 0) ready.push_back(i);
  }

  std::size_t scheduled = 0;
  while (scheduled < n) {
    assert(!ready.empty() && "kernel must be a DAG");
    // Least mobility first, then lowest id (deterministic).
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      if (mob[a] != mob[b]) return mob[a] < mob[b];
      return a < b;
    });
    const std::size_t op_id = ready.front();
    ready.erase(ready.begin());

    const FuClass cls = op_fu_class(kernel.ops()[op_id].kind);
    int start = earliest[op_id];
    if (cls != FuClass::kNone) {
      // Earliest FU instance that is free at or before `start`.
      auto& units = busy[cls];
      auto best = std::min_element(units.begin(), units.end());
      start = std::max(start, *best);
      *best = start + occupancy_cycles(kernel.ops()[op_id].kind);
    }
    s.start_cycle[op_id] = start;
    const int finish = start + op_latency(kernel.ops()[op_id].kind);
    s.makespan = std::max(s.makespan, finish);
    ++scheduled;
    for (const std::size_t consumer : consumers[op_id]) {
      earliest[consumer] = std::max(earliest[consumer], finish);
      if (--remaining_deps[consumer] == 0) ready.push_back(consumer);
    }
  }
  return s;
}

bool schedule_is_valid(const Kernel& kernel, const Schedule& schedule,
                       const ResourceBudget& budget) {
  const std::size_t n = kernel.size();
  if (schedule.start_cycle.size() != n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t operand : kernel.ops()[i].operands) {
      const int finish = schedule.start_cycle[operand] +
                         op_latency(kernel.ops()[operand].kind);
      if (schedule.start_cycle[i] < finish) return false;
    }
  }
  // Resource usage per cycle.
  std::map<FuClass, std::map<int, int>> usage;
  for (std::size_t i = 0; i < n; ++i) {
    const FuClass cls = op_fu_class(kernel.ops()[i].kind);
    if (cls == FuClass::kNone) continue;
    const int occupancy = occupancy_cycles(kernel.ops()[i].kind);
    for (int c = 0; c < occupancy; ++c) {
      if (++usage[cls][schedule.start_cycle[i] + c] > budget.of(cls)) {
        return false;
      }
    }
  }
  return true;
}

int min_initiation_interval(const Kernel& kernel, const ResourceBudget& budget) {
  int ii = 1;
  for (const FuClass cls :
       {FuClass::kAlu, FuClass::kMul, FuClass::kDiv, FuClass::kMemPort}) {
    std::size_t uses = 0;
    for (const auto& op : kernel.ops()) {
      if (op_fu_class(op.kind) == cls) {
        uses += static_cast<std::size_t>(occupancy_cycles(op.kind));
      }
    }
    if (uses == 0) continue;
    const int units = budget.of(cls);
    ii = std::max(
        ii, static_cast<int>((uses + units - 1) / static_cast<std::size_t>(units)));
  }
  return ii;
}

}  // namespace icsc::hls
