// ASIC implementation estimation via the OpenROAD path (Sec. III).
//
// "Bambu can target FPGAs from vendors other than AMD/Xilinx, and even
// ASICs through integration with the OpenROAD framework." The ASIC
// estimator converts the bound netlist into standard-cell area and power
// at a chosen technology node: per-FU cell areas and energies (scaled from
// 45nm characterisation by the classic node factors), clock-tree and
// register overheads, and a leakage model. It answers the question the
// FPGA estimator cannot: what the same accelerator costs as silicon.
#pragma once

#include <string>

#include "hls/binding.hpp"

namespace icsc::hls {

struct AsicNode {
  std::string name;
  double feature_nm = 45.0;
  /// Linear-dimension scale factor vs the 45nm reference library.
  double area_scale = 1.0;     // area multiplier (~ (nm/45)^2 with derates)
  double energy_scale = 1.0;   // dynamic energy multiplier
  double leakage_scale = 1.0;
  double max_clock_ghz = 1.0;  // achievable for a clean pipelined datapath
};

AsicNode node_45nm();
AsicNode node_28nm();
AsicNode node_12nm();  // GF12-class, the Sec. VII CU technology

struct AsicReport {
  double area_um2 = 0.0;
  double area_mm2 = 0.0;
  double clock_ghz = 0.0;
  double latency_us = 0.0;      // one kernel execution
  double dynamic_power_mw = 0.0;  // at full utilisation
  double leakage_mw = 0.0;
  double energy_per_run_nj = 0.0;
};

/// Estimates the ASIC implementation of a scheduled+bound kernel.
AsicReport estimate_kernel_asic(const Kernel& kernel, const Schedule& schedule,
                                const Binding& binding, const AsicNode& node);

/// Convenience: schedule, bind, and estimate under a budget.
AsicReport synthesize_asic(const Kernel& kernel, const ResourceBudget& budget,
                           const AsicNode& node);

}  // namespace icsc::hls
