// HLS tool profiles: Bambu vs Vitis HLS (Sec. III).
//
// "Two HLS tools have been evaluated: the commercial tool Vitis HLS from
// AMD/Xilinx and the open-source tool Bambu [3]. Both tools support a set
// of optimization directives and standard accelerator interfaces; however,
// Bambu has some additional features ...: compiler IRs generated from AI
// frameworks, FPGAs from vendors other than AMD/Xilinx, and even ASICs
// through integration with the OpenROAD framework", plus the SPARTA
// OpenMP flow. The profile captures those capability differences and each
// tool's quantitative tendencies (front-end latency mix, achievable Fmax
// margin) so the DSE can be run "as" either tool.
#pragma once

#include <string>
#include <vector>

#include "hls/dse.hpp"

namespace icsc::hls {

enum class InputLanguage { kCpp, kCompilerIr, kOpenMpCpp };
enum class TargetKind { kAmdFpga, kIntelFpga, kLatticeFpga, kAsicOpenRoad };

struct ToolProfile {
  std::string name;
  bool open_source = false;
  std::vector<InputLanguage> inputs;
  std::vector<TargetKind> targets;
  bool supports_sparta = false;  // multi-threaded accelerators (OpenMP)
  /// Fmax margin relative to the device base (vendor tools squeeze more
  /// out of their own silicon; portable flows keep margin).
  double fmax_factor = 1.0;
  /// Relative LUT overhead of generated control logic.
  double control_overhead = 1.0;
};

ToolProfile bambu_profile();
ToolProfile vitis_profile();

bool tool_accepts(const ToolProfile& tool, InputLanguage input);
bool tool_targets(const ToolProfile& tool, TargetKind target);

/// Synthesises (schedule + bind + estimate) `kernel` with the tool's
/// quantitative profile applied. Throws std::invalid_argument when the
/// tool cannot accept the input language or target the device kind.
CostReport synthesize_with_tool(const Kernel& kernel,
                                const ResourceBudget& budget,
                                const ToolProfile& tool, InputLanguage input,
                                TargetKind target, const FpgaDevice& device);

/// Capability-matrix rows for the comparison table in the bench.
struct CapabilityRow {
  std::string feature;
  std::string bambu;
  std::string vitis;
};
std::vector<CapabilityRow> tool_capability_matrix();

}  // namespace icsc::hls
