// Structural Verilog emission from a scheduled + bound kernel (Sec. III).
//
// The HLS back-end's job is to "translate the desired design configuration
// into an efficient FPGA accelerator". This emitter produces a synthesizable
// structural RTL skeleton from the binding: one functional-unit instance
// per bound resource, input/output operand multiplexers driven by the FSM
// state, pipeline registers at cycle boundaries, and a small counter FSM.
// It is intentionally a skeleton (operand widths fixed at 32 bits, memory
// ports exposed as request/response buses), but it is structurally
// faithful: every op executes on its bound FU in its scheduled cycle.
#pragma once

#include <string>

#include "hls/binding.hpp"

namespace icsc::hls {

struct VerilogOptions {
  std::string module_name = "accelerator";
  int data_width = 32;
};

/// Emits the RTL skeleton. The kernel must be scheduled and bound
/// consistently (schedule_is_valid / binding_is_valid).
std::string emit_verilog(const Kernel& kernel, const Schedule& schedule,
                         const Binding& binding,
                         const VerilogOptions& options = {});

/// Lightweight structural checks used by tests (and by callers who want a
/// sanity gate without a Verilog parser): balanced begin/end, one module,
/// every declared wire referenced at least twice (driver + reader).
struct VerilogLint {
  bool single_module = false;
  bool balanced_blocks = false;
  int fu_instances = 0;
  int register_stages = 0;
  bool ok() const { return single_module && balanced_blocks; }
};

VerilogLint lint_verilog(const std::string& rtl);

}  // namespace icsc::hls
