#include "hls/openmp_front.hpp"

#include <stdexcept>

namespace icsc::hls {

OmpDirective parse_omp_directive(const std::string& pragma_text) {
  if (pragma_text.find("parallel") == std::string::npos ||
      pragma_text.find("for") == std::string::npos) {
    throw std::invalid_argument("unsupported OpenMP directive: " + pragma_text);
  }
  OmpDirective directive;
  const auto nt = pragma_text.find("num_threads(");
  if (nt != std::string::npos) {
    const auto close = pragma_text.find(')', nt);
    if (close == std::string::npos) {
      throw std::invalid_argument("malformed num_threads clause");
    }
    const std::string value =
        pragma_text.substr(nt + 12, close - nt - 12);
    directive.num_threads = std::stoi(value);
    if (directive.num_threads <= 0) {
      throw std::invalid_argument("num_threads must be positive");
    }
  }
  if (pragma_text.find("schedule(static") != std::string::npos) {
    directive.schedule = OmpSchedule::kStatic;
  } else if (pragma_text.find("schedule(dynamic") != std::string::npos) {
    directive.schedule = OmpSchedule::kDynamic;
  }
  return directive;
}

SpartaConfig lower_omp_to_sparta(const OmpDirective& directive,
                                 const SpartaConfig& base) {
  SpartaConfig config = base;
  config.lanes = directive.num_threads;
  config.partition = directive.schedule == OmpSchedule::kStatic
                         ? TaskPartition::kBlocked
                         : TaskPartition::kRoundRobin;
  return config;
}

std::vector<std::string> lowered_runtime_calls(const OmpDirective& directive) {
  std::vector<std::string> calls;
  calls.push_back("__kmpc_fork_call(threads=" +
                  std::to_string(directive.num_threads) + ")");
  calls.push_back(directive.schedule == OmpSchedule::kStatic
                      ? "__kmpc_for_static_init"
                      : "__kmpc_dispatch_init");
  calls.push_back(directive.schedule == OmpSchedule::kStatic
                      ? "__kmpc_for_static_fini"
                      : "__kmpc_dispatch_next");
  calls.push_back("__kmpc_barrier");
  return calls;
}

}  // namespace icsc::hls
