// FPGA performance/resource estimation (Sec. III).
//
// The DSE toolchain explores "through performance and resource estimations"
// before committing to synthesis. We estimate LUT/FF/DSP/BRAM from the
// binding (per-FU area costs), and latency/Fmax from the schedule and a
// device catalog. Costs are representative of 16/32-bit integer datapaths
// on 7-series / UltraScale+ fabrics.
#pragma once

#include <string>

#include "hls/binding.hpp"

namespace icsc::hls {

struct FpgaDevice {
  std::string part;
  int luts = 0;
  int ffs = 0;
  int dsps = 0;
  double bram_kb = 0.0;
  double base_fmax_mhz = 0.0;  // achievable by a clean pipelined datapath
};

FpgaDevice device_kintex7_410t();
FpgaDevice device_virtex7_485t();
FpgaDevice device_alveo_u50();

/// Area/time cost of one accelerator instance.
struct CostReport {
  int luts = 0;
  int ffs = 0;
  int dsps = 0;
  double bram_kb = 0.0;
  double fmax_mhz = 0.0;
  int cycles = 0;
  double latency_us = 0.0;
  /// Fraction of the device consumed (max over LUT/FF/DSP).
  double device_utilization = 0.0;
  bool fits = true;
};

/// Estimates one kernel instance after scheduling and binding.
CostReport estimate_kernel(const Kernel& kernel, const Schedule& schedule,
                           const Binding& binding, const FpgaDevice& device);

/// Per-FU-class LUT/FF/DSP costs (public so tests can cross-check).
struct FuCost {
  int luts = 0;
  int ffs = 0;
  int dsps = 0;
};
FuCost fu_cost(FuClass cls);

}  // namespace icsc::hls
