// Loop pipelining via modulo scheduling (Sec. III).
//
// HLS loop pipelining overlaps loop iterations at a fixed initiation
// interval (II): every II cycles a new iteration enters the datapath, and
// a functional unit may be reused by different iterations as long as its
// reservation slots do not collide modulo II. We implement the classic
// iterative modulo scheduling: start at the resource-constrained minimum
// II, attempt a modulo-reservation-table schedule, and increase II until
// one fits. Our kernel bodies are DAGs (no loop-carried dependences), so
// the recurrence-constrained II is 1 and resources dominate.
#pragma once

#include "hls/scheduling.hpp"

namespace icsc::hls {

struct PipelinedSchedule {
  Schedule schedule;     // per-op start cycles of one iteration
  int ii = 0;            // achieved initiation interval
  int depth = 0;         // pipeline depth in stages: ceil(makespan / ii)

  /// Total cycles to run `iterations` through the pipeline.
  std::uint64_t total_cycles(std::uint64_t iterations) const {
    if (iterations == 0) return 0;
    return static_cast<std::uint64_t>(schedule.makespan) +
           (iterations - 1) * static_cast<std::uint64_t>(ii);
  }
};

/// Modulo-schedules `kernel` under `budget`. Always succeeds (II grows
/// until the schedule fits; II = makespan is a trivial upper bound).
PipelinedSchedule schedule_pipelined(const Kernel& kernel,
                                     const ResourceBudget& budget,
                                     int max_ii = 1 << 16);

/// Validates modulo resource usage: for every FU class, the number of
/// reservations in each cycle slot (start % ii, spanning occupancy) must
/// not exceed the budget; dependences must hold within the iteration.
bool pipelined_schedule_is_valid(const Kernel& kernel,
                                 const PipelinedSchedule& pipelined,
                                 const ResourceBudget& budget);

}  // namespace icsc::hls
