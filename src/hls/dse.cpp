#include "hls/dse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "hls/pipelining.hpp"

namespace icsc::hls {

namespace {

/// A design point with a NaN/Inf latency or area estimate is infeasible:
/// admitting it would poison the Pareto front and the area-delay scores.
bool point_finite(const DesignPoint& point) {
  return std::isfinite(point.total_latency_us) &&
         std::isfinite(point.area_score);
}

double area_of(const CostReport& cost) {
  // LUT-equivalent area: DSPs and BRAM folded in at typical exchange rates.
  return static_cast<double>(cost.luts) + 100.0 * cost.dsps +
         50.0 * cost.bram_kb + 0.25 * cost.ffs;
}

std::vector<core::ParetoPoint> to_pareto(const std::vector<DesignPoint>& pts) {
  std::vector<core::ParetoPoint> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out.push_back({i, {pts[i].total_latency_us, pts[i].area_score}});
  }
  return core::pareto_front(out);
}

/// One candidate configuration drawn from the space.
struct Candidate {
  int unroll = 1;
  ResourceBudget budget;
};

/// Evaluates `candidates` across the pool (order-preserving), then folds
/// the points into `result` in candidate order: evaluations counts every
/// attempt, feasible/evaluated keep only points that fit the device.
void evaluate_batch(const Kernel& body, const DseConfig& config,
                    const std::vector<Candidate>& candidates,
                    DseResult& result) {
  auto points =
      core::parallel_map(candidates.size(), 1, [&](std::size_t i) {
        return evaluate_design(body, candidates[i].unroll,
                               candidates[i].budget, config);
      });
  result.evaluations += points.size();
  for (auto& point : points) {
    if (!point.cost.fits || !point_finite(point)) continue;
    ++result.feasible;
    result.evaluated.push_back(std::move(point));
  }
}

}  // namespace

DesignPoint evaluate_design(const Kernel& body, int unroll,
                            const ResourceBudget& budget,
                            const DseConfig& config) {
  DesignPoint point;
  point.unroll = unroll;
  point.budget = budget;
  const Kernel unrolled = unroll > 1 ? unroll_kernel(body, unroll) : body;
  const Schedule schedule = schedule_list(unrolled, budget);
  const Binding binding = bind_kernel(unrolled, schedule);
  point.cost = estimate_kernel(unrolled, schedule, binding, config.device);
  const int bodies = (config.iterations + unroll - 1) / unroll;
  if (config.pipelined) {
    // Loop pipelining: iterations enter every II cycles instead of
    // back-to-back sequential bodies.
    const auto pipelined = schedule_pipelined(unrolled, budget);
    point.total_latency_us =
        static_cast<double>(pipelined.total_cycles(
            static_cast<std::uint64_t>(bodies))) /
        point.cost.fmax_mhz;
  } else {
    point.total_latency_us =
        static_cast<double>(bodies) * static_cast<double>(point.cost.cycles) /
        point.cost.fmax_mhz;  // us = cycles / MHz
  }
  point.area_score = area_of(point.cost);
  return point;
}

DseResult dse_exhaustive(const Kernel& body, const DseConfig& config) {
  DseResult result;
  // Materialise the full grid in canonical (unroll, alu, mul, port)
  // row-major order, then fan the independent evaluations out.
  std::vector<Candidate> grid;
  grid.reserve(config.space.unroll_factors.size() *
               config.space.alu_counts.size() *
               config.space.mul_counts.size() *
               config.space.mem_port_counts.size());
  for (const int unroll : config.space.unroll_factors) {
    for (const int alus : config.space.alu_counts) {
      for (const int muls : config.space.mul_counts) {
        for (const int ports : config.space.mem_port_counts) {
          Candidate candidate;
          candidate.unroll = unroll;
          candidate.budget.alus = alus;
          candidate.budget.muls = muls;
          candidate.budget.mem_ports = ports;
          grid.push_back(candidate);
        }
      }
    }
  }
  evaluate_batch(body, config, grid, result);
  result.front = to_pareto(result.evaluated);
  return result;
}

DseResult dse_random(const Kernel& body, const DseConfig& config,
                     std::size_t budget, std::uint64_t seed) {
  core::Rng rng(seed);
  DseResult result;
  const auto& space = config.space;
  // Pre-draw every trial's coordinates serially, in the same per-trial
  // draw order (unroll, alus, muls, ports) as a serial loop would, so the
  // sampled sequence -- and therefore the result -- is bit-identical for a
  // given seed regardless of thread count.
  std::vector<Candidate> trials(budget);
  for (auto& trial : trials) {
    trial.unroll = space.unroll_factors[rng.below(space.unroll_factors.size())];
    trial.budget.alus = space.alu_counts[rng.below(space.alu_counts.size())];
    trial.budget.muls = space.mul_counts[rng.below(space.mul_counts.size())];
    trial.budget.mem_ports =
        space.mem_port_counts[rng.below(space.mem_port_counts.size())];
  }
  evaluate_batch(body, config, trials, result);
  result.front = to_pareto(result.evaluated);
  return result;
}

DseResult dse_hill_climb(const Kernel& body, const DseConfig& config,
                         int restarts, std::uint64_t seed) {
  core::Rng rng(seed);
  const auto& space = config.space;
  DseResult result;

  auto score = [](const DesignPoint& p) {
    const double s = p.total_latency_us * p.area_score;  // area-delay product
    // Non-finite estimates rank behind every real design.
    return std::isfinite(s) ? s : std::numeric_limits<double>::infinity();
  };
  // Coordinates: indices into the four space axes.
  struct Coord {
    std::size_t u, a, m, p;
  };
  auto to_candidate = [&](const Coord& c) {
    Candidate candidate;
    candidate.unroll = space.unroll_factors[c.u];
    candidate.budget.alus = space.alu_counts[c.a];
    candidate.budget.muls = space.mul_counts[c.m];
    candidate.budget.mem_ports = space.mem_port_counts[c.p];
    return candidate;
  };
  auto record = [&](const DesignPoint& point) {
    ++result.evaluations;
    if (point.cost.fits && point_finite(point)) {
      ++result.feasible;
      result.evaluated.push_back(point);
    }
  };

  for (int restart = 0; restart < restarts; ++restart) {
    Coord current{rng.below(space.unroll_factors.size()),
                  rng.below(space.alu_counts.size()),
                  rng.below(space.mul_counts.size()),
                  rng.below(space.mem_port_counts.size())};
    const Candidate start = to_candidate(current);
    DesignPoint best =
        evaluate_design(body, start.unroll, start.budget, config);
    record(best);
    bool improved = true;
    while (improved) {
      improved = false;
      // Explore all +-1 neighbours along each axis.
      std::vector<Coord> neighbours;
      auto push = [&](Coord c) { neighbours.push_back(c); };
      if (current.u + 1 < space.unroll_factors.size()) push({current.u + 1, current.a, current.m, current.p});
      if (current.u > 0) push({current.u - 1, current.a, current.m, current.p});
      if (current.a + 1 < space.alu_counts.size()) push({current.u, current.a + 1, current.m, current.p});
      if (current.a > 0) push({current.u, current.a - 1, current.m, current.p});
      if (current.m + 1 < space.mul_counts.size()) push({current.u, current.a, current.m + 1, current.p});
      if (current.m > 0) push({current.u, current.a, current.m - 1, current.p});
      if (current.p + 1 < space.mem_port_counts.size()) push({current.u, current.a, current.m, current.p + 1});
      if (current.p > 0) push({current.u, current.a, current.m, current.p - 1});
      // The serial algorithm evaluates every neighbour unconditionally, so
      // the batch can run in parallel; selecting the winner in neighbour
      // order below reproduces the serial scan exactly.
      const auto points =
          core::parallel_map(neighbours.size(), 1, [&](std::size_t i) {
            const Candidate c = to_candidate(neighbours[i]);
            return evaluate_design(body, c.unroll, c.budget, config);
          });
      for (std::size_t i = 0; i < points.size(); ++i) {
        record(points[i]);
        if (points[i].cost.fits && point_finite(points[i]) &&
            score(points[i]) < score(best)) {
          best = points[i];
          current = neighbours[i];
          improved = true;
        }
      }
    }
  }
  result.front = to_pareto(result.evaluated);
  return result;
}

double dse_hypervolume(const DseResult& result, double ref_latency_us,
                       double ref_area) {
  return core::hypervolume_2d(result.front, ref_latency_us, ref_area);
}

}  // namespace icsc::hls
