#include "hls/dse.hpp"

#include <algorithm>

#include "core/rng.hpp"
#include "hls/pipelining.hpp"

namespace icsc::hls {

namespace {

double area_of(const CostReport& cost) {
  // LUT-equivalent area: DSPs and BRAM folded in at typical exchange rates.
  return static_cast<double>(cost.luts) + 100.0 * cost.dsps +
         50.0 * cost.bram_kb + 0.25 * cost.ffs;
}

std::vector<core::ParetoPoint> to_pareto(const std::vector<DesignPoint>& pts) {
  std::vector<core::ParetoPoint> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out.push_back({i, {pts[i].total_latency_us, pts[i].area_score}});
  }
  return core::pareto_front(out);
}

}  // namespace

DesignPoint evaluate_design(const Kernel& body, int unroll,
                            const ResourceBudget& budget,
                            const DseConfig& config) {
  DesignPoint point;
  point.unroll = unroll;
  point.budget = budget;
  const Kernel unrolled = unroll > 1 ? unroll_kernel(body, unroll) : body;
  const Schedule schedule = schedule_list(unrolled, budget);
  const Binding binding = bind_kernel(unrolled, schedule);
  point.cost = estimate_kernel(unrolled, schedule, binding, config.device);
  const int bodies = (config.iterations + unroll - 1) / unroll;
  if (config.pipelined) {
    // Loop pipelining: iterations enter every II cycles instead of
    // back-to-back sequential bodies.
    const auto pipelined = schedule_pipelined(unrolled, budget);
    point.total_latency_us =
        static_cast<double>(pipelined.total_cycles(
            static_cast<std::uint64_t>(bodies))) /
        point.cost.fmax_mhz;
  } else {
    point.total_latency_us =
        static_cast<double>(bodies) * static_cast<double>(point.cost.cycles) /
        point.cost.fmax_mhz;  // us = cycles / MHz
  }
  point.area_score = area_of(point.cost);
  return point;
}

DseResult dse_exhaustive(const Kernel& body, const DseConfig& config) {
  DseResult result;
  for (const int unroll : config.space.unroll_factors) {
    for (const int alus : config.space.alu_counts) {
      for (const int muls : config.space.mul_counts) {
        for (const int ports : config.space.mem_port_counts) {
          ResourceBudget budget;
          budget.alus = alus;
          budget.muls = muls;
          budget.mem_ports = ports;
          auto point = evaluate_design(body, unroll, budget, config);
          if (!point.cost.fits) continue;
          result.evaluated.push_back(std::move(point));
          ++result.evaluations;
        }
      }
    }
  }
  result.front = to_pareto(result.evaluated);
  return result;
}

DseResult dse_random(const Kernel& body, const DseConfig& config,
                     std::size_t budget, std::uint64_t seed) {
  core::Rng rng(seed);
  DseResult result;
  const auto& space = config.space;
  for (std::size_t trial = 0; trial < budget; ++trial) {
    ResourceBudget rb;
    const int unroll =
        space.unroll_factors[rng.below(space.unroll_factors.size())];
    rb.alus = space.alu_counts[rng.below(space.alu_counts.size())];
    rb.muls = space.mul_counts[rng.below(space.mul_counts.size())];
    rb.mem_ports =
        space.mem_port_counts[rng.below(space.mem_port_counts.size())];
    auto point = evaluate_design(body, unroll, rb, config);
    ++result.evaluations;
    if (point.cost.fits) result.evaluated.push_back(std::move(point));
  }
  result.front = to_pareto(result.evaluated);
  return result;
}

DseResult dse_hill_climb(const Kernel& body, const DseConfig& config,
                         int restarts, std::uint64_t seed) {
  core::Rng rng(seed);
  const auto& space = config.space;
  DseResult result;

  auto score = [](const DesignPoint& p) {
    return p.total_latency_us * p.area_score;  // area-delay product
  };
  // Coordinates: indices into the four space axes.
  struct Coord {
    std::size_t u, a, m, p;
  };
  auto eval_coord = [&](const Coord& c) {
    ResourceBudget rb;
    rb.alus = space.alu_counts[c.a];
    rb.muls = space.mul_counts[c.m];
    rb.mem_ports = space.mem_port_counts[c.p];
    auto point =
        evaluate_design(body, space.unroll_factors[c.u], rb, config);
    ++result.evaluations;
    if (point.cost.fits) result.evaluated.push_back(point);
    return point;
  };

  for (int restart = 0; restart < restarts; ++restart) {
    Coord current{rng.below(space.unroll_factors.size()),
                  rng.below(space.alu_counts.size()),
                  rng.below(space.mul_counts.size()),
                  rng.below(space.mem_port_counts.size())};
    DesignPoint best = eval_coord(current);
    bool improved = true;
    while (improved) {
      improved = false;
      // Explore all +-1 neighbours along each axis.
      std::vector<Coord> neighbours;
      auto push = [&](Coord c) { neighbours.push_back(c); };
      if (current.u + 1 < space.unroll_factors.size()) push({current.u + 1, current.a, current.m, current.p});
      if (current.u > 0) push({current.u - 1, current.a, current.m, current.p});
      if (current.a + 1 < space.alu_counts.size()) push({current.u, current.a + 1, current.m, current.p});
      if (current.a > 0) push({current.u, current.a - 1, current.m, current.p});
      if (current.m + 1 < space.mul_counts.size()) push({current.u, current.a, current.m + 1, current.p});
      if (current.m > 0) push({current.u, current.a, current.m - 1, current.p});
      if (current.p + 1 < space.mem_port_counts.size()) push({current.u, current.a, current.m, current.p + 1});
      if (current.p > 0) push({current.u, current.a, current.m, current.p - 1});
      for (const auto& n : neighbours) {
        const DesignPoint candidate = eval_coord(n);
        if (candidate.cost.fits && score(candidate) < score(best)) {
          best = candidate;
          current = n;
          improved = true;
        }
      }
    }
  }
  result.front = to_pareto(result.evaluated);
  return result;
}

double dse_hypervolume(const DseResult& result, double ref_latency_us,
                       double ref_area) {
  return core::hypervolume_2d(result.front, ref_latency_us, ref_area);
}

}  // namespace icsc::hls
