#include "hls/dse.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "core/checkpoint.hpp"
#include "core/fault.hpp"
#include "core/parallel.hpp"
#include "core/result_store.hpp"
#include "core/rng.hpp"
#include "core/trace.hpp"
#include "hls/pipelining.hpp"

namespace icsc::hls {

namespace {

/// A design point with a NaN/Inf latency or area estimate is infeasible:
/// admitting it would poison the Pareto front and the area-delay scores.
bool point_finite(const DesignPoint& point) {
  return std::isfinite(point.total_latency_us) &&
         std::isfinite(point.area_score);
}

double area_of(const CostReport& cost) {
  // LUT-equivalent area: DSPs and BRAM folded in at typical exchange rates.
  return static_cast<double>(cost.luts) + 100.0 * cost.dsps +
         50.0 * cost.bram_kb + 0.25 * cost.ffs;
}

std::vector<core::ParetoPoint> to_pareto(const std::vector<DesignPoint>& pts) {
  std::vector<core::ParetoPoint> out;
  out.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out.push_back({i, {pts[i].total_latency_us, pts[i].area_score}});
  }
  return core::pareto_front(out);
}

/// One candidate configuration drawn from the space.
using Candidate = GridPoint;

// ---------------------------------------------------------------------------
// Shared evaluation pipeline. The budget-dependent part of a design-point
// evaluation -- list scheduling, binding, estimation, latency roll-up -- is
// a pure function of (unrolled kernel, unroll factor, budget, config), so
// the strategies memoize it; evaluate_design() stays the uncached
// reference path.

/// The (unroll, budget)-keyed slice of a DesignPoint: everything except
/// the candidate's own coordinates.
struct EvalCore {
  CostReport cost;
  double total_latency_us = 0.0;
  double area_score = 0.0;
};

EvalCore evaluate_core(const Kernel& unrolled, int unroll,
                       const ResourceBudget& budget, const DseConfig& config) {
  ICSC_TRACE_COUNT("dse/schedule_calls", 1);
  EvalCore out;
  const Schedule schedule = schedule_list(unrolled, budget);
  const Binding binding = bind_kernel(unrolled, schedule);
  out.cost = estimate_kernel(unrolled, schedule, binding, config.device);
  out.area_score = area_of(out.cost);
  if (!(out.cost.fmax_mhz > 0.0) || !std::isfinite(out.cost.fmax_mhz)) {
    // Degenerate device parameters: dividing by this Fmax would yield a
    // silent Inf/NaN latency. Mark the point infeasible explicitly.
    out.cost.fits = false;
    out.total_latency_us = std::numeric_limits<double>::infinity();
    return out;
  }
  const int bodies = (config.iterations + unroll - 1) / unroll;
  if (config.pipelined) {
    // Loop pipelining: iterations enter every II cycles instead of
    // back-to-back sequential bodies.
    const auto pipelined = schedule_pipelined(unrolled, budget);
    out.total_latency_us =
        static_cast<double>(pipelined.total_cycles(
            static_cast<std::uint64_t>(bodies))) /
        out.cost.fmax_mhz;
  } else {
    out.total_latency_us =
        static_cast<double>(bodies) * static_cast<double>(out.cost.cycles) /
        out.cost.fmax_mhz;  // us = cycles / MHz
  }
  return out;
}

DesignPoint assemble_point(const Candidate& candidate, const EvalCore& core) {
  DesignPoint point;
  point.unroll = candidate.unroll;
  point.budget = candidate.budget;
  point.cost = core.cost;
  point.total_latency_us = core.total_latency_us;
  point.area_score = core.area_score;
  return point;
}

/// Per-run evaluation memo (DseConfig::memoize). Two levels, mirroring the
/// pipeline's data dependences:
///   unroll factor              -> unrolled Kernel (+ per-class occupancy)
///   (unroll, effective budget) -> Schedule/Binding/CostReport/latency
/// The effective budget clamps each class to the unrolled kernel's total
/// occupancy cycles in that class. Clamping is an identity on the result:
/// neither the list scheduler nor the modulo scheduler counts the op being
/// placed against the budget, so per-cycle usage never exceeds
/// occupancy - 1 and a budget at (or beyond) the occupancy total can never
/// bind; min_initiation_interval likewise yields ceil(uses/units) = 1 for
/// any units >= uses. Slots are lazily initialised behind std::once_flag
/// so pool workers share one computation race-free; dse_exhaustive
/// prewarms the unroll axis eagerly before fanning out.
class EvalCache {
 public:
  EvalCache(const Kernel& body, const DseConfig& config)
      : body_(body), config_(config) {
    const auto& factors = config.space.unroll_factors;
    unroll_slots_ = std::vector<UnrollSlot>(factors.size());
    for (std::size_t i = 0; i < factors.size(); ++i) {
      // First occurrence wins on duplicate factors; both map to the same
      // unrolled kernel either way.
      unroll_index_.emplace(factors[i], i);
    }
  }

  /// Forces every unroll slot up front (one parallel pass), so the
  /// exhaustive sweep's workers never serialize on the unroll axis.
  void prewarm_unrolls() {
    core::parallel_map(unroll_slots_.size(), 1, [this](std::size_t i) {
      force_unroll(i);
      return 0;
    });
  }

  DesignPoint evaluate(const Candidate& candidate) {
    ICSC_TRACE_SPAN("dse/evaluate");
    const auto it = unroll_index_.find(candidate.unroll);
    if (it == unroll_index_.end()) {
      // Not a coordinate of the space (possible only for direct callers):
      // fall through to the uncached path.
      return evaluate_design(body_, candidate.unroll, candidate.budget,
                             config_);
    }
    UnrollSlot& slot = force_unroll(it->second);
    const ResourceBudget effective = clamp_budget(candidate.budget, slot);
    DesignSlot& design = design_slot(it->second, effective);
    bool computed = false;
    std::call_once(design.once, [&] {
      design.core = evaluate_core(slot.unrolled(body_, candidate.unroll),
                                  candidate.unroll, effective, config_);
      computed = true;
    });
    if (computed) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return assemble_point(candidate, design.core);
  }

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct UnrollSlot {
    std::once_flag once;
    Kernel kernel{""};
    bool use_body = false;  // unroll <= 1: the body itself, never copied
    /// Total occupancy cycles per class {alu, mul, div, mem_port}: the
    /// clamp ceiling beyond which a budget cannot influence the schedule.
    std::array<int, 4> occupancy{1, 1, 1, 1};

    const Kernel& unrolled(const Kernel& body, int) const {
      return use_body ? body : kernel;
    }
  };

  struct DesignSlot {
    std::once_flag once;
    EvalCore core;
  };

  /// (unroll slot, clamped alus/muls/divs/ports).
  using Key = std::array<int, 5>;

  UnrollSlot& force_unroll(std::size_t index) {
    UnrollSlot& slot = unroll_slots_[index];
    std::call_once(slot.once, [&] {
      const int factor = config_.space.unroll_factors[index];
      if (factor > 1) {
        ICSC_TRACE_COUNT("dse/unroll_calls", 1);
        slot.kernel = unroll_kernel(body_, factor);
      } else {
        slot.use_body = true;
      }
      const Kernel& unrolled = slot.unrolled(body_, factor);
      slot.occupancy = occupancy_totals(unrolled);
    });
    return slot;
  }

  static std::array<int, 4> occupancy_totals(const Kernel& kernel) {
    std::array<int, 4> totals{0, 0, 0, 0};
    for (const Op& op : kernel.ops()) {
      const int cycles =
          op.kind == OpKind::kDiv ? op_latency(OpKind::kDiv) : 1;
      switch (op_fu_class(op.kind)) {
        case FuClass::kAlu: totals[0] += cycles; break;
        case FuClass::kMul: totals[1] += cycles; break;
        case FuClass::kDiv: totals[2] += cycles; break;
        case FuClass::kMemPort: totals[3] += cycles; break;
        case FuClass::kNone: break;
      }
    }
    for (int& t : totals) t = std::max(1, t);
    return totals;
  }

  static ResourceBudget clamp_budget(const ResourceBudget& budget,
                                     const UnrollSlot& slot) {
    ResourceBudget eff = budget;
    eff.alus = std::clamp(budget.alus, 1, slot.occupancy[0]);
    eff.muls = std::clamp(budget.muls, 1, slot.occupancy[1]);
    eff.divs = std::clamp(budget.divs, 1, slot.occupancy[2]);
    eff.mem_ports = std::clamp(budget.mem_ports, 1, slot.occupancy[3]);
    return eff;
  }

  DesignSlot& design_slot(std::size_t unroll_index,
                          const ResourceBudget& effective) {
    const Key key{static_cast<int>(unroll_index), effective.alus,
                  effective.muls, effective.divs, effective.mem_ports};
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = designs_[key];
    if (!slot) slot = std::make_unique<DesignSlot>();
    return *slot;
  }

  const Kernel& body_;
  const DseConfig& config_;
  std::map<int, std::size_t> unroll_index_;
  std::vector<UnrollSlot> unroll_slots_;
  std::mutex mutex_;
  std::map<Key, std::unique_ptr<DesignSlot>> designs_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

/// Books a finished run's cache accounting into the result and the
/// dse/cache_* trace counters.
void fold_cache_stats(DseResult& result, const EvalCache* cache) {
  if (cache == nullptr) return;
  result.cache_hits = cache->hits();
  result.cache_misses = cache->misses();
  ICSC_TRACE_COUNT("dse/cache_hits", result.cache_hits);
  ICSC_TRACE_COUNT("dse/cache_misses", result.cache_misses);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume plumbing (core/checkpoint.hpp). A snapshot pins the
// exact run it belongs to -- strategy, seed, kernel, device, space -- via a
// fingerprint, stores the folded partial result plus the number of
// completed units, and is rewritten atomically after every block, so a
// killed process resumes after the last durable block.

constexpr std::uint32_t kDseSnapshotKind = 0x31455344;  // "DSE1"
constexpr std::uint32_t kDseSnapshotVersion = 1;

enum DseStrategy : std::uint64_t {
  kStrategyExhaustive = 1,
  kStrategyRandom = 2,
  kStrategyHillClimb = 3,
};

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return core::fault_hash(h, v);
}

/// Fingerprint of everything that determines the evaluation sequence.
std::uint64_t run_fingerprint(const Kernel& body, const DseConfig& config,
                              DseStrategy strategy, std::uint64_t arg0,
                              std::uint64_t arg1) {
  std::uint64_t h = fold(0x1C5C'D5E1ULL, strategy);
  h = fold(h, static_cast<std::uint64_t>(config.iterations));
  h = fold(h, config.pipelined ? 1 : 0);
  for (const char c : config.device.part) {
    h = fold(h, static_cast<unsigned char>(c));
  }
  h = fold(h, static_cast<std::uint64_t>(config.device.luts));
  h = fold(h, static_cast<std::uint64_t>(config.device.dsps));
  for (const auto* axis :
       {&config.space.unroll_factors, &config.space.alu_counts,
        &config.space.mul_counts, &config.space.mem_port_counts}) {
    h = fold(h, axis->size());
    for (const int v : *axis) h = fold(h, static_cast<std::uint64_t>(v));
  }
  h = fold(h, body.size());
  for (const Op& op : body.ops()) {
    h = fold(h, static_cast<std::uint64_t>(op.kind));
    for (const std::size_t operand : op.operands) h = fold(h, operand);
  }
  h = fold(h, arg0);
  return fold(h, arg1);
}

void put_point(core::SnapshotWriter& w, const DesignPoint& p) {
  w.put_i32(p.unroll);
  w.put_i32(p.budget.alus);
  w.put_i32(p.budget.muls);
  w.put_i32(p.budget.divs);
  w.put_i32(p.budget.mem_ports);
  w.put_i32(p.cost.luts);
  w.put_i32(p.cost.ffs);
  w.put_i32(p.cost.dsps);
  w.put_f64(p.cost.bram_kb);
  w.put_f64(p.cost.fmax_mhz);
  w.put_i32(p.cost.cycles);
  w.put_f64(p.cost.latency_us);
  w.put_f64(p.cost.device_utilization);
  w.put_bool(p.cost.fits);
  w.put_f64(p.total_latency_us);
  w.put_f64(p.area_score);
}

DesignPoint get_point(core::SnapshotReader& r) {
  DesignPoint p;
  p.unroll = r.get_i32();
  p.budget.alus = r.get_i32();
  p.budget.muls = r.get_i32();
  p.budget.divs = r.get_i32();
  p.budget.mem_ports = r.get_i32();
  p.cost.luts = r.get_i32();
  p.cost.ffs = r.get_i32();
  p.cost.dsps = r.get_i32();
  p.cost.bram_kb = r.get_f64();
  p.cost.fmax_mhz = r.get_f64();
  p.cost.cycles = r.get_i32();
  p.cost.latency_us = r.get_f64();
  p.cost.device_utilization = r.get_f64();
  p.cost.fits = r.get_bool();
  p.total_latency_us = r.get_f64();
  p.area_score = r.get_f64();
  return p;
}

void save_dse_snapshot(const std::string& path, std::uint64_t fingerprint,
                       std::size_t units_done, const DseResult& result,
                       bool completed) {
  core::SnapshotWriter w;
  w.put_u64(fingerprint);
  w.put_bool(completed);
  w.put_u64(units_done);
  w.put_u64(result.evaluations);
  w.put_u64(result.feasible);
  w.put_u64(result.evaluated.size());
  for (const auto& point : result.evaluated) put_point(w, point);
  w.save(path, kDseSnapshotKind, kDseSnapshotVersion);
}

/// Restores a snapshot into `result`; returns the number of completed
/// units, or 0 with `result` untouched when no snapshot exists. Sets
/// `*completed` to the stored completion flag.
std::size_t load_dse_snapshot(const std::string& path,
                              std::uint64_t fingerprint, DseResult& result,
                              bool* completed) {
  auto snapshot = core::SnapshotReader::try_load(path, kDseSnapshotKind,
                                                 kDseSnapshotVersion);
  if (!snapshot) return 0;
  if (snapshot->get_u64() != fingerprint) {
    throw core::Error("hls::dse", "checkpoint belongs to a different run",
                      path);
  }
  *completed = snapshot->get_bool();
  const std::uint64_t units_done = snapshot->get_u64();
  result.evaluations = static_cast<std::size_t>(snapshot->get_u64());
  result.feasible = static_cast<std::size_t>(snapshot->get_u64());
  const std::uint64_t points = snapshot->get_u64();
  result.evaluated.clear();
  result.evaluated.reserve(static_cast<std::size_t>(points));
  for (std::uint64_t i = 0; i < points; ++i) {
    result.evaluated.push_back(get_point(*snapshot));
  }
  result.resumed_units = static_cast<std::size_t>(units_done);
  return static_cast<std::size_t>(units_done);
}

// ---------------------------------------------------------------------------
// Cross-run result store tier (core/result_store.hpp). A *completed* run
// is stored under its fingerprint; a later identical run -- any process,
// any service instance on the same scratch volume -- is served from disk
// without touching the unroll/schedule/bind/estimate pipeline. The
// payload reuses the snapshot field codec, so stored results round-trip
// every f64 bit-exactly.

constexpr std::uint32_t kDseStoreSchemaVersion = 1;

std::vector<std::uint8_t> encode_store_payload(std::size_t units_done,
                                               const DseResult& result) {
  core::SnapshotWriter w;
  w.put_u64(units_done);
  w.put_u64(result.evaluations);
  w.put_u64(result.feasible);
  w.put_u64(result.evaluated.size());
  for (const auto& point : result.evaluated) put_point(w, point);
  return w.payload();
}

/// Serves a completed run from the store, if present. On a hit, `result`
/// carries the stored payload bit-identically; the Pareto front is
/// recomputed from the identical points, so it matches too.
bool store_lookup(const DseConfig& config, std::uint64_t fingerprint,
                  DseResult& result) {
  if (!config.result_store) return false;
  ICSC_TRACE_SPAN("dse/store_lookup");
  auto payload =
      config.result_store->lookup(fingerprint, kDseStoreSchemaVersion);
  if (!payload) return false;
  try {
    core::SnapshotReader r(std::move(*payload), kDseStoreSchemaVersion);
    DseResult served;
    served.resumed_units = static_cast<std::size_t>(r.get_u64());
    served.evaluations = static_cast<std::size_t>(r.get_u64());
    served.feasible = static_cast<std::size_t>(r.get_u64());
    const std::uint64_t points = r.get_u64();
    served.evaluated.reserve(static_cast<std::size_t>(points));
    for (std::uint64_t i = 0; i < points; ++i) {
      served.evaluated.push_back(get_point(r));
    }
    if (!r.done() || served.feasible != served.evaluated.size()) {
      return false;  // malformed payload: fall back to a normal run
    }
    served.completed = true;
    served.served_from_store = true;
    served.front = to_pareto(served.evaluated);
    result = std::move(served);
    ICSC_TRACE_COUNT("dse/store_hits", 1);
    return true;
  } catch (const core::Error&) {
    // A CRC-clean frame that does not decode is a schema drift the
    // version tag failed to capture; treat it as a miss rather than fail
    // the exploration.
    return false;
  }
}

/// Stores a completed run's payload (no-op for partials or when no store
/// is configured). Store I/O failures must not fail the exploration that
/// just finished -- the result is still correct -- so errors only count.
void store_put(const DseConfig& config, std::uint64_t fingerprint,
               std::size_t units_done, const DseResult& result) {
  if (!config.result_store || !result.completed) return;
  ICSC_TRACE_SPAN("dse/store_put");
  try {
    config.result_store->put(fingerprint, kDseStoreSchemaVersion,
                             encode_store_payload(units_done, result));
  } catch (const core::Error&) {
    ICSC_TRACE_COUNT("dse/store_put_failures", 1);
  }
}

/// Resilient driver shared by the candidate-list strategies (exhaustive,
/// random): evaluates `candidates` in checkpoint-sized blocks on the pool,
/// folding each block back in candidate order, honouring deadline/cancel
/// between chunks and persisting progress after every block. Units =
/// candidates; counters cover exactly the folded prefix.
DseResult run_candidates(const Kernel& body, const DseConfig& config,
                         const std::vector<Candidate>& candidates,
                         std::uint64_t fingerprint, bool prewarm = false) {
  ICSC_TRACE_SPAN("dse/run_candidates");
  DseResult result;
  // Durable tier first: a completed identical run stored by any earlier
  // process short-circuits the whole sweep.
  if (store_lookup(config, fingerprint, result)) return result;
  std::size_t done = 0;
  bool snapshot_completed = false;
  const bool persist = !config.checkpoint_path.empty();
  if (persist) {
    done = load_dse_snapshot(config.checkpoint_path, fingerprint, result,
                             &snapshot_completed);
  }
  std::unique_ptr<EvalCache> cache;
  if (config.memoize) cache = std::make_unique<EvalCache>(body, config);
  auto evaluate = [&](const Candidate& candidate) {
    return cache ? cache->evaluate(candidate)
                 : evaluate_design(body, candidate.unroll, candidate.budget,
                                   config);
  };
  if (!snapshot_completed) {
    // An exhaustive sweep visits every unroll factor, so computing the
    // whole axis up front (in parallel) beats first-touch laziness.
    if (cache && prewarm) cache->prewarm_unrolls();
    const core::CancelToken token = config.cancel.with_deadline(config.deadline);
    const std::size_t block = std::max<std::size_t>(1, config.checkpoint_every);
    const std::size_t stop_at =
        config.unit_budget == 0
            ? candidates.size()
            : std::min(candidates.size(), done + config.unit_budget);
    bool cancelled = false;
    while (done < stop_at && !cancelled) {
      if (token.cancelled()) {
        cancelled = true;
        break;
      }
      const std::size_t block_end = std::min(stop_at, done + block);
      auto points = core::parallel_map(
          block_end - done, 1,
          [&](std::size_t i) { return evaluate(candidates[done + i]); },
          token);
      cancelled = points.size() < block_end - done;
      done += points.size();
      result.evaluations += points.size();
      ICSC_TRACE_COUNT("dse.evaluations", points.size());
      if (cancelled) ICSC_TRACE_COUNT("dse.cancelled_blocks", 1);
      for (auto& point : points) {
        if (!point.cost.fits || !point_finite(point)) continue;
        ++result.feasible;
        result.evaluated.push_back(std::move(point));
      }
      if (persist) {
        save_dse_snapshot(config.checkpoint_path, fingerprint, done, result,
                          done == candidates.size() && !cancelled);
      }
    }
    result.completed = done == candidates.size() && !cancelled;
  }
  fold_cache_stats(result, cache.get());
  result.front = to_pareto(result.evaluated);
  store_put(config, fingerprint, done, result);
  return result;
}

}  // namespace

std::vector<GridPoint> dse_grid(const DseSpace& space) {
  std::vector<GridPoint> grid;
  grid.reserve(space.unroll_factors.size() * space.alu_counts.size() *
               space.mul_counts.size() * space.mem_port_counts.size());
  for (const int unroll : space.unroll_factors) {
    for (const int alus : space.alu_counts) {
      for (const int muls : space.mul_counts) {
        for (const int ports : space.mem_port_counts) {
          GridPoint candidate;
          candidate.unroll = unroll;
          candidate.budget.alus = alus;
          candidate.budget.muls = muls;
          candidate.budget.mem_ports = ports;
          grid.push_back(candidate);
        }
      }
    }
  }
  return grid;
}

DesignPoint evaluate_design(const Kernel& body, int unroll,
                            const ResourceBudget& budget,
                            const DseConfig& config) {
  ICSC_TRACE_SPAN("dse/evaluate");
  Candidate candidate;
  candidate.unroll = unroll;
  candidate.budget = budget;
  const Kernel unrolled = unroll > 1 ? unroll_kernel(body, unroll) : body;
  return assemble_point(candidate,
                        evaluate_core(unrolled, unroll, budget, config));
}

DseResult dse_exhaustive(const Kernel& body, const DseConfig& config) {
  // Materialise the full grid in canonical row-major order (dse_grid),
  // then fan the independent evaluations out.
  const std::vector<Candidate> grid = dse_grid(config.space);
  return run_candidates(body, config, grid,
                        run_fingerprint(body, config, kStrategyExhaustive,
                                        grid.size(), 0),
                        /*prewarm=*/true);
}

DseResult dse_random(const Kernel& body, const DseConfig& config,
                     std::size_t budget, std::uint64_t seed) {
  core::Rng rng(seed);
  const auto& space = config.space;
  // Pre-draw every trial's coordinates serially, in the same per-trial
  // draw order (unroll, alus, muls, ports) as a serial loop would, so the
  // sampled sequence -- and therefore the result -- is bit-identical for a
  // given seed regardless of thread count. A resumed run re-derives the
  // full list from the seed and skips the checkpointed prefix.
  std::vector<Candidate> trials(budget);
  for (auto& trial : trials) {
    trial.unroll = space.unroll_factors[rng.below(space.unroll_factors.size())];
    trial.budget.alus = space.alu_counts[rng.below(space.alu_counts.size())];
    trial.budget.muls = space.mul_counts[rng.below(space.mul_counts.size())];
    trial.budget.mem_ports =
        space.mem_port_counts[rng.below(space.mem_port_counts.size())];
  }
  return run_candidates(body, config, trials,
                        run_fingerprint(body, config, kStrategyRandom,
                                        budget, seed));
}

DseResult dse_hill_climb(const Kernel& body, const DseConfig& config,
                         int restarts, std::uint64_t seed) {
  ICSC_TRACE_SPAN("dse/hill_climb");
  core::Rng rng(seed);
  const auto& space = config.space;
  DseResult result;

  auto score = [](const DesignPoint& p) {
    const double s = p.total_latency_us * p.area_score;  // area-delay product
    // Non-finite estimates rank behind every real design.
    return std::isfinite(s) ? s : std::numeric_limits<double>::infinity();
  };
  // Coordinates: indices into the four space axes.
  struct Coord {
    std::size_t u, a, m, p;
  };
  auto to_candidate = [&](const Coord& c) {
    Candidate candidate;
    candidate.unroll = space.unroll_factors[c.u];
    candidate.budget.alus = space.alu_counts[c.a];
    candidate.budget.muls = space.mul_counts[c.m];
    candidate.budget.mem_ports = space.mem_port_counts[c.p];
    return candidate;
  };
  // Lazy memo: a climb revisits the same ridge of (unroll, budget) points
  // from several restarts, so hit rates are high even without prewarming.
  std::unique_ptr<EvalCache> cache;
  if (config.memoize) cache = std::make_unique<EvalCache>(body, config);
  auto evaluate = [&](const Candidate& candidate) {
    return cache ? cache->evaluate(candidate)
                 : evaluate_design(body, candidate.unroll, candidate.budget,
                                   config);
  };

  // The resume unit is one restart: restart boundaries are the only points
  // where the walk's state is just (RNG position, folded results). A
  // cancelled mid-climb restart is discarded wholesale -- its scratch
  // counters never fold in -- and re-runs from its start draws on resume,
  // which keeps counters exact and resumed results bit-identical.
  const std::size_t total = restarts > 0 ? static_cast<std::size_t>(restarts) : 0;
  const std::uint64_t fingerprint =
      run_fingerprint(body, config, kStrategyHillClimb, total, seed);
  if (store_lookup(config, fingerprint, result)) return result;
  std::size_t done = 0;
  bool snapshot_completed = false;
  const bool persist = !config.checkpoint_path.empty();
  if (persist) {
    done = load_dse_snapshot(config.checkpoint_path, fingerprint, result,
                             &snapshot_completed);
  }
  if (snapshot_completed) {
    result.front = to_pareto(result.evaluated);
    store_put(config, fingerprint, done, result);
    return result;
  }
  // Replay the start-point draws of the checkpointed restarts so the RNG
  // stream lines up exactly with an uninterrupted run. Braced-init draws
  // evaluate left-to-right: u, a, m, p -- the same order as below.
  for (std::size_t r = 0; r < done; ++r) {
    Coord replay{rng.below(space.unroll_factors.size()),
                 rng.below(space.alu_counts.size()),
                 rng.below(space.mul_counts.size()),
                 rng.below(space.mem_port_counts.size())};
    (void)replay;
  }

  const core::CancelToken token = config.cancel.with_deadline(config.deadline);
  const std::size_t block = std::max<std::size_t>(1, config.checkpoint_every);
  const std::size_t stop_at =
      config.unit_budget == 0 ? total
                              : std::min(total, done + config.unit_budget);
  bool cancelled = false;
  std::size_t last_saved = done;
  while (done < stop_at && !cancelled) {
    if (token.cancelled()) {
      cancelled = true;
      break;
    }
    // Scratch accounting for this restart, folded in only if it completes.
    std::vector<DesignPoint> scratch;
    std::size_t scratch_evals = 0;
    auto record = [&](const DesignPoint& point) {
      ++scratch_evals;
      if (point.cost.fits && point_finite(point)) scratch.push_back(point);
    };

    Coord current{rng.below(space.unroll_factors.size()),
                  rng.below(space.alu_counts.size()),
                  rng.below(space.mul_counts.size()),
                  rng.below(space.mem_port_counts.size())};
    const Candidate start = to_candidate(current);
    DesignPoint best = evaluate(start);
    record(best);
    bool improved = true;
    while (improved && !cancelled) {
      improved = false;
      // Explore all +-1 neighbours along each axis.
      std::vector<Coord> neighbours;
      auto push = [&](Coord c) { neighbours.push_back(c); };
      if (current.u + 1 < space.unroll_factors.size()) push({current.u + 1, current.a, current.m, current.p});
      if (current.u > 0) push({current.u - 1, current.a, current.m, current.p});
      if (current.a + 1 < space.alu_counts.size()) push({current.u, current.a + 1, current.m, current.p});
      if (current.a > 0) push({current.u, current.a - 1, current.m, current.p});
      if (current.m + 1 < space.mul_counts.size()) push({current.u, current.a, current.m + 1, current.p});
      if (current.m > 0) push({current.u, current.a, current.m - 1, current.p});
      if (current.p + 1 < space.mem_port_counts.size()) push({current.u, current.a, current.m, current.p + 1});
      if (current.p > 0) push({current.u, current.a, current.m, current.p - 1});
      // The serial algorithm evaluates every neighbour unconditionally, so
      // the batch can run in parallel; selecting the winner in neighbour
      // order below reproduces the serial scan exactly.
      const auto points = core::parallel_map(
          neighbours.size(), 1,
          [&](std::size_t i) { return evaluate(to_candidate(neighbours[i])); },
          token);
      if (points.size() < neighbours.size()) {
        cancelled = true;
        break;
      }
      for (std::size_t i = 0; i < points.size(); ++i) {
        record(points[i]);
        if (points[i].cost.fits && point_finite(points[i]) &&
            score(points[i]) < score(best)) {
          best = points[i];
          current = neighbours[i];
          improved = true;
        }
      }
    }
    if (cancelled) break;  // discard the aborted restart's scratch
    ICSC_TRACE_COUNT("dse.evaluations", scratch_evals);
    result.evaluations += scratch_evals;
    result.feasible += scratch.size();
    for (auto& point : scratch) result.evaluated.push_back(std::move(point));
    ++done;
    if (persist && (done % block == 0 || done == total)) {
      save_dse_snapshot(config.checkpoint_path, fingerprint, done, result,
                        done == total);
      last_saved = done;
    }
  }
  // Persist the tail on any early exit (cancellation or unit budget) so a
  // later invocation resumes after the last completed restart.
  if (persist && done != last_saved) {
    save_dse_snapshot(config.checkpoint_path, fingerprint, done, result,
                      done == total && !cancelled);
  }
  result.completed = done == total && !cancelled;
  fold_cache_stats(result, cache.get());
  result.front = to_pareto(result.evaluated);
  store_put(config, fingerprint, done, result);
  return result;
}

double dse_hypervolume(const DseResult& result, double ref_latency_us,
                       double ref_area) {
  return core::hypervolume_2d(result.front, ref_latency_us, ref_area);
}

}  // namespace icsc::hls
