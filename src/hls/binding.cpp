#include "hls/binding.hpp"

#include <algorithm>

namespace icsc::hls {

namespace {

int occupancy_cycles(OpKind kind) {
  return kind == OpKind::kDiv ? op_latency(OpKind::kDiv) : 1;
}

}  // namespace

Binding bind_kernel(const Kernel& kernel, const Schedule& schedule) {
  Binding binding;
  const std::size_t n = kernel.size();
  binding.fu_instance.assign(n, -1);

  // Left-edge per class: sort ops by start cycle, assign to the first
  // instance whose last occupancy ends at or before this start.
  for (const FuClass cls :
       {FuClass::kAlu, FuClass::kMul, FuClass::kDiv, FuClass::kMemPort}) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (op_fu_class(kernel.ops()[i].kind) == cls) members.push_back(i);
    }
    std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      if (schedule.start_cycle[a] != schedule.start_cycle[b]) {
        return schedule.start_cycle[a] < schedule.start_cycle[b];
      }
      return a < b;
    });
    std::vector<int> instance_free_at;
    for (const std::size_t op_id : members) {
      const int start = schedule.start_cycle[op_id];
      const int end = start + occupancy_cycles(kernel.ops()[op_id].kind);
      int chosen = -1;
      for (std::size_t inst = 0; inst < instance_free_at.size(); ++inst) {
        if (instance_free_at[inst] <= start) {
          chosen = static_cast<int>(inst);
          break;
        }
      }
      if (chosen < 0) {
        chosen = static_cast<int>(instance_free_at.size());
        instance_free_at.push_back(0);
      }
      instance_free_at[chosen] = end;
      binding.fu_instance[op_id] = chosen;
    }
    if (!members.empty()) {
      binding.instances[cls] = static_cast<int>(instance_free_at.size());
    }
  }

  // Register estimate: a value is live from its finish until the last
  // consumer's start (inclusive of the producing cycle boundary).
  std::vector<int> last_use(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t operand : kernel.ops()[i].operands) {
      last_use[operand] =
          std::max(last_use[operand], schedule.start_cycle[i]);
    }
  }
  std::map<int, int> delta;  // live-interval sweep
  for (std::size_t i = 0; i < n; ++i) {
    if (last_use[i] < 0) continue;
    const int born = schedule.start_cycle[i] + op_latency(kernel.ops()[i].kind);
    if (last_use[i] <= born) continue;
    delta[born] += 1;
    delta[last_use[i]] -= 1;
  }
  int live = 0;
  for (const auto& [cycle, d] : delta) {
    live += d;
    binding.max_live_values = std::max(binding.max_live_values, live);
  }
  return binding;
}

bool binding_is_valid(const Kernel& kernel, const Schedule& schedule,
                      const Binding& binding) {
  const std::size_t n = kernel.size();
  if (binding.fu_instance.size() != n) return false;
  for (std::size_t a = 0; a < n; ++a) {
    const FuClass cls_a = op_fu_class(kernel.ops()[a].kind);
    if (cls_a == FuClass::kNone) continue;
    if (binding.fu_instance[a] < 0) return false;
    for (std::size_t b = a + 1; b < n; ++b) {
      if (op_fu_class(kernel.ops()[b].kind) != cls_a) continue;
      if (binding.fu_instance[a] != binding.fu_instance[b]) continue;
      const int a0 = schedule.start_cycle[a];
      const int a1 = a0 + occupancy_cycles(kernel.ops()[a].kind);
      const int b0 = schedule.start_cycle[b];
      const int b1 = b0 + occupancy_cycles(kernel.ops()[b].kind);
      if (a0 < b1 && b0 < a1) return false;  // overlap on same instance
    }
  }
  return true;
}

}  // namespace icsc::hls
