#include "hls/ir.hpp"

#include <algorithm>
#include <cassert>

namespace icsc::hls {

int op_latency(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kConst:
    case OpKind::kOutput:
      return 0;
    case OpKind::kAdd:
    case OpKind::kCmp:
    case OpKind::kSelect:
      return 1;
    case OpKind::kMul:
      return 3;   // pipelined DSP multiplier
    case OpKind::kDiv:
      return 12;  // iterative divider
    case OpKind::kLoad:
      return 4;   // through the memory controller (cache hit)
    case OpKind::kStore:
      return 1;   // posted write
  }
  return 0;
}

FuClass op_fu_class(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kCmp:
    case OpKind::kSelect:
      return FuClass::kAlu;
    case OpKind::kMul:
      return FuClass::kMul;
    case OpKind::kDiv:
      return FuClass::kDiv;
    case OpKind::kLoad:
    case OpKind::kStore:
      return FuClass::kMemPort;
    case OpKind::kInput:
    case OpKind::kConst:
    case OpKind::kOutput:
      return FuClass::kNone;
  }
  return FuClass::kNone;
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kConst: return "const";
    case OpKind::kAdd: return "add";
    case OpKind::kMul: return "mul";
    case OpKind::kDiv: return "div";
    case OpKind::kCmp: return "cmp";
    case OpKind::kSelect: return "select";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

std::size_t Kernel::add_op(OpKind kind, std::vector<std::size_t> operands) {
  for ([[maybe_unused]] const std::size_t operand : operands) {
    assert(operand < ops_.size() && "operands must precede consumers");
  }
  ops_.push_back(Op{kind, std::move(operands)});
  return ops_.size() - 1;
}

int Kernel::critical_path() const {
  std::vector<int> finish(ops_.size(), 0);
  int best = 0;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    int start = 0;
    for (const std::size_t operand : ops_[i].operands) {
      start = std::max(start, finish[operand]);
    }
    finish[i] = start + op_latency(ops_[i].kind);
    best = std::max(best, finish[i]);
  }
  return best;
}

std::size_t Kernel::count_class(FuClass cls) const {
  std::size_t count = 0;
  for (const auto& op : ops_) {
    if (op_fu_class(op.kind) == cls) ++count;
  }
  return count;
}

bool Kernel::is_well_formed() const {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    for (const std::size_t operand : ops_[i].operands) {
      if (operand >= i) return false;
    }
  }
  return true;
}

Kernel make_fir_kernel(int taps) {
  Kernel k("fir" + std::to_string(taps));
  std::size_t acc = k.constant();
  for (int t = 0; t < taps; ++t) {
    const std::size_t sample = k.input();
    const std::size_t coeff = k.constant();
    acc = k.add(acc, k.mul(sample, coeff));
  }
  k.output(acc);
  return k;
}

Kernel make_dot_kernel(int n) {
  Kernel k("dot" + std::to_string(n));
  // Balanced reduction tree over n products.
  std::vector<std::size_t> terms;
  terms.reserve(n);
  for (int i = 0; i < n; ++i) {
    terms.push_back(k.mul(k.input(), k.input()));
  }
  while (terms.size() > 1) {
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(k.add(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  k.output(terms.front());
  return k;
}

Kernel make_spmv_row_kernel(int nnz) {
  Kernel k("spmv_row" + std::to_string(nnz));
  std::size_t acc = k.constant();
  for (int e = 0; e < nnz; ++e) {
    const std::size_t col_index = k.load(k.input());   // col[e]
    const std::size_t x_value = k.load(col_index);     // x[col[e]] (indirect)
    const std::size_t weight = k.load(k.input());      // A.val[e]
    acc = k.add(acc, k.mul(x_value, weight));
  }
  k.output(acc);
  return k;
}

Kernel make_bfs_expand_kernel(int degree) {
  Kernel k("bfs_expand" + std::to_string(degree));
  const std::size_t next_level = k.input();
  for (int e = 0; e < degree; ++e) {
    const std::size_t neighbour = k.load(k.input());        // col[e]
    const std::size_t level = k.load(neighbour);            // level[w]
    const std::size_t unvisited = k.cmp(level, k.constant());
    const std::size_t updated = k.select(unvisited, next_level, level);
    k.store(neighbour, updated);
  }
  return k;
}

Kernel unroll_kernel(const Kernel& kernel, int factor) {
  Kernel out(kernel.name() + "_x" + std::to_string(factor));
  for (int copy = 0; copy < factor; ++copy) {
    const std::size_t base = out.size();
    for (const auto& op : kernel.ops()) {
      std::vector<std::size_t> operands;
      operands.reserve(op.operands.size());
      for (const std::size_t operand : op.operands) {
        operands.push_back(base + operand);
      }
      out.add_op(op.kind, std::move(operands));
    }
  }
  return out;
}

}  // namespace icsc::hls
