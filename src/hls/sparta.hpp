// SPARTA: cycle-approximate simulator of the parallel multi-threaded
// accelerator architecture (Sec. III, [5]).
//
// "Accelerators generated with SPARTA are based on a custom architecture
// that can exploit spatial parallelism and hide the latency of external
// memory accesses through context switching. Moreover, SPARTA includes a
// custom Network-on-Chip connecting multiple external memory channels to
// each accelerator, memory-side caching, and on-chip private memories for
// each accelerator."
//
// The model: `lanes` accelerator lanes (spatial parallelism), each holding
// `contexts_per_lane` hardware contexts (latency hiding). Tasks -- e.g. one
// SpMV row or one BFS vertex expansion -- are partitioned over lanes; a
// context executes its task's steps (compute cycles and irregular memory
// accesses); on a memory-side cache miss the context blocks for the DRAM
// latency and the lane switches to another ready context. Requests cross a
// NoC to `mem_channels` channels with a per-request issue gap (bandwidth).
// Sequential row data is assumed streamed/prefetched into the lane-private
// scratchpad; only the irregular accesses (x[col[e]], level[w]) traverse
// the memory system, which is what makes graph kernels hard.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/sampling.hpp"

namespace icsc::hls {

/// One step of a task: spend `compute_cycles`, then optionally touch
/// memory at `address` (negative = no access).
struct TaskStep {
  int compute_cycles = 1;
  std::int64_t address = -1;
};

/// A task is the unit of work a context executes to completion.
struct SpartaTask {
  std::vector<TaskStep> steps;
};

enum class TaskPartition { kRoundRobin, kBlocked };

struct SpartaConfig {
  int lanes = 4;
  int contexts_per_lane = 4;
  int mem_channels = 2;
  int mem_latency_cycles = 120;   // DRAM round trip
  int channel_gap_cycles = 4;     // per-request occupancy (bandwidth)
  int cache_lines = 4096;         // memory-side cache capacity (lines)
  int cache_line_bytes = 64;
  /// Cache associativity: 1 = direct mapped, N = N-way LRU. The memory-
  /// side cache absorbs the hub-vertex reuse of irregular kernels; higher
  /// associativity removes conflict misses on skewed access streams.
  int cache_ways = 1;
  int cache_hit_latency = 10;     // through the NoC to the cache
  int context_switch_cycles = 1;
  TaskPartition partition = TaskPartition::kRoundRobin;
  /// Lane-private scratchpad ("on-chip private memories for each
  /// accelerator"): the first `private_scratchpad_bytes` of the shared
  /// data array are pinned per lane and hit in `scratchpad_latency`
  /// cycles without touching the NoC or cache. 0 disables.
  std::int64_t private_scratchpad_bytes = 0;
  int scratchpad_latency = 1;
};

struct SpartaStats {
  std::uint64_t cycles = 0;
  double lane_utilization = 0.0;  // busy (compute+issue) / total
  std::uint64_t mem_requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t scratchpad_hits = 0;
  std::uint64_t tasks_executed = 0;

  double hit_rate() const {
    return mem_requests > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(mem_requests)
               : 0.0;
  }
};

/// Runs the workload to completion; deterministic.
SpartaStats simulate_sparta(const std::vector<SpartaTask>& tasks,
                            const SpartaConfig& config);

/// Workload generators from graph kernels. Each edge contributes one
/// irregular access (the gather) plus one compute cycle.
/// SpMV: task per row, accesses x[col[e]].
std::vector<SpartaTask> make_spmv_tasks(const core::CsrGraph& graph);
/// BFS frontier expansion: task per vertex, accesses level[col[e]].
std::vector<SpartaTask> make_bfs_tasks(const core::CsrGraph& graph);
/// PageRank push iteration: accesses rank[col[e]] with 2 compute cycles.
std::vector<SpartaTask> make_pagerank_tasks(const core::CsrGraph& graph);

/// The serial-HLS reference point: one lane, one context (what a plain
/// non-multithreaded Bambu/Vitis accelerator would execute).
SpartaConfig serial_baseline_config(const SpartaConfig& like);

// ---------------------------------------------------------------------------
// SimPoint-style phase sampling (Sec. III + the workload-sampling
// methodology of SNIPPETS.md Snippet 3): instead of simulating every task,
// slice the task stream into fixed-size intervals, cluster the intervals'
// static lane signatures (steps, accesses, footprint, reuse) into phases
// with a deterministic k-means, simulate a few sampled intervals per phase,
// and reconstruct whole-run KPIs as a stratified estimate with a
// Welch-Satterthwaite confidence interval (phases are the strata, interval
// counts the weights, finite-population corrected).
//
// The estimator's population is the sum of *per-interval isolated*
// simulations -- each sampled interval starts from a cold cache, exactly
// like the population members it stands for -- so the reported CI is a
// genuine coverage statement about `sparta_isolated_reference`. The gap
// between that population total and the monolithic simulate_sparta run
// (warm-cache coupling between intervals) is reported separately by the
// benches as reconstruction bias; it shrinks as interval_tasks grows.

struct PhaseSamplingConfig {
  /// Consecutive tasks per interval (the SimPoint interval size).
  std::size_t interval_tasks = 32;
  /// Target number of phases (k-means clusters); clamped to the interval
  /// count.
  int phases = 8;
  /// Simulated intervals per phase. Phases with at least two members need
  /// at least two samples for a finite CI; a one-interval phase is
  /// simulated exactly.
  int samples_per_phase = 3;
  int kmeans_iters = 20;
  double confidence = 0.95;
  /// Seeds the deterministic center init and per-phase sample picks.
  std::uint64_t seed = 0x5BA2'7AULL;
};

struct PhaseSampleStats {
  /// Estimated total cycles over all intervals (isolated-interval
  /// population), with its CI half-width.
  double cycles_estimate = 0.0;
  double cycles_half_width = 0.0;
  double confidence = 0.0;
  std::size_t intervals = 0;
  std::size_t intervals_simulated = 0;
  std::size_t phases_used = 0;
  /// Whole-run KPI reconstruction: per-phase sampled means scaled by the
  /// phase's interval count (cycles rounded from cycles_estimate).
  SpartaStats reconstructed;

  /// Simulation-work reduction: intervals / intervals_simulated.
  double sample_factor() const {
    return intervals_simulated > 0
               ? static_cast<double>(intervals) /
                     static_cast<double>(intervals_simulated)
               : 1.0;
  }
};

/// Phase-sampled SPARTA run. Deterministic: clustering, sample picks, and
/// the resulting estimate are pure functions of (tasks, config, sampling
/// config). Throws core::Error on a degenerate sampling config.
PhaseSampleStats simulate_sparta_sampled(const std::vector<SpartaTask>& tasks,
                                         const SpartaConfig& config,
                                         const PhaseSamplingConfig& sampling);

/// The exhaustive oracle of the phase-sampling estimator: every interval
/// simulated in isolation, totals summed. The validation mode asserts this
/// lands inside simulate_sparta_sampled's CI.
SpartaStats sparta_isolated_reference(const std::vector<SpartaTask>& tasks,
                                      const SpartaConfig& config,
                                      std::size_t interval_tasks);

}  // namespace icsc::hls
