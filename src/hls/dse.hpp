// Design-space exploration engine (Sec. III).
//
// "The proposed toolchain will allow designers to explore automatically the
// wide space of the architectural parameters, adopt optimization strategies
// at a high level of abstraction through performance and resource
// estimations". A design point = (unroll factor, resource budget); its
// objectives are total latency for a given iteration count and area. Three
// strategies -- exhaustive, random sampling, and hill climbing -- are
// compared by Pareto hypervolume in the ablation bench.
//
// Resilience: a DSE run carries an optional wall-clock deadline, a
// cooperative CancelToken, and a checkpoint path (core/cancel.hpp,
// core/checkpoint.hpp). A cancelled run drains in-flight evaluations and
// returns a valid partial result flagged `completed = false`; a
// checkpointed run killed at any point resumes from the last durable
// snapshot and finishes with a result bit-identical to an uninterrupted
// run (same seed, index-ordered merge).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/pareto.hpp"
#include "hls/estimate.hpp"

namespace icsc::core {
class ResultStore;
}

namespace icsc::hls {

struct DesignPoint {
  int unroll = 1;
  ResourceBudget budget;
  CostReport cost;          // filled by evaluation
  double total_latency_us = 0.0;  // for the configured trip count
  double area_score = 0.0;        // LUT-equivalent area
};

struct DseSpace {
  std::vector<int> unroll_factors{1, 2, 4, 8};
  std::vector<int> alu_counts{1, 2, 4, 8};
  std::vector<int> mul_counts{1, 2, 4};
  std::vector<int> mem_port_counts{1, 2, 4};
};

/// One (unroll, budget) coordinate of a sweep.
struct GridPoint {
  int unroll = 1;
  ResourceBudget budget;
};

/// Canonical enumeration of the whole space in row-major
/// (unroll, alu, mul, port) order -- the one ordering every exhaustive
/// sweep (and every old-vs-new bench baseline) must share so fronts and
/// indices stay comparable.
std::vector<GridPoint> dse_grid(const DseSpace& space);

struct DseConfig {
  FpgaDevice device = device_kintex7_410t();
  /// Loop trip count the kernel body executes (total work = iterations).
  int iterations = 1024;
  /// Evaluate designs with the loop pipelined (modulo scheduling): the
  /// "pipeline" directive every HLS DSE sweeps alongside unrolling.
  bool pipelined = false;
  DseSpace space;

  // --- resilient-runtime controls (defaults reproduce the open-loop run) ---
  /// Wall-clock budget for the run; expiry drains in-flight evaluations
  /// and returns the completed prefix with `completed = false`.
  core::Deadline deadline;
  /// External cooperative stop handle (polled between evaluation chunks).
  core::CancelToken cancel;
  /// Snapshot file for checkpoint/resume; empty disables persistence. An
  /// existing snapshot for the same (strategy, seed, config) run is
  /// resumed; one from a different run throws core::Error.
  std::string checkpoint_path;
  /// Completed units (design points; hill-climb: restarts) folded between
  /// snapshot saves -- the most work a killed process can lose.
  std::size_t checkpoint_every = 16;
  /// Max units to evaluate in *this* invocation (0 = no limit); used by
  /// the kill/resume benches to truncate runs at deterministic points.
  std::size_t unit_budget = 0;

  // --- evaluation memoization ---------------------------------------------
  /// Share scheduling work across the run through a per-call cache: the
  /// unrolled kernel is computed once per unroll factor, and the
  /// schedule/binding/cost pipeline once per (unroll, effective budget).
  /// The effective budget clamps each resource class to the unrolled
  /// kernel's total occupancy in that class -- beyond it the constraint
  /// can never bind (the op being placed is never counted against the
  /// budget, so at least one unit is always free), which makes every
  /// clamped evaluation provably bit-identical to the direct one. The
  /// cache is shared safely across pool workers (once-initialised slots)
  /// and `false` restores the uncached seed path for A/B benchmarking.
  bool memoize = true;

  // --- cross-run persistent memoization ------------------------------------
  /// Durable tier above the per-run memo (core/result_store.hpp). When
  /// set, every strategy consults the store first: a completed result
  /// stored under this run's fingerprint (strategy, seed, kernel, device,
  /// space, ...) is served from disk -- zero pipeline evaluations, payload
  /// bit-identical to the run that stored it -- and a freshly *completed*
  /// run is stored for future invocations (truncated partials never are).
  /// Corrupt or schema-mismatched store records are quarantined by the
  /// store itself and fall back to a normal run.
  std::shared_ptr<core::ResultStore> result_store;
};

/// Evaluates one (kernel, unroll, budget) configuration: schedules the
/// unrolled body under the budget and rolls up iteration latency and area.
/// Always uncached (the strategies go through the per-run memo instead).
/// A degenerate estimate whose Fmax is zero, negative, or non-finite is
/// marked infeasible explicitly (`cost.fits = false`, infinite latency)
/// instead of silently dividing by it.
DesignPoint evaluate_design(const Kernel& body, int unroll,
                            const ResourceBudget& budget,
                            const DseConfig& config);

/// Result of one DSE run. Accounting semantics (uniform across all three
/// strategies): `evaluations` counts every attempted design-point
/// evaluation, whether or not the design fits the device; `feasible`
/// counts the subset that fit AND carry finite latency/area estimates, and
/// equals `evaluated.size()`. Points that do not fit -- or whose estimates
/// are NaN/Inf (degenerate device parameters, overflowed cycle counts) --
/// are counted in `evaluations` but never kept, so they cannot poison the
/// Pareto front. `evaluated` is ordered canonically --
/// exhaustive: row-major (unroll, alu, mul, port) grid order; random: trial
/// order; hill climb: evaluation order (start point, then neighbours per
/// pass) -- and that ordering is identical whether the evaluations ran
/// serially or on the thread pool, so `front` indices and all counters are
/// bit-reproducible for a given config/seed.
/// When a run is truncated (deadline, cancellation, or unit budget) the
/// counters cover exactly the completed units -- `evaluations` counts only
/// design points whose evaluation finished and was folded in, never
/// in-flight or discarded work -- and `completed` is false so callers can
/// distinguish a full sweep from a valid partial one.
struct DseResult {
  std::vector<DesignPoint> evaluated;
  std::vector<core::ParetoPoint> front;  // objectives {latency_us, area}
  std::size_t evaluations = 0;  // all attempts, fitting or not
  std::size_t feasible = 0;     // attempts that fit (== evaluated.size())
  bool completed = true;        // false = truncated partial result
  std::size_t resumed_units = 0;  // units restored from checkpoint, not re-run
  /// Memoization accounting for *this* invocation (not persisted in
  /// checkpoints): `cache_misses` counts evaluations that actually ran the
  /// unroll/schedule/bind/estimate pipeline, `cache_hits` the ones served
  /// from an already-computed (unroll, effective budget) slot. Hits +
  /// misses equals the evaluations attempted this invocation when
  /// `DseConfig::memoize` is on; both stay zero when it is off. Also
  /// exported as the `dse/cache_hits` / `dse/cache_misses` trace counters.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// True when the whole result was served from the cross-run result
  /// store (DseConfig::result_store): the payload fields -- evaluated,
  /// front, evaluations, feasible -- are bit-identical to the completed
  /// run that stored them, no pipeline evaluation ran this invocation,
  /// and resumed_units covers every unit.
  bool served_from_store = false;
};

/// Exhaustive sweep of the whole space. Design points are evaluated in
/// parallel on the shared pool (core/parallel.hpp) and folded back in grid
/// order.
DseResult dse_exhaustive(const Kernel& body, const DseConfig& config);

/// Uniform random sampling with an evaluation budget. All trial
/// coordinates are drawn from the seeded RNG up front, so results are
/// bit-identical to a serial run regardless of thread count.
DseResult dse_random(const Kernel& body, const DseConfig& config,
                     std::size_t budget, std::uint64_t seed);

/// Steepest-descent hill climbing on the weighted objective
/// latency * area, restarted `restarts` times from random points.
DseResult dse_hill_climb(const Kernel& body, const DseConfig& config,
                         int restarts, std::uint64_t seed);

/// Pareto quality of a result against a reference box (hypervolume).
double dse_hypervolume(const DseResult& result, double ref_latency_us,
                       double ref_area);

}  // namespace icsc::hls
