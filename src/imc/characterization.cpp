#include "imc/characterization.hpp"

#include <cmath>

namespace icsc::imc {

DriftCharacterization characterize_drift(const DeviceSpec& spec, int cells,
                                         int time_points,
                                         std::uint64_t seed) {
  core::Rng rng(seed);
  ProgramVerifyConfig pv;
  pv.scheme = ProgramScheme::kVerify;

  // Program a population near the top of the range (drift is defined
  // relative to the as-verified conductance at t0 = 1 s).
  const double target = spec.g_min_us + 0.8 * spec.g_range();
  std::vector<MemoryCell> population;
  population.reserve(cells);
  for (int i = 0; i < cells; ++i) {
    MemoryCell cell(spec, rng);
    program_cell(cell, spec, rng, target, pv);
    population.push_back(cell);
  }

  // Log-spaced retention times from 10 s to ~1 year.
  std::vector<double> log_t, log_g;
  std::vector<double> per_cell_nu(cells, 0.0);
  for (int p = 0; p < time_points; ++p) {
    const double t = 10.0 * std::pow(10.0, 0.5 * p);
    double mean_g = 0.0;
    for (int c = 0; c < cells; ++c) {
      mean_g += population[c].read(spec, rng, t);
    }
    mean_g /= cells;
    log_t.push_back(std::log(t));
    log_g.push_back(std::log(std::max(1e-9, mean_g)));
  }
  // Per-cell exponents from two far-apart noiseless samples.
  for (int c = 0; c < cells; ++c) {
    const double g1 = population[c].conductance_at(10.0);
    const double g2 = population[c].conductance_at(1e7);
    per_cell_nu[c] = -(std::log(g2) - std::log(g1)) /
                     (std::log(1e7) - std::log(10.0));
  }

  DriftCharacterization out;
  const auto fit = core::fit_linear(log_t, log_g);
  out.fitted_nu = -fit.slope;
  out.fit_r_squared = fit.r_squared;
  out.nu_spread = core::summarize(per_cell_nu).stddev;
  return out;
}

core::Summary characterize_programming_error(const DeviceSpec& spec,
                                             const ProgramVerifyConfig& config,
                                             double target_us, int cells,
                                             std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<double> errors;
  errors.reserve(cells);
  for (int i = 0; i < cells; ++i) {
    MemoryCell cell(spec, rng);
    program_cell(cell, spec, rng, target_us, config);
    errors.push_back(cell.raw_conductance() - target_us);
  }
  return core::summarize(errors);
}

double characterize_read_noise(const DeviceSpec& spec, int reads,
                               std::uint64_t seed) {
  core::Rng rng(seed);
  MemoryCell cell(spec, rng);
  ProgramVerifyConfig pv;
  program_cell(cell, spec, rng, spec.g_min_us + 0.7 * spec.g_range(), pv);
  std::vector<double> samples;
  samples.reserve(reads);
  for (int i = 0; i < reads; ++i) {
    samples.push_back(cell.read(spec, rng, 1.0));
  }
  const auto summary = core::summarize(samples);
  return summary.mean > 0 ? summary.stddev / summary.mean : 0.0;
}

}  // namespace icsc::imc
