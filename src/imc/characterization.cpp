#include "imc/characterization.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "core/fault.hpp"

namespace icsc::imc {

DriftCharacterization characterize_drift(const DeviceSpec& spec, int cells,
                                         int time_points,
                                         std::uint64_t seed) {
  core::Rng rng(seed);
  ProgramVerifyConfig pv;
  pv.scheme = ProgramScheme::kVerify;

  // Program a population near the top of the range (drift is defined
  // relative to the as-verified conductance at t0 = 1 s).
  const double target = spec.g_min_us + 0.8 * spec.g_range();
  std::vector<MemoryCell> population;
  population.reserve(cells);
  for (int i = 0; i < cells; ++i) {
    MemoryCell cell(spec, rng);
    program_cell(cell, spec, rng, target, pv);
    population.push_back(cell);
  }

  // Log-spaced retention times from 10 s to ~1 year.
  std::vector<double> log_t, log_g;
  std::vector<double> per_cell_nu(cells, 0.0);
  for (int p = 0; p < time_points; ++p) {
    const double t = 10.0 * std::pow(10.0, 0.5 * p);
    double mean_g = 0.0;
    for (int c = 0; c < cells; ++c) {
      mean_g += population[c].read(spec, rng, t);
    }
    mean_g /= cells;
    log_t.push_back(std::log(t));
    log_g.push_back(std::log(std::max(1e-9, mean_g)));
  }
  // Per-cell exponents from two far-apart noiseless samples.
  for (int c = 0; c < cells; ++c) {
    const double g1 = population[c].conductance_at(10.0);
    const double g2 = population[c].conductance_at(1e7);
    per_cell_nu[c] = -(std::log(g2) - std::log(g1)) /
                     (std::log(1e7) - std::log(10.0));
  }

  DriftCharacterization out;
  const auto fit = core::fit_linear(log_t, log_g);
  out.fitted_nu = -fit.slope;
  out.fit_r_squared = fit.r_squared;
  out.nu_spread = core::summarize(per_cell_nu).stddev;
  return out;
}

core::Summary characterize_programming_error(const DeviceSpec& spec,
                                             const ProgramVerifyConfig& config,
                                             double target_us, int cells,
                                             std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<double> errors;
  errors.reserve(cells);
  for (int i = 0; i < cells; ++i) {
    MemoryCell cell(spec, rng);
    program_cell(cell, spec, rng, target_us, config);
    errors.push_back(cell.raw_conductance() - target_us);
  }
  return core::summarize(errors);
}

namespace {

// Domain separators for the hash-derived per-cell streams, so the
// sequential studies never alias the campaign seeds they are run next to.
constexpr std::uint64_t kProgramErrorDomain = 0x1F'C0'DE'01ULL;
constexpr std::uint64_t kReadNoiseDomain = 0x1F'C0'DE'02ULL;

}  // namespace

SequentialCharacterization characterize_programming_error_sequential(
    const DeviceSpec& spec, const ProgramVerifyConfig& program_config,
    double target_us, int budget, std::uint64_t seed,
    const core::sampling::EarlyStopConfig& early_stop) {
  core::sampling::SequentialController controller(early_stop, 1);
  SequentialCharacterization out;
  out.samples_budgeted = static_cast<std::size_t>(std::max(0, budget));
  for (int i = 0; i < budget; ++i) {
    // Cell i owns a hash-derived stream: measurement i is identical
    // whether the study stops at 100 cells or runs all of them.
    core::Rng rng(core::fault_hash(seed ^ kProgramErrorDomain,
                                   static_cast<std::uint64_t>(i)));
    MemoryCell cell(spec, rng);
    program_cell(cell, spec, rng, target_us, program_config);
    const double abs_error = std::fabs(cell.raw_conductance() - target_us);
    if (controller.observe(std::span<const double>(&abs_error, 1))) {
      out.stopped_early = true;
      break;
    }
  }
  out.samples_run = controller.trials();
  out.estimate = controller.estimate(0);
  out.stop_reason = out.stopped_early
                        ? core::sampling::StopReason::kConverged
                        : core::sampling::StopReason::kBudget;
  return out;
}

SequentialCharacterization characterize_read_noise_sequential(
    const DeviceSpec& spec, int budget, std::uint64_t seed,
    const core::sampling::EarlyStopConfig& early_stop) {
  early_stop.validate();
  core::Rng rng(core::fault_hash(seed ^ kReadNoiseDomain, 0));
  MemoryCell cell(spec, rng);
  ProgramVerifyConfig pv;
  program_cell(cell, spec, rng, spec.g_min_us + 0.7 * spec.g_range(), pv);
  // The KPI here is a *dispersion* (the relative read-noise sigma), so the
  // stop rule runs on the large-sample stddev interval rather than the
  // mean interval the SequentialController tests. Same prefix-purity: the
  // verdict at read n is a pure function of reads 0..n-1.
  core::sampling::OnlineStats reads;
  SequentialCharacterization out;
  out.samples_budgeted = static_cast<std::size_t>(std::max(0, budget));
  for (int i = 0; i < budget; ++i) {
    reads.push(cell.read(spec, rng, 1.0));
    const std::size_t n = reads.count();
    if (!early_stop.enabled || n < early_stop.min_trials) continue;
    if ((n - early_stop.min_trials) % early_stop.check_every != 0) continue;
    const double hw = core::sampling::stddev_half_width(
        reads, early_stop.confidence);
    const double scale =
        std::max(reads.stddev(), early_stop.absolute_floor);
    if (scale > 0.0 && hw <= early_stop.relative_half_width * scale) {
      out.stopped_early = true;
      break;
    }
  }
  out.samples_run = reads.count();
  out.estimate.count = reads.count();
  out.estimate.confidence = early_stop.confidence;
  const double mean = reads.mean();
  const double sigma_rel = mean > 0.0 ? reads.stddev() / mean : 0.0;
  out.estimate.mean = sigma_rel;
  out.estimate.stddev = reads.stddev();
  out.estimate.half_width =
      mean > 0.0
          ? core::sampling::stddev_half_width(reads, early_stop.confidence) /
                mean
          : 0.0;
  out.stop_reason = out.stopped_early
                        ? core::sampling::StopReason::kConverged
                        : core::sampling::StopReason::kBudget;
  return out;
}

double characterize_read_noise(const DeviceSpec& spec, int reads,
                               std::uint64_t seed) {
  core::Rng rng(seed);
  MemoryCell cell(spec, rng);
  ProgramVerifyConfig pv;
  program_cell(cell, spec, rng, spec.g_min_us + 0.7 * spec.g_range(), pv);
  std::vector<double> samples;
  samples.reserve(reads);
  for (int i = 0; i < reads; ++i) {
    samples.push_back(cell.read(spec, rng, 1.0));
  }
  const auto summary = core::summarize(samples);
  return summary.mean > 0 ? summary.stddev / summary.mean : 0.0;
}

}  // namespace icsc::imc
