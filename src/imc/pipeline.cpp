#include "imc/pipeline.hpp"

namespace icsc::imc {

AnalogMlpBackend::AnalogMlpBackend(const core::Mlp& mlp,
                                   const TileConfig& config) {
  TileConfig layer_config = config;
  for (const auto& layer : mlp.layers()) {
    layer_config.crossbar.seed += 1000;  // fresh devices per layer
    layers_.push_back(
        std::make_unique<TiledMatvec>(layer.weights, layer_config));
  }
}

std::vector<float> AnalogMlpBackend::matvec(std::size_t layer_index,
                                            const core::TensorF& /*weights*/,
                                            std::span<const float> x) {
  auto& layer = *layers_.at(layer_index);
  ops_ += layer.ops_per_mvm();
  return layer.matvec(x, t_seconds_);
}

double AnalogMlpBackend::total_energy_pj() const {
  double total = 0.0;
  for (const auto& layer : layers_) total += layer->total_energy_pj();
  return total;
}

DimcMlpBackend::DimcMlpBackend(const core::Mlp& mlp, const DimcConfig& config) {
  for (const auto& layer : mlp.layers()) {
    layers_.push_back(std::make_unique<DimcMacro>(layer.weights, config));
  }
}

std::vector<float> DimcMlpBackend::matvec(std::size_t layer_index,
                                          const core::TensorF& /*weights*/,
                                          std::span<const float> x) {
  auto& layer = *layers_.at(layer_index);
  ops_ += layer.ops_per_mvm();
  return layer.matvec(x);
}

double DimcMlpBackend::total_energy_pj() const {
  double total = 0.0;
  for (const auto& layer : layers_) total += layer->energy().total_pj();
  return total;
}

ImcAccuracyPoint run_imc_experiment(const TileConfig& config,
                                    double t_seconds, std::uint64_t seed) {
  // Hard-enough task that analog error is visible: 8 overlapping clusters.
  const auto data = core::make_gaussian_clusters(50, 8, 16, 1.2, seed);
  core::Mlp mlp({16, 32, 8}, seed);
  mlp.train(data, 0.05F, 60, 0.99);

  ImcAccuracyPoint point;
  point.software_accuracy = mlp.accuracy(data);

  AnalogMlpBackend backend(mlp, config);
  backend.set_read_time(t_seconds);
  const double energy_before = backend.total_energy_pj();
  point.imc_accuracy = core::accuracy_with_override(mlp, data, backend);
  const double inference_energy = backend.total_energy_pj() - energy_before;
  point.energy_per_inference_nj =
      inference_energy * 1e-3 / static_cast<double>(data.size());
  return point;
}

}  // namespace icsc::imc
