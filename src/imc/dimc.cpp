#include "imc/dimc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace icsc::imc {

DimcMacro::DimcMacro(const core::TensorF& weights, const DimcConfig& config)
    : config_(config), q_weights_({weights.dim(0), weights.dim(1)}) {
  assert(weights.rank() == 2);
  float w_max = 0.0F;
  for (const float w : weights.data()) w_max = std::max(w_max, std::abs(w));
  const double levels = (1 << (config_.weight_bits - 1)) - 1;
  weight_step_ = w_max > 0 ? w_max / levels : 1.0;
  for (std::size_t i = 0; i < weights.numel(); ++i) {
    q_weights_[i] = static_cast<std::int32_t>(std::clamp(
        std::round(weights[i] / weight_step_), -levels, levels));
  }
}

std::vector<float> DimcMacro::matvec(std::span<const float> x) {
  assert(x.size() == q_weights_.dim(1));
  const std::size_t out = q_weights_.dim(0);
  const std::size_t in = q_weights_.dim(1);
  double x_max = 0.0;
  for (const float v : x) x_max = std::max(x_max, std::abs(double{v}));
  const double x_levels = (1 << (config_.input_bits - 1)) - 1;
  const double x_step = x_max > 0 ? x_max / x_levels : 1.0;

  std::vector<std::int64_t> acc(out, 0);
  std::vector<std::int32_t> xq(in);
  for (std::size_t i = 0; i < in; ++i) {
    xq[i] = static_cast<std::int32_t>(std::clamp(
        std::round(x[i] / x_step), -x_levels, x_levels));
  }
  for (std::size_t o = 0; o < out; ++o) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < in; ++i) {
      sum += static_cast<std::int64_t>(q_weights_(o, i)) * xq[i];
    }
    acc[o] = sum;
  }
  // Bit-serial execution: input_bits macro cycles, each doing in x out
  // 1b x Wb MACs.
  energy_.add_pj("dimc_mac", static_cast<double>(in) * out *
                                 config_.input_bits * config_.mac_energy_pj);
  energy_.add_pj("readout",
                 static_cast<double>(out) * config_.readout_energy_pj);

  std::vector<float> y(out);
  for (std::size_t o = 0; o < out; ++o) {
    y[o] = static_cast<float>(static_cast<double>(acc[o]) * weight_step_ *
                              x_step);
  }
  return y;
}

std::uint64_t DimcMacro::ops_per_mvm() const {
  return 2ull * q_weights_.dim(0) * q_weights_.dim(1);
}

double DimcMacro::tops_per_watt(double clock_mhz, double static_power_mw) const {
  // One macro pass per input_bits cycles; ops per pass = 2*in*out.
  const double ops_per_second = static_cast<double>(ops_per_mvm()) *
                                clock_mhz * 1e6 / config_.input_bits;
  const double dynamic_w = static_cast<double>(q_weights_.numel()) *
                           config_.input_bits * config_.mac_energy_pj * 1e-12 *
                           clock_mhz * 1e6 / config_.input_bits;
  const double watts = dynamic_w + static_power_mw * 1e-3;
  return watts > 0 ? ops_per_second * 1e-12 / watts : 0.0;
}

double digital_baseline_mac_energy_pj() {
  // 8b MAC (~0.3 pJ in 28nm) plus SRAM weight fetch (~2.5 pJ/byte moved):
  // the data-movement tax IMC removes.
  return 2.8;
}

}  // namespace icsc::imc
