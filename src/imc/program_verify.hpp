// Program-and-verify schemes for analog NVM cells (Sec. IV).
//
// "In the ICSC Flagship 2 project, we developed high-precision
// program-and-verify algorithms [10] to counter these non-ideal device
// effects, while avoiding imprecise mapping of coefficients and consequent
// degradation of the DNN accuracy." Three schemes of increasing precision:
//   - kSinglePulse: open-loop, one pulse, no verify (the naive baseline),
//   - kFixedPulses: a fixed pulse count, no read-back,
//   - kVerify: closed-loop pulse/read iterations until the conductance is
//     within tolerance or the pulse budget is exhausted ([10]).
#pragma once

#include <cstdint>

#include "core/retry.hpp"
#include "imc/device.hpp"

namespace icsc::imc {

enum class ProgramScheme { kSinglePulse, kFixedPulses, kVerify };

struct ProgramVerifyConfig {
  ProgramScheme scheme = ProgramScheme::kVerify;
  int max_pulses = 20;
  int fixed_pulses = 4;           // for kFixedPulses
  double tolerance_rel = 0.01;    // |G - target| <= tolerance_rel * range
};

/// Programs one cell to `target_us`; returns pulses spent.
int program_cell(MemoryCell& cell, const DeviceSpec& spec, core::Rng& rng,
                 double target_us, const ProgramVerifyConfig& config);

/// Bounded-retry re-programming on top of the base schemes: when the
/// read-back after a full programming round is still outside tolerance,
/// the round is repeated up to `max_retries` more times with the pulse
/// budget scaled by `backoff` each round (the escalating-budget backoff of
/// closed-loop P&V controllers). Stuck cells never verify, so the retry
/// layer is also what surfaces them as unrepairable. The loop shape is the
/// shared deterministic policy from core/retry.hpp; the per-round pulse
/// budgets follow RetryPolicy::escalate (cumulative ceil), bit-identical
/// to the original hand-rolled controller.
using RetryPolicy = core::RetryPolicy;

struct RepairOutcome {
  int pulses = 0;    // total pulses spent across all rounds
  int retries = 0;   // retry rounds consumed (0 = first round sufficed)
  bool verified = false;  // read-back within tolerance at the end
};

RepairOutcome program_cell_retry(MemoryCell& cell, const DeviceSpec& spec,
                                 core::Rng& rng, double target_us,
                                 const ProgramVerifyConfig& config,
                                 const RetryPolicy& policy);

/// Programming-accuracy statistics over a batch of random targets.
struct ProgramStats {
  double mean_abs_error_us = 0.0;
  double max_abs_error_us = 0.0;
  double mean_pulses = 0.0;
  double energy_pj = 0.0;
};

/// Programs `cells` fresh cells to uniformly random targets in the device
/// range and reports achieved accuracy (the Fig.-style P&V convergence
/// study of [10]).
ProgramStats measure_programming(const DeviceSpec& spec,
                                 const ProgramVerifyConfig& config,
                                 int cells, std::uint64_t seed);

}  // namespace icsc::imc
