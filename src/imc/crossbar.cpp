#include "imc/crossbar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace icsc::imc {

namespace {

/// Symmetric midrise quantiser over [-full_scale, full_scale].
double quantize_signed(double value, double full_scale, int bits) {
  if (bits <= 0 || full_scale <= 0.0) return value;
  const double levels = static_cast<double>((1 << (bits - 1)) - 1);
  const double code =
      std::clamp(std::round(value / full_scale * levels), -levels, levels);
  return code / levels * full_scale;
}

}  // namespace

Crossbar::Crossbar(const core::TensorF& weights, const CrossbarConfig& config)
    : in_dim_(weights.dim(1)),
      out_dim_(weights.dim(0)),
      config_(config),
      rng_(config.seed) {
  assert(weights.rank() == 2);
  float w_max = 0.0F;
  for (const float w : weights.data()) w_max = std::max(w_max, std::abs(w));
  weight_scale_ = w_max > 0 ? config_.device.g_range() / w_max : 1.0;

  g_plus_.reserve(in_dim_ * out_dim_);
  g_minus_.reserve(in_dim_ * out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const double w = weights(o, i);
      MemoryCell plus(config_.device, rng_);
      MemoryCell minus(config_.device, rng_);
      const double target_plus =
          config_.device.g_min_us + std::max(0.0, w) * weight_scale_;
      const double target_minus =
          config_.device.g_min_us + std::max(0.0, -w) * weight_scale_;
      programming_pulses_ += program_cell(plus, config_.device, rng_,
                                          target_plus, config_.programming);
      if (config_.differential) {
        programming_pulses_ += program_cell(
            minus, config_.device, rng_, target_minus, config_.programming);
      }
      g_plus_.push_back(plus);
      g_minus_.push_back(minus);
    }
  }
  energy_.add_pj("programming",
                 static_cast<double>(programming_pulses_) *
                     config_.device.program_energy_pj);
}

std::vector<double> Crossbar::matvec_raw(std::span<const float> x,
                                         double t_seconds) {
  assert(x.size() == in_dim_);
  // Per-vector DAC ranging: the digital front-end normalises the input
  // vector to the DAC full scale.
  double x_max = 0.0;
  for (const float v : x) x_max = std::max(x_max, std::abs(double{v}));
  input_scale_ = x_max > 0 ? x_max : 1.0;

  std::vector<double> currents(out_dim_, 0.0);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    double acc = 0.0;
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const double xi =
          quantize_signed(x[i], input_scale_, config_.dac_bits);
      const std::size_t cell = o * in_dim_ + i;
      double g = g_plus_[cell].read(config_.device, rng_, t_seconds);
      if (config_.differential) {
        g -= g_minus_[cell].read(config_.device, rng_, t_seconds);
      }
      // IR drop: rows farther from the sense amplifier contribute less.
      const double attenuation =
          std::max(0.0, 1.0 - config_.ir_drop_per_row * static_cast<double>(i));
      acc += xi * g * attenuation;  // Ohm's law; KCL sums onto the bitline
    }
    currents[o] = acc / weight_scale_;  // back to weight units
  }
  const double reads =
      static_cast<double>(in_dim_) * out_dim_ * (config_.differential ? 2 : 1);
  energy_.add_pj("analog_mvm", reads * config_.device.read_energy_pj);
  return currents;
}

double Crossbar::adc_quantize(double value, double full_scale, int bits) {
  return quantize_signed(value, full_scale, bits);
}

void Crossbar::charge_adc(std::size_t conversions) {
  if (config_.adc_bits > 0) {
    energy_.add_pj("adc", static_cast<double>(conversions) *
                              config_.adc_energy_pj *
                              std::pow(4.0, config_.adc_bits - 8));
  }
}

std::vector<float> Crossbar::matvec(std::span<const float> x,
                                    double t_seconds) {
  const auto currents = matvec_raw(x, t_seconds);

  // ADC: shared full-scale per conversion batch; energy scales ~4x/bit.
  double fs = 0.0;
  for (const double c : currents) fs = std::max(fs, std::abs(c));
  std::vector<float> y(out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    y[o] = static_cast<float>(quantize_signed(currents[o], fs, config_.adc_bits));
  }
  charge_adc(out_dim_);
  return y;
}

double crossbar_mvm_rmse(const core::TensorF& weights,
                         const CrossbarConfig& config, int trials,
                         double t_seconds, std::uint64_t seed) {
  Crossbar xbar(weights, config);
  core::Rng rng(seed);
  double sq_sum = 0.0;
  std::size_t count = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> x(weights.dim(1));
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto exact = core::matvec(weights, std::span<const float>(x));
    const auto noisy = xbar.matvec(x, t_seconds);
    for (std::size_t o = 0; o < exact.size(); ++o) {
      const double diff = static_cast<double>(noisy[o]) - exact[o];
      sq_sum += diff * diff;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sq_sum / static_cast<double>(count)) : 0.0;
}

}  // namespace icsc::imc
