#include "imc/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"
#include "core/simd.hpp"
#include "core/trace.hpp"

namespace icsc::imc {

namespace {

/// Symmetric midrise quantiser over [-full_scale, full_scale].
double quantize_signed(double value, double full_scale, int bits) {
  if (bits <= 0 || full_scale <= 0.0) return value;
  const double levels = static_cast<double>((1 << (bits - 1)) - 1);
  const double code =
      std::clamp(std::round(value / full_scale * levels), -levels, levels);
  return code / levels * full_scale;
}

bool defect_kind(core::FaultKind kind) {
  return kind == core::FaultKind::kStuckAtLow ||
         kind == core::FaultKind::kStuckAtHigh ||
         kind == core::FaultKind::kDropout;
}

/// Pulses one programming round is budgeted for under `config`.
int round_budget(const ProgramVerifyConfig& config) {
  switch (config.scheme) {
    case ProgramScheme::kSinglePulse: return 1;
    case ProgramScheme::kFixedPulses: return config.fixed_pulses;
    case ProgramScheme::kVerify: return config.max_pulses;
  }
  return 1;
}

}  // namespace

CrossbarHealth& CrossbarHealth::operator+=(const CrossbarHealth& other) {
  total_sites += other.total_sites;
  stuck_sites += other.stuck_sites;
  drift_sites += other.drift_sites;
  unrepairable_sites += other.unrepairable_sites;
  repaired_cells += other.repaired_cells;
  unverified_cells += other.unverified_cells;
  retry_rounds += other.retry_rounds;
  wasted_pulses += other.wasted_pulses;
  bad_columns += other.bad_columns;
  remapped_columns += other.remapped_columns;
  transient_hits += other.transient_hits;
  return *this;
}

Crossbar::Crossbar(const core::TensorF& weights, const CrossbarConfig& config)
    : in_dim_(weights.rank() == 2 ? weights.dim(1) : 0),
      out_dim_(weights.rank() == 2 ? weights.dim(0) : 0),
      config_(config),
      rng_(config.seed),
      injector_(config.faults, config.seed) {
  if (weights.rank() != 2) {
    throw core::Error("imc::Crossbar", "weights must be rank-2",
                      "got shape " + core::shape_to_string(weights.shape()));
  }
  if (in_dim_ == 0 || out_dim_ == 0) {
    throw core::Error("imc::Crossbar", "weights must be non-empty",
                      "got shape " + core::shape_to_string(weights.shape()));
  }
  float w_max = 0.0F;
  for (const float w : weights.data()) w_max = std::max(w_max, std::abs(w));
  weight_scale_ = w_max > 0 ? config_.device.g_range() / w_max : 1.0;

  remap_.assign(out_dim_, -1);
  plus_.reserve(in_dim_ * out_dim_);
  minus_.reserve(in_dim_ * out_dim_);
  std::vector<std::size_t> column_defects(out_dim_, 0);
  {
    ICSC_TRACE_SPAN("imc/program_array");
    for (std::size_t o = 0; o < out_dim_; ++o) {
      for (std::size_t i = 0; i < in_dim_; ++i) {
        column_defects[o] += program_pair(weights, o, i, o, plus_, minus_);
      }
    }
  }

  // Spare-column remapping: pair the worst defective columns with the
  // cleanest spares; a spare is committed only when it strictly reduces
  // the column's defect count. The spare fault census is a pure injector
  // query, so the pairing is deterministic and independent of programming.
  if (config_.spare_columns > 0 && injector_.enabled()) {
    const auto spare_stuck = [&](std::size_t spare) {
      const std::size_t physical = out_dim_ + spare;
      std::size_t defects = 0;
      for (std::size_t i = 0; i < in_dim_; ++i) {
        const std::uint64_t site = 2 * (physical * in_dim_ + i);
        if (defect_kind(injector_.at(site))) ++defects;
        if (config_.differential && defect_kind(injector_.at(site + 1))) {
          ++defects;
        }
      }
      return defects;
    };
    std::vector<std::size_t> spares(config_.spare_columns);
    std::iota(spares.begin(), spares.end(), std::size_t{0});
    std::vector<std::size_t> spare_defects(config_.spare_columns);
    for (std::size_t s = 0; s < config_.spare_columns; ++s) {
      spare_defects[s] = spare_stuck(s);
    }
    std::stable_sort(spares.begin(), spares.end(), [&](auto a, auto b) {
      return spare_defects[a] < spare_defects[b];
    });
    std::vector<std::size_t> bad_columns;
    for (std::size_t o = 0; o < out_dim_; ++o) {
      if (column_defects[o] > 0) bad_columns.push_back(o);
    }
    health_.bad_columns = bad_columns.size();
    std::stable_sort(bad_columns.begin(), bad_columns.end(),
                     [&](auto a, auto b) {
                       return column_defects[a] > column_defects[b];
                     });
    std::size_t next_spare = 0;
    for (const std::size_t col : bad_columns) {
      if (next_spare >= spares.size()) break;
      const std::size_t spare = spares[next_spare];
      if (spare_defects[spare] >= column_defects[col]) break;  // no gain left
      ++next_spare;
      const std::size_t physical = out_dim_ + spare;
      for (std::size_t i = 0; i < in_dim_; ++i) {
        program_pair(weights, col, i, physical, spare_plus_, spare_minus_);
      }
      remap_[col] = static_cast<std::int32_t>(spare_physical_col_.size());
      spare_physical_col_.push_back(static_cast<std::uint32_t>(physical));
      ++health_.remapped_columns;
    }
  } else if (injector_.enabled()) {
    for (std::size_t o = 0; o < out_dim_; ++o) {
      if (column_defects[o] > 0) ++health_.bad_columns;
    }
  }

  energy_.add_pj("programming",
                 static_cast<double>(programming_pulses_) *
                     config_.device.program_energy_pj);
}

std::size_t Crossbar::program_pair(const core::TensorF& weights,
                                   std::size_t weight_row, std::size_t i,
                                   std::size_t physical_col, CellBank& plus,
                                   CellBank& minus) {
  const double w = weights(weight_row, i);
  // The device-noise stream is drawn identically whatever the fault
  // configuration: cells are always programmed normally first and the
  // fault overlay only reinterprets the result, so fault sweeps perturb
  // exactly the faulty sites and nothing else.
  MemoryCell cell_plus(config_.device, rng_);
  MemoryCell cell_minus(config_.device, rng_);
  const double target_plus =
      config_.device.g_min_us + std::max(0.0, w) * weight_scale_;
  const double target_minus =
      config_.device.g_min_us + std::max(0.0, -w) * weight_scale_;

  std::size_t defects = 0;
  const std::uint64_t cell = physical_col * in_dim_ + i;
  const auto program_one = [&](MemoryCell& memory_cell, double target,
                               std::uint64_t site, CellBank& bank) {
    const RepairOutcome outcome =
        program_cell_retry(memory_cell, config_.device, rng_, target,
                           config_.programming, config_.repair);
    programming_pulses_ += static_cast<std::uint64_t>(outcome.pulses);
    ++health_.total_sites;
    core::FaultKind kind = injector_.at(site);
    if (kind == core::FaultKind::kTransientFlip ||
        kind == core::FaultKind::kDelay) {
      kind = core::FaultKind::kNone;  // handled per-operation / not modelled
    }
    if (defect_kind(kind)) {
      // The controller's read-back sees the pinned conductance: every
      // round runs to its full pulse budget and still fails verification.
      ++health_.stuck_sites;
      ++health_.unrepairable_sites;
      health_.retry_rounds +=
          static_cast<std::size_t>(config_.repair.max_retries);
      std::uint64_t budget = 0;
      double scaled = round_budget(config_.programming);
      for (int r = 0; r <= config_.repair.max_retries; ++r) {
        budget += static_cast<std::uint64_t>(std::ceil(scaled));
        scaled *= config_.repair.backoff;
      }
      if (budget > static_cast<std::uint64_t>(outcome.pulses)) {
        const std::uint64_t waste =
            budget - static_cast<std::uint64_t>(outcome.pulses);
        programming_pulses_ += waste;
        health_.wasted_pulses += waste;
      }
      ++defects;
    } else {
      health_.retry_rounds += static_cast<std::size_t>(outcome.retries);
      if (outcome.retries > 0 && outcome.verified) ++health_.repaired_cells;
      if (!outcome.verified) ++health_.unverified_cells;
      if (kind == core::FaultKind::kDrift) ++health_.drift_sites;
    }
    bank.fault.push_back(kind);
  };

  program_one(cell_plus, target_plus, 2 * cell, plus);
  if (config_.differential) {
    program_one(cell_minus, target_minus, 2 * cell + 1, minus);
  } else {
    minus.fault.push_back(core::FaultKind::kNone);
  }
  // Decompose the programmed cells into the SoA plane.
  plus.g_us.push_back(cell_plus.raw_conductance());
  plus.drift_nu.push_back(cell_plus.drift_nu());
  minus.g_us.push_back(cell_minus.raw_conductance());
  minus.drift_nu.push_back(cell_minus.drift_nu());
  return defects;
}

double Crossbar::read_site(const CellBank& bank, std::size_t cell,
                           std::uint64_t site, double t_seconds) {
  // MemoryCell::read over the SoA plane: drifted conductance (t0 = 1 s
  // reference) with multiplicative read noise. Same formula, same single
  // normal draw per non-stuck site.
  const auto noisy_read = [&] {
    const double nu = bank.drift_nu[cell];
    const double g0 = bank.g_us[cell];
    const double g = (nu <= 0.0 || t_seconds <= 1.0)
                         ? g0
                         : g0 * std::pow(t_seconds, -nu);
    // Mirrors MemoryCell::read: sigma = 0 contributes an exact 0.0, so
    // noiseless configs skip the draw instead of burning Box-Muller per
    // site (only the RNG stream position differs, and nothing else reads
    // the stream mid-MVM).
    if (config_.device.read_noise_rel <= 0.0) return g;
    return g * (1.0 + rng_.normal(0.0, config_.device.read_noise_rel));
  };
  switch (bank.fault[cell]) {
    case core::FaultKind::kStuckAtLow:
      return config_.device.g_min_us;
    case core::FaultKind::kStuckAtHigh:
      return config_.device.g_max_us;
    case core::FaultKind::kDropout:
      return 0.0;  // open cell: no conduction path
    case core::FaultKind::kDrift: {
      // Accelerated decay on top of the device drift model; only visible
      // past the t0 = 1 s drift reference, so default-time reads are clean.
      const double extra_nu = 0.05 + 0.25 * injector_.severity(site);
      const double t_rel = std::max(t_seconds, 1.0);
      return noisy_read() * std::pow(t_rel, -extra_nu);
    }
    default:
      return noisy_read();
  }
}

void Crossbar::mvm_periphery(std::span<const float> x) {
  if (x.size() != in_dim_) {
    throw core::Error("imc::Crossbar::matvec", "input length mismatch",
                      "got " + std::to_string(x.size()) + ", expected " +
                          std::to_string(in_dim_));
  }
  // Per-vector DAC ranging: the digital front-end normalises the input
  // vector to the DAC full scale.
  double x_max = 0.0;
  for (const float v : x) x_max = std::max(x_max, std::abs(double{v}));
  input_scale_ = x_max > 0 ? x_max : 1.0;

  // The DAC codes and the per-row IR-drop attenuation depend only on the
  // row index, not the column: hoist both out of the column loop. Same
  // values in the same per-column accumulation order -> bit-identical.
  dac_.resize(in_dim_);
  for (std::size_t i = 0; i < in_dim_; ++i) {
    dac_[i] = quantize_signed(x[i], input_scale_, config_.dac_bits);
  }
  // IR drop: rows farther from the sense amplifier contribute less. The
  // table is a pure function of the row index and the (fixed) config, so
  // it is filled once and reused across every MVM.
  if (row_attenuation_.size() != in_dim_) {
    row_attenuation_.resize(in_dim_);
    for (std::size_t i = 0; i < in_dim_; ++i) {
      row_attenuation_[i] =
          std::max(0.0, 1.0 - config_.ir_drop_per_row * static_cast<double>(i));
    }
  }
}

void Crossbar::mvm_finish(std::span<double> currents) {
  for (std::size_t o = 0; o < out_dim_; ++o) {
    const std::int32_t slot = remap_[o];
    const std::size_t physical =
        slot >= 0 ? spare_physical_col_[static_cast<std::size_t>(slot)] : o;
    double acc = currents[o];
    // Transient (SEU-style) glitch of this bitline's conversion: a pure
    // function of (column, operation index), so runs stay reproducible.
    if (injector_.transient(physical, mvm_count_)) {
      acc = -acc;
      ++health_.transient_hits;
    }
    currents[o] = acc / weight_scale_;  // back to weight units
  }
  ++mvm_count_;
  const double reads =
      static_cast<double>(in_dim_) * out_dim_ * (config_.differential ? 2 : 1);
  if (mvm_cell_owner_ != &energy_) {
    mvm_energy_cell_ = energy_.cell("analog_mvm");
    mvm_cell_owner_ = &energy_;
  }
  mvm_energy_cell_.add_pj(reads * config_.device.read_energy_pj);
}

std::vector<double> Crossbar::matvec_raw(std::span<const float> x,
                                         double t_seconds) {
  std::vector<double> currents(out_dim_);
  matvec_raw_into(x, currents, t_seconds);
  return currents;
}

void Crossbar::matvec_raw_into(std::span<const float> x, std::span<double> out,
                               double t_seconds) {
  if (out.size() != out_dim_) {
    throw core::Error("imc::Crossbar::matvec_raw_into",
                      "output length mismatch",
                      "got " + std::to_string(out.size()) + ", expected " +
                          std::to_string(out_dim_));
  }
  mvm_periphery(x);

  // Pass 1 (serial): analog reads in the reference (column, row, +/-)
  // order -- the RNG stream is part of the contract -- stored transposed
  // ([row][column]) so pass 2 can stream whole wordlines.
  mvm_values_.resize(in_dim_ * out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    const std::int32_t slot = remap_[o];
    const bool spare = slot >= 0;
    const std::size_t base =
        (spare ? static_cast<std::size_t>(slot) : o) * in_dim_;
    const std::size_t physical =
        spare ? spare_physical_col_[static_cast<std::size_t>(slot)] : o;
    const CellBank& plus = spare ? spare_plus_ : plus_;
    const CellBank& minus = spare ? spare_minus_ : minus_;
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const std::size_t cell = base + i;
      const std::uint64_t site = 2 * (physical * in_dim_ + i);
      double g = read_site(plus, cell, site, t_seconds);
      if (config_.differential) {
        g -= read_site(minus, cell, site + 1, t_seconds);
      }
      mvm_values_[i * out_dim_ + o] = g;
    }
  }

  // Pass 2 (SIMD): Ohm's law + KCL, bitlines as independent lanes. Each
  // column still accumulates (dac[i] * g) * attenuation[i] over ascending
  // i, the exact FP sequence of the fused reference loop.
  std::fill(out.begin(), out.end(), 0.0);
  if (out_dim_ <= 4) {
    // Tiny arrays: the indirect SIMD dispatch costs more than the math it
    // hides. Same left-associative `(dac * g) * attenuation` per element
    // as core::simd::scaled_axpy_f64, so results stay bit-identical.
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const double dac = dac_[i];
      const double att = row_attenuation_[i];
      const double* v = mvm_values_.data() + i * out_dim_;
      for (std::size_t o = 0; o < out_dim_; ++o) {
        out[o] += (dac * v[o]) * att;
      }
    }
  } else {
    for (std::size_t i = 0; i < in_dim_; ++i) {
      core::simd::scaled_axpy_f64(dac_[i], row_attenuation_[i],
                                  mvm_values_.data() + i * out_dim_,
                                  out.data(), out_dim_);
    }
  }

  mvm_finish(out);
}

std::vector<double> Crossbar::matvec_raw_reference(std::span<const float> x,
                                                   double t_seconds) {
  mvm_periphery(x);
  std::vector<double> currents(out_dim_, 0.0);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    const std::int32_t slot = remap_[o];
    const bool spare = slot >= 0;
    const std::size_t base =
        (spare ? static_cast<std::size_t>(slot) : o) * in_dim_;
    const std::size_t physical =
        spare ? spare_physical_col_[static_cast<std::size_t>(slot)] : o;
    const CellBank& plus = spare ? spare_plus_ : plus_;
    const CellBank& minus = spare ? spare_minus_ : minus_;
    double acc = 0.0;
    for (std::size_t i = 0; i < in_dim_; ++i) {
      const std::size_t cell = base + i;
      const std::uint64_t site = 2 * (physical * in_dim_ + i);
      double g = read_site(plus, cell, site, t_seconds);
      if (config_.differential) {
        g -= read_site(minus, cell, site + 1, t_seconds);
      }
      // Ohm's law; KCL sums onto the bitline.
      acc += dac_[i] * g * row_attenuation_[i];
    }
    currents[o] = acc;
  }
  mvm_finish(currents);
  return currents;
}

std::vector<double> Crossbar::matvec_raw_batch(std::span<const float> xs,
                                               std::size_t count,
                                               double t_seconds) {
  if (count == 0) {
    throw core::Error("imc::Crossbar::matvec_raw_batch",
                      "count must be >= 1");
  }
  if (xs.size() != count * in_dim_) {
    throw core::Error("imc::Crossbar::matvec_raw_batch",
                      "input batch length mismatch",
                      "got " + std::to_string(xs.size()) + ", expected " +
                          std::to_string(count * in_dim_));
  }
  std::vector<double> out(count * out_dim_);
  const std::span<double> out_span(out);
  for (std::size_t v = 0; v < count; ++v) {
    matvec_raw_into(xs.subspan(v * in_dim_, in_dim_),
                    out_span.subspan(v * out_dim_, out_dim_), t_seconds);
  }
  return out;
}

double Crossbar::adc_quantize(double value, double full_scale, int bits) {
  return quantize_signed(value, full_scale, bits);
}

void Crossbar::charge_adc(std::size_t conversions) {
  if (config_.adc_bits > 0) {
    energy_.add_pj("adc", static_cast<double>(conversions) *
                              config_.adc_energy_pj *
                              std::pow(4.0, config_.adc_bits - 8));
  }
}

std::vector<float> Crossbar::matvec(std::span<const float> x,
                                    double t_seconds) {
  const auto currents = matvec_raw(x, t_seconds);

  // ADC: shared full-scale per conversion batch; energy scales ~4x/bit.
  double fs = 0.0;
  for (const double c : currents) fs = std::max(fs, std::abs(c));
  std::vector<float> y(out_dim_);
  for (std::size_t o = 0; o < out_dim_; ++o) {
    y[o] = static_cast<float>(quantize_signed(currents[o], fs, config_.adc_bits));
  }
  charge_adc(out_dim_);
  return y;
}

double crossbar_mvm_rmse(const core::TensorF& weights,
                         const CrossbarConfig& config, int trials,
                         double t_seconds, std::uint64_t seed) {
  Crossbar xbar(weights, config);
  core::Rng rng(seed);
  double sq_sum = 0.0;
  std::size_t count = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> x(weights.dim(1));
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto exact = core::matvec(weights, std::span<const float>(x));
    const auto noisy = xbar.matvec(x, t_seconds);
    for (std::size_t o = 0; o < exact.size(); ++o) {
      const double diff = static_cast<double>(noisy[o]) - exact[o];
      sq_sum += diff * diff;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sq_sum / static_cast<double>(count)) : 0.0;
}

}  // namespace icsc::imc
