// Noise-aware training for analog IMC deployment (Sec. IV).
//
// Beyond program-and-verify (fixing the write path) and drift compensation
// (fixing the read path), the algorithmic countermeasure to analog
// non-idealities is to *train with the noise in the loop*: injecting
// weight perturbations during training flattens the loss landscape so the
// deployed network tolerates conductance errors. This module implements
// Gaussian weight-noise injection around the standard SGD loop and the
// experiment comparing standard vs noise-aware training on noisy
// crossbars.
#pragma once

#include <cstdint>

#include "core/nn.hpp"
#include "imc/tile.hpp"

namespace icsc::imc {

struct NoiseTrainingConfig {
  /// Relative std-dev of the multiplicative weight noise injected per
  /// sample during training (sigma as a fraction of each weight).
  double weight_noise_rel = 0.1;
  int epochs = 60;
  float learning_rate = 0.05F;
};

/// Trains `mlp` on `data` with per-sample multiplicative weight noise:
/// before each sample's forward/backward pass the weights are perturbed,
/// gradients are computed on the perturbed weights, and the update is
/// applied to the clean weights (the "noisy student" scheme). Returns the
/// final clean-weight accuracy.
double train_noise_aware(core::Mlp& mlp, const core::Dataset& data,
                         const NoiseTrainingConfig& config,
                         std::uint64_t seed);

/// The Sec. IV robustness experiment: standard vs noise-aware training,
/// both deployed on crossbars with elevated programming variability.
struct NoiseTrainingResult {
  double software_standard = 0.0;
  double software_noise_aware = 0.0;
  double imc_standard = 0.0;
  double imc_noise_aware = 0.0;
};

NoiseTrainingResult run_noise_training_experiment(double device_sigma_rel,
                                                  std::uint64_t seed);

}  // namespace icsc::imc
