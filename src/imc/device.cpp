#include "imc/device.hpp"

#include <algorithm>
#include <cmath>

namespace icsc::imc {

DeviceSpec rram_spec() {
  DeviceSpec spec;
  spec.name = "RRAM (HfO2-class 1T1R)";
  spec.g_min_us = 2.0;
  spec.g_max_us = 150.0;
  spec.program_sigma_rel = 0.04;
  spec.program_gain = 0.55;
  spec.read_noise_rel = 0.01;
  spec.drift_nu = 0.002;  // RRAM retention loss is mild
  spec.drift_nu_sigma = 0.001;
  spec.program_energy_pj = 12.0;
  spec.read_energy_pj = 0.0008;
  return spec;
}

DeviceSpec pcm_spec() {
  DeviceSpec spec;
  spec.name = "PCM (GST mushroom)";
  spec.g_min_us = 0.5;
  spec.g_max_us = 60.0;
  spec.program_sigma_rel = 0.03;
  spec.program_gain = 0.5;
  spec.read_noise_rel = 0.015;
  spec.drift_nu = 0.05;  // pronounced amorphous-phase drift
  spec.drift_nu_sigma = 0.015;
  spec.program_energy_pj = 25.0;
  spec.read_energy_pj = 0.0012;
  return spec;
}

MemoryCell::MemoryCell(const DeviceSpec& spec, core::Rng& rng)
    : g_us_(spec.g_min_us) {
  drift_nu_ = std::max(0.0, rng.normal(spec.drift_nu, spec.drift_nu_sigma));
}

void MemoryCell::program_pulse(const DeviceSpec& spec, core::Rng& rng,
                               double target_us) {
  const double error = target_us - g_us_;
  const double step = spec.program_gain * error;
  // Landing noise scales with the pulse amplitude (amplitude-modulated
  // pulse trains) plus a small cell-intrinsic floor.
  const double sigma =
      spec.program_sigma_rel * std::abs(step) + 0.003 * spec.g_range();
  const double noise = rng.normal(0.0, sigma);
  g_us_ = std::clamp(g_us_ + step + noise, spec.g_min_us, spec.g_max_us);
  ++pulses_;
}

double MemoryCell::conductance_at(double t_seconds) const {
  if (drift_nu_ <= 0.0 || t_seconds <= 1.0) return g_us_;
  // Drift reference time t0 = 1 s (conductance as-verified).
  return g_us_ * std::pow(t_seconds, -drift_nu_);
}

double MemoryCell::read(const DeviceSpec& spec, core::Rng& rng,
                        double t_seconds) const {
  const double g = conductance_at(t_seconds);
  // Noiseless devices skip the draw entirely: sigma = 0 contributes an
  // exact 0.0 either way, so only the RNG stream position differs, and
  // ideal-device sweeps stop paying Box-Muller on every read.
  if (spec.read_noise_rel <= 0.0) return g;
  return g * (1.0 + rng.normal(0.0, spec.read_noise_rel));
}

}  // namespace icsc::imc
