#include "imc/mlc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/nn.hpp"
#include "imc/pipeline.hpp"

namespace icsc::imc {

double MlcGrid::level_target(int l) const {
  assert(levels >= 2);
  const double step = (g_max_us - g_min_us) / static_cast<double>(levels - 1);
  return g_min_us + step * std::clamp(l, 0, levels - 1);
}

int MlcGrid::nearest_level(double g_us) const {
  const double step = (g_max_us - g_min_us) / static_cast<double>(levels - 1);
  const int l = static_cast<int>(std::round((g_us - g_min_us) / step));
  return std::clamp(l, 0, levels - 1);
}

double MlcGrid::quantize(double g_us) const {
  return level_target(nearest_level(g_us));
}

MlcGrid make_grid(const DeviceSpec& spec, int levels) {
  return MlcGrid{spec.g_min_us, spec.g_max_us, levels};
}

int reliable_levels(const DeviceSpec& spec, const ProgramVerifyConfig& config,
                    int probe_cells, std::uint64_t seed) {
  const auto stats = measure_programming(spec, config, probe_cells, seed);
  // Mean |error| of a zero-mean Gaussian is sigma * sqrt(2/pi).
  const double sigma = stats.mean_abs_error_us * 1.2533141373155;
  if (sigma <= 0.0) return 256;
  // Levels are distinguishable when half the spacing exceeds 3 sigma:
  // spacing = range / (L - 1) >= 6 sigma.
  const int levels =
      1 + static_cast<int>(std::floor(spec.g_range() / (6.0 * sigma)));
  return std::clamp(levels, 2, 256);
}

BitSlicedCrossbar::BitSlicedCrossbar(const core::TensorF& weights,
                                     const CrossbarConfig& config, int slices,
                                     int bits_per_slice)
    : out_dim_(weights.dim(0)) {
  assert(slices >= 1 && bits_per_slice >= 1);
  float w_max = 0.0F;
  for (const float w : weights.data()) w_max = std::max(w_max, std::abs(w));
  if (w_max == 0.0F) w_max = 1.0F;
  const int total_bits = slices * bits_per_slice;
  const double code_max = static_cast<double>((1ll << total_bits) - 1);
  const int slice_mask = (1 << bits_per_slice) - 1;

  for (int s = 0; s < slices; ++s) {
    core::TensorF slice_weights({weights.dim(0), weights.dim(1)});
    for (std::size_t i = 0; i < weights.numel(); ++i) {
      const double magnitude = std::abs(weights[i]) / w_max;
      const auto code =
          static_cast<long long>(std::round(magnitude * code_max));
      const int value =
          static_cast<int>((code >> (s * bits_per_slice)) & slice_mask);
      slice_weights[i] =
          weights[i] < 0 ? -static_cast<float>(value) : static_cast<float>(value);
    }
    CrossbarConfig slice_config = config;
    slice_config.seed = config.seed + static_cast<std::uint64_t>(s) * 7919;
    Slice slice;
    slice.crossbar = std::make_unique<Crossbar>(slice_weights, slice_config);
    slice.scale = std::ldexp(1.0, s * bits_per_slice) * w_max / code_max;
    slices_.push_back(std::move(slice));
  }
}

std::vector<float> BitSlicedCrossbar::matvec(std::span<const float> x,
                                             double t_seconds) {
  std::vector<float> y(out_dim_, 0.0F);
  for (auto& slice : slices_) {
    const auto part = slice.crossbar->matvec(x, t_seconds);
    for (std::size_t o = 0; o < y.size(); ++o) {
      y[o] += static_cast<float>(part[o] * slice.scale);
    }
  }
  return y;
}

double BitSlicedCrossbar::total_energy_pj() const {
  double total = 0.0;
  for (const auto& slice : slices_) {
    total += slice.crossbar->energy().total_pj();
  }
  return total;
}

DriftCompensator::DriftCompensator(const DeviceSpec& spec,
                                   const ProgramVerifyConfig& pv,
                                   int reference_cells, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  const double target = spec.g_min_us + 0.8 * spec.g_range();
  for (int i = 0; i < reference_cells; ++i) {
    MemoryCell cell(spec_, rng_);
    program_cell(cell, spec_, rng_, target, pv);
    programmed_.push_back(cell.raw_conductance());
    reference_.push_back(cell);
  }
}

double DriftCompensator::decay_estimate(double t_seconds) {
  double programmed_sum = 0.0, read_sum = 0.0;
  for (std::size_t i = 0; i < reference_.size(); ++i) {
    programmed_sum += programmed_[i];
    read_sum += reference_[i].read(spec_, rng_, t_seconds);
  }
  if (programmed_sum <= 0.0) return 1.0;
  return std::max(1e-6, read_sum / programmed_sum);
}

void DriftCompensator::compensate(std::vector<float>& y, double t_seconds) {
  const double inverse = 1.0 / decay_estimate(t_seconds);
  for (auto& v : y) v = static_cast<float>(v * inverse);
}

namespace {

/// Analog backend with optional reference-column compensation.
class CompensatedBackend : public core::MatvecOverride {
public:
  CompensatedBackend(const core::Mlp& mlp, const TileConfig& config,
                     double t_seconds, bool compensate, std::uint64_t seed)
      : analog_(mlp, config),
        compensator_(config.crossbar.device, config.crossbar.programming, 32,
                     seed ^ 0xC0FFEE),
        t_seconds_(t_seconds),
        compensate_(compensate) {
    analog_.set_read_time(t_seconds);
  }

  std::vector<float> matvec(std::size_t layer, const core::TensorF& weights,
                            std::span<const float> x) override {
    auto y = analog_.matvec(layer, weights, x);
    if (compensate_) compensator_.compensate(y, t_seconds_);
    return y;
  }

private:
  AnalogMlpBackend analog_;
  DriftCompensator compensator_;
  double t_seconds_;
  bool compensate_;
};

}  // namespace

CompensationResult run_drift_compensation_experiment(double t_seconds,
                                                     std::uint64_t seed) {
  const auto data = core::make_gaussian_clusters(50, 8, 16, 1.2, seed);
  core::Mlp mlp({16, 32, 8}, seed);
  mlp.train(data, 0.05F, 60, 0.99);

  TileConfig config;
  config.crossbar.device = pcm_spec();
  config.crossbar.programming.scheme = ProgramScheme::kVerify;

  CompensationResult result;
  {
    CompensatedBackend off(mlp, config, t_seconds, false, seed);
    result.accuracy_uncompensated =
        core::accuracy_with_override(mlp, data, off);
  }
  {
    CompensatedBackend on(mlp, config, t_seconds, true, seed);
    result.accuracy_compensated = core::accuracy_with_override(mlp, data, on);
    DriftCompensator probe(config.crossbar.device,
                           config.crossbar.programming, 32, seed ^ 0xC0FFEE);
    result.decay_estimate = probe.decay_estimate(t_seconds);
  }
  return result;
}

}  // namespace icsc::imc
