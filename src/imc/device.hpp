// Emerging-NVM and SRAM device models for in-memory computing (Sec. IV).
//
// "Both PCM and RRAM devices are characterized by non-ideal behavior in
// terms of variability, drift, and noise issues which severely limit the
// device performance." The device model captures exactly those three
// effects at the level the architecture experiments need:
//   - programming variability: each SET/RESET pulse lands with noise,
//   - conductance drift: G(t) = G0 * (t/t0)^-nu (strong for PCM, weak for
//     RRAM),
//   - read noise: multiplicative 1/f-like noise per read.
// Parameter values follow the characterisation literature ([7], [9], [10]).
#pragma once

#include <string>

#include "core/rng.hpp"

namespace icsc::imc {

struct DeviceSpec {
  std::string name;
  double g_min_us = 1.0;    // minimum programmable conductance (microsiemens)
  double g_max_us = 100.0;  // maximum programmable conductance
  /// Relative std-dev of the landing error of one program pulse (scales
  /// with the pulse amplitude; a small cell-intrinsic floor is added).
  double program_sigma_rel = 0.05;
  /// Fraction of the remaining target error corrected per pulse.
  double program_gain = 0.5;
  /// Relative std-dev of read noise (1/f + thermal).
  double read_noise_rel = 0.01;
  /// Drift exponent nu: G(t) = G(t0) * (t/t0)^-nu, t0 = 1 s.
  double drift_nu = 0.0;
  /// Device-to-device spread of the drift exponent.
  double drift_nu_sigma = 0.0;
  /// Energies (pJ): one program pulse, one cell-read (column share of MVM).
  double program_energy_pj = 10.0;
  double read_energy_pj = 0.001;

  double g_range() const { return g_max_us - g_min_us; }
};

/// RRAM: moderate programming noise, negligible drift ([10]).
DeviceSpec rram_spec();

/// PCM: multilevel-friendly but with pronounced conductance drift ([9]).
DeviceSpec pcm_spec();

/// A single programmable analog memory cell. Pure state: the owning array
/// supplies its DeviceSpec and RNG on every operation, so cells stay
/// trivially movable/copyable (no back-pointers).
class MemoryCell {
public:
  MemoryCell() = default;

  /// Fresh cell at minimum conductance; draws its device-to-device drift
  /// exponent from `rng`.
  MemoryCell(const DeviceSpec& spec, core::Rng& rng);

  /// One program pulse toward `target_us`: moves a fraction program_gain of
  /// the remaining error, with landing noise; clamps to [g_min, g_max].
  void program_pulse(const DeviceSpec& spec, core::Rng& rng, double target_us);

  /// Conductance at time `t_seconds` after programming, with drift applied
  /// (no read noise; deterministic part of a read).
  double conductance_at(double t_seconds) const;

  /// Noisy read at time t: drifted conductance plus multiplicative noise.
  double read(const DeviceSpec& spec, core::Rng& rng, double t_seconds) const;

  double raw_conductance() const { return g_us_; }
  double drift_nu() const { return drift_nu_; }
  int pulses_used() const { return pulses_; }

private:
  double g_us_ = 0.0;
  double drift_nu_ = 0.0;  // per-device drift exponent (D2D spread)
  int pulses_ = 0;
};

}  // namespace icsc::imc
