// Mapping convolutional layers onto crossbar tiles (Sec. IV, architecture
// level).
//
// "a proper mapping of the DNN coefficients and operations into the
// various tiles of the computing system": convolutions are lowered onto
// the MVM arrays by the standard im2col transformation -- every kernel
// filter becomes one crossbar row (flattened k*k*Cin weights), every
// output pixel becomes one input vector (the receptive-field patch) -- so
// a [Cout, Cin, k, k] convolution runs as Cout x (k*k*Cin) analog MVMs
// swept across the feature map.
#pragma once

#include <memory>

#include "core/tensor.hpp"
#include "imc/tile.hpp"

namespace icsc::imc {

/// A convolution layer programmed into tiled crossbars via im2col.
///
/// Error contract: the constructor throws icsc::core::Error unless
/// `weights` is rank-4 with a square, odd kernel; forward() throws when
/// the input is not rank-3 or its channel count does not match.
class CrossbarConv {
public:
  /// weights: [Cout, Cin, k, k]; zero padding "same", stride 1, odd k.
  CrossbarConv(const core::TensorF& weights, const TileConfig& config);

  /// Runs the convolution on input [Cin, H, W] -> [Cout, H, W] through the
  /// analog arrays at time `t_seconds` after programming.
  core::TensorF forward(const core::TensorF& input, double t_seconds = 1.0);

  std::size_t out_channels() const { return out_channels_; }
  std::size_t in_channels() const { return in_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t tile_count() const { return matvec_->tile_count(); }
  double total_energy_pj() const { return matvec_->total_energy_pj(); }
  /// Aggregated fault/repair census of the underlying tiles.
  CrossbarHealth health() const { return matvec_->health(); }

  /// Exact reference (software) for accuracy comparisons.
  static core::TensorF reference_forward(const core::TensorF& weights,
                                         const core::TensorF& input);

private:
  std::size_t out_channels_, in_channels_, kernel_;
  std::unique_ptr<TiledMatvec> matvec_;
};

/// RMSE between the analog and the exact convolution output over a random
/// input (the conv-mapping fidelity probe used by tests and benches).
double crossbar_conv_rmse(const core::TensorF& weights,
                          const TileConfig& config, std::size_t height,
                          std::size_t width, double t_seconds,
                          std::uint64_t seed);

}  // namespace icsc::imc
