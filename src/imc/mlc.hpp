// Multilevel-cell weight mapping and digital drift compensation (Sec. IV).
//
// "Multilevel cell (MLC) operation is possible in both PCM and RRAM where
// the device resistance can be tuned as an analog memory with a virtually
// continuous distribution of weights [9]" -- but finite programming
// precision limits the usable level count, so practical accelerators
// either quantise weights onto L discrete conductance levels or slice the
// weight bits across several lower-precision cells. Accuracy should also
// be optimised by "accurate digital compensation of inaccuracies, such as
// drift and temperature/voltage dependence": we implement the standard
// global-scale drift compensation, where the periphery rescales MVM
// outputs by the inverse of the average conductance decay estimated from
// reference cells.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "imc/crossbar.hpp"

namespace icsc::imc {

/// Discrete MLC level grid across the device conductance range.
struct MlcGrid {
  double g_min_us = 0.0;
  double g_max_us = 0.0;
  int levels = 4;

  /// Target conductance of level index l (equally spaced).
  double level_target(int l) const;
  /// Nearest level index for a desired conductance.
  int nearest_level(double g_us) const;
  /// Quantises a conductance onto the grid.
  double quantize(double g_us) const;
};

MlcGrid make_grid(const DeviceSpec& spec, int levels);

/// The effective number of reliably distinguishable levels for a device
/// programmed with the given scheme: levels are "reliable" when the
/// programming error's 3-sigma is below half the level spacing.
int reliable_levels(const DeviceSpec& spec, const ProgramVerifyConfig& config,
                    int probe_cells, std::uint64_t seed);

/// Bit-sliced crossbar: an [out, in] weight matrix is split into `slices`
/// crossbars, each storing `bits_per_slice` bits of the weight magnitude
/// on an MLC grid of 2^bits_per_slice levels; the digital periphery
/// recombines slice outputs with power-of-two weights. This trades array
/// count for per-cell precision requirements.
class BitSlicedCrossbar {
public:
  BitSlicedCrossbar(const core::TensorF& weights, const CrossbarConfig& config,
                    int slices, int bits_per_slice);

  std::vector<float> matvec(std::span<const float> x, double t_seconds = 1.0);

  std::size_t slice_count() const { return slices_.size(); }
  double total_energy_pj() const;

private:
  struct Slice {
    std::unique_ptr<Crossbar> crossbar;
    double scale;  // contribution weight of this slice
  };
  std::vector<Slice> slices_;
  std::size_t out_dim_ = 0;
};

/// Digital drift compensation: reference column. A set of reference cells
/// is programmed to a known conductance at t=0; at read time the periphery
/// measures their average decay and multiplies MVM outputs by the inverse.
/// Removes the *mean* drift (the D2D nu spread remains).
class DriftCompensator {
public:
  DriftCompensator(const DeviceSpec& spec, const ProgramVerifyConfig& pv,
                   int reference_cells, std::uint64_t seed);

  /// Estimated mean decay factor G(t)/G(0) from the reference cells.
  double decay_estimate(double t_seconds);

  /// Applies the inverse decay to an MVM output vector in place.
  void compensate(std::vector<float>& y, double t_seconds);

private:
  DeviceSpec spec_;
  core::Rng rng_;
  std::vector<MemoryCell> reference_;
  std::vector<double> programmed_;  // as-verified conductances
};

/// Accuracy experiment with compensation on/off (the Sec. IV digital
/// compensation ablation): PCM crossbars at time t.
struct CompensationResult {
  double accuracy_uncompensated = 0.0;
  double accuracy_compensated = 0.0;
  double decay_estimate = 0.0;
};

CompensationResult run_drift_compensation_experiment(double t_seconds,
                                                     std::uint64_t seed);

}  // namespace icsc::imc
