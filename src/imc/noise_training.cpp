#include "imc/noise_training.hpp"

#include <algorithm>
#include <vector>

#include "imc/pipeline.hpp"

namespace icsc::imc {

double train_noise_aware(core::Mlp& mlp, const core::Dataset& data,
                         const NoiseTrainingConfig& config,
                         std::uint64_t seed) {
  core::Rng rng(seed);
  core::Rng epoch_rng(seed ^ 0x5EED);
  constexpr std::size_t kChunk = 25;  // fresh noise draw every 25 samples

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr =
        config.learning_rate / (1.0F + 0.01F * static_cast<float>(epoch));
    const auto order = epoch_rng.permutation(data.size());
    for (std::size_t begin = 0; begin < order.size(); begin += kChunk) {
      const std::size_t end = std::min(order.size(), begin + kChunk);
      // Materialise the chunk as a small dataset.
      core::Dataset chunk;
      chunk.num_classes = data.num_classes;
      chunk.features = core::TensorF({end - begin, data.dim()});
      chunk.labels.resize(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t sample = order[i];
        chunk.labels[i - begin] = data.labels[sample];
        for (std::size_t d = 0; d < data.dim(); ++d) {
          chunk.features(i - begin, d) = data.features(sample, d);
        }
      }
      // Save clean weights, perturb multiplicatively for this chunk.
      std::vector<std::vector<float>> clean_weights;
      std::vector<std::vector<float>> perturbed_weights;
      for (auto& layer : mlp.layers()) {
        auto span = layer.weights.data();
        clean_weights.emplace_back(span.begin(), span.end());
        for (auto& w : span) {
          w *= static_cast<float>(1.0 +
                                  rng.normal(0.0, config.weight_noise_rel));
        }
        perturbed_weights.emplace_back(span.begin(), span.end());
      }
      mlp.train_epoch(chunk, lr, epoch_rng);
      // Transfer the gradient delta onto the clean weights.
      for (std::size_t l = 0; l < mlp.layers().size(); ++l) {
        auto span = mlp.layers()[l].weights.data();
        for (std::size_t i = 0; i < span.size(); ++i) {
          span[i] = clean_weights[l][i] + (span[i] - perturbed_weights[l][i]);
        }
      }
    }
  }
  return mlp.accuracy(data);
}

NoiseTrainingResult run_noise_training_experiment(double device_sigma_rel,
                                                  std::uint64_t seed) {
  const auto data = core::make_gaussian_clusters(50, 8, 16, 1.2, seed);

  // Open-loop (single-pulse) programming leaves *static* conductance
  // errors on every cell -- the perturbation class that flat-minima
  // (noise-aware) training is known to tolerate. Read noise, in contrast,
  // averages out across the bitline sum.
  TileConfig config;
  config.crossbar.device = rram_spec();
  config.crossbar.device.program_sigma_rel =
      std::max(rram_spec().program_sigma_rel, device_sigma_rel);
  config.crossbar.programming.scheme = ProgramScheme::kSinglePulse;

  // Deployment accuracy is averaged over several independent crossbar
  // instantiations: a single device draw is a high-variance estimate of
  // the robustness difference.
  constexpr int kDeployments = 5;
  auto deploy_accuracy = [&](core::Mlp& mlp) {
    double sum = 0.0;
    for (int d = 0; d < kDeployments; ++d) {
      TileConfig instance = config;
      instance.crossbar.seed = config.crossbar.seed + 10000ull * (d + 1);
      AnalogMlpBackend backend(mlp, instance);
      sum += core::accuracy_with_override(mlp, data, backend);
    }
    return sum / kDeployments;
  };

  NoiseTrainingResult result;
  {
    core::Mlp standard({16, 32, 8}, seed);
    standard.train(data, 0.05F, 60, 0.99);
    result.software_standard = standard.accuracy(data);
    result.imc_standard = deploy_accuracy(standard);
  }
  {
    core::Mlp robust({16, 32, 8}, seed);
    NoiseTrainingConfig training;
    // Training noise is capped below the deployment noise: too much noise
    // in the loop destroys convergence faster than it buys robustness.
    training.weight_noise_rel = std::min(device_sigma_rel, 0.1);
    result.software_noise_aware =
        train_noise_aware(robust, data, training, seed);
    result.imc_noise_aware = deploy_accuracy(robust);
  }
  return result;
}

}  // namespace icsc::imc
