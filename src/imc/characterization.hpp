// Device characterisation from simulated measurements (Sec. IV).
//
// Mirrors the experimental methodology of the device papers ([9], [10]):
// program a population of cells, read them over log-spaced retention times,
// and extract the drift exponent nu from the log-log slope; program with
// each scheme and extract the error distribution. These routines close the
// loop between the device model and the parameters the architecture layers
// consume -- and the tests verify the extraction recovers the ground-truth
// model parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sampling.hpp"
#include "core/stats.hpp"
#include "imc/program_verify.hpp"

namespace icsc::imc {

/// Drift characterisation: mean drift exponent fitted on the population's
/// average conductance trace, plus the device-to-device spread of
/// per-cell exponents.
struct DriftCharacterization {
  double fitted_nu = 0.0;
  double nu_spread = 0.0;     // stddev across cells
  double fit_r_squared = 0.0;
};

DriftCharacterization characterize_drift(const DeviceSpec& spec, int cells,
                                         int time_points,
                                         std::uint64_t seed);

/// Programming-error distribution at a fixed target (as device papers
/// report): summary of (G_achieved - target) across the population.
core::Summary characterize_programming_error(const DeviceSpec& spec,
                                             const ProgramVerifyConfig& config,
                                             double target_us, int cells,
                                             std::uint64_t seed);

/// Read-noise characterisation: relative sigma extracted from repeated
/// reads of one programmed cell.
double characterize_read_noise(const DeviceSpec& spec, int reads,
                               std::uint64_t seed);

// ---------------------------------------------------------------------------
// Sequential (CI-driven) device Monte-Carlo: the same characterisation
// studies with an early-stopping budget instead of a fixed population.
// Cell i draws from its own hash-derived RNG stream, so the measurement
// sequence is a deterministic trial stream: an early-stopped run is a
// bit-identical prefix of the exhaustive run at the same seed, which is
// what lets the validation mode assert the exhaustive oracle lands inside
// the early-stopped confidence interval.

/// Outcome of a sequential characterisation study.
struct SequentialCharacterization {
  /// Mean +- CI of the tracked figure (|G error| in uS for programming
  /// error, relative sigma for read noise).
  core::sampling::Estimate estimate;
  std::size_t samples_run = 0;
  std::size_t samples_budgeted = 0;
  bool stopped_early = false;
  core::sampling::StopReason stop_reason = core::sampling::StopReason::kNone;

  double saved_factor() const {
    return samples_run > 0 ? static_cast<double>(samples_budgeted) /
                                 static_cast<double>(samples_run)
                           : 1.0;
  }
};

/// Sequential programming-error study: tracks mean |G_achieved - target|
/// over hash-seeded cells and stops once its CI meets `config`'s target.
/// `budget` caps the population; early_stop disabled runs the whole budget
/// (the exhaustive oracle for the same trial stream).
SequentialCharacterization characterize_programming_error_sequential(
    const DeviceSpec& spec, const ProgramVerifyConfig& program_config,
    double target_us, int budget, std::uint64_t seed,
    const core::sampling::EarlyStopConfig& early_stop);

/// Sequential read-noise study: tracks the per-read relative deviation
/// from the drift-corrected conductance and stops once the CI on the
/// noise sigma (large-sample stddev interval) meets the target.
SequentialCharacterization characterize_read_noise_sequential(
    const DeviceSpec& spec, int budget, std::uint64_t seed,
    const core::sampling::EarlyStopConfig& early_stop);

}  // namespace icsc::imc
