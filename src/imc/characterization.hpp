// Device characterisation from simulated measurements (Sec. IV).
//
// Mirrors the experimental methodology of the device papers ([9], [10]):
// program a population of cells, read them over log-spaced retention times,
// and extract the drift exponent nu from the log-log slope; program with
// each scheme and extract the error distribution. These routines close the
// loop between the device model and the parameters the architecture layers
// consume -- and the tests verify the extraction recovers the ground-truth
// model parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "imc/program_verify.hpp"

namespace icsc::imc {

/// Drift characterisation: mean drift exponent fitted on the population's
/// average conductance trace, plus the device-to-device spread of
/// per-cell exponents.
struct DriftCharacterization {
  double fitted_nu = 0.0;
  double nu_spread = 0.0;     // stddev across cells
  double fit_r_squared = 0.0;
};

DriftCharacterization characterize_drift(const DeviceSpec& spec, int cells,
                                         int time_points,
                                         std::uint64_t seed);

/// Programming-error distribution at a fixed target (as device papers
/// report): summary of (G_achieved - target) across the population.
core::Summary characterize_programming_error(const DeviceSpec& spec,
                                             const ProgramVerifyConfig& config,
                                             double target_us, int cells,
                                             std::uint64_t seed);

/// Read-noise characterisation: relative sigma extracted from repeated
/// reads of one programmed cell.
double characterize_read_noise(const DeviceSpec& spec, int reads,
                               std::uint64_t seed);

}  // namespace icsc::imc
