#include "imc/conv_mapping.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace icsc::imc {

CrossbarConv::CrossbarConv(const core::TensorF& weights,
                           const TileConfig& config)
    : out_channels_(weights.rank() == 4 ? weights.dim(0) : 0),
      in_channels_(weights.rank() == 4 ? weights.dim(1) : 0),
      kernel_(weights.rank() == 4 ? weights.dim(2) : 0) {
  if (weights.rank() != 4) {
    throw core::Error("imc::CrossbarConv", "weights must be rank-4 [Cout, Cin, k, k]",
                      "got shape " + core::shape_to_string(weights.shape()));
  }
  if (weights.dim(2) != weights.dim(3)) {
    throw core::Error("imc::CrossbarConv", "kernel must be square",
                      "got " + std::to_string(weights.dim(2)) + "x" +
                          std::to_string(weights.dim(3)));
  }
  if (kernel_ % 2 != 1) {
    throw core::Error("imc::CrossbarConv", "kernel size must be odd",
                      "got " + std::to_string(kernel_));
  }
  // im2col weight matrix: [Cout, k*k*Cin].
  const std::size_t patch = kernel_ * kernel_ * in_channels_;
  core::TensorF flat({out_channels_, patch});
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    std::size_t col = 0;
    for (std::size_t ic = 0; ic < in_channels_; ++ic) {
      for (std::size_t u = 0; u < kernel_; ++u) {
        for (std::size_t v = 0; v < kernel_; ++v) {
          flat(oc, col++) = weights(oc, ic, u, v);
        }
      }
    }
  }
  matvec_ = std::make_unique<TiledMatvec>(flat, config);
}

core::TensorF CrossbarConv::forward(const core::TensorF& input,
                                    double t_seconds) {
  if (input.rank() != 3) {
    throw core::Error("imc::CrossbarConv::forward",
                      "input must be rank-3 [Cin, H, W]",
                      "got shape " + core::shape_to_string(input.shape()));
  }
  if (input.dim(0) != in_channels_) {
    throw core::Error("imc::CrossbarConv::forward", "channel mismatch",
                      "got " + std::to_string(input.dim(0)) + ", expected " +
                          std::to_string(in_channels_));
  }
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const auto pad = static_cast<std::ptrdiff_t>(kernel_ / 2);
  const std::size_t patch = kernel_ * kernel_ * in_channels_;

  core::TensorF out({out_channels_, h, w});
  std::vector<float> column(patch);
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      std::size_t idx = 0;
      for (std::size_t ic = 0; ic < in_channels_; ++ic) {
        for (std::size_t u = 0; u < kernel_; ++u) {
          const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r + u) - pad;
          for (std::size_t v = 0; v < kernel_; ++v) {
            const std::ptrdiff_t cc = static_cast<std::ptrdiff_t>(c + v) - pad;
            column[idx++] =
                (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h) || cc < 0 ||
                 cc >= static_cast<std::ptrdiff_t>(w))
                    ? 0.0F
                    : input(ic, static_cast<std::size_t>(rr),
                            static_cast<std::size_t>(cc));
          }
        }
      }
      const auto y = matvec_->matvec(column, t_seconds);
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        out(oc, r, c) = y[oc];
      }
    }
  }
  return out;
}

core::TensorF CrossbarConv::reference_forward(const core::TensorF& weights,
                                              const core::TensorF& input) {
  const std::size_t cout = weights.dim(0);
  const std::size_t cin = weights.dim(1);
  const std::size_t k = weights.dim(2);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  core::TensorF out({cout, h, w});
  for (std::size_t oc = 0; oc < cout; ++oc) {
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        double acc = 0.0;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          for (std::size_t u = 0; u < k; ++u) {
            const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r + u) - pad;
            if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t v = 0; v < k; ++v) {
              const std::ptrdiff_t cc =
                  static_cast<std::ptrdiff_t>(c + v) - pad;
              if (cc < 0 || cc >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += static_cast<double>(weights(oc, ic, u, v)) *
                     input(ic, static_cast<std::size_t>(rr),
                           static_cast<std::size_t>(cc));
            }
          }
        }
        out(oc, r, c) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

double crossbar_conv_rmse(const core::TensorF& weights,
                          const TileConfig& config, std::size_t height,
                          std::size_t width, double t_seconds,
                          std::uint64_t seed) {
  core::Rng rng(seed);
  core::TensorF input({weights.dim(1), height, width});
  for (auto& v : input.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  CrossbarConv conv(weights, config);
  const auto got = conv.forward(input, t_seconds);
  const auto ref = CrossbarConv::reference_forward(weights, input);
  double sq = 0.0;
  for (std::size_t i = 0; i < got.numel(); ++i) {
    const double d = static_cast<double>(got[i]) - ref[i];
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(got.numel()));
}

}  // namespace icsc::imc
