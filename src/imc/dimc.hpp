// SRAM-based digital in-memory computing macro (Sec. IV, [2], [8]).
//
// "Recently, SRAM-based digital IMC (DIMC) has been proposed with
// outstanding energy-efficient characteristics" -- exact bit-true integer
// arithmetic computed inside the SRAM macro with bit-serial multipliers
// and adder trees, removing the A/D conversion burden of analog IMC at the
// cost of "the design of fast adder trees and multipliers". The model
// computes exactly (no analog noise) and accounts energy per bit-serial
// cycle, calibrated to the 40-310 TOPS/W envelope of [8].
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/tensor.hpp"

namespace icsc::imc {

struct DimcConfig {
  int weight_bits = 4;   // [8] supports up to 4b weights
  int input_bits = 8;    // bit-serial input streaming
  /// Energy per 1b x weight_bits MAC inside the macro (pJ); includes the
  /// local adder-tree share. Calibrated to ~0.003 pJ for 4b weights in
  /// FD-SOI 18nm ([8] at peak efficiency).
  double mac_energy_pj = 0.003;
  /// Per-output accumulator/readout energy (pJ).
  double readout_energy_pj = 0.05;
};

/// Exact quantised matvec as executed by a DIMC macro: weights and inputs
/// are uniformly quantised to the configured widths, the arithmetic is
/// bit-true integer, and the result is returned de-quantised.
class DimcMacro {
public:
  DimcMacro(const core::TensorF& weights, const DimcConfig& config);

  std::vector<float> matvec(std::span<const float> x);

  const core::EnergyLedger& energy() const { return energy_; }

  /// Ops per MVM (2 per MAC) for TOPS accounting.
  std::uint64_t ops_per_mvm() const;

  /// Peak efficiency implied by the configuration (TOPS/W) at the given
  /// macro clock; the [8] headline numbers for context.
  double tops_per_watt(double clock_mhz, double static_power_mw) const;

private:
  DimcConfig config_;
  core::TensorI32 q_weights_;  // [out, in] integer codes
  double weight_step_ = 1.0;
  core::EnergyLedger energy_;
};

/// Energy per 8b-equivalent MAC of a conventional digital datapath (SRAM
/// fetch + MAC unit), for the analog vs DIMC vs digital comparison bench.
double digital_baseline_mac_energy_pj();

}  // namespace icsc::imc
