// Tiled multi-core IMC accelerator and DNN mapper (Sec. IV, architecture
// level).
//
// "It is essential to develop a multicore system that can harmonize and
// synchronize the analog MVM operations in each memory array, the digital
// activation and error compensation, and the data movement between the
// Processing Elements. This requires ... a proper mapping of the DNN
// coefficients and operations into the various tiles."
//
// A TiledAccelerator partitions each layer's weight matrix into fixed-size
// crossbar tiles, performs the analog MVMs per tile, accumulates partial
// sums digitally, and accounts energy for the array reads, ADCs, digital
// accumulation, and inter-tile traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/tensor.hpp"
#include "imc/crossbar.hpp"

namespace icsc::imc {

struct TileConfig {
  std::size_t tile_rows = 64;   // crossbar inputs per tile
  std::size_t tile_cols = 64;   // crossbar outputs per tile
  CrossbarConfig crossbar;
  /// Digital partial-sum accumulation energy per value (pJ).
  double accumulate_energy_pj = 0.05;
  /// Interconnect energy per value moved between tiles (pJ).
  double noc_energy_pj = 0.15;
  /// Latency per tile MVM (ns) and per NoC hop (ns), for throughput roll-up.
  double tile_mvm_ns = 100.0;
  double noc_hop_ns = 5.0;
  /// Analog accumulation ([11]): partial sums of the row tiles in one
  /// column strip are accumulated in the analog (charge) domain and
  /// digitised once, cutting ADC conversions by the row-tile count at the
  /// cost of a small accumulation error per hop.
  bool analog_accumulation = false;
  double analog_hop_noise_rel = 0.002;  // per extra tile chained
};

/// One weight matrix mapped onto a grid of crossbar tiles.
///
/// Error contract: the constructor throws icsc::core::Error when `weights`
/// is not a non-empty rank-2 tensor or the tile geometry is degenerate;
/// matvec throws on an input-length mismatch. Fault injection configured
/// in `config.crossbar.faults` flows through to every tile (each tile gets
/// an independent fault stream keyed by its seed); `health()` aggregates
/// the per-tile reliability census.
class TiledMatvec {
public:
  TiledMatvec(const core::TensorF& weights, const TileConfig& config);

  std::vector<float> matvec(std::span<const float> x, double t_seconds = 1.0);

  std::size_t tile_count() const { return tiles_.size(); }

  /// Aggregated reliability census across all tiles.
  CrossbarHealth health() const;
  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// Aggregated energy across all tiles plus digital/NoC bookkeeping.
  double total_energy_pj() const;
  /// Energy and latency of one MVM (steady state, tiles run in parallel
  /// across the output dimension, sequentially along the input dimension).
  double mvm_energy_pj() const { return last_mvm_energy_pj_; }
  double mvm_latency_ns() const;
  std::uint64_t ops_per_mvm() const { return 2ull * in_dim_ * out_dim_; }

private:
  struct TileSlot {
    std::size_t row_begin, row_end;  // input slice
    std::size_t col_begin, col_end;  // output slice
    Crossbar crossbar;
  };

  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  TileConfig config_;
  std::vector<TileSlot> tiles_;
  std::size_t row_tiles_ = 0;
  core::EnergyLedger digital_energy_;
  double last_mvm_energy_pj_ = 0.0;
  core::Rng hop_rng_{0xACC};  // analog accumulation-hop noise
};

}  // namespace icsc::imc
