// DNN-on-IMC inference runner (Sec. IV, system level).
//
// Bridges the core::nn networks to the analog substrate: each dense layer
// of a trained MLP is programmed into a tiled crossbar accelerator, and
// inference runs through the analog arrays while accuracy, energy, and the
// impact of every non-ideality knob (programming scheme, drift time, ADC
// resolution, read noise) are measured. This reproduces the Sec. IV
// storyline: naive programming degrades DNN accuracy; program-and-verify
// restores it; drift erodes it over time; DIMC sidesteps analog error at
// a different energy point.
#pragma once

#include <memory>
#include <vector>

#include "core/nn.hpp"
#include "imc/dimc.hpp"
#include "imc/tile.hpp"

namespace icsc::imc {

/// Runs every dense layer of an MLP through tiled analog crossbars.
class AnalogMlpBackend : public core::MatvecOverride {
public:
  AnalogMlpBackend(const core::Mlp& mlp, const TileConfig& config);

  /// Evaluation time (seconds after programming) used for drift.
  void set_read_time(double t_seconds) { t_seconds_ = t_seconds; }

  std::vector<float> matvec(std::size_t layer_index,
                            const core::TensorF& weights,
                            std::span<const float> x) override;

  double total_energy_pj() const;
  std::uint64_t total_ops() const { return ops_; }

private:
  std::vector<std::unique_ptr<TiledMatvec>> layers_;
  double t_seconds_ = 1.0;
  std::uint64_t ops_ = 0;
};

/// Runs every dense layer through an exact DIMC macro.
class DimcMlpBackend : public core::MatvecOverride {
public:
  DimcMlpBackend(const core::Mlp& mlp, const DimcConfig& config);

  std::vector<float> matvec(std::size_t layer_index,
                            const core::TensorF& weights,
                            std::span<const float> x) override;

  double total_energy_pj() const;
  std::uint64_t total_ops() const { return ops_; }

private:
  std::vector<std::unique_ptr<DimcMacro>> layers_;
  std::uint64_t ops_ = 0;
};

/// One row of the Sec. IV accuracy experiments.
struct ImcAccuracyPoint {
  double software_accuracy = 0.0;  // fp32 reference
  double imc_accuracy = 0.0;
  double energy_per_inference_nj = 0.0;
};

/// Trains (deterministically) an MLP on the Gaussian-cluster task and
/// evaluates it through the given tile configuration at `t_seconds`.
ImcAccuracyPoint run_imc_experiment(const TileConfig& config,
                                    double t_seconds, std::uint64_t seed);

}  // namespace icsc::imc
