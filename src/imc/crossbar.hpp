// Analog crossbar matrix-vector multiplication (Sec. IV).
//
// "This characteristic enables efficient matrix-vector multiplication (MVM)
// when RRAM and PCM are arranged in crossbar array structures by leveraging
// physical laws such as Ohm's law for voltage-conductance multiplication
// and Kirchhoff's current law (KCL) for summation of memory currents in
// the same bitline/wordline."
//
// The crossbar maps a weight matrix onto differential conductance pairs
// (G+ - G-), drives DAC-quantised input voltages on the wordlines, sums
// bitline currents (with optional wire-resistance attenuation), and
// digitises the result with ADCs. Every analog non-ideality of the device
// model flows through: programming error, drift at read time, read noise.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "imc/device.hpp"
#include "imc/program_verify.hpp"

namespace icsc::imc {

struct CrossbarConfig {
  DeviceSpec device = rram_spec();
  ProgramVerifyConfig programming;
  int dac_bits = 8;   // input quantisation
  int adc_bits = 8;   // output quantisation; <= 0 disables (ideal sensing)
  bool differential = true;  // weights as G+ - G- pairs
  /// Relative bitline attenuation per wordline crossed (IR drop); 0 = ideal
  /// wires. A 256-row array with 1e-4 loses ~2.5% at the far end.
  double ir_drop_per_row = 0.0;
  /// Energy of one 8-bit ADC conversion (pJ); scales ~4x per extra bit.
  /// SAR ADCs shared per bitline in scaled nodes land near 0.5 pJ.
  double adc_energy_pj = 0.5;
  std::uint64_t seed = 1;
};

/// One programmed crossbar holding an [out, in] weight matrix.
class Crossbar {
public:
  /// Programs `weights` (arbitrary scale) into conductances. The weight
  /// scale factor is chosen so max|w| maps to the full conductance range.
  Crossbar(const core::TensorF& weights, const CrossbarConfig& config);

  /// Analog MVM at `t_seconds` after programming: returns W x in weight
  /// units (the digital periphery rescales conductance sums back).
  std::vector<float> matvec(std::span<const float> x, double t_seconds = 1.0);

  /// Analog MVM *without* the ADC stage: returns the raw bitline sums in
  /// weight units. Used by analog-accumulation architectures ([11]) that
  /// sum partial results in the analog domain across arrays and convert
  /// once. No ADC energy is charged; read energy is.
  std::vector<double> matvec_raw(std::span<const float> x,
                                 double t_seconds = 1.0);

  /// The shared-full-scale signed quantiser the ADC stage applies; exposed
  /// so accumulation architectures can digitise deferred sums identically.
  static double adc_quantize(double value, double full_scale, int bits);

  /// Charges the ADC energy for `conversions` conversions at this
  /// crossbar's resolution (used when the conversion happens downstream).
  void charge_adc(std::size_t conversions);

  /// Total pulses spent programming the array.
  std::uint64_t programming_pulses() const { return programming_pulses_; }

  /// Energy spent so far (programming + reads + ADC).
  const core::EnergyLedger& energy() const { return energy_; }

  std::size_t rows() const { return in_dim_; }
  std::size_t cols() const { return out_dim_; }

  /// Per-MVM analog op count: in*out multiply-accumulates happen "for free"
  /// in the array; the figure of merit counts them as 2 ops (mul + add).
  std::uint64_t ops_per_mvm() const {
    return 2ull * in_dim_ * out_dim_;
  }

private:
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  CrossbarConfig config_;
  core::Rng rng_;
  // Differential pairs, row-major [out][in].
  std::vector<MemoryCell> g_plus_;
  std::vector<MemoryCell> g_minus_;
  double weight_scale_ = 1.0;  // conductance-units per weight-unit
  double input_scale_ = 1.0;   // max|x| assumed by the DAC
  std::uint64_t programming_pulses_ = 0;
  core::EnergyLedger energy_;
};

/// Root-mean-square error of the crossbar MVM against the exact product
/// over random inputs; the convergence-to-ideal property tests use this.
double crossbar_mvm_rmse(const core::TensorF& weights,
                         const CrossbarConfig& config, int trials,
                         double t_seconds, std::uint64_t seed);

}  // namespace icsc::imc
