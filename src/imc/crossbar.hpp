// Analog crossbar matrix-vector multiplication (Sec. IV).
//
// "This characteristic enables efficient matrix-vector multiplication (MVM)
// when RRAM and PCM are arranged in crossbar array structures by leveraging
// physical laws such as Ohm's law for voltage-conductance multiplication
// and Kirchhoff's current law (KCL) for summation of memory currents in
// the same bitline/wordline."
//
// The crossbar maps a weight matrix onto differential conductance pairs
// (G+ - G-), drives DAC-quantised input voltages on the wordlines, sums
// bitline currents (with optional wire-resistance attenuation), and
// digitises the result with ADCs. Every analog non-ideality of the device
// model flows through: programming error, drift at read time, read noise.
#pragma once

#include <cstdint>
#include <vector>

#include "core/aligned.hpp"
#include "core/fault.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "imc/device.hpp"
#include "imc/program_verify.hpp"

namespace icsc::imc {

struct CrossbarConfig {
  DeviceSpec device = rram_spec();
  ProgramVerifyConfig programming;
  int dac_bits = 8;   // input quantisation
  int adc_bits = 8;   // output quantisation; <= 0 disables (ideal sensing)
  bool differential = true;  // weights as G+ - G- pairs
  /// Relative bitline attenuation per wordline crossed (IR drop); 0 = ideal
  /// wires. A 256-row array with 1e-4 loses ~2.5% at the far end.
  double ir_drop_per_row = 0.0;
  /// Energy of one 8-bit ADC conversion (pJ); scales ~4x per extra bit.
  /// SAR ADCs shared per bitline in scaled nodes land near 0.5 pJ.
  double adc_energy_pj = 0.5;
  std::uint64_t seed = 1;
  /// Cell-level fault injection (core/fault.hpp): stuck-at cells read a
  /// pinned Gmin/Gmax, drift-faulted cells decay faster than the device
  /// model, transient faults glitch one bitline conversion. All rates
  /// default to zero (no injection). Fault sites are a pure hash of
  /// (faults.seed, seed, cell), so maps are reproducible and nested
  /// across rates.
  core::FaultConfig faults;
  /// Bounded-retry re-programming: cells whose read-back misses tolerance
  /// after the base P&V round are re-programmed with an escalating pulse
  /// budget. Stuck cells burn the full budget and surface as unrepairable.
  RetryPolicy repair;
  /// Spare output columns for remapping: columns with unrepairable cells
  /// are redirected (worst column first) to the spare with the fewest
  /// defects, so tiled MVMs degrade gracefully instead of silently
  /// corrupting outputs. 0 disables remapping.
  std::size_t spare_columns = 0;
};

/// Reliability census of one programmed crossbar (and, via TiledMatvec,
/// aggregated across tiles).
struct CrossbarHealth {
  std::size_t total_sites = 0;         // programmed cell sites incl. spares
  std::size_t stuck_sites = 0;         // stuck-at-Gmin/Gmax cells
  std::size_t drift_sites = 0;         // accelerated-drift cells
  std::size_t unrepairable_sites = 0;  // stuck after the full retry budget
  std::size_t repaired_cells = 0;      // out-of-tolerance cells a retry fixed
  std::size_t unverified_cells = 0;    // still out of tolerance, not stuck
  std::size_t retry_rounds = 0;        // total re-programming rounds spent
  std::uint64_t wasted_pulses = 0;     // pulses burnt on unrepairable cells
  std::size_t bad_columns = 0;         // logical columns with stuck sites
  std::size_t remapped_columns = 0;    // redirected to spare columns
  std::uint64_t transient_hits = 0;    // bitline glitches during MVMs

  CrossbarHealth& operator+=(const CrossbarHealth& other);
};

/// One programmed crossbar holding an [out, in] weight matrix.
///
/// Error contract: the constructor throws icsc::core::Error when `weights`
/// is not rank-2 or is empty; matvec/matvec_raw throw when the input
/// length does not match the programmed row count.
class Crossbar {
public:
  /// Programs `weights` (arbitrary scale) into conductances. The weight
  /// scale factor is chosen so max|w| maps to the full conductance range.
  /// With fault injection configured, programming also classifies every
  /// cell site, retries out-of-tolerance cells per `config.repair`, and
  /// remaps defective columns onto `config.spare_columns` spares.
  Crossbar(const core::TensorF& weights, const CrossbarConfig& config);

  /// Analog MVM at `t_seconds` after programming: returns W x in weight
  /// units (the digital periphery rescales conductance sums back).
  std::vector<float> matvec(std::span<const float> x, double t_seconds = 1.0);

  /// Analog MVM *without* the ADC stage: returns the raw bitline sums in
  /// weight units. Used by analog-accumulation architectures ([11]) that
  /// sum partial results in the analog domain across arrays and convert
  /// once. No ADC energy is charged; read energy is.
  ///
  /// Internally this runs two passes: a serial pass draws every cell read
  /// in the reference (column, row, +/-) RNG order into a transposed value
  /// plane, then a SIMD pass streams each wordline's contribution across
  /// all bitlines. Results, RNG stream and counters are bit-identical to
  /// matvec_raw_reference.
  std::vector<double> matvec_raw(std::span<const float> x,
                                 double t_seconds = 1.0);

  /// The retained scalar oracle: the original fused per-column
  /// accumulation. Same RNG draws, same FP operation sequence per bitline,
  /// so the equivalence tests can interleave it with matvec_raw on two
  /// identically-programmed arrays and demand exact equality.
  std::vector<double> matvec_raw_reference(std::span<const float> x,
                                           double t_seconds = 1.0);

  /// matvec_raw writing into a caller-provided buffer of cols() doubles
  /// (overwritten, not accumulated) -- the allocation-free form batch and
  /// service callers scatter from. Energy, RNG stream and results are
  /// bit-identical to matvec_raw. Throws on an out-span length mismatch.
  void matvec_raw_into(std::span<const float> x, std::span<double> out,
                       double t_seconds = 1.0);

  /// Batched raw MVMs: `xs` holds `count` input vectors of length rows(),
  /// row-major; the result holds the `count` raw outputs of cols() each,
  /// row-major. Equivalent to calling matvec_raw on each vector in order
  /// (the analog read stream is stateful, so vectors are serialised) --
  /// same RNG draw order, same per-pass read-energy charges, no ADC
  /// energy -- but each output is written in place (no per-vector
  /// allocation) and the periphery scratch is reused across the batch.
  /// `count == 0` is rejected explicitly: a batch with no vectors is a
  /// caller bug, not an empty result.
  std::vector<double> matvec_raw_batch(std::span<const float> xs,
                                       std::size_t count,
                                       double t_seconds = 1.0);

  /// The shared-full-scale signed quantiser the ADC stage applies; exposed
  /// so accumulation architectures can digitise deferred sums identically.
  static double adc_quantize(double value, double full_scale, int bits);

  /// Charges the ADC energy for `conversions` conversions at this
  /// crossbar's resolution (used when the conversion happens downstream).
  void charge_adc(std::size_t conversions);

  /// Total pulses spent programming the array.
  std::uint64_t programming_pulses() const { return programming_pulses_; }

  /// Reliability census: fault counts, retry outcomes, column remaps.
  const CrossbarHealth& health() const { return health_; }

  /// Energy spent so far (programming + reads + ADC).
  const core::EnergyLedger& energy() const { return energy_; }

  std::size_t rows() const { return in_dim_; }
  std::size_t cols() const { return out_dim_; }

  /// Per-MVM analog op count: in*out multiply-accumulates happen "for free"
  /// in the array; the figure of merit counts them as 2 ops (mul + add).
  std::uint64_t ops_per_mvm() const {
    return 2ull * in_dim_ * out_dim_;
  }

private:
  /// Structure-of-arrays plane of programmed cells (one polarity, G+ or
  /// G-): conductance, per-device drift exponent and fault kind live in
  /// parallel flat arrays, so the MVM read pass streams plain doubles
  /// instead of gathering through an array-of-cells layout.
  struct CellBank {
    core::aligned_vector<double> g_us;
    core::aligned_vector<double> drift_nu;
    std::vector<core::FaultKind> fault;

    void reserve(std::size_t n) {
      g_us.reserve(n);
      drift_nu.reserve(n);
      fault.reserve(n);
    }
  };

  /// Programs the differential pair of one physical column cell and
  /// overlays its fault classification; returns stuck-site count added.
  std::size_t program_pair(const core::TensorF& weights, std::size_t weight_row,
                           std::size_t i, std::size_t physical_col,
                           CellBank& plus, CellBank& minus);
  double read_site(const CellBank& bank, std::size_t cell, std::uint64_t site,
                   double t_seconds);
  /// Shared front-end of the raw MVM variants: validates the input, sets
  /// the per-vector DAC range, and fills the dac / attenuation tables.
  void mvm_periphery(std::span<const float> x);
  /// Shared back-end: transient glitches and conductance -> weight rescale,
  /// applied per column in the original order.
  void mvm_finish(std::span<double> currents);

  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  CrossbarConfig config_;
  core::Rng rng_;
  core::FaultInjector injector_;
  // Differential planes, row-major [out][in].
  CellBank plus_;
  CellBank minus_;
  // Programmed spare columns (slot-major [slot][in]) and the logical
  // column -> spare slot redirection (-1 = not remapped).
  CellBank spare_plus_;
  CellBank spare_minus_;
  std::vector<std::uint32_t> spare_physical_col_;  // slot -> physical column
  std::vector<std::int32_t> remap_;
  // MVM scratch reused across calls: transposed read values [in][out],
  // DAC codes and IR-drop attenuation per wordline.
  core::aligned_vector<double> mvm_values_;
  std::vector<double> dac_;
  std::vector<double> row_attenuation_;
  double weight_scale_ = 1.0;  // conductance-units per weight-unit
  double input_scale_ = 1.0;   // max|x| assumed by the DAC
  std::uint64_t programming_pulses_ = 0;
  std::uint64_t mvm_count_ = 0;  // operation index for transient faults
  CrossbarHealth health_;
  core::EnergyLedger energy_;
  /// Pre-resolved "analog_mvm" ledger slot: the per-pass charge in
  /// mvm_finish() is a pointer add instead of a string map lookup. Bound
  /// lazily against &energy_ so a copied/moved/relocated Crossbar rebinds
  /// into its own ledger instead of charging the source's.
  core::EnergyCell mvm_energy_cell_;
  const core::EnergyLedger* mvm_cell_owner_ = nullptr;
};

/// Root-mean-square error of the crossbar MVM against the exact product
/// over random inputs; the convergence-to-ideal property tests use this.
double crossbar_mvm_rmse(const core::TensorF& weights,
                         const CrossbarConfig& config, int trials,
                         double t_seconds, std::uint64_t seed);

}  // namespace icsc::imc
