#include "imc/tile.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/trace.hpp"

namespace icsc::imc {

TiledMatvec::TiledMatvec(const core::TensorF& weights, const TileConfig& config)
    : in_dim_(weights.rank() == 2 ? weights.dim(1) : 0),
      out_dim_(weights.rank() == 2 ? weights.dim(0) : 0),
      config_(config) {
  if (weights.rank() != 2 || in_dim_ == 0 || out_dim_ == 0) {
    throw core::Error("imc::TiledMatvec", "weights must be non-empty rank-2",
                      "got shape " + core::shape_to_string(weights.shape()));
  }
  if (config.tile_rows == 0 || config.tile_cols == 0) {
    throw core::Error("imc::TiledMatvec", "tile geometry must be non-zero",
                      std::to_string(config.tile_rows) + "x" +
                          std::to_string(config.tile_cols));
  }
  row_tiles_ = (in_dim_ + config.tile_rows - 1) / config.tile_rows;
  const std::size_t col_tiles =
      (out_dim_ + config.tile_cols - 1) / config.tile_cols;
  std::uint64_t tile_seed = config.crossbar.seed;
  for (std::size_t ct = 0; ct < col_tiles; ++ct) {
    const std::size_t col_begin = ct * config.tile_cols;
    const std::size_t col_end = std::min(out_dim_, col_begin + config.tile_cols);
    for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
      const std::size_t row_begin = rt * config.tile_rows;
      const std::size_t row_end = std::min(in_dim_, row_begin + config.tile_rows);
      core::TensorF slice({col_end - col_begin, row_end - row_begin});
      for (std::size_t o = col_begin; o < col_end; ++o) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          slice(o - col_begin, i - row_begin) = weights(o, i);
        }
      }
      CrossbarConfig xcfg = config.crossbar;
      xcfg.seed = ++tile_seed;  // independent device populations per tile
      tiles_.push_back(TileSlot{row_begin, row_end, col_begin, col_end,
                                Crossbar(slice, xcfg)});
    }
  }
}

std::vector<float> TiledMatvec::matvec(std::span<const float> x,
                                       double t_seconds) {
  ICSC_TRACE_SPAN("imc/tiled_mvm");
  ICSC_TRACE_COUNT("imc.mvms", 1);
  if (x.size() != in_dim_) {
    throw core::Error("imc::TiledMatvec::matvec", "input length mismatch",
                      "got " + std::to_string(x.size()) + ", expected " +
                          std::to_string(in_dim_));
  }
  std::vector<float> y(out_dim_, 0.0F);
  double energy_before = total_energy_pj();

  // Column strips (the tiles_ groups of row_tiles_ consecutive slots) are
  // independent: disjoint output ranges, per-tile device RNGs, per-tile
  // energy ledgers. They fan out over the shared pool; within a strip the
  // row tiles still chain serially in rt order, so every per-tile RNG draw
  // sequence and float accumulation order matches the serial code and the
  // MVM output is bit-identical.
  const std::size_t strips = row_tiles_ == 0 ? 0 : tiles_.size() / row_tiles_;
  if (config_.analog_accumulation) {
    // Charge-domain accumulation across the row tiles of each column
    // strip; a single ADC conversion per output ([11]). The shared hop-RNG
    // draws are made serially up front in the exact order the serial strip
    // loop would make them, then consumed read-only by the strip tasks.
    std::vector<std::vector<double>> hop_noise(strips);
    for (std::size_t s = 0; s < strips; ++s) {
      const auto& strip_head = tiles_[s * row_tiles_];
      const std::size_t strip_outputs =
          strip_head.col_end - strip_head.col_begin;
      hop_noise[s].reserve((row_tiles_ - 1) * strip_outputs);
      for (std::size_t rt = 1; rt < row_tiles_; ++rt) {
        for (std::size_t o = 0; o < strip_outputs; ++o) {
          hop_noise[s].push_back(
              hop_rng_.normal(0.0, config_.analog_hop_noise_rel));
        }
      }
    }
    core::parallel_for(0, strips, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        const std::size_t first = s * row_tiles_;
        auto& strip_head = tiles_[first];
        const std::size_t strip_outputs =
            strip_head.col_end - strip_head.col_begin;
        std::vector<double> acc(strip_outputs, 0.0);
        std::size_t noise_cursor = 0;
        for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
          auto& slot = tiles_[first + rt];
          const auto raw = slot.crossbar.matvec_raw(
              x.subspan(slot.row_begin, slot.row_end - slot.row_begin),
              t_seconds);
          for (std::size_t o = 0; o < raw.size(); ++o) {
            // Each extra chained tile adds a small charge-transfer error.
            const double hop =
                rt == 0 ? 0.0 : hop_noise[s][noise_cursor++];
            acc[o] += raw[o] * (1.0 + hop);
          }
        }
        double fs = 0.0;
        for (const double v : acc) fs = std::max(fs, std::abs(v));
        for (std::size_t o = 0; o < strip_outputs; ++o) {
          y[strip_head.col_begin + o] =
              static_cast<float>(Crossbar::adc_quantize(
                  acc[o], fs, config_.crossbar.adc_bits));
        }
        strip_head.crossbar.charge_adc(strip_outputs);
      }
    });
  } else {
    core::parallel_for(0, strips, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
          auto& slot = tiles_[s * row_tiles_ + rt];
          const auto piece = slot.crossbar.matvec(
              x.subspan(slot.row_begin, slot.row_end - slot.row_begin),
              t_seconds);
          for (std::size_t o = 0; o < piece.size(); ++o) {
            y[slot.col_begin + o] += piece[o];
          }
        }
      }
    });
    // Digital accumulation of row-tile partial sums + NoC transport of
    // each partial-output vector to the accumulating tile.
    const double partials =
        static_cast<double>(out_dim_) * static_cast<double>(row_tiles_);
    digital_energy_.add_pj("accumulate",
                           partials * config_.accumulate_energy_pj);
    if (row_tiles_ > 1) {
      digital_energy_.add_pj("noc", partials * config_.noc_energy_pj);
    }
  }
  last_mvm_energy_pj_ = total_energy_pj() - energy_before;
  return y;
}

CrossbarHealth TiledMatvec::health() const {
  CrossbarHealth total;
  for (const auto& slot : tiles_) total += slot.crossbar.health();
  return total;
}

double TiledMatvec::total_energy_pj() const {
  double total = digital_energy_.total_pj();
  for (const auto& slot : tiles_) total += slot.crossbar.energy().total_pj();
  return total;
}

double TiledMatvec::mvm_latency_ns() const {
  // Column tiles operate in parallel; the row tiles of one column chain
  // through the accumulator; partial sums hop once per row tile.
  return config_.tile_mvm_ns +
         static_cast<double>(row_tiles_ - 1) *
             (config_.tile_mvm_ns + config_.noc_hop_ns);
}

}  // namespace icsc::imc
