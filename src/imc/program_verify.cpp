#include "imc/program_verify.hpp"

#include <algorithm>
#include <cmath>

#include "core/trace.hpp"

namespace icsc::imc {

int program_cell(MemoryCell& cell, const DeviceSpec& spec, core::Rng& rng,
                 double target_us, const ProgramVerifyConfig& config) {
  const int before = cell.pulses_used();
  switch (config.scheme) {
    case ProgramScheme::kSinglePulse:
      cell.program_pulse(spec, rng, target_us);
      break;
    case ProgramScheme::kFixedPulses:
      for (int p = 0; p < config.fixed_pulses; ++p) {
        cell.program_pulse(spec, rng, target_us);
      }
      break;
    case ProgramScheme::kVerify: {
      for (int p = 0; p < config.max_pulses; ++p) {
        cell.program_pulse(spec, rng, target_us);
        // Verify step: read back immediately (t ~ 1 s, no drift yet).
        const double readback = cell.raw_conductance();
        if (std::abs(readback - target_us) <=
            config.tolerance_rel * spec.g_range()) {
          break;
        }
      }
      break;
    }
  }
  return cell.pulses_used() - before;
}

RepairOutcome program_cell_retry(MemoryCell& cell, const DeviceSpec& spec,
                                 core::Rng& rng, double target_us,
                                 const ProgramVerifyConfig& config,
                                 const RetryPolicy& policy) {
  // No span here: one call per cell is far below useful span granularity
  // (the array-level span lives in Crossbar's constructor); the counters
  // below are cheap per-thread cells.
  RepairOutcome outcome;
  const auto within_tolerance = [&] {
    return std::abs(cell.raw_conductance() - target_us) <=
           config.tolerance_rel * spec.g_range();
  };
  // The escalating pulse budget is cumulative: each retry round scales the
  // *previous* round's budget via policy.escalate, reproducing the original
  // hand-rolled controller bit-for-bit.
  ProgramVerifyConfig round = config;
  const auto stats = core::retry_until(policy, [&](int retry) {
    if (retry > 0) {
      round.max_pulses = policy.escalate(round.max_pulses);
      round.fixed_pulses = policy.escalate(round.fixed_pulses);
    }
    outcome.pulses += program_cell(cell, spec, rng, target_us, round);
    return within_tolerance();
  });
  outcome.retries = stats.retries;
  outcome.verified = stats.succeeded;
  ICSC_TRACE_COUNT("imc.program_pulses",
                   static_cast<std::uint64_t>(outcome.pulses));
  ICSC_TRACE_COUNT("imc.program_retries",
                   static_cast<std::uint64_t>(outcome.retries));
  if (!outcome.verified) ICSC_TRACE_COUNT("imc.program_failures", 1);
  return outcome;
}

ProgramStats measure_programming(const DeviceSpec& spec,
                                 const ProgramVerifyConfig& config,
                                 int cells, std::uint64_t seed) {
  core::Rng rng(seed);
  ProgramStats stats;
  for (int i = 0; i < cells; ++i) {
    MemoryCell cell(spec, rng);
    const double target = rng.uniform(spec.g_min_us, spec.g_max_us);
    const int pulses = program_cell(cell, spec, rng, target, config);
    const double error = std::abs(cell.raw_conductance() - target);
    stats.mean_abs_error_us += error;
    stats.max_abs_error_us = std::max(stats.max_abs_error_us, error);
    stats.mean_pulses += pulses;
    stats.energy_pj += pulses * spec.program_energy_pj;
  }
  if (cells > 0) {
    stats.mean_abs_error_us /= cells;
    stats.mean_pulses /= cells;
  }
  return stats;
}

}  // namespace icsc::imc
