#include "hetero/dl_pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "hetero/unet_profile.hpp"

namespace icsc::hetero {

StorageProfile storage_sata_ssd() { return {"sata-ssd", 0.53, 90.0, 0.0}; }
StorageProfile storage_nvme_ssd() { return {"nvme-ssd", 3.5, 80.0, 0.0}; }
StorageProfile storage_low_latency_ssd() {
  return {"low-latency-ssd", 2.5, 10.0, 0.0};
}
StorageProfile storage_pmem() { return {"pmem", 6.8, 0.3, 0.0}; }
StorageProfile storage_computational_ssd() {
  // NVMe media with an inline FPGA preprocessing engine [23].
  return {"computational-ssd", 3.5, 80.0, 3.0};
}

DlWorkload workload_from_unet(std::size_t input_size,
                              std::size_t base_channels, int depth,
                              double sample_mb) {
  DlWorkload workload;
  workload.name = "UNet(" + std::to_string(input_size) + ", " +
                  std::to_string(base_channels) + "ch, d" +
                  std::to_string(depth) + ")";
  workload.sample_mb = sample_mb;
  double forward_gflops = 0.0;
  for (const auto& layer : make_unet_layers(input_size, base_channels, depth)) {
    forward_gflops += layer.gflops();
  }
  workload.infer_gflops_per_sample = forward_gflops;
  // Backward pass ~ 2x forward; training = forward + backward.
  workload.train_gflops_per_sample = 3.0 * forward_gflops;
  return workload;
}

PipelineResult run_pipeline(const PipelineConfig& config) {
  const DlWorkload& wl = config.workload;
  const double batch_raw_gb =
      static_cast<double>(wl.batch_size) * wl.sample_mb / 1024.0;
  const double batch_pre_gb = batch_raw_gb * wl.preprocess_ratio;

  StageBreakdown stage;
  const bool in_storage_preprocess =
      config.io_path == IoPath::kComputationalStorage &&
      config.storage.inline_compute_gbs > 0.0;

  // Storage stage: read raw data; a computational SSD streams through its
  // engine at min(read, compute) rate and emits the preprocessed volume.
  const double request_latency_s = config.storage.latency_us * 1e-6;
  if (in_storage_preprocess) {
    const double stream_gbs =
        std::min(config.storage.read_gbs, config.storage.inline_compute_gbs);
    stage.storage_s = batch_raw_gb / stream_gbs + request_latency_s;
    stage.preprocess_s = 0.0;
  } else {
    stage.storage_s = batch_raw_gb / config.storage.read_gbs + request_latency_s;
    stage.preprocess_s =
        batch_raw_gb * 1024.0 / wl.host_preprocess_mbs;  // MB / (MB/s)
  }

  // Host-to-device copy of the (preprocessed) batch.
  stage.h2d_s = config.device.host_link_gbs > 0
                    ? batch_pre_gb / config.device.host_link_gbs
                    : 0.0;

  // Device compute.
  const double gflops_per_sample =
      config.training ? wl.train_gflops_per_sample : wl.infer_gflops_per_sample;
  const double sustained =
      config.device.peak_gflops * wl.device_efficiency;
  stage.compute_s =
      static_cast<double>(wl.batch_size) * gflops_per_sample / sustained;

  // Device-to-host: gradients/metrics for training (small), masks for
  // inference (one channel of the preprocessed volume).
  const double d2h_gb = config.training ? batch_pre_gb * 0.02 : batch_pre_gb * 0.25;
  stage.d2h_s = config.device.host_link_gbs > 0
                    ? d2h_gb / config.device.host_link_gbs
                    : 0.0;

  // Partial pipelining: the bottleneck stage is always paid; a fraction
  // `overlap` of the remaining stage time is hidden behind it.
  const double total = stage.batch_total();
  const double bottleneck =
      std::max({stage.storage_s, stage.preprocess_s, stage.h2d_s,
                stage.compute_s, stage.d2h_s});
  const double batch_time =
      bottleneck + (1.0 - config.overlap) * (total - bottleneck);

  PipelineResult result;
  result.per_batch = stage;
  const double batches = std::ceil(static_cast<double>(wl.samples) /
                                   static_cast<double>(wl.batch_size));
  // First batch cannot overlap with a predecessor.
  result.epoch_seconds = total + std::max(0.0, batches - 1.0) * batch_time;
  result.samples_per_second =
      result.epoch_seconds > 0
          ? static_cast<double>(wl.samples) / result.epoch_seconds
          : 0.0;
  result.exposed_io_fraction =
      batch_time > 0 ? 1.0 - std::min(stage.compute_s, batch_time) / batch_time
                     : 0.0;
  return result;
}

double relative_improvement(const PipelineResult& baseline,
                            const PipelineResult& optimized, bool training) {
  if (training) {
    return baseline.epoch_seconds > 0
               ? 1.0 - optimized.epoch_seconds / baseline.epoch_seconds
               : 0.0;
  }
  return baseline.samples_per_second > 0
             ? optimized.samples_per_second / baseline.samples_per_second - 1.0
             : 0.0;
}

}  // namespace icsc::hetero
