// Heterogeneous device profiles and roofline evaluation (Sec. VI).
//
// The Sec. VI benchmarking campaign profiles "CPU, GPU, and FPGA
// architectures in different stages of the DL pipeline". We encode each
// platform as a small analytic profile (peak compute, memory bandwidth,
// host-link bandwidth, power) and provide the roofline model used to
// reason about attainable performance; the catalog doubles as part of the
// Fig. 1 survey data.
#pragma once

#include <string>
#include <vector>

namespace icsc::hetero {

struct DeviceProfile {
  std::string name;
  double peak_gflops = 0.0;     // sustained-tensor peak at workload precision
  double mem_bandwidth_gbs = 0.0;
  double host_link_gbs = 0.0;   // PCIe/CXL effective bandwidth
  double tdp_w = 0.0;
  double idle_w = 0.0;
};

/// Server-class profiles used in the campaign (public datasheet numbers,
/// derated to sustained values).
DeviceProfile profile_server_cpu();   // 2x32-core x86
DeviceProfile profile_hpc_gpu();      // A100-class, fp16 tensor
DeviceProfile profile_fpga_card();    // Alveo U50-class, int8 datapath

/// Roofline: attainable GFLOP/s at the given arithmetic intensity
/// (FLOPs per byte moved from device memory).
double roofline_gflops(const DeviceProfile& device,
                       double arithmetic_intensity);

/// Arithmetic intensity below which the device is memory-bound.
double ridge_point(const DeviceProfile& device);

/// Energy efficiency at full utilisation (GFLOPS/W).
double peak_gflops_per_watt(const DeviceProfile& device);

/// Time and energy to execute `gflops` of work at a given intensity,
/// including host-link transfer of `transfer_gb`.
struct ExecutionEstimate {
  double seconds = 0.0;
  double joules = 0.0;
  double achieved_gflops = 0.0;
};

ExecutionEstimate estimate_execution(const DeviceProfile& device,
                                     double gflops, double arithmetic_intensity,
                                     double transfer_gb);

}  // namespace icsc::hetero
