// Pre-alignment filters for edit-distance clustering (Sec. VI).
//
// "Alternative solutions are based on approximated distance techniques
// between strings [33], [34]" -- Shouji and SneakySnake are pre-alignment
// filters that cheaply reject pairs whose edit distance must exceed a
// threshold, so the expensive DP/bit-parallel kernel only runs on
// candidates. We implement the two standard CPU-friendly filters:
//   - length filter: | |a| - |b| | > threshold rejects immediately,
//   - q-gram filter: two strings within edit distance t share at least
//     max(|a|,|b|) - q + 1 - q*t q-grams (the q-gram lemma); counting
//     4^q-bucket histograms gives a lower bound on the distance.
// Both are *complete* (never reject a true match), which the tests verify.
#pragma once

#include <cstdint>
#include <vector>

#include "hetero/dna/cluster.hpp"

namespace icsc::hetero::dna {

/// Lower bound on edit distance from the length difference.
int length_lower_bound(const Strand& a, const Strand& b);

/// q-gram-lemma lower bound on the edit distance: each edit destroys at
/// most q q-grams, so d >= (shared-deficit) / q. q in [1, 8].
int qgram_lower_bound(const Strand& a, const Strand& b, int q);

/// 4^q-bucket q-gram histogram of a strand (q in [1, 8] keeps the table
/// <= 64Ki buckets). Cache these per cluster representative so repeated
/// bound evaluations cost one L1 pass instead of a rebuild.
std::vector<std::uint16_t> qgram_histogram(const Strand& s, int q);

/// The q-gram lower bound evaluated on two precomputed histograms:
/// L1(ha, hb) / (2q). Both histograms must have been built with the same q.
int qgram_histogram_lower_bound(const std::vector<std::uint16_t>& ha,
                                const std::vector<std::uint16_t>& hb, int q);

struct FilterParams {
  int q = 4;
  bool use_length = true;
  bool use_qgram = true;
};

/// Greedy star clustering with pre-alignment filtering: candidate pairs
/// whose lower bound exceeds the threshold skip the exact kernel.
struct FilteredClusterResult {
  ClusterResult clusters;
  std::uint64_t candidates = 0;       // pairs considered
  std::uint64_t filtered_out = 0;     // rejected by lower bounds alone
  std::uint64_t exact_evaluations = 0;  // pairs that ran the exact kernel
};

FilteredClusterResult cluster_reads_filtered(const std::vector<Read>& reads,
                                             const ClusterParams& params,
                                             const FilterParams& filter);

}  // namespace icsc::hetero::dna
