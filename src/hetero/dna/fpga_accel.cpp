#include "hetero/dna/fpga_accel.hpp"

namespace icsc::hetero::dna {

EditAcceleratorModel::EditAcceleratorModel(EditAcceleratorConfig config)
    : config_(config) {}

double EditAcceleratorModel::cups() const {
  return static_cast<double>(config_.pe_count) * config_.fmax_mhz * 1e6 *
         config_.utilization;
}

AcceleratorKpis EditAcceleratorModel::evaluate(std::uint64_t pairs,
                                               std::size_t n,
                                               std::size_t m) const {
  AcceleratorKpis kpis;
  const double cells_per_pair = static_cast<double>(n) * static_cast<double>(m);
  kpis.tcups = cups() * 1e-12;
  kpis.pairs_per_second = cells_per_pair > 0 ? cups() / cells_per_pair : 0.0;
  kpis.mpairs_per_joule =
      config_.board_power_w > 0
          ? kpis.pairs_per_second / config_.board_power_w * 1e-6
          : 0.0;
  kpis.seconds_for_pairs =
      kpis.pairs_per_second > 0 ? static_cast<double>(pairs) /
                                      kpis.pairs_per_second
                                : 0.0;
  kpis.joules_for_pairs = kpis.seconds_for_pairs * config_.board_power_w;
  return kpis;
}

AccelVsCpu compare_backends(const EditAcceleratorModel& accel,
                            const CpuEditProfile& cpu, std::uint64_t pairs,
                            std::size_t n, std::size_t m) {
  AccelVsCpu out;
  const double cells =
      static_cast<double>(pairs) * static_cast<double>(n) * m;
  const double cpu_seconds = cpu.cups > 0 ? cells / cpu.cups : 0.0;
  const double cpu_joules = cpu_seconds * cpu.power_w;
  const auto kpis = accel.evaluate(pairs, n, m);
  if (kpis.seconds_for_pairs > 0) {
    out.speedup = cpu_seconds / kpis.seconds_for_pairs;
  }
  if (kpis.joules_for_pairs > 0) {
    out.energy_ratio = cpu_joules / kpis.joules_for_pairs;
  }
  return out;
}

}  // namespace icsc::hetero::dna
