// Levenshtein (edit) distance kernels (Sec. VI, Fig. 6).
//
// "The similarity index is determined using the edit distance, also known
// as the Levenshtein distance [27]" and "the computations are in the
// context of bitwise operations", which motivates the FPGA accelerator of
// [35]. Three CPU kernels are provided, in increasing sophistication:
//   - full dynamic programming (the reference, O(nm) cells),
//   - banded DP (exact when the distance fits the band, O(n*band)),
//   - Myers/Hyyro bit-parallel (64 cells per machine word, the algorithm
//     the GPU work [29] and FPGA designs [28], [31] parallelise).
// All three are cross-validated against each other in the test suite.
#pragma once

#include <cstdint>
#include <span>

#include "hetero/dna/encoding.hpp"

namespace icsc::hetero::dna {

/// Exact edit distance by full DP (two-row).
int levenshtein_full(const Strand& a, const Strand& b);

/// Banded DP: exact if the true distance is <= band; otherwise returns
/// band + 1 (a lower bound stating "greater than band"). band >= 0.
int levenshtein_banded(const Strand& a, const Strand& b, int band);

/// Myers bit-parallel edit distance (blocked for patterns longer than 64).
int levenshtein_myers(const Strand& a, const Strand& b);

/// Number of DP cell updates a full-matrix computation performs; the unit
/// behind the paper's TCUPS (tera cell updates per second) figure of merit.
inline std::uint64_t dp_cells(const Strand& a, const Strand& b) {
  return static_cast<std::uint64_t>(a.size()) * b.size();
}

}  // namespace icsc::hetero::dna
