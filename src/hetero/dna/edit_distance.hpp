// Levenshtein (edit) distance kernels (Sec. VI, Fig. 6).
//
// "The similarity index is determined using the edit distance, also known
// as the Levenshtein distance [27]" and "the computations are in the
// context of bitwise operations", which motivates the FPGA accelerator of
// [35]. Three CPU kernels are provided, in increasing sophistication:
//   - full dynamic programming (the reference, O(nm) cells),
//   - banded DP (exact when the distance fits the band, O(n*band)),
//   - Myers/Hyyro bit-parallel (64 cells per machine word, the algorithm
//     the GPU work [29] and FPGA designs [28], [31] parallelise).
// All three are cross-validated against each other in the test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hetero/dna/encoding.hpp"

namespace icsc::hetero::dna {

/// Exact edit distance by full DP (two-row).
int levenshtein_full(const Strand& a, const Strand& b);

/// Banded DP: exact if the true distance is <= band; otherwise returns
/// band + 1 (a lower bound stating "greater than band"). band >= 0.
int levenshtein_banded(const Strand& a, const Strand& b, int band);

/// Myers bit-parallel edit distance (blocked for patterns longer than 64).
int levenshtein_myers(const Strand& a, const Strand& b);

/// Banded Myers/Hyyro: the exact contract of levenshtein_banded (exact
/// result when the true distance is <= band, band + 1 otherwise; band >= 0)
/// computed bit-parallel. Columns early-abandon as soon as the running
/// score can no longer come back under the band -- each remaining text
/// character changes the score by at most one, so
/// `score - remaining > band` proves the final distance exceeds it.
int levenshtein_myers_banded(const Strand& a, const Strand& b, int band);

/// Prebuilt Myers match-mask table (peq) for one pattern strand, reusable
/// across many banded comparisons against different texts. Building it is
/// the only per-pattern work of the bit-parallel kernel, so clustering
/// passes construct one per read and amortise it over every candidate.
class MyersPattern {
public:
  explicit MyersPattern(const Strand& pattern);

  std::size_t length() const { return length_; }
  std::size_t blocks() const { return peq_.size() / 4; }
  const std::uint64_t* peq() const { return peq_.data(); }

private:
  std::size_t length_ = 0;
  std::vector<std::uint64_t> peq_;  // [block * 4 + base], 64 rows per block
};

/// Batched levenshtein_myers_banded: out[i] is exactly what
/// levenshtein_myers_banded(pattern, *texts[i], band) returns, for every i
/// in [0, count). The texts ride the SIMD lanes of core/simd.hpp (with a
/// scalar fallback), so screen survivors are evaluated N at a time while
/// every lane still follows the scalar column recurrence bit-for-bit.
void levenshtein_myers_banded_batch(const MyersPattern& pattern,
                                    const Strand* const* texts,
                                    std::size_t count, int band, int* out);

/// DP cells a Myers bit-parallel computation touches per text column:
/// every 64-cell word of the pattern is updated whole. The CUPS numerator
/// the screened clustering path books per exact evaluation.
inline std::uint64_t myers_cells(const Strand& pattern, const Strand& text) {
  const std::uint64_t blocks = (pattern.size() + 63) / 64;
  return 64 * blocks * static_cast<std::uint64_t>(text.size());
}

/// Number of DP cell updates a full-matrix computation performs; the unit
/// behind the paper's TCUPS (tera cell updates per second) figure of merit.
inline std::uint64_t dp_cells(const Strand& a, const Strand& b) {
  return static_cast<std::uint64_t>(a.size()) * b.size();
}

}  // namespace icsc::hetero::dna
