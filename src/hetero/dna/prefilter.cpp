#include "hetero/dna/prefilter.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <vector>

namespace icsc::hetero::dna {

int length_lower_bound(const Strand& a, const Strand& b) {
  return static_cast<int>(
      std::llabs(static_cast<long long>(a.size()) -
                 static_cast<long long>(b.size())));
}

namespace {

/// 4^q-bucket q-gram histogram (q <= 8 keeps the table <= 64Ki buckets).
std::vector<std::uint16_t> qgram_histogram(const Strand& s, int q) {
  std::vector<std::uint16_t> hist(std::size_t{1} << (2 * q), 0);
  if (s.size() < static_cast<std::size_t>(q)) return hist;
  const std::uint32_t mask = (1u << (2 * q)) - 1;
  std::uint32_t code = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    code = ((code << 2) | static_cast<std::uint8_t>(s[i])) & mask;
    if (i + 1 >= static_cast<std::size_t>(q)) ++hist[code];
  }
  return hist;
}

}  // namespace

int qgram_lower_bound(const Strand& a, const Strand& b, int q) {
  assert(q >= 1 && q <= 8);
  const auto ha = qgram_histogram(a, q);
  const auto hb = qgram_histogram(b, q);
  // L1 distance between histograms; each edit changes at most q q-grams in
  // each string, so |hist_a - hist_b|_1 <= 2 q d  =>  d >= L1 / (2q).
  std::uint32_t l1 = 0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    l1 += static_cast<std::uint32_t>(
        std::abs(static_cast<int>(ha[i]) - static_cast<int>(hb[i])));
  }
  return static_cast<int>(l1) / (2 * q);
}

FilteredClusterResult cluster_reads_filtered(const std::vector<Read>& reads,
                                             const ClusterParams& params,
                                             const FilterParams& filter) {
  FilteredClusterResult result;
  // Cache representative histograms to avoid recomputing per candidate.
  std::vector<std::vector<std::uint16_t>> rep_hists;

  for (std::size_t r = 0; r < reads.size(); ++r) {
    const Strand& bases = reads[r].bases;
    const auto read_hist =
        filter.use_qgram ? qgram_histogram(bases, filter.q)
                         : std::vector<std::uint16_t>{};
    bool assigned = false;
    for (std::size_t c = 0; c < result.clusters.clusters.size(); ++c) {
      auto& cluster = result.clusters.clusters[c];
      ++result.candidates;
      if (filter.use_length &&
          length_lower_bound(bases, cluster.representative) >
              params.distance_threshold) {
        ++result.filtered_out;
        continue;
      }
      if (filter.use_qgram) {
        // L1 bound via cached histograms.
        std::uint32_t l1 = 0;
        for (std::size_t i = 0; i < read_hist.size(); ++i) {
          l1 += static_cast<std::uint32_t>(std::abs(
              static_cast<int>(read_hist[i]) -
              static_cast<int>(rep_hists[c][i])));
        }
        if (static_cast<int>(l1) / (2 * filter.q) >
            params.distance_threshold) {
          ++result.filtered_out;
          continue;
        }
      }
      ++result.exact_evaluations;
      ++result.clusters.pair_comparisons;
      int distance;
      if (params.band > 0) {
        distance =
            levenshtein_banded(bases, cluster.representative, params.band);
        result.clusters.dp_cells_updated +=
            static_cast<std::uint64_t>(bases.size()) * (2 * params.band + 1);
      } else {
        distance = levenshtein_full(bases, cluster.representative);
        result.clusters.dp_cells_updated +=
            dp_cells(bases, cluster.representative);
      }
      if (distance <= params.distance_threshold) {
        cluster.read_indices.push_back(r);
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      Cluster fresh;
      fresh.read_indices.push_back(r);
      fresh.representative = bases;
      result.clusters.clusters.push_back(std::move(fresh));
      if (filter.use_qgram) {
        rep_hists.push_back(read_hist.empty()
                                ? qgram_histogram(bases, filter.q)
                                : read_hist);
      } else {
        rep_hists.emplace_back();
      }
    }
  }
  return result;
}

}  // namespace icsc::hetero::dna
