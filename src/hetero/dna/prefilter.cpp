#include "hetero/dna/prefilter.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <vector>

#include "core/parallel.hpp"
#include "core/simd.hpp"

namespace icsc::hetero::dna {

int length_lower_bound(const Strand& a, const Strand& b) {
  return static_cast<int>(
      std::llabs(static_cast<long long>(a.size()) -
                 static_cast<long long>(b.size())));
}

std::vector<std::uint16_t> qgram_histogram(const Strand& s, int q) {
  std::vector<std::uint16_t> hist(std::size_t{1} << (2 * q), 0);
  if (s.size() < static_cast<std::size_t>(q)) return hist;
  const std::uint32_t mask = (1u << (2 * q)) - 1;
  std::uint32_t code = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    code = ((code << 2) | static_cast<std::uint8_t>(s[i])) & mask;
    if (i + 1 >= static_cast<std::size_t>(q)) ++hist[code];
  }
  return hist;
}

int qgram_histogram_lower_bound(const std::vector<std::uint16_t>& ha,
                                const std::vector<std::uint16_t>& hb, int q) {
  assert(q >= 1 && q <= 8);
  assert(ha.size() == hb.size());
  // L1 distance between histograms; each edit changes at most q q-grams in
  // each string, so |hist_a - hist_b|_1 <= 2 q d  =>  d >= L1 / (2q). The
  // clustering screens spend most of their time in this pass, so it runs
  // on the SIMD lanes (u16 absolute differences, identical mod-2^32 sum).
  const std::uint32_t l1 =
      core::simd::l1_distance_u16(ha.data(), hb.data(), ha.size());
  return static_cast<int>(l1) / (2 * q);
}

int qgram_lower_bound(const Strand& a, const Strand& b, int q) {
  assert(q >= 1 && q <= 8);
  return qgram_histogram_lower_bound(qgram_histogram(a, q),
                                     qgram_histogram(b, q), q);
}

namespace {

/// Outcome of one read-vs-representative candidate: which lower bound (if
/// any) rejected it, else the exact distance and DP-cell cost. Pure, so
/// candidate blocks are evaluated in parallel; the caller folds outcomes in
/// cluster order and books counters exactly as the serial scan would.
struct CandidateEval {
  bool filtered = false;  // rejected by a lower bound; no exact kernel run
  int distance = 0;
  std::uint64_t dp = 0;
};

}  // namespace

FilteredClusterResult cluster_reads_filtered(const std::vector<Read>& reads,
                                             const ClusterParams& params,
                                             const FilterParams& filter) {
  FilteredClusterResult result;
  // Cache representative histograms to avoid recomputing per candidate.
  std::vector<std::vector<std::uint16_t>> rep_hists;
  const std::size_t block =
      std::max<std::size_t>(16, 8 * core::parallel_threads());

  const bool batched =
      params.band > 0 && params.kernel == DistanceKernel::kScreenedMyers;
  // Scratch reused across blocks by the batched screened-Myers path.
  std::vector<std::uint8_t> filtered;
  std::vector<const Strand*> survivors;
  std::vector<int> survivor_dist;

  for (std::size_t r = 0; r < reads.size(); ++r) {
    const Strand& bases = reads[r].bases;
    const auto read_hist =
        filter.use_qgram ? qgram_histogram(bases, filter.q)
                         : std::vector<std::uint16_t>{};
    const auto pattern =
        batched ? MyersPattern(bases) : MyersPattern(Strand{});
    auto& clusters = result.clusters.clusters;

    // True when a pre-alignment filter rejects candidate c outright.
    auto filters_reject = [&](std::size_t c) -> bool {
      const Strand& representative = clusters[c].representative;
      if (filter.use_length &&
          length_lower_bound(bases, representative) >
              params.distance_threshold) {
        return true;
      }
      return filter.use_qgram &&
             qgram_histogram_lower_bound(read_hist, rep_hists[c], filter.q) >
                 params.distance_threshold;
    };

    auto evaluate_candidate = [&](std::size_t c) {
      CandidateEval eval;
      const Strand& representative = clusters[c].representative;
      if (filters_reject(c)) {
        eval.filtered = true;
        return eval;
      }
      if (params.band > 0) {
        eval.distance = levenshtein_banded(bases, representative, params.band);
        eval.dp =
            static_cast<std::uint64_t>(bases.size()) * (2 * params.band + 1);
      } else {
        eval.distance = levenshtein_full(bases, representative);
        eval.dp = dp_cells(bases, representative);
      }
      return eval;
    };

    bool assigned = false;
    // Parallel speculative scan over candidate blocks; see cluster_reads.
    // Counters stop at the first match, matching the serial early exit.
    for (std::size_t base = 0; base < clusters.size() && !assigned;
         base += block) {
      const std::size_t count = std::min(block, clusters.size() - base);
      if (batched) {
        // Filters in parallel, then one bit-parallel banded-Myers batch
        // over the survivors (identical distances under the banded
        // contract); lanes span candidate representatives.
        filtered.resize(count);
        core::parallel_for(0, count, 1, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            filtered[i] = filters_reject(base + i) ? 1 : 0;
          }
        });
        survivors.clear();
        for (std::size_t i = 0; i < count; ++i) {
          if (!filtered[i]) {
            survivors.push_back(&clusters[base + i].representative);
          }
        }
        survivor_dist.resize(survivors.size());
        levenshtein_myers_banded_batch(pattern, survivors.data(),
                                       survivors.size(), params.band,
                                       survivor_dist.data());
        std::size_t next_survivor = 0;
        for (std::size_t i = 0; i < count; ++i) {
          ++result.candidates;
          if (filtered[i]) {
            ++result.filtered_out;
            continue;
          }
          const int distance = survivor_dist[next_survivor++];
          ++result.exact_evaluations;
          ++result.clusters.pair_comparisons;
          result.clusters.dp_cells_updated +=
              myers_cells(bases, clusters[base + i].representative);
          if (distance <= params.distance_threshold) {
            clusters[base + i].read_indices.push_back(r);
            assigned = true;
            break;
          }
        }
        continue;
      }
      const auto evals = core::parallel_map(
          count, 1, [&](std::size_t i) { return evaluate_candidate(base + i); });
      for (std::size_t i = 0; i < count; ++i) {
        ++result.candidates;
        if (evals[i].filtered) {
          ++result.filtered_out;
          continue;
        }
        ++result.exact_evaluations;
        ++result.clusters.pair_comparisons;
        result.clusters.dp_cells_updated += evals[i].dp;
        if (evals[i].distance <= params.distance_threshold) {
          clusters[base + i].read_indices.push_back(r);
          assigned = true;
          break;
        }
      }
    }
    if (!assigned) {
      Cluster fresh;
      fresh.read_indices.push_back(r);
      fresh.representative = bases;
      result.clusters.clusters.push_back(std::move(fresh));
      if (filter.use_qgram) {
        rep_hists.push_back(read_hist.empty()
                                ? qgram_histogram(bases, filter.q)
                                : read_hist);
      } else {
        rep_hists.emplace_back();
      }
    }
  }
  return result;
}

}  // namespace icsc::hetero::dna
