// DNA channel noise model (Sec. VI, Fig. 6b).
//
// "A distinctive feature of the DNA channel is that the input consists of
// numerous strings of similar lengths that share a certain degree of
// similarity". Synthesis, PCR amplification, storage, and sequencing
// introduce substitutions, insertions, deletions, a skewed copy-count
// distribution, and whole-strand dropout. The model follows the DNAssim
// framework's channel decomposition [26].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/rng.hpp"
#include "hetero/dna/encoding.hpp"

namespace icsc::hetero::dna {

struct ChannelParams {
  double substitution_rate = 0.005;  // per base
  double insertion_rate = 0.0025;
  double deletion_rate = 0.0025;
  double mean_coverage = 8.0;        // mean sequencing copies per strand
  double dropout_rate = 0.0;         // extra whole-strand loss probability
  /// Burst errors: probability per read that a contiguous run of bases is
  /// overwritten with random symbols (sequencing artefacts, damage spots).
  /// Zero keeps the channel bit-identical to the burst-free model.
  double burst_rate = 0.0;
  double burst_length_mean = 8.0;  // mean run length of one burst
  std::uint64_t seed = 1;
};

/// One sequencing read: a noisy copy of some original strand.
struct Read {
  Strand bases;
  std::size_t origin = 0;  // index of the source strand (ground truth)
};

struct ReadSet {
  std::vector<Read> reads;
  std::size_t source_strands = 0;
  std::uint64_t substitutions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t deletions = 0;
  std::size_t dropped_strands = 0;
  std::uint64_t burst_events = 0;
};

/// Applies the channel to every strand: Poisson copy counts, i.i.d. per-base
/// errors. Deterministic given params.seed.
ReadSet simulate_channel(const std::vector<Strand>& strands,
                         const ChannelParams& params);

/// Multi-pass re-read (retry) policy in front of ECC decode: strands whose
/// accumulated coverage is below `min_coverage` after a pass go back on the
/// sequencer for another pass, up to `max_passes` total. Synthesis dropout
/// (ChannelParams::dropout_rate) is permanent -- the strand was never made,
/// so no amount of re-reading recovers it; zero-coverage strands (Poisson
/// luck) are exactly what retry rescues.
struct RereadParams {
  int max_passes = 1;            // 1 == single-shot channel, no retry
  std::size_t min_coverage = 2;  // re-read strands with fewer reads
};

struct RereadResult {
  ReadSet set;
  int passes_used = 1;
  /// Strands with zero coverage after pass 1 that later passes recovered.
  std::size_t rescued_strands = 0;
  /// Strands with no reads at the end (includes permanent dropout).
  std::size_t unrecovered_strands = 0;
};

/// Runs the channel with the re-read policy. With max_passes == 1 the
/// result's ReadSet is bit-identical to simulate_channel (same seed).
/// ReadSet::dropped_strands counts pass-1 loss events even when a later
/// pass rescues the strand; `unrecovered_strands` is the final census.
RereadResult simulate_channel_reread(const std::vector<Strand>& strands,
                                     const ChannelParams& params,
                                     const RereadParams& reread);

/// Applies per-base noise to a single strand (used by tests and by the
/// channel itself).
Strand corrupt_strand(const Strand& strand, const ChannelParams& params,
                      core::Rng& rng, std::uint64_t* subs = nullptr,
                      std::uint64_t* ins = nullptr,
                      std::uint64_t* dels = nullptr);

/// Resilience controls for the journaled channel run (core/cancel.hpp,
/// core/checkpoint.hpp). Defaults reproduce the plain in-memory run.
struct RereadRunOptions {
  /// Wall-clock budget; combined with `cancel` (whichever fires first).
  core::Deadline deadline;
  /// External cooperative stop handle, polled between strand batches.
  core::CancelToken cancel;
  /// Crash-safe run journal: one fsync'd record per completed strand
  /// batch, so a killed run resumed from the journal replays at most one
  /// batch of sequencing work. Empty disables journaling. A journal from a
  /// different (strands, channel, reread) run throws core::Error.
  std::string journal_path;
  /// Strands folded per journal record.
  std::size_t journal_batch = 64;
  /// Max batches to sequence in *this* invocation (0 = no limit); lets the
  /// kill/resume benches truncate a run at a deterministic point.
  std::size_t batch_budget = 0;
};

struct RereadRunOutcome {
  RereadResult result;
  bool completed = true;            // false when truncated by deadline/cancel
  std::size_t resumed_batches = 0;  // journal records replayed, not re-run
};

/// Journaled, cancellable variant of simulate_channel_reread. With no
/// journal and no deadline/cancel it produces a result bit-identical to
/// simulate_channel_reread; a run killed at any point and re-invoked with
/// the same journal path resumes after the last durable batch and finishes
/// bit-identical to an uninterrupted run. Cancelled runs return the reads
/// accumulated so far as a valid partial flagged `completed = false`.
RereadRunOutcome simulate_channel_reread_resilient(
    const std::vector<Strand>& strands, const ChannelParams& params,
    const RereadParams& reread, const RereadRunOptions& options);

}  // namespace icsc::hetero::dna
