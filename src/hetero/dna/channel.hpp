// DNA channel noise model (Sec. VI, Fig. 6b).
//
// "A distinctive feature of the DNA channel is that the input consists of
// numerous strings of similar lengths that share a certain degree of
// similarity". Synthesis, PCR amplification, storage, and sequencing
// introduce substitutions, insertions, deletions, a skewed copy-count
// distribution, and whole-strand dropout. The model follows the DNAssim
// framework's channel decomposition [26].
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "hetero/dna/encoding.hpp"

namespace icsc::hetero::dna {

struct ChannelParams {
  double substitution_rate = 0.005;  // per base
  double insertion_rate = 0.0025;
  double deletion_rate = 0.0025;
  double mean_coverage = 8.0;        // mean sequencing copies per strand
  double dropout_rate = 0.0;         // extra whole-strand loss probability
  std::uint64_t seed = 1;
};

/// One sequencing read: a noisy copy of some original strand.
struct Read {
  Strand bases;
  std::size_t origin = 0;  // index of the source strand (ground truth)
};

struct ReadSet {
  std::vector<Read> reads;
  std::size_t source_strands = 0;
  std::uint64_t substitutions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t deletions = 0;
  std::size_t dropped_strands = 0;
};

/// Applies the channel to every strand: Poisson copy counts, i.i.d. per-base
/// errors. Deterministic given params.seed.
ReadSet simulate_channel(const std::vector<Strand>& strands,
                         const ChannelParams& params);

/// Applies per-base noise to a single strand (used by tests and by the
/// channel itself).
Strand corrupt_strand(const Strand& strand, const ChannelParams& params,
                      core::Rng& rng, std::uint64_t* subs = nullptr,
                      std::uint64_t* ins = nullptr,
                      std::uint64_t* dels = nullptr);

}  // namespace icsc::hetero::dna
