// DNA channel noise model (Sec. VI, Fig. 6b).
//
// "A distinctive feature of the DNA channel is that the input consists of
// numerous strings of similar lengths that share a certain degree of
// similarity". Synthesis, PCR amplification, storage, and sequencing
// introduce substitutions, insertions, deletions, a skewed copy-count
// distribution, and whole-strand dropout. The model follows the DNAssim
// framework's channel decomposition [26].
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "hetero/dna/encoding.hpp"

namespace icsc::hetero::dna {

struct ChannelParams {
  double substitution_rate = 0.005;  // per base
  double insertion_rate = 0.0025;
  double deletion_rate = 0.0025;
  double mean_coverage = 8.0;        // mean sequencing copies per strand
  double dropout_rate = 0.0;         // extra whole-strand loss probability
  /// Burst errors: probability per read that a contiguous run of bases is
  /// overwritten with random symbols (sequencing artefacts, damage spots).
  /// Zero keeps the channel bit-identical to the burst-free model.
  double burst_rate = 0.0;
  double burst_length_mean = 8.0;  // mean run length of one burst
  std::uint64_t seed = 1;
};

/// One sequencing read: a noisy copy of some original strand.
struct Read {
  Strand bases;
  std::size_t origin = 0;  // index of the source strand (ground truth)
};

struct ReadSet {
  std::vector<Read> reads;
  std::size_t source_strands = 0;
  std::uint64_t substitutions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t deletions = 0;
  std::size_t dropped_strands = 0;
  std::uint64_t burst_events = 0;
};

/// Applies the channel to every strand: Poisson copy counts, i.i.d. per-base
/// errors. Deterministic given params.seed.
ReadSet simulate_channel(const std::vector<Strand>& strands,
                         const ChannelParams& params);

/// Multi-pass re-read (retry) policy in front of ECC decode: strands whose
/// accumulated coverage is below `min_coverage` after a pass go back on the
/// sequencer for another pass, up to `max_passes` total. Synthesis dropout
/// (ChannelParams::dropout_rate) is permanent -- the strand was never made,
/// so no amount of re-reading recovers it; zero-coverage strands (Poisson
/// luck) are exactly what retry rescues.
struct RereadParams {
  int max_passes = 1;            // 1 == single-shot channel, no retry
  std::size_t min_coverage = 2;  // re-read strands with fewer reads
};

struct RereadResult {
  ReadSet set;
  int passes_used = 1;
  /// Strands with zero coverage after pass 1 that later passes recovered.
  std::size_t rescued_strands = 0;
  /// Strands with no reads at the end (includes permanent dropout).
  std::size_t unrecovered_strands = 0;
};

/// Runs the channel with the re-read policy. With max_passes == 1 the
/// result's ReadSet is bit-identical to simulate_channel (same seed).
/// ReadSet::dropped_strands counts pass-1 loss events even when a later
/// pass rescues the strand; `unrecovered_strands` is the final census.
RereadResult simulate_channel_reread(const std::vector<Strand>& strands,
                                     const ChannelParams& params,
                                     const RereadParams& reread);

/// Applies per-base noise to a single strand (used by tests and by the
/// channel itself).
Strand corrupt_strand(const Strand& strand, const ChannelParams& params,
                      core::Rng& rng, std::uint64_t* subs = nullptr,
                      std::uint64_t* ins = nullptr,
                      std::uint64_t* dels = nullptr);

}  // namespace icsc::hetero::dna
