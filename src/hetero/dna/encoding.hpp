// Digital-data <-> DNA base encoding (Sec. VI, Fig. 6a).
//
// "This method allows encoding the digital information -- composed of '1's
// and '0's -- in a synthetic molecule" with two bits per nucleotide
// (A/C/G/T). Synthesis chemistry constrains the strands: long homopolymer
// runs (>3 identical bases) and extreme GC content raise error rates, so
// practical codecs use a rotation code that guarantees run-length limits.
// We implement both the direct 2-bit map and the rotation code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icsc::hetero::dna {

/// Nucleotides, encoded 0..3.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

char base_to_char(Base b);
Base char_to_base(char c);

/// A strand is a sequence of bases.
using Strand = std::vector<Base>;

std::string strand_to_string(const Strand& strand);
Strand strand_from_string(const std::string& text);

/// Direct mapping: every byte becomes 4 bases (2 bits/base, MSB first).
Strand encode_direct(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> decode_direct(const Strand& strand);

/// Rotation code: each 2-bit symbol selects one of the three bases
/// *different from the previous base*, guaranteeing no homopolymer run of
/// length 2 or more at 1.585 bits/base... we instead use the standard
/// run-length-limited variant: symbol values 0..2 rotate among the three
/// non-previous bases, and the fourth value is escaped. Here we implement
/// the simpler and widely used Goldman-style ternary rotation: the payload
/// is first expanded to base-3 digits, then each digit picks among the
/// three bases distinct from the previous one.
Strand encode_rotation(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> decode_rotation(const Strand& strand,
                                          std::size_t payload_bytes);

/// Longest homopolymer run in a strand (1 for alternating content).
std::size_t max_homopolymer_run(const Strand& strand);

/// Fraction of G/C bases.
double gc_content(const Strand& strand);

/// Splits a payload into fixed-size addressed chunks: each strand carries
/// a 16-bit index (rotation-coded with the data) so decoding can reorder.
struct OligoSet {
  std::vector<Strand> strands;
  std::size_t payload_bytes = 0;
  std::size_t chunk_bytes = 0;
};

OligoSet encode_payload(const std::vector<std::uint8_t>& payload,
                        std::size_t chunk_bytes);

/// Inverse of encode_payload given perfectly recovered strands (consensus
/// output). Missing/failed strands are zero-filled and reported.
struct DecodeResult {
  std::vector<std::uint8_t> payload;
  std::size_t missing_chunks = 0;
  std::size_t corrupted_chunks = 0;  // index out of range after decode
};

DecodeResult decode_payload(const std::vector<Strand>& strands,
                            std::size_t payload_bytes,
                            std::size_t chunk_bytes);

}  // namespace icsc::hetero::dna
