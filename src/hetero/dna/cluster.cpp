#include "hetero/dna/cluster.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "core/parallel.hpp"
#include "core/trace.hpp"
#include "hetero/dna/prefilter.hpp"

namespace icsc::hetero::dna {

namespace {

/// Edit distance of a read against one representative plus the DP-cell
/// count the serial kernel books for that comparison. Pure function of its
/// inputs, so a batch of candidates can be evaluated concurrently.
struct PairEval {
  int distance = 0;
  std::uint64_t dp = 0;
  bool screened = false;  // resolved by a lower bound; no exact kernel ran
};

/// Evaluates one candidate pair under the non-screened kernels (full DP or
/// banded DP). The screened-Myers path runs through the batched pipeline in
/// cluster_reads instead: parallel lower-bound screens, then one SIMD
/// myers-banded batch over the survivors.
PairEval evaluate_pair(const Strand& bases, const Strand& representative,
                       const ClusterParams& params) {
  PairEval out;
  if (params.band <= 0) {
    out.distance = levenshtein_full(bases, representative);
    out.dp = dp_cells(bases, representative);
    return out;
  }
  out.distance = levenshtein_banded(bases, representative, params.band);
  out.dp = static_cast<std::uint64_t>(bases.size()) * (2 * params.band + 1);
  return out;
}

bool use_screen(const ClusterParams& params) {
  return params.band > 0 && params.kernel == DistanceKernel::kScreenedMyers &&
         params.screen_q >= 1 && params.screen_q <= 8;
}

/// Block size for the speculative candidate scan: large enough to keep the
/// pool busy, small enough to bound wasted work past the first match.
std::size_t scan_block() {
  return std::max<std::size_t>(16, 8 * core::parallel_threads());
}

}  // namespace

ClusterResult cluster_reads(const std::vector<Read>& reads,
                            const ClusterParams& params) {
  ICSC_TRACE_SPAN("dna/cluster_reads");
  ClusterResult result;
  const std::size_t block = scan_block();
  const bool screen = use_screen(params);
  const bool batched =
      params.band > 0 && params.kernel == DistanceKernel::kScreenedMyers;
  // Representative q-gram histograms, computed once per cluster (founding
  // read) instead of once per candidate pair.
  std::vector<std::vector<std::uint16_t>> rep_hists;
  // Scratch reused across blocks by the batched screened-Myers path.
  std::vector<std::uint8_t> rejected;
  std::vector<const Strand*> survivors;
  std::vector<int> survivor_dist;
  for (std::size_t r = 0; r < reads.size(); ++r) {
    const Strand& bases = reads[r].bases;
    const auto read_hist = screen ? qgram_histogram(bases, params.screen_q)
                                  : std::vector<std::uint16_t>{};
    // Match masks built once per read and reused across every candidate
    // (the screened path's only per-pair state is the text itself).
    const auto pattern =
        batched ? MyersPattern(bases) : MyersPattern(Strand{});
    auto& clusters = result.clusters;
    bool assigned = false;
    // The serial greedy scan joins the first cluster within threshold and
    // stops. Here candidate blocks are evaluated in parallel, then folded
    // in cluster order: counters are booked only up to and including the
    // first match, so clusters AND work counters are bit-identical to the
    // serial scan (speculative evaluations past the match are discarded).
    for (std::size_t base = 0; base < clusters.size() && !assigned;
         base += block) {
      const std::size_t count = std::min(block, clusters.size() - base);
      if (batched) {
        // Stage 1 in parallel: lower-bound screens (d >= |len(a) - len(b)|
        // and d >= L1(qgram hists) / (2q)); a bound beyond the band already
        // decides the banded-contract answer, exactly as the banded kernel
        // would have returned band + 1.
        rejected.resize(count);
        core::parallel_for(0, count, 1, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            const Strand& rep = clusters[base + i].representative;
            rejected[i] =
                length_lower_bound(bases, rep) > params.band ||
                (screen &&
                 qgram_histogram_lower_bound(read_hist, rep_hists[base + i],
                                             params.screen_q) > params.band);
          }
        });
        // Stage 2: one bit-parallel banded-Myers batch over the survivors,
        // lanes spanning candidate representatives.
        survivors.clear();
        for (std::size_t i = 0; i < count; ++i) {
          if (!rejected[i]) {
            survivors.push_back(&clusters[base + i].representative);
          }
        }
        survivor_dist.resize(survivors.size());
        levenshtein_myers_banded_batch(pattern, survivors.data(),
                                       survivors.size(), params.band,
                                       survivor_dist.data());
        std::size_t next_survivor = 0;
        for (std::size_t i = 0; i < count; ++i) {
          ++result.pair_comparisons;
          int distance = params.band + 1;
          if (rejected[i]) {
            ++result.screened_out;
          } else {
            distance = survivor_dist[next_survivor++];
            result.dp_cells_updated +=
                myers_cells(bases, clusters[base + i].representative);
          }
          if (distance <= params.distance_threshold) {
            clusters[base + i].read_indices.push_back(r);
            assigned = true;
            break;
          }
        }
        continue;
      }
      const auto evals = core::parallel_map(count, 1, [&](std::size_t i) {
        return evaluate_pair(bases, clusters[base + i].representative, params);
      });
      for (std::size_t i = 0; i < count; ++i) {
        ++result.pair_comparisons;
        result.dp_cells_updated += evals[i].dp;
        if (evals[i].screened) ++result.screened_out;
        if (evals[i].distance <= params.distance_threshold) {
          clusters[base + i].read_indices.push_back(r);
          assigned = true;
          break;
        }
      }
    }
    if (!assigned) {
      Cluster fresh;
      fresh.read_indices.push_back(r);
      fresh.representative = bases;
      clusters.push_back(std::move(fresh));
      if (screen) rep_hists.push_back(read_hist);
    }
  }
  ICSC_TRACE_COUNT("dna.pair_comparisons", result.pair_comparisons);
  ICSC_TRACE_COUNT("dna.dp_cells", result.dp_cells_updated);
  ICSC_TRACE_COUNT("dna.screened_out", result.screened_out);
  return result;
}

ClusterQuality evaluate_clusters(const ClusterResult& result,
                                 const std::vector<Read>& reads,
                                 std::size_t source_strands) {
  ClusterQuality quality;
  if (result.clusters.empty() || source_strands == 0) return quality;
  std::vector<bool> covered(source_strands, false);
  std::size_t pure = 0;
  for (const auto& cluster : result.clusters) {
    const std::size_t origin = reads[cluster.read_indices.front()].origin;
    bool is_pure = true;
    for (const std::size_t idx : cluster.read_indices) {
      if (reads[idx].origin != origin) {
        is_pure = false;
        break;
      }
    }
    if (is_pure) {
      ++pure;
      covered[origin] = true;
    }
  }
  quality.purity =
      static_cast<double>(pure) / static_cast<double>(result.clusters.size());
  std::size_t covered_count = 0;
  for (const bool c : covered) covered_count += c ? 1 : 0;
  quality.origin_coverage =
      static_cast<double>(covered_count) / static_cast<double>(source_strands);
  return quality;
}

namespace {

/// Votes collected against the medoid coordinate system.
struct Votes {
  // For each medoid position: counts of A/C/G/T seen aligned there, plus
  // deletions (read skips the position).
  std::vector<std::array<int, 4>> base_votes;
  std::vector<int> deletion_votes;
  // For each gap (before position i, i in [0, n]): votes for an inserted
  // base and which base.
  std::vector<std::array<int, 4>> insertion_votes;

  explicit Votes(std::size_t n)
      : base_votes(n, {0, 0, 0, 0}),
        deletion_votes(n, 0),
        insertion_votes(n + 1, {0, 0, 0, 0}) {}
};

/// Aligns `read` to `medoid` by full DP and adds its votes.
void vote_alignment(const Strand& medoid, const Strand& read, Votes& votes) {
  const std::size_t n = medoid.size();
  const std::size_t m = read.size();
  // dp[i][j]: distance between medoid[0,i) and read[0,j).
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) dp[i][0] = static_cast<int>(i);
  for (std::size_t j = 0; j <= m; ++j) dp[0][j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const int sub = dp[i - 1][j - 1] + (medoid[i - 1] == read[j - 1] ? 0 : 1);
      dp[i][j] = std::min({sub, dp[i - 1][j] + 1, dp[i][j - 1] + 1});
    }
  }
  // Backtrace, preferring diagonal moves (keeps votes aligned on matches).
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp[i][j] == dp[i - 1][j - 1] + (medoid[i - 1] == read[j - 1] ? 0 : 1)) {
      votes.base_votes[i - 1][static_cast<std::uint8_t>(read[j - 1])] += 1;
      --i;
      --j;
    } else if (j > 0 && dp[i][j] == dp[i][j - 1] + 1) {
      // Read has an extra base: insertion in the gap before medoid position i.
      votes.insertion_votes[i][static_cast<std::uint8_t>(read[j - 1])] += 1;
      --j;
    } else {
      votes.deletion_votes[i - 1] += 1;
      --i;
    }
  }
}

}  // namespace

Strand call_consensus(const std::vector<Read>& reads, const Cluster& cluster) {
  const auto& members = cluster.read_indices;
  if (members.empty()) return {};
  if (members.size() == 1) return reads[members.front()].bases;

  // Medoid: member with the minimum total distance to the others. The
  // all-pairs totals are independent per candidate; the serial argmin over
  // the ordered totals keeps the earliest minimum, as before.
  const auto totals =
      core::parallel_map(members.size(), 4, [&](std::size_t c) {
        long total = 0;
        for (const std::size_t other : members) {
          if (other == members[c]) continue;
          total +=
              levenshtein_myers(reads[members[c]].bases, reads[other].bases);
        }
        return total;
      });
  std::size_t medoid_index = members.front();
  long best_total = std::numeric_limits<long>::max();
  for (std::size_t c = 0; c < members.size(); ++c) {
    if (totals[c] < best_total) {
      best_total = totals[c];
      medoid_index = members[c];
    }
  }
  const Strand& medoid = reads[medoid_index].bases;

  Votes votes(medoid.size());
  int voters = 0;
  for (const std::size_t idx : members) {
    vote_alignment(medoid, reads[idx].bases, votes);
    ++voters;
  }

  Strand consensus;
  consensus.reserve(medoid.size());
  const int majority = voters / 2 + 1;
  auto emit_insertions = [&](std::size_t gap) {
    const auto& iv = votes.insertion_votes[gap];
    const int total = iv[0] + iv[1] + iv[2] + iv[3];
    if (total >= majority) {
      const auto best =
          std::max_element(iv.begin(), iv.end()) - iv.begin();
      consensus.push_back(static_cast<Base>(best));
    }
  };
  for (std::size_t pos = 0; pos < medoid.size(); ++pos) {
    emit_insertions(pos);
    if (votes.deletion_votes[pos] >= majority) continue;  // majority deletes
    const auto& bv = votes.base_votes[pos];
    const auto best = std::max_element(bv.begin(), bv.end()) - bv.begin();
    if (bv[best] > 0) {
      consensus.push_back(static_cast<Base>(best));
    }
  }
  emit_insertions(medoid.size());
  return consensus;
}

std::vector<Strand> call_all_consensus(const std::vector<Read>& reads,
                                       const std::vector<Cluster>& clusters) {
  // Consensus calls are independent per cluster; parallel_map keeps the
  // output in cluster order.
  ICSC_TRACE_SPAN("dna/consensus");
  ICSC_TRACE_COUNT("dna.consensus_calls", clusters.size());
  return core::parallel_map(clusters.size(), 1, [&](std::size_t c) {
    return call_consensus(reads, clusters[c]);
  });
}

}  // namespace icsc::hetero::dna
