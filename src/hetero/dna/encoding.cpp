#include "hetero/dna/encoding.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace icsc::hetero::dna {

char base_to_char(Base b) {
  static constexpr char kChars[4] = {'A', 'C', 'G', 'T'};
  return kChars[static_cast<std::uint8_t>(b)];
}

Base char_to_base(char c) {
  switch (c) {
    case 'A': return Base::A;
    case 'C': return Base::C;
    case 'G': return Base::G;
    case 'T': return Base::T;
    default: throw std::invalid_argument("char_to_base: invalid base");
  }
}

std::string strand_to_string(const Strand& strand) {
  std::string out;
  out.reserve(strand.size());
  for (const Base b : strand) out.push_back(base_to_char(b));
  return out;
}

Strand strand_from_string(const std::string& text) {
  Strand out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(char_to_base(c));
  return out;
}

Strand encode_direct(const std::vector<std::uint8_t>& payload) {
  Strand out;
  out.reserve(payload.size() * 4);
  for (const std::uint8_t byte : payload) {
    for (int shift = 6; shift >= 0; shift -= 2) {
      out.push_back(static_cast<Base>((byte >> shift) & 0x3));
    }
  }
  return out;
}

std::vector<std::uint8_t> decode_direct(const Strand& strand) {
  std::vector<std::uint8_t> out(strand.size() / 4, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint8_t byte = 0;
    for (int k = 0; k < 4; ++k) {
      byte = static_cast<std::uint8_t>(
          (byte << 2) | static_cast<std::uint8_t>(strand[4 * i + k]));
    }
    out[i] = byte;
  }
  return out;
}

namespace {

constexpr int kTritsPerByte = 6;  // 3^6 = 729 >= 256

/// The three bases different from `prev`, in increasing numeric order.
std::array<Base, 3> rotation_candidates(Base prev) {
  std::array<Base, 3> out{};
  int k = 0;
  for (std::uint8_t b = 0; b < 4; ++b) {
    if (static_cast<Base>(b) != prev) out[k++] = static_cast<Base>(b);
  }
  return out;
}

}  // namespace

Strand encode_rotation(const std::vector<std::uint8_t>& payload) {
  Strand out;
  out.reserve(payload.size() * kTritsPerByte);
  Base prev = Base::A;  // virtual predecessor; first base is never 'A'
  for (const std::uint8_t byte : payload) {
    int value = byte;
    std::array<int, kTritsPerByte> trits{};
    for (int k = kTritsPerByte - 1; k >= 0; --k) {
      trits[k] = value % 3;
      value /= 3;
    }
    for (const int trit : trits) {
      const Base next = rotation_candidates(prev)[trit];
      out.push_back(next);
      prev = next;
    }
  }
  return out;
}

std::vector<std::uint8_t> decode_rotation(const Strand& strand,
                                          std::size_t payload_bytes) {
  std::vector<std::uint8_t> out(payload_bytes, 0);
  Base prev = Base::A;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    int value = 0;
    for (int k = 0; k < kTritsPerByte; ++k) {
      if (pos >= strand.size()) return out;  // truncated strand
      const Base b = strand[pos++];
      const auto candidates = rotation_candidates(prev);
      int trit = 0;  // unknown bases (b == prev cannot happen) decode as 0
      for (int c = 0; c < 3; ++c) {
        if (candidates[c] == b) trit = c;
      }
      value = value * 3 + trit;
      prev = b;
    }
    out[i] = static_cast<std::uint8_t>(std::min(value, 255));
  }
  return out;
}

std::size_t max_homopolymer_run(const Strand& strand) {
  std::size_t best = strand.empty() ? 0 : 1;
  std::size_t run = 1;
  for (std::size_t i = 1; i < strand.size(); ++i) {
    run = strand[i] == strand[i - 1] ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

double gc_content(const Strand& strand) {
  if (strand.empty()) return 0.0;
  std::size_t gc = 0;
  for (const Base b : strand) {
    if (b == Base::C || b == Base::G) ++gc;
  }
  return static_cast<double>(gc) / static_cast<double>(strand.size());
}

OligoSet encode_payload(const std::vector<std::uint8_t>& payload,
                        std::size_t chunk_bytes) {
  if (chunk_bytes == 0) throw std::invalid_argument("chunk_bytes must be > 0");
  OligoSet set;
  set.payload_bytes = payload.size();
  set.chunk_bytes = chunk_bytes;
  const std::size_t chunks = (payload.size() + chunk_bytes - 1) / chunk_bytes;
  if (chunks > 0xFFFF) {
    throw std::invalid_argument("payload needs more than 65535 chunks");
  }
  for (std::size_t idx = 0; idx < chunks; ++idx) {
    std::vector<std::uint8_t> record;
    record.reserve(2 + chunk_bytes);
    record.push_back(static_cast<std::uint8_t>(idx >> 8));
    record.push_back(static_cast<std::uint8_t>(idx & 0xFF));
    for (std::size_t k = 0; k < chunk_bytes; ++k) {
      const std::size_t byte_index = idx * chunk_bytes + k;
      record.push_back(byte_index < payload.size() ? payload[byte_index] : 0);
    }
    set.strands.push_back(encode_rotation(record));
  }
  return set;
}

DecodeResult decode_payload(const std::vector<Strand>& strands,
                            std::size_t payload_bytes,
                            std::size_t chunk_bytes) {
  DecodeResult result;
  result.payload.assign(payload_bytes, 0);
  const std::size_t chunks = (payload_bytes + chunk_bytes - 1) / chunk_bytes;
  std::vector<bool> seen(chunks, false);
  for (const Strand& strand : strands) {
    const auto record = decode_rotation(strand, 2 + chunk_bytes);
    const std::size_t idx =
        (static_cast<std::size_t>(record[0]) << 8) | record[1];
    if (idx >= chunks) {
      ++result.corrupted_chunks;
      continue;
    }
    // First writer wins: callers order strands by reliability (cluster
    // size), so a later noisy duplicate must not overwrite a good chunk.
    if (seen[idx]) continue;
    seen[idx] = true;
    for (std::size_t k = 0; k < chunk_bytes; ++k) {
      const std::size_t byte_index = idx * chunk_bytes + k;
      if (byte_index < payload_bytes) {
        result.payload[byte_index] = record[2 + k];
      }
    }
  }
  for (const bool s : seen) {
    if (!s) ++result.missing_chunks;
  }
  return result;
}

}  // namespace icsc::hetero::dna
