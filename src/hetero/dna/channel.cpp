#include "hetero/dna/channel.hpp"

#include <algorithm>

namespace icsc::hetero::dna {

Strand corrupt_strand(const Strand& strand, const ChannelParams& params,
                      core::Rng& rng, std::uint64_t* subs, std::uint64_t* ins,
                      std::uint64_t* dels) {
  Strand out;
  out.reserve(strand.size() + 4);
  for (const Base original : strand) {
    // Insertion before the current base (possibly several).
    while (rng.bernoulli(params.insertion_rate)) {
      out.push_back(static_cast<Base>(rng.below(4)));
      if (ins) ++*ins;
    }
    if (rng.bernoulli(params.deletion_rate)) {
      if (dels) ++*dels;
      continue;
    }
    if (rng.bernoulli(params.substitution_rate)) {
      // Substitute with one of the three other bases.
      const auto offset = 1 + rng.below(3);
      out.push_back(static_cast<Base>(
          (static_cast<std::uint8_t>(original) + offset) & 0x3));
      if (subs) ++*subs;
    } else {
      out.push_back(original);
    }
  }
  return out;
}

namespace {

/// Overwrites a contiguous run of bases with random symbols.
void apply_burst(Strand& bases, const ChannelParams& params, core::Rng& rng,
                 ReadSet& set) {
  if (bases.empty()) return;
  const std::size_t start = rng.below(bases.size());
  std::size_t len =
      1 + static_cast<std::size_t>(
              rng.poisson(std::max(0.0, params.burst_length_mean - 1.0)));
  len = std::min(len, bases.size() - start);
  for (std::size_t i = 0; i < len; ++i) {
    bases[start + i] = static_cast<Base>(rng.below(4));
  }
  ++set.burst_events;
  set.substitutions += len;
}

/// Emits the Poisson copies of strand `s` into `set`. Shared by the
/// single-pass channel and each re-read pass so their statistics match.
/// Burst draws happen only when burst_rate > 0, keeping the burst-free
/// RNG stream unchanged.
int emit_copies(const Strand& strand, std::size_t s,
                const ChannelParams& params, core::Rng& rng, ReadSet& set) {
  const int copies = rng.poisson(params.mean_coverage);
  for (int c = 0; c < copies; ++c) {
    Read read;
    read.origin = s;
    read.bases = corrupt_strand(strand, params, rng, &set.substitutions,
                                &set.insertions, &set.deletions);
    if (params.burst_rate > 0.0 && rng.bernoulli(params.burst_rate)) {
      apply_burst(read.bases, params, rng, set);
    }
    set.reads.push_back(std::move(read));
  }
  return copies;
}

}  // namespace

ReadSet simulate_channel(const std::vector<Strand>& strands,
                         const ChannelParams& params) {
  core::Rng rng(params.seed);
  ReadSet set;
  set.source_strands = strands.size();
  for (std::size_t s = 0; s < strands.size(); ++s) {
    if (params.dropout_rate > 0.0 && rng.bernoulli(params.dropout_rate)) {
      ++set.dropped_strands;
      continue;
    }
    const int copies = emit_copies(strands[s], s, params, rng, set);
    if (copies == 0) ++set.dropped_strands;
  }
  return set;
}

RereadResult simulate_channel_reread(const std::vector<Strand>& strands,
                                     const ChannelParams& params,
                                     const RereadParams& reread) {
  RereadResult result;
  ReadSet& set = result.set;
  set.source_strands = strands.size();
  std::vector<std::size_t> coverage(strands.size(), 0);
  std::vector<char> lost(strands.size(), 0);  // permanent synthesis dropout
  std::vector<char> starved(strands.size(), 0);  // zero coverage after pass 1
  const int max_passes = std::max(1, reread.max_passes);
  for (int pass = 1; pass <= max_passes; ++pass) {
    if (pass > 1) {
      bool needed = false;
      for (std::size_t s = 0; s < strands.size() && !needed; ++s) {
        needed = !lost[s] && coverage[s] < reread.min_coverage;
      }
      if (!needed) break;  // every surviving strand is well covered
    }
    result.passes_used = pass;
    // Independent deterministic stream per pass; pass 1 uses params.seed
    // itself so a single pass reproduces simulate_channel exactly.
    core::Rng rng(params.seed +
                  0x9E37'79B9'7F4A'7C15ULL * static_cast<std::uint64_t>(pass - 1));
    for (std::size_t s = 0; s < strands.size(); ++s) {
      if (pass == 1) {
        if (params.dropout_rate > 0.0 && rng.bernoulli(params.dropout_rate)) {
          lost[s] = 1;  // never synthesised: no pass can read it back
          ++set.dropped_strands;
          continue;
        }
      } else if (lost[s] || coverage[s] >= reread.min_coverage) {
        continue;  // only the starved strands go back on the sequencer
      }
      const int copies = emit_copies(strands[s], s, params, rng, set);
      if (pass == 1 && copies == 0) ++set.dropped_strands;
      coverage[s] += static_cast<std::size_t>(copies);
    }
    if (pass == 1) {
      for (std::size_t s = 0; s < strands.size(); ++s) {
        starved[s] = static_cast<char>(!lost[s] && coverage[s] == 0);
      }
    }
  }
  for (std::size_t s = 0; s < strands.size(); ++s) {
    if (starved[s] && coverage[s] > 0) ++result.rescued_strands;
    if (lost[s] || coverage[s] == 0) ++result.unrecovered_strands;
  }
  return result;
}

}  // namespace icsc::hetero::dna
