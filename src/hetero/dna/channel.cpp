#include "hetero/dna/channel.hpp"

namespace icsc::hetero::dna {

Strand corrupt_strand(const Strand& strand, const ChannelParams& params,
                      core::Rng& rng, std::uint64_t* subs, std::uint64_t* ins,
                      std::uint64_t* dels) {
  Strand out;
  out.reserve(strand.size() + 4);
  for (const Base original : strand) {
    // Insertion before the current base (possibly several).
    while (rng.bernoulli(params.insertion_rate)) {
      out.push_back(static_cast<Base>(rng.below(4)));
      if (ins) ++*ins;
    }
    if (rng.bernoulli(params.deletion_rate)) {
      if (dels) ++*dels;
      continue;
    }
    if (rng.bernoulli(params.substitution_rate)) {
      // Substitute with one of the three other bases.
      const auto offset = 1 + rng.below(3);
      out.push_back(static_cast<Base>(
          (static_cast<std::uint8_t>(original) + offset) & 0x3));
      if (subs) ++*subs;
    } else {
      out.push_back(original);
    }
  }
  return out;
}

ReadSet simulate_channel(const std::vector<Strand>& strands,
                         const ChannelParams& params) {
  core::Rng rng(params.seed);
  ReadSet set;
  set.source_strands = strands.size();
  for (std::size_t s = 0; s < strands.size(); ++s) {
    if (params.dropout_rate > 0.0 && rng.bernoulli(params.dropout_rate)) {
      ++set.dropped_strands;
      continue;
    }
    const int copies = rng.poisson(params.mean_coverage);
    if (copies == 0) ++set.dropped_strands;
    for (int c = 0; c < copies; ++c) {
      Read read;
      read.origin = s;
      read.bases = corrupt_strand(strands[s], params, rng, &set.substitutions,
                                  &set.insertions, &set.deletions);
      set.reads.push_back(std::move(read));
    }
  }
  return set;
}

}  // namespace icsc::hetero::dna
