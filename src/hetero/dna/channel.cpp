#include "hetero/dna/channel.hpp"

#include <algorithm>
#include <cstring>

#include "core/checkpoint.hpp"
#include "core/fault.hpp"
#include "core/retry.hpp"
#include "core/trace.hpp"

namespace icsc::hetero::dna {

Strand corrupt_strand(const Strand& strand, const ChannelParams& params,
                      core::Rng& rng, std::uint64_t* subs, std::uint64_t* ins,
                      std::uint64_t* dels) {
  Strand out;
  out.reserve(strand.size() + 4);
  for (const Base original : strand) {
    // Insertion before the current base (possibly several).
    while (rng.bernoulli(params.insertion_rate)) {
      out.push_back(static_cast<Base>(rng.below(4)));
      if (ins) ++*ins;
    }
    if (rng.bernoulli(params.deletion_rate)) {
      if (dels) ++*dels;
      continue;
    }
    if (rng.bernoulli(params.substitution_rate)) {
      // Substitute with one of the three other bases.
      const auto offset = 1 + rng.below(3);
      out.push_back(static_cast<Base>(
          (static_cast<std::uint8_t>(original) + offset) & 0x3));
      if (subs) ++*subs;
    } else {
      out.push_back(original);
    }
  }
  return out;
}

namespace {

/// Overwrites a contiguous run of bases with random symbols.
void apply_burst(Strand& bases, const ChannelParams& params, core::Rng& rng,
                 ReadSet& set) {
  if (bases.empty()) return;
  const std::size_t start = rng.below(bases.size());
  std::size_t len =
      1 + static_cast<std::size_t>(
              rng.poisson(std::max(0.0, params.burst_length_mean - 1.0)));
  len = std::min(len, bases.size() - start);
  for (std::size_t i = 0; i < len; ++i) {
    bases[start + i] = static_cast<Base>(rng.below(4));
  }
  ++set.burst_events;
  set.substitutions += len;
}

/// Emits the Poisson copies of strand `s` into `set`. Shared by the
/// single-pass channel and each re-read pass so their statistics match.
/// Burst draws happen only when burst_rate > 0, keeping the burst-free
/// RNG stream unchanged.
int emit_copies(const Strand& strand, std::size_t s,
                const ChannelParams& params, core::Rng& rng, ReadSet& set) {
  const int copies = rng.poisson(params.mean_coverage);
  for (int c = 0; c < copies; ++c) {
    Read read;
    read.origin = s;
    read.bases = corrupt_strand(strand, params, rng, &set.substitutions,
                                &set.insertions, &set.deletions);
    if (params.burst_rate > 0.0 && rng.bernoulli(params.burst_rate)) {
      apply_burst(read.bases, params, rng, set);
    }
    set.reads.push_back(std::move(read));
  }
  return copies;
}

}  // namespace

ReadSet simulate_channel(const std::vector<Strand>& strands,
                         const ChannelParams& params) {
  core::Rng rng(params.seed);
  ReadSet set;
  set.source_strands = strands.size();
  for (std::size_t s = 0; s < strands.size(); ++s) {
    if (params.dropout_rate > 0.0 && rng.bernoulli(params.dropout_rate)) {
      ++set.dropped_strands;
      continue;
    }
    const int copies = emit_copies(strands[s], s, params, rng, set);
    if (copies == 0) ++set.dropped_strands;
  }
  return set;
}

RereadResult simulate_channel_reread(const std::vector<Strand>& strands,
                                     const ChannelParams& params,
                                     const RereadParams& reread) {
  RereadResult result;
  ReadSet& set = result.set;
  set.source_strands = strands.size();
  std::vector<std::size_t> coverage(strands.size(), 0);
  std::vector<char> lost(strands.size(), 0);  // permanent synthesis dropout
  std::vector<char> starved(strands.size(), 0);  // zero coverage after pass 1
  // The re-read passes are a bounded-retry loop over the whole pool of
  // starved strands: pass p is retry p-1 of the shared deterministic policy
  // (core/retry.hpp), and an attempt "succeeds" -- ending the loop early --
  // once every surviving strand has reached min_coverage. Same passes, same
  // RNG streams, bit-identical to the original hand-rolled loop.
  core::RetryPolicy policy;
  policy.max_retries = std::max(1, reread.max_passes) - 1;
  core::retry_until(policy, [&](int retry) {
    const int pass = retry + 1;
    result.passes_used = pass;
    // Independent deterministic stream per pass; pass 1 uses params.seed
    // itself so a single pass reproduces simulate_channel exactly.
    core::Rng rng(params.seed +
                  0x9E37'79B9'7F4A'7C15ULL * static_cast<std::uint64_t>(pass - 1));
    for (std::size_t s = 0; s < strands.size(); ++s) {
      if (pass == 1) {
        if (params.dropout_rate > 0.0 && rng.bernoulli(params.dropout_rate)) {
          lost[s] = 1;  // never synthesised: no pass can read it back
          ++set.dropped_strands;
          continue;
        }
      } else if (lost[s] || coverage[s] >= reread.min_coverage) {
        continue;  // only the starved strands go back on the sequencer
      }
      const int copies = emit_copies(strands[s], s, params, rng, set);
      if (pass == 1 && copies == 0) ++set.dropped_strands;
      coverage[s] += static_cast<std::size_t>(copies);
    }
    if (pass == 1) {
      for (std::size_t s = 0; s < strands.size(); ++s) {
        starved[s] = static_cast<char>(!lost[s] && coverage[s] == 0);
      }
    }
    for (std::size_t s = 0; s < strands.size(); ++s) {
      if (!lost[s] && coverage[s] < reread.min_coverage) return false;
    }
    return true;  // every surviving strand is well covered
  });
  for (std::size_t s = 0; s < strands.size(); ++s) {
    if (starved[s] && coverage[s] > 0) ++result.rescued_strands;
    if (lost[s] || coverage[s] == 0) ++result.unrecovered_strands;
  }
  return result;
}

namespace {

// ---------------------------------------------------------------------------
// Journaled re-read (core/checkpoint.hpp). One record per completed strand
// batch carries the absolute counters, the per-strand coverage/loss state
// for its range, the RNG position after the batch, and the reads it
// emitted -- everything needed to replay the journal into the exact live
// state and continue, so a SIGKILL costs at most one batch of re-work.

constexpr std::uint32_t kRereadJournalKind = 0x4A414E44;  // "DNAJ"
constexpr std::uint8_t kRecHeader = 0;    // fingerprint pin
constexpr std::uint8_t kRecBatch = 1;     // one completed strand batch
constexpr std::uint8_t kRecPassDone = 2;  // starved bitmap after pass 1

std::uint64_t fold_f64(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return core::fault_hash(h, bits);
}

/// Fingerprint of everything that determines the read stream: channel and
/// re-read parameters plus the strand pool itself.
std::uint64_t reread_fingerprint(const std::vector<Strand>& strands,
                                 const ChannelParams& params,
                                 const RereadParams& reread) {
  std::uint64_t h = core::fault_hash(0xD4A'0C11ULL, params.seed);
  h = fold_f64(h, params.substitution_rate);
  h = fold_f64(h, params.insertion_rate);
  h = fold_f64(h, params.deletion_rate);
  h = fold_f64(h, params.mean_coverage);
  h = fold_f64(h, params.dropout_rate);
  h = fold_f64(h, params.burst_rate);
  h = fold_f64(h, params.burst_length_mean);
  h = core::fault_hash(h, static_cast<std::uint64_t>(reread.max_passes));
  h = core::fault_hash(h, reread.min_coverage);
  h = core::fault_hash(h, strands.size());
  for (const Strand& strand : strands) {
    h = core::fault_hash(h, strand.size());
    for (const Base base : strand) {
      h = core::fault_hash(h, static_cast<std::uint8_t>(base));
    }
  }
  return h;
}

void put_rng(core::SnapshotWriter& w, const core::Rng& rng) {
  const core::Rng::State st = rng.state();
  for (const std::uint64_t word : st.s) w.put_u64(word);
  w.put_f64(st.cached_normal);
  w.put_bool(st.has_cached_normal);
}

void get_rng(core::SnapshotReader& r, core::Rng& rng) {
  core::Rng::State st;
  for (std::uint64_t& word : st.s) word = r.get_u64();
  st.cached_normal = r.get_f64();
  st.has_cached_normal = r.get_bool();
  rng.restore(st);
}

std::uint64_t pass_stream_seed(const ChannelParams& params, int pass) {
  return params.seed +
         0x9E37'79B9'7F4A'7C15ULL * static_cast<std::uint64_t>(pass - 1);
}

}  // namespace

RereadRunOutcome simulate_channel_reread_resilient(
    const std::vector<Strand>& strands, const ChannelParams& params,
    const RereadParams& reread, const RereadRunOptions& options) {
  RereadRunOutcome outcome;
  RereadResult& result = outcome.result;
  ReadSet& set = result.set;
  set.source_strands = strands.size();
  std::vector<std::size_t> coverage(strands.size(), 0);
  std::vector<char> lost(strands.size(), 0);  // permanent synthesis dropout
  std::vector<char> starved(strands.size(), 0);  // zero coverage after pass 1
  const int max_passes = std::max(1, reread.max_passes);
  const std::size_t batch = std::max<std::size_t>(1, options.journal_batch);

  // Live cursor: pass number, next strand to sequence, the pass's RNG.
  int pass = 1;
  std::size_t next_s = 0;
  core::Rng rng(pass_stream_seed(params, 1));
  bool pass1_recorded = false;  // kRecPassDone durable

  const bool persist = !options.journal_path.empty();
  core::RunJournal journal;
  std::uint64_t fingerprint = 0;
  if (persist) {
    fingerprint = reread_fingerprint(strands, params, reread);
    journal = core::RunJournal(options.journal_path, kRereadJournalKind);
    // Replay the recovered prefix into the live state machine.
    for (const core::JournalRecord& record : journal.recovered()) {
      core::SnapshotReader r(record.payload);
      switch (r.get_u8()) {
        case kRecHeader:
          if (r.get_u64() != fingerprint) {
            throw core::Error("dna::channel",
                              "journal belongs to a different run",
                              options.journal_path);
          }
          break;
        case kRecPassDone:
          for (std::size_t s = 0; s < strands.size(); ++s) {
            starved[s] = static_cast<char>(r.get_bool());
          }
          pass1_recorded = true;
          break;
        case kRecBatch: {
          pass = static_cast<int>(r.get_u32());
          const auto s_begin = static_cast<std::size_t>(r.get_u64());
          const auto s_end = static_cast<std::size_t>(r.get_u64());
          get_rng(r, rng);
          set.substitutions = r.get_u64();
          set.insertions = r.get_u64();
          set.deletions = r.get_u64();
          set.burst_events = r.get_u64();
          set.dropped_strands = static_cast<std::size_t>(r.get_u64());
          for (std::size_t s = s_begin; s < s_end && s < strands.size(); ++s) {
            coverage[s] = static_cast<std::size_t>(r.get_u64());
            lost[s] = static_cast<char>(r.get_bool());
          }
          const std::uint64_t reads = r.get_u64();
          for (std::uint64_t i = 0; i < reads; ++i) {
            Read read;
            read.origin = static_cast<std::size_t>(r.get_u64());
            const auto len = static_cast<std::size_t>(r.get_u64());
            const auto bytes = r.get_bytes(len);
            read.bases.reserve(len);
            for (const std::uint8_t b : bytes) {
              read.bases.push_back(static_cast<Base>(b & 0x3));
            }
            set.reads.push_back(std::move(read));
          }
          result.passes_used = pass;
          next_s = s_end;
          ++outcome.resumed_batches;
          break;
        }
        default:
          throw core::Error("dna::channel", "unknown journal record type",
                            options.journal_path);
      }
    }
    if (journal.recovered().empty()) {
      core::SnapshotWriter header;
      header.put_u8(kRecHeader);
      header.put_u64(fingerprint);
      journal.append(header);
    }
  }

  const core::CancelToken token = options.cancel.with_deadline(options.deadline);
  bool cancelled = false;
  bool finished = false;
  std::size_t executed_batches = 0;
  while (!finished && !cancelled) {
    if (next_s >= strands.size()) {
      // Pass boundary: derive the starved set after pass 1 (recomputed on
      // replay paths that died before the kRecPassDone record landed),
      // then either converge or put the under-covered strands back on the
      // sequencer for another pass.
      if (pass == 1) {
        for (std::size_t s = 0; s < strands.size(); ++s) {
          starved[s] = static_cast<char>(!lost[s] && coverage[s] == 0);
        }
        if (persist && !pass1_recorded) {
          core::SnapshotWriter w;
          w.put_u8(kRecPassDone);
          for (std::size_t s = 0; s < strands.size(); ++s) {
            w.put_bool(starved[s] != 0);
          }
          journal.append(w);
          pass1_recorded = true;
        }
      }
      bool needed = false;
      for (std::size_t s = 0; s < strands.size() && !needed; ++s) {
        needed = !lost[s] && coverage[s] < reread.min_coverage;
      }
      if (!needed || pass >= max_passes) {
        finished = true;
        break;
      }
      ++pass;
      next_s = 0;
      rng = core::Rng(pass_stream_seed(params, pass));
      continue;
    }
    if (token.cancelled() || (options.batch_budget != 0 &&
                              executed_batches >= options.batch_budget)) {
      cancelled = true;
      break;
    }
    ++executed_batches;
    ICSC_TRACE_SPAN("dna/archival_batch");
    ICSC_TRACE_COUNT("dna.archival_batches", 1);
    result.passes_used = pass;
    const std::size_t s_begin = next_s;
    const std::size_t s_end = std::min(strands.size(), s_begin + batch);
    const std::size_t reads_before = set.reads.size();
    for (std::size_t s = s_begin; s < s_end; ++s) {
      if (pass == 1) {
        if (params.dropout_rate > 0.0 && rng.bernoulli(params.dropout_rate)) {
          lost[s] = 1;  // never synthesised: no pass can read it back
          ++set.dropped_strands;
          continue;
        }
      } else if (lost[s] || coverage[s] >= reread.min_coverage) {
        continue;  // only the starved strands go back on the sequencer
      }
      const int copies = emit_copies(strands[s], s, params, rng, set);
      if (pass == 1 && copies == 0) ++set.dropped_strands;
      coverage[s] += static_cast<std::size_t>(copies);
    }
    next_s = s_end;
    if (persist) {
      core::SnapshotWriter w;
      w.put_u8(kRecBatch);
      w.put_u32(static_cast<std::uint32_t>(pass));
      w.put_u64(s_begin);
      w.put_u64(s_end);
      put_rng(w, rng);
      w.put_u64(set.substitutions);
      w.put_u64(set.insertions);
      w.put_u64(set.deletions);
      w.put_u64(set.burst_events);
      w.put_u64(set.dropped_strands);
      for (std::size_t s = s_begin; s < s_end; ++s) {
        w.put_u64(coverage[s]);
        w.put_bool(lost[s] != 0);
      }
      w.put_u64(set.reads.size() - reads_before);
      for (std::size_t i = reads_before; i < set.reads.size(); ++i) {
        const Read& read = set.reads[i];
        w.put_u64(read.origin);
        w.put_u64(read.bases.size());
        for (const Base base : read.bases) {
          w.put_u8(static_cast<std::uint8_t>(base));
        }
      }
      journal.append(w);
    }
  }

  for (std::size_t s = 0; s < strands.size(); ++s) {
    if (starved[s] && coverage[s] > 0) ++result.rescued_strands;
    if (lost[s] || coverage[s] == 0) ++result.unrecovered_strands;
  }
  outcome.completed = !cancelled;
  return outcome;
}

}  // namespace icsc::hetero::dna
