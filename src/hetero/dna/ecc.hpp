// Erasure coding across strands (Sec. VI; [25] "Robust Chemical
// Preservation of Digital Information on DNA in Silica with
// Error-Correcting Codes").
//
// Whole-strand loss (synthesis dropout, low sequencing coverage) is the
// dominant failure mode the end-to-end pipeline exhibits; substitutions
// inside recovered strands are mostly repaired by consensus. The standard
// remedy is an outer erasure code across strands. We implement striped XOR
// parity (RAID-style): every group of `k` data chunks gets one parity
// chunk, so one missing chunk per group is recoverable. The group id and
// role travel in the existing 16-bit chunk index.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hetero/dna/encoding.hpp"

namespace icsc::hetero::dna {

struct EccParams {
  /// Data chunks per parity group; a parity strand is added per group.
  std::size_t group_size = 7;
};

/// Encodes payload into data strands plus parity strands. Chunk indices:
/// data chunks keep their linear index; parity chunk of group g gets index
/// 0x8000 | g (top bit marks parity). Every record additionally carries a
/// CRC-8 (inner code): consensus strands whose CRC fails are treated as
/// erasures, which the outer parity can then repair -- the classic
/// inner-detection / outer-correction layering of DNA codecs [25].
OligoSet encode_payload_ecc(const std::vector<std::uint8_t>& payload,
                            std::size_t chunk_bytes, const EccParams& params);

/// CRC-8 (poly 0x07, init 0) over a byte span; exposed for tests.
std::uint8_t crc8(const std::vector<std::uint8_t>& bytes);

/// Decodes strands produced by encode_payload_ecc: reassembles data
/// chunks, then repairs at most one missing chunk per parity group by
/// XORing the group's surviving members with its parity.
struct EccDecodeResult {
  std::vector<std::uint8_t> payload;
  std::size_t missing_before_repair = 0;
  std::size_t repaired_chunks = 0;
  std::size_t missing_after_repair = 0;
};

EccDecodeResult decode_payload_ecc(const std::vector<Strand>& strands,
                                   std::size_t payload_bytes,
                                   std::size_t chunk_bytes,
                                   const EccParams& params);

/// Storage overhead of the code: total strands / data strands.
double ecc_overhead(std::size_t data_chunks, const EccParams& params);

}  // namespace icsc::hetero::dna
