#include "hetero/dna/ecc.hpp"

#include <stdexcept>

namespace icsc::hetero::dna {

std::uint8_t crc8(const std::vector<std::uint8_t>& bytes) {
  std::uint8_t crc = 0;
  for (const std::uint8_t byte : bytes) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                         : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

namespace {

constexpr std::size_t kParityFlag = 0x8000;

std::vector<std::uint8_t> make_record(std::size_t index,
                                      const std::vector<std::uint8_t>& chunk) {
  std::vector<std::uint8_t> record;
  record.reserve(3 + chunk.size());
  record.push_back(static_cast<std::uint8_t>(index >> 8));
  record.push_back(static_cast<std::uint8_t>(index & 0xFF));
  record.insert(record.end(), chunk.begin(), chunk.end());
  record.push_back(crc8(record));  // inner code over index + data
  return record;
}

}  // namespace

OligoSet encode_payload_ecc(const std::vector<std::uint8_t>& payload,
                            std::size_t chunk_bytes, const EccParams& params) {
  if (chunk_bytes == 0) throw std::invalid_argument("chunk_bytes must be > 0");
  if (params.group_size == 0) {
    throw std::invalid_argument("group_size must be > 0");
  }
  const std::size_t chunks = (payload.size() + chunk_bytes - 1) / chunk_bytes;
  if (chunks >= kParityFlag) {
    throw std::invalid_argument("payload too large for 15-bit chunk indices");
  }
  const std::size_t groups =
      (chunks + params.group_size - 1) / params.group_size;
  if (groups >= kParityFlag) {
    throw std::invalid_argument("too many parity groups");
  }

  OligoSet set;
  set.payload_bytes = payload.size();
  set.chunk_bytes = chunk_bytes;

  std::vector<std::uint8_t> parity(chunk_bytes, 0);
  std::size_t group = 0;
  std::size_t in_group = 0;
  auto flush_parity = [&]() {
    set.strands.push_back(
        encode_rotation(make_record(kParityFlag | group, parity)));
    parity.assign(chunk_bytes, 0);
    in_group = 0;
    ++group;
  };

  for (std::size_t idx = 0; idx < chunks; ++idx) {
    std::vector<std::uint8_t> chunk(chunk_bytes, 0);
    for (std::size_t k = 0; k < chunk_bytes; ++k) {
      const std::size_t byte_index = idx * chunk_bytes + k;
      if (byte_index < payload.size()) chunk[k] = payload[byte_index];
    }
    set.strands.push_back(encode_rotation(make_record(idx, chunk)));
    for (std::size_t k = 0; k < chunk_bytes; ++k) parity[k] ^= chunk[k];
    if (++in_group == params.group_size) flush_parity();
  }
  if (in_group > 0) flush_parity();
  return set;
}

EccDecodeResult decode_payload_ecc(const std::vector<Strand>& strands,
                                   std::size_t payload_bytes,
                                   std::size_t chunk_bytes,
                                   const EccParams& params) {
  const std::size_t chunks = (payload_bytes + chunk_bytes - 1) / chunk_bytes;
  const std::size_t groups =
      (chunks + params.group_size - 1) / params.group_size;

  std::vector<std::optional<std::vector<std::uint8_t>>> data(chunks);
  std::vector<std::optional<std::vector<std::uint8_t>>> parity(groups);

  for (const Strand& strand : strands) {
    const auto record = decode_rotation(strand, 3 + chunk_bytes);
    // Inner code: reject records whose CRC does not verify -- a corrupted
    // consensus becomes an erasure the outer parity can repair.
    const std::vector<std::uint8_t> covered(record.begin(), record.end() - 1);
    if (crc8(covered) != record.back()) continue;
    const std::size_t index =
        (static_cast<std::size_t>(record[0]) << 8) | record[1];
    std::vector<std::uint8_t> chunk(record.begin() + 2, record.end() - 1);
    if (index & kParityFlag) {
      const std::size_t group = index & ~kParityFlag;
      if (group < groups && !parity[group]) parity[group] = std::move(chunk);
    } else if (index < chunks && !data[index]) {
      data[index] = std::move(chunk);
    }
  }

  EccDecodeResult result;
  for (const auto& chunk : data) {
    if (!chunk) ++result.missing_before_repair;
  }

  // Repair: one missing data chunk per group is the XOR of the parity and
  // the surviving members.
  for (std::size_t group = 0; group < groups; ++group) {
    if (!parity[group]) continue;
    const std::size_t begin = group * params.group_size;
    const std::size_t end = std::min(chunks, begin + params.group_size);
    std::size_t missing_index = chunks;
    std::size_t missing_count = 0;
    for (std::size_t idx = begin; idx < end; ++idx) {
      if (!data[idx]) {
        missing_index = idx;
        ++missing_count;
      }
    }
    if (missing_count != 1) continue;
    std::vector<std::uint8_t> repaired = *parity[group];
    for (std::size_t idx = begin; idx < end; ++idx) {
      if (idx == missing_index) continue;
      for (std::size_t k = 0; k < chunk_bytes; ++k) {
        repaired[k] ^= (*data[idx])[k];
      }
    }
    data[missing_index] = std::move(repaired);
    ++result.repaired_chunks;
  }

  result.payload.assign(payload_bytes, 0);
  for (std::size_t idx = 0; idx < chunks; ++idx) {
    if (!data[idx]) {
      ++result.missing_after_repair;
      continue;
    }
    for (std::size_t k = 0; k < chunk_bytes; ++k) {
      const std::size_t byte_index = idx * chunk_bytes + k;
      if (byte_index < payload_bytes) {
        result.payload[byte_index] = (*data[idx])[k];
      }
    }
  }
  return result;
}

double ecc_overhead(std::size_t data_chunks, const EccParams& params) {
  if (data_chunks == 0) return 1.0;
  const std::size_t groups =
      (data_chunks + params.group_size - 1) / params.group_size;
  return static_cast<double>(data_chunks + groups) /
         static_cast<double>(data_chunks);
}

}  // namespace icsc::hetero::dna
