// End-to-end DNA-storage pipeline simulation (DNAssim-style, [26]).
//
// Fig. 6b: binary data -> encoding -> synthesis -> storage -> sequencing
// -> clustering -> consensus -> decoding. This module wires the dna::
// components into one run and reports recovery quality plus the decode-time
// split between a CPU backend and the FPGA accelerator model, reproducing
// the Sec. VI observation that edit-distance computation dominates decoding
// and is the profitable acceleration target.
#pragma once

#include <cstdint>
#include <vector>

#include "hetero/dna/channel.hpp"
#include "hetero/dna/cluster.hpp"
#include "hetero/dna/ecc.hpp"
#include "hetero/dna/encoding.hpp"
#include "hetero/dna/fpga_accel.hpp"

namespace icsc::hetero::dna {

struct StorageSimParams {
  std::size_t payload_bytes = 2048;
  std::size_t chunk_bytes = 16;
  ChannelParams channel;
  ClusterParams clustering;
};

struct StorageSimResult {
  std::size_t strands = 0;
  std::size_t reads = 0;
  std::size_t clusters = 0;
  double cluster_purity = 0.0;
  double byte_error_rate = 0.0;   // decoded vs original payload
  std::size_t missing_chunks = 0;
  std::uint64_t pair_comparisons = 0;
  std::uint64_t dp_cells = 0;
  /// Decode-time estimates for the edit-distance workload.
  double cpu_decode_seconds = 0.0;
  double accel_decode_seconds = 0.0;
  /// Measured wall-clock of each simulation stage (seconds) -- the
  /// DNAssim speed decomposition [26]: clustering dominates, which is why
  /// the FPGA integration targets the edit-distance kernel.
  double wall_encode_s = 0.0;
  double wall_channel_s = 0.0;
  double wall_cluster_s = 0.0;
  double wall_consensus_s = 0.0;
  double wall_decode_s = 0.0;
};

/// Runs the full pipeline on a deterministic pseudo-random payload.
StorageSimResult run_storage_sim(const StorageSimParams& params,
                                 const CpuEditProfile& cpu = {},
                                 const EditAcceleratorModel& accel =
                                     EditAcceleratorModel{});

/// Reliability-hardened archival pipeline: outer erasure code across
/// strands (ecc.hpp) plus multi-pass re-read retry in front of the decode.
/// This is the configuration the fault-campaign bench sweeps: burst errors
/// and strand dropout are injected in the channel, re-reading rescues
/// low-coverage strands, and the ECC repairs what remains missing.
struct ArchivalSimParams {
  std::size_t payload_bytes = 2048;
  std::size_t chunk_bytes = 16;
  ChannelParams channel;
  RereadParams reread;
  ClusterParams clustering;
  EccParams ecc;
};

struct ArchivalSimResult {
  std::size_t strands = 0;  // data + parity
  std::size_t reads = 0;
  std::size_t clusters = 0;
  double byte_error_rate = 0.0;  // decoded vs original payload
  std::size_t missing_before_repair = 0;
  std::size_t repaired_chunks = 0;
  std::size_t missing_after_repair = 0;
  int passes_used = 1;
  std::size_t rescued_strands = 0;
  std::size_t unrecovered_strands = 0;
  /// False when the sequencing phase was truncated by a deadline or
  /// cancellation: the pipeline still clusters and decodes the reads
  /// gathered so far, so the result is a well-formed partial.
  bool completed = true;
  /// Journal records replayed on resume instead of re-sequenced.
  std::size_t resumed_batches = 0;
};

/// Resilience controls for run_archival_sim (core/cancel.hpp,
/// core/checkpoint.hpp): the sequencing phase -- the pipeline's long-running
/// campaign stage -- honours the deadline/cancel pair and journals one
/// fsync'd record per completed strand batch, so a killed run resumed with
/// the same journal path replays at most one batch and finishes with a
/// result bit-identical to an uninterrupted run.
struct ArchivalRunOptions {
  core::Deadline deadline;
  core::CancelToken cancel;
  std::string journal_path;        // empty disables journaling
  std::size_t journal_batch = 64;  // strands per journal record
  /// Max batches to sequence in *this* invocation (0 = no limit); used by
  /// the kill/resume benches to truncate runs at deterministic points.
  std::size_t batch_budget = 0;
};

/// Runs the archival pipeline on a deterministic pseudo-random payload
/// (same payload derivation as run_storage_sim for a given channel seed).
ArchivalSimResult run_archival_sim(const ArchivalSimParams& params);

/// Resilient variant: same pipeline, with the sequencing phase journaled
/// and cancellable per `options`. Default options are bit-identical to the
/// plain overload.
ArchivalSimResult run_archival_sim(const ArchivalSimParams& params,
                                   const ArchivalRunOptions& options);

}  // namespace icsc::hetero::dna
