#include "hetero/dna/edit_distance.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "core/simd.hpp"

namespace icsc::hetero::dna {

MyersPattern::MyersPattern(const Strand& pattern)
    : length_(pattern.size()), peq_(4 * ((pattern.size() + 63) / 64), 0) {
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    peq_[(i / 64) * 4 + static_cast<std::uint8_t>(pattern[i])] |=
        std::uint64_t{1} << (i % 64);
  }
}

void levenshtein_myers_banded_batch(const MyersPattern& pattern,
                                    const Strand* const* texts,
                                    std::size_t count, int band, int* out) {
  if (count == 0) return;
  // Base is a uint8_t enum and a Strand is contiguous, so each text is
  // already the symbol-code array the core kernel consumes.
  std::vector<const std::uint8_t*> ptrs(count);
  std::vector<std::size_t> lens(count);
  for (std::size_t i = 0; i < count; ++i) {
    ptrs[i] = reinterpret_cast<const std::uint8_t*>(texts[i]->data());
    lens[i] = texts[i]->size();
  }
  core::simd::myers_banded_batch(pattern.peq(), pattern.blocks(),
                                 pattern.length(), ptrs.data(), lens.data(),
                                 count, band, out);
}

int levenshtein_full(const Strand& a, const Strand& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<int> prev(m + 1), curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
    }
    prev.swap(curr);
  }
  return prev[m];
}

int levenshtein_banded(const Strand& a, const Strand& b, int band) {
  const auto n = static_cast<int>(a.size());
  const auto m = static_cast<int>(b.size());
  if (std::abs(n - m) > band) return band + 1;
  const int inf = std::numeric_limits<int>::max() / 2;
  // Row-wise DP restricted to |i - j| <= band.
  std::vector<int> prev(m + 1, inf), curr(m + 1, inf);
  for (int j = 0; j <= std::min(m, band); ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    const int lo = std::max(1, i - band);
    const int hi = std::min(m, i + band);
    std::fill(curr.begin(), curr.end(), inf);
    if (i - band <= 0) curr[0] = i;
    for (int j = lo; j <= hi; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      const int del = prev[j] + 1;   // valid only if |i-1-j| <= band
      const int ins = curr[j - 1] + 1;
      curr[j] = std::min({sub, del, ins});
    }
    prev.swap(curr);
  }
  return std::min(prev[m], band + 1);
}

int levenshtein_myers(const Strand& a, const Strand& b) {
  // Hyyro's block-based formulation of Myers' bit-parallel algorithm.
  // Pattern = a (vertical), text = b (horizontal); 64 pattern rows per block.
  const std::size_t m = a.size();
  if (m == 0) return static_cast<int>(b.size());
  if (b.empty()) return static_cast<int>(m);

  constexpr int kWord = 64;
  const std::size_t blocks = (m + kWord - 1) / kWord;

  // Per-block match masks for each of the four bases.
  std::vector<std::array<std::uint64_t, 4>> peq(blocks, {0, 0, 0, 0});
  for (std::size_t i = 0; i < m; ++i) {
    peq[i / kWord][static_cast<std::uint8_t>(a[i])] |=
        std::uint64_t{1} << (i % kWord);
  }

  std::vector<std::uint64_t> pv(blocks, ~std::uint64_t{0});
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::size_t last = blocks - 1;
  const std::uint64_t score_bit = std::uint64_t{1} << ((m - 1) % kWord);
  int score = static_cast<int>(m);

  for (const Base tc : b) {
    int hin = 1;  // row 0 of the DP matrix increases left to right
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      std::uint64_t eq = peq[blk][static_cast<std::uint8_t>(tc)];
      const std::uint64_t pv_b = pv[blk];
      const std::uint64_t mv_b = mv[blk];
      const std::uint64_t xv = eq | mv_b;
      if (hin < 0) eq |= 1;
      const std::uint64_t xh = (((eq & pv_b) + pv_b) ^ pv_b) | eq;
      std::uint64_t ph = mv_b | ~(xh | pv_b);
      std::uint64_t mh = pv_b & xh;

      int hout = 0;
      if (blk == last) {
        if (ph & score_bit) hout = 1;
        if (mh & score_bit) hout = -1;
      } else {
        if (ph & (std::uint64_t{1} << (kWord - 1))) hout = 1;
        if (mh & (std::uint64_t{1} << (kWord - 1))) hout = -1;
      }

      ph <<= 1;
      mh <<= 1;
      if (hin < 0) {
        mh |= 1;
      } else if (hin > 0) {
        ph |= 1;
      }
      pv[blk] = mh | ~(xv | ph);
      mv[blk] = ph & xv;
      hin = hout;
    }
    score += hin;  // hout of the last block
  }
  return score;
}

int levenshtein_myers_banded(const Strand& a, const Strand& b, int band) {
  const auto n = static_cast<int>(a.size());
  const auto m = static_cast<int>(b.size());
  // Length screen first: cheaper than touching the bit vectors, and the
  // same bound levenshtein_banded applies.
  if (std::abs(n - m) > band) return band + 1;
  if (n == 0 || m == 0) {
    const int d = std::max(n, m);  // |n - m| <= band, so d <= band here
    return d;
  }

  // Hyyro's blocked Myers, as levenshtein_myers, plus per-column early
  // abandon once the band is provably exceeded.
  constexpr int kWord = 64;
  const std::size_t pm = a.size();
  const std::size_t blocks = (pm + kWord - 1) / kWord;
  std::vector<std::array<std::uint64_t, 4>> peq(blocks, {0, 0, 0, 0});
  for (std::size_t i = 0; i < pm; ++i) {
    peq[i / kWord][static_cast<std::uint8_t>(a[i])] |=
        std::uint64_t{1} << (i % kWord);
  }

  std::vector<std::uint64_t> pv(blocks, ~std::uint64_t{0});
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::size_t last = blocks - 1;
  const std::uint64_t score_bit = std::uint64_t{1} << ((pm - 1) % kWord);
  int score = n;

  for (int j = 0; j < m; ++j) {
    const Base tc = b[static_cast<std::size_t>(j)];
    int hin = 1;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      std::uint64_t eq = peq[blk][static_cast<std::uint8_t>(tc)];
      const std::uint64_t pv_b = pv[blk];
      const std::uint64_t mv_b = mv[blk];
      const std::uint64_t xv = eq | mv_b;
      if (hin < 0) eq |= 1;
      const std::uint64_t xh = (((eq & pv_b) + pv_b) ^ pv_b) | eq;
      std::uint64_t ph = mv_b | ~(xh | pv_b);
      std::uint64_t mh = pv_b & xh;

      int hout = 0;
      if (blk == last) {
        if (ph & score_bit) hout = 1;
        if (mh & score_bit) hout = -1;
      } else {
        if (ph & (std::uint64_t{1} << (kWord - 1))) hout = 1;
        if (mh & (std::uint64_t{1} << (kWord - 1))) hout = -1;
      }

      ph <<= 1;
      mh <<= 1;
      if (hin < 0) {
        mh |= 1;
      } else if (hin > 0) {
        ph |= 1;
      }
      pv[blk] = mh | ~(xv | ph);
      mv[blk] = ph & xv;
      hin = hout;
    }
    score += hin;
    // score = d(a, b[0..j+1)); each remaining text character can lower the
    // final distance by at most 1, so once score - remaining > band no
    // completion can land back inside the band.
    const int remaining = m - 1 - j;
    if (score - remaining > band) return band + 1;
  }
  return score <= band ? score : band + 1;
}

}  // namespace icsc::hetero::dna
