// Timing/energy model of the Alveo U50 edit-distance accelerator (Sec. VI).
//
// "We developed a custom FPGA accelerator based on the AMD-Xilinx Alveo U50
// Data Center Accelerator Card [35]. Our solution uses nearly 90% of FPGA
// basic-block hardware resources, achieving about 90% computing efficiency
// while delivering a maximum throughput of 16.8 TCUPS and an energy
// efficiency of 46 Mpair/Joule". We model the design as a wavefront array
// of bit-level processing elements: a PE evaluates one DP cell per cycle,
// pairs stream through pipelined lanes, and utilisation captures wavefront
// fill/drain and HBM stalls. The model is calibrated to the published
// figures and lets the bench compare CPU kernels against the accelerator
// on identical workloads.
#pragma once

#include <cstdint>

namespace icsc::hetero::dna {

struct EditAcceleratorConfig {
  /// Parallel DP cells evaluated per cycle (PE count across all lanes).
  std::uint64_t pe_count = 62208;
  double fmax_mhz = 300.0;
  /// Fraction of cycles PEs do useful work (wavefront fill/drain, HBM).
  double utilization = 0.90;
  /// Card power at full load; U50 board budget is 75 W, the kernel draws
  /// a fraction of it.
  double board_power_w = 16.2;
  /// Fraction of device LUT/FF/BRAM consumed (reported, not used in math).
  double resource_usage = 0.90;
};

/// Derived figures of merit for a given strand-length workload.
struct AcceleratorKpis {
  double tcups = 0.0;             // tera cell-updates per second
  double pairs_per_second = 0.0;  // for n x m cells per pair
  double mpairs_per_joule = 0.0;
  double seconds_for_pairs = 0.0;
  double joules_for_pairs = 0.0;
};

class EditAcceleratorModel {
public:
  explicit EditAcceleratorModel(EditAcceleratorConfig config = {});

  const EditAcceleratorConfig& config() const { return config_; }

  /// Sustained cell-update rate (CUPS).
  double cups() const;

  /// KPIs for computing `pairs` distances of n x m cells each.
  AcceleratorKpis evaluate(std::uint64_t pairs, std::size_t n,
                           std::size_t m) const;

private:
  EditAcceleratorConfig config_;
};

/// CPU reference point: measured cell-update rate of a kernel (CUPS),
/// derived by the bench from wall-clock timing, packaged here so the
/// storage simulator can mix CPU and accelerator backends.
struct CpuEditProfile {
  double cups = 2.5e9;   // typical Myers bit-parallel on one core
  double power_w = 65.0; // package power of a server-class core complex
};

/// Speedup and efficiency ratios accelerator vs CPU for a workload.
struct AccelVsCpu {
  double speedup = 0.0;
  double energy_ratio = 0.0;  // CPU joules / accelerator joules
};

AccelVsCpu compare_backends(const EditAcceleratorModel& accel,
                            const CpuEditProfile& cpu, std::uint64_t pairs,
                            std::size_t n, std::size_t m);

}  // namespace icsc::hetero::dna
