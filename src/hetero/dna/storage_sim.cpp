#include "hetero/dna/storage_sim.hpp"

#include <algorithm>
#include <chrono>

#include "core/rng.hpp"

namespace icsc::hetero::dna {

StorageSimResult run_storage_sim(const StorageSimParams& params,
                                 const CpuEditProfile& cpu,
                                 const EditAcceleratorModel& accel) {
  // Deterministic payload derived from the channel seed.
  core::Rng rng(params.channel.seed ^ 0xDA7A'57A7ULL);
  std::vector<std::uint8_t> payload(params.payload_bytes);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));

  const auto stamp = [] { return std::chrono::steady_clock::now(); };
  const auto since = [](auto t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  auto t0 = stamp();
  const OligoSet oligos = encode_payload(payload, params.chunk_bytes);
  const double wall_encode = since(t0);

  t0 = stamp();
  const ReadSet read_set = simulate_channel(oligos.strands, params.channel);
  const double wall_channel = since(t0);

  t0 = stamp();
  ClusterResult clusters = cluster_reads(read_set.reads, params.clustering);
  const double wall_cluster = since(t0);
  // Large clusters carry the most reliable consensus; decode them first so
  // fragment clusters cannot claim a chunk index ahead of them.
  std::stable_sort(clusters.clusters.begin(), clusters.clusters.end(),
                   [](const Cluster& a, const Cluster& b) {
                     return a.read_indices.size() > b.read_indices.size();
                   });
  t0 = stamp();
  const auto consensus = call_all_consensus(read_set.reads, clusters.clusters);
  const double wall_consensus = since(t0);

  t0 = stamp();
  const DecodeResult decoded =
      decode_payload(consensus, params.payload_bytes, params.chunk_bytes);
  const double wall_decode = since(t0);

  StorageSimResult result;
  result.strands = oligos.strands.size();
  result.reads = read_set.reads.size();
  result.clusters = clusters.clusters.size();
  result.cluster_purity =
      evaluate_clusters(clusters, read_set.reads, oligos.strands.size()).purity;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (decoded.payload[i] != payload[i]) ++wrong;
  }
  result.byte_error_rate =
      payload.empty() ? 0.0
                      : static_cast<double>(wrong) /
                            static_cast<double>(payload.size());
  result.missing_chunks = decoded.missing_chunks;
  result.pair_comparisons = clusters.pair_comparisons;
  result.dp_cells = clusters.dp_cells_updated;

  result.cpu_decode_seconds =
      cpu.cups > 0 ? static_cast<double>(result.dp_cells) / cpu.cups : 0.0;
  result.accel_decode_seconds =
      accel.cups() > 0 ? static_cast<double>(result.dp_cells) / accel.cups()
                       : 0.0;
  result.wall_encode_s = wall_encode;
  result.wall_channel_s = wall_channel;
  result.wall_cluster_s = wall_cluster;
  result.wall_consensus_s = wall_consensus;
  result.wall_decode_s = wall_decode;
  return result;
}

namespace {

/// Derives the deterministic payload, runs the channel via `channel_fn`,
/// and finishes the archival pipeline (cluster -> consensus -> ECC decode)
/// on whatever reads the channel produced -- partial or complete.
template <typename ChannelFn>
ArchivalSimResult archival_pipeline(const ArchivalSimParams& params,
                                    ChannelFn&& channel_fn) {
  // Same payload derivation as run_storage_sim for a given channel seed.
  core::Rng rng(params.channel.seed ^ 0xDA7A'57A7ULL);
  std::vector<std::uint8_t> payload(params.payload_bytes);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));

  const OligoSet oligos =
      encode_payload_ecc(payload, params.chunk_bytes, params.ecc);
  ArchivalSimResult result;
  const RereadResult channel = channel_fn(oligos.strands, result);

  ClusterResult clusters =
      cluster_reads(channel.set.reads, params.clustering);
  std::stable_sort(clusters.clusters.begin(), clusters.clusters.end(),
                   [](const Cluster& a, const Cluster& b) {
                     return a.read_indices.size() > b.read_indices.size();
                   });
  const auto consensus =
      call_all_consensus(channel.set.reads, clusters.clusters);
  const EccDecodeResult decoded = decode_payload_ecc(
      consensus, params.payload_bytes, params.chunk_bytes, params.ecc);

  result.strands = oligos.strands.size();
  result.reads = channel.set.reads.size();
  result.clusters = clusters.clusters.size();
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (decoded.payload[i] != payload[i]) ++wrong;
  }
  result.byte_error_rate =
      payload.empty() ? 0.0
                      : static_cast<double>(wrong) /
                            static_cast<double>(payload.size());
  result.missing_before_repair = decoded.missing_before_repair;
  result.repaired_chunks = decoded.repaired_chunks;
  result.missing_after_repair = decoded.missing_after_repair;
  result.passes_used = channel.passes_used;
  result.rescued_strands = channel.rescued_strands;
  result.unrecovered_strands = channel.unrecovered_strands;
  return result;
}

}  // namespace

ArchivalSimResult run_archival_sim(const ArchivalSimParams& params) {
  return archival_pipeline(
      params, [&](const std::vector<Strand>& strands, ArchivalSimResult&) {
        return simulate_channel_reread(strands, params.channel, params.reread);
      });
}

ArchivalSimResult run_archival_sim(const ArchivalSimParams& params,
                                   const ArchivalRunOptions& options) {
  return archival_pipeline(
      params,
      [&](const std::vector<Strand>& strands, ArchivalSimResult& result) {
        RereadRunOptions run;
        run.deadline = options.deadline;
        run.cancel = options.cancel;
        run.journal_path = options.journal_path;
        run.journal_batch = options.journal_batch;
        run.batch_budget = options.batch_budget;
        RereadRunOutcome outcome = simulate_channel_reread_resilient(
            strands, params.channel, params.reread, run);
        result.completed = outcome.completed;
        result.resumed_batches = outcome.resumed_batches;
        return std::move(outcome.result);
      });
}

}  // namespace icsc::hetero::dna
