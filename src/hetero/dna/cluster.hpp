// Read clustering and consensus calling (Sec. VI, Fig. 6b "reads clustering"
// and "consensus & decoding").
//
// Decoding DNA storage requires grouping the sequencer's reads by source
// strand ("Clustering Billions of Reads for DNA Data Storage" [32]) and
// calling a consensus strand per cluster. We implement greedy star
// clustering with an edit-distance threshold -- the kernel the FPGA
// accelerator of [35] speeds up -- and an alignment-based consensus voter.
#pragma once

#include <cstdint>
#include <vector>

#include "hetero/dna/channel.hpp"
#include "hetero/dna/edit_distance.hpp"

namespace icsc::hetero::dna {

/// Exact-distance kernel the clustering scans run when `band > 0`.
/// Both produce identical distances (the levenshtein_banded contract:
/// exact when <= band, band + 1 otherwise), so cluster assignments are
/// bit-identical; only the work performed per pair differs.
enum class DistanceKernel {
  /// The banded dynamic-programming kernel (the pre-screening baseline).
  kBandedDp,
  /// Two-stage path: length-difference + q-gram lower bounds skip the
  /// exact kernel entirely when the bound already exceeds the band; the
  /// survivors run the bit-parallel banded Myers/Hyyro kernel.
  kScreenedMyers,
};

struct ClusterParams {
  int distance_threshold = 10;  // join a cluster if d(read, rep) <= this
  /// Use a banded kernel with this band when > 0; full DP otherwise.
  int band = 12;
  DistanceKernel kernel = DistanceKernel::kScreenedMyers;
  /// q-gram order of the kScreenedMyers screen (1..8; 0 disables it).
  int screen_q = 4;
};

struct Cluster {
  std::vector<std::size_t> read_indices;  // into the ReadSet
  Strand representative;                  // first read assigned
};

struct ClusterResult {
  std::vector<Cluster> clusters;
  std::uint64_t pair_comparisons = 0;  // edit-distance evaluations performed
  std::uint64_t dp_cells_updated = 0;  // total DP work (CUPS numerator)
  /// kScreenedMyers only: pairs resolved by a lower bound alone (counted in
  /// pair_comparisons, but no exact-kernel cells were updated for them).
  std::uint64_t screened_out = 0;
};

/// Greedy star clustering: each read joins the first cluster whose
/// representative is within the threshold, else founds a new cluster.
ClusterResult cluster_reads(const std::vector<Read>& reads,
                            const ClusterParams& params);

/// Fraction of clusters whose member reads all share one origin strand
/// (purity) and fraction of origins recovered by at least one pure cluster.
struct ClusterQuality {
  double purity = 0.0;
  double origin_coverage = 0.0;
};

ClusterQuality evaluate_clusters(const ClusterResult& result,
                                 const std::vector<Read>& reads,
                                 std::size_t source_strands);

/// Alignment-based consensus: every member read is aligned to the medoid
/// candidate and votes per medoid position (substitution votes, deletion
/// votes, insertion votes after a position); the majority outcome at each
/// position yields the consensus strand. Exact recovery is expected at low
/// error rates with >= 3 member reads.
Strand call_consensus(const std::vector<Read>& reads, const Cluster& cluster);

/// Convenience: consensus for every cluster.
std::vector<Strand> call_all_consensus(const std::vector<Read>& reads,
                                       const std::vector<Cluster>& clusters);

}  // namespace icsc::hetero::dna
