// Per-layer profiling of the medical-segmentation network (Sec. VI).
//
// The campaign used "the most appropriate profiling tools for CPU, GPU,
// and FPGA architectures in different stages of the DL pipeline ... to
// extract the performance characteristics". We describe a UNet-class
// encoder/decoder (the architecture behind the aortic-calcium
// segmentation work [21], [22]) layer by layer -- FLOPs, bytes moved,
// arithmetic intensity -- and evaluate each layer on each device's
// roofline, producing the per-stage breakdowns and the memory-vs-compute
// bound classification the profiling campaign reports.
#pragma once

#include <string>
#include <vector>

#include "hetero/platform.hpp"

namespace icsc::hetero {

struct LayerShape {
  std::string name;
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t height = 0;   // output spatial size
  std::size_t width = 0;
  std::size_t kernel = 3;   // 0 marks non-conv layers (pooling, upsample)

  double gflops() const;          // fused multiply-adds counted as 2 ops
  double bytes_moved() const;     // activations in+out + weights (fp16)
  double arithmetic_intensity() const;
};

/// UNet(depth, base_channels) on a square input: `depth` encoder stages
/// (conv-conv-pool), a bottleneck, and mirrored decoder stages
/// (upsample-conv-conv), 1x1 output head.
std::vector<LayerShape> make_unet_layers(std::size_t input_size,
                                         std::size_t base_channels,
                                         int depth);

struct LayerProfile {
  LayerShape shape;
  double seconds = 0.0;
  double achieved_gflops = 0.0;
  bool memory_bound = false;
};

/// Roofline evaluation of every layer on one device.
std::vector<LayerProfile> profile_network(const std::vector<LayerShape>& layers,
                                          const DeviceProfile& device);

/// Aggregate: total time, average achieved GFLOPS, memory-bound fraction.
struct NetworkProfile {
  double total_seconds = 0.0;
  double total_gflops_work = 0.0;
  double sustained_gflops = 0.0;
  double memory_bound_fraction = 0.0;  // share of layers (by time)
};

NetworkProfile summarize_profile(const std::vector<LayerProfile>& layers);

}  // namespace icsc::hetero
