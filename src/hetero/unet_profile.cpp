#include "hetero/unet_profile.hpp"

#include <algorithm>

namespace icsc::hetero {

double LayerShape::gflops() const {
  const double pixels = static_cast<double>(height) * width;
  if (kernel == 0) {
    // Pooling / upsampling: one op per input element.
    return 2.0 * pixels * static_cast<double>(out_channels) * 1e-9;
  }
  return 2.0 * pixels * static_cast<double>(out_channels) * in_channels *
         kernel * kernel * 1e-9;
}

double LayerShape::bytes_moved() const {
  const double pixels = static_cast<double>(height) * width;
  constexpr double kBytes = 2.0;  // fp16 activations/weights
  const double activations =
      pixels * static_cast<double>(in_channels + out_channels) * kBytes;
  const double weights =
      kernel == 0 ? 0.0
                  : static_cast<double>(in_channels) * out_channels * kernel *
                        kernel * kBytes;
  return activations + weights;
}

double LayerShape::arithmetic_intensity() const {
  const double bytes = bytes_moved();
  return bytes > 0 ? gflops() * 1e9 / bytes : 0.0;
}

std::vector<LayerShape> make_unet_layers(std::size_t input_size,
                                         std::size_t base_channels,
                                         int depth) {
  std::vector<LayerShape> layers;
  std::size_t size = input_size;
  std::size_t channels = base_channels;
  std::size_t in_ch = 1;  // grayscale CT slice

  // Encoder.
  for (int d = 0; d < depth; ++d) {
    const std::string stage = "enc" + std::to_string(d);
    layers.push_back({stage + "_conv1", in_ch, channels, size, size, 3});
    layers.push_back({stage + "_conv2", channels, channels, size, size, 3});
    size /= 2;
    layers.push_back({stage + "_pool", channels, channels, size, size, 0});
    in_ch = channels;
    channels *= 2;
  }
  // Bottleneck.
  layers.push_back({"bottleneck_conv1", in_ch, channels, size, size, 3});
  layers.push_back({"bottleneck_conv2", channels, channels, size, size, 3});

  // Decoder.
  for (int d = depth - 1; d >= 0; --d) {
    const std::string stage = "dec" + std::to_string(d);
    size *= 2;
    layers.push_back({stage + "_up", channels, channels / 2, size, size, 0});
    // Skip connection doubles the input channels of the first conv.
    layers.push_back({stage + "_conv1", channels, channels / 2, size, size, 3});
    channels /= 2;
    layers.push_back({stage + "_conv2", channels, channels, size, size, 3});
  }
  layers.push_back({"head_1x1", channels, 2, size, size, 1});
  return layers;
}

std::vector<LayerProfile> profile_network(const std::vector<LayerShape>& layers,
                                          const DeviceProfile& device) {
  std::vector<LayerProfile> out;
  out.reserve(layers.size());
  for (const auto& layer : layers) {
    LayerProfile profile;
    profile.shape = layer;
    const double rate = roofline_gflops(device, layer.arithmetic_intensity());
    profile.seconds = rate > 0 ? layer.gflops() / rate : 0.0;
    profile.achieved_gflops = rate;
    profile.memory_bound =
        layer.arithmetic_intensity() < ridge_point(device);
    out.push_back(profile);
  }
  return out;
}

NetworkProfile summarize_profile(const std::vector<LayerProfile>& layers) {
  NetworkProfile summary;
  double memory_bound_seconds = 0.0;
  for (const auto& layer : layers) {
    summary.total_seconds += layer.seconds;
    summary.total_gflops_work += layer.shape.gflops();
    if (layer.memory_bound) memory_bound_seconds += layer.seconds;
  }
  summary.sustained_gflops =
      summary.total_seconds > 0
          ? summary.total_gflops_work / summary.total_seconds
          : 0.0;
  summary.memory_bound_fraction =
      summary.total_seconds > 0 ? memory_bound_seconds / summary.total_seconds
                                : 0.0;
  return summary;
}

}  // namespace icsc::hetero
