#include "hetero/platform.hpp"

#include <algorithm>

namespace icsc::hetero {

DeviceProfile profile_server_cpu() {
  return {"server-cpu (2x32c)", 4000.0, 400.0, 0.0, 500.0, 150.0};
}

DeviceProfile profile_hpc_gpu() {
  return {"hpc-gpu (A100-class, fp16)", 120000.0, 1900.0, 24.0, 400.0, 60.0};
}

DeviceProfile profile_fpga_card() {
  return {"fpga-card (U50-class, int8)", 16000.0, 380.0, 12.0, 75.0, 15.0};
}

double roofline_gflops(const DeviceProfile& device,
                       double arithmetic_intensity) {
  if (arithmetic_intensity <= 0.0) return 0.0;
  return std::min(device.peak_gflops,
                  device.mem_bandwidth_gbs * arithmetic_intensity);
}

double ridge_point(const DeviceProfile& device) {
  return device.mem_bandwidth_gbs > 0
             ? device.peak_gflops / device.mem_bandwidth_gbs
             : 0.0;
}

double peak_gflops_per_watt(const DeviceProfile& device) {
  return device.tdp_w > 0 ? device.peak_gflops / device.tdp_w : 0.0;
}

ExecutionEstimate estimate_execution(const DeviceProfile& device,
                                     double gflops, double arithmetic_intensity,
                                     double transfer_gb) {
  ExecutionEstimate est;
  const double rate = roofline_gflops(device, arithmetic_intensity);
  if (rate <= 0.0) return est;
  const double compute_s = gflops / rate;
  const double transfer_s =
      device.host_link_gbs > 0 ? transfer_gb / device.host_link_gbs : 0.0;
  est.seconds = compute_s + transfer_s;
  est.joules = compute_s * device.tdp_w + transfer_s * device.idle_w;
  est.achieved_gflops = est.seconds > 0 ? gflops / est.seconds : 0.0;
  return est;
}

}  // namespace icsc::hetero
