// End-to-end DL pipeline model for medical image segmentation (Sec. VI,
// Fig. 5) with computational-storage and advanced-memory I/O options.
//
// "We started improving the end-to-end performance in DL by addressing the
// I/O path with the adoption of custom solutions such as the one in [23]
// based on the Computational Storage paradigm ... We obtained a training
// time reduction of up to 10% and inference throughput improvement of up
// to 10%."
//
// The pipeline is modeled per batch as the Fig. 5 stage chain
//   storage read -> host preprocess -> host-to-device copy -> device
//   compute -> device-to-host copy
// with partial software pipelining: consecutive batches overlap by factor
// `overlap` (1 = perfectly pipelined, 0 = fully sequential). Computational
// storage moves preprocessing into the SSD and shrinks the transferred
// volume; persistent memory / low-latency SSDs change the storage profile.
#pragma once

#include <string>
#include <vector>

#include "hetero/platform.hpp"

namespace icsc::hetero {

struct StorageProfile {
  std::string name;
  double read_gbs = 0.0;        // sustained sequential read
  double latency_us = 0.0;      // per-request latency
  /// In-storage compute rate for computational storage (GB/s of samples
  /// preprocessed at line rate); 0 if the device has no compute engine.
  double inline_compute_gbs = 0.0;
};

StorageProfile storage_sata_ssd();
StorageProfile storage_nvme_ssd();
StorageProfile storage_low_latency_ssd();  // Optane-class
StorageProfile storage_pmem();             // persistent-memory modules
StorageProfile storage_computational_ssd();  // NVMe + FPGA engine [23]

struct DlWorkload {
  std::string name = "medical-segmentation (UNet-class)";
  std::size_t samples = 4096;
  std::size_t batch_size = 16;
  double sample_mb = 2.0;           // raw CT slice
  double preprocess_ratio = 0.5;    // output bytes / input bytes
  double host_preprocess_mbs = 2500.0;  // host CPU preprocessing throughput
  double train_gflops_per_sample = 180.0;
  double infer_gflops_per_sample = 60.0;
  double device_efficiency = 0.35;  // fraction of device peak sustained
};

/// Derives the workload's compute figures from the per-layer UNet
/// description (unet_profile.hpp) instead of hand-set constants: inference
/// FLOPs = one forward pass, training FLOPs = 3x (forward + backward).
DlWorkload workload_from_unet(std::size_t input_size,
                              std::size_t base_channels, int depth,
                              double sample_mb = 2.0);

enum class IoPath {
  kBaselineHostPreprocess,  // SSD -> host CPU preprocess -> device
  kComputationalStorage,    // preprocess inside the SSD [23]
  kPmemHostPreprocess       // PMEM storage, host preprocess
};

struct StageBreakdown {
  double storage_s = 0.0;
  double preprocess_s = 0.0;
  double h2d_s = 0.0;
  double compute_s = 0.0;
  double d2h_s = 0.0;

  double batch_total() const {
    return storage_s + preprocess_s + h2d_s + compute_s + d2h_s;
  }
};

struct PipelineResult {
  StageBreakdown per_batch;
  double epoch_seconds = 0.0;      // one pass over the dataset
  double samples_per_second = 0.0;
  double exposed_io_fraction = 0.0;  // non-compute share of the batch time
};

struct PipelineConfig {
  DlWorkload workload;
  DeviceProfile device = profile_hpc_gpu();
  StorageProfile storage = storage_nvme_ssd();
  IoPath io_path = IoPath::kBaselineHostPreprocess;
  double overlap = 0.6;  // fraction of non-bottleneck time hidden
  bool training = true;  // training (fwd+bwd, results back) vs inference
};

PipelineResult run_pipeline(const PipelineConfig& config);

/// Relative improvement of `optimized` over `baseline` epoch time (for
/// training) or throughput (for inference); positive = better.
double relative_improvement(const PipelineResult& baseline,
                            const PipelineResult& optimized, bool training);

}  // namespace icsc::hetero
