// BFloat16 transformer encoder block (Sec. VII).
//
// The CU accelerates "all major Transformer blocks" in bf16. This module
// implements the block numerically -- QKV projection, multi-head
// attention, softmax, residual + layer norm, GELU FFN -- with bf16 storage
// rounding on every tensor (fp32 accumulation inside GEMMs, matching the
// tensor engine), and records the kernel sequence with sizes so the CU and
// fabric models can time it. Numerical correctness is validated against an
// fp32 reference in the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace icsc::scf {

struct TransformerConfig {
  std::size_t seq_len = 128;
  std::size_t d_model = 256;
  std::size_t heads = 4;
  std::size_t d_ff = 1024;
  std::uint64_t seed = 99;
  bool use_bf16 = true;  // false = fp32 reference path

  /// Optional replacement for the attention softmax -- the hook through
  /// which the Sec. V approximate softmax ([18]) plugs into the Sec. VII
  /// transformer (e.g. icsc::approx::softmax_approx wrapped in a lambda).
  using SoftmaxFn = std::vector<float> (*)(std::span<const float>);
  SoftmaxFn softmax_override = nullptr;

  std::size_t d_head() const { return d_model / heads; }
};

/// One kernel invocation in the block, for the performance models.
struct KernelCall {
  enum class Kind { kGemm, kSoftmax, kLayerNorm, kGelu, kResidualAdd };
  Kind kind = Kind::kGemm;
  std::size_t m = 0, k = 0, n = 0;  // GEMM dims, or elements in m for others
  std::string label;
};

/// Weights of one encoder block (deterministically initialised).
class TransformerBlock {
public:
  explicit TransformerBlock(const TransformerConfig& config);

  /// Runs the block on input [seq_len, d_model]; returns same shape.
  /// Appends every kernel invocation to `trace` when non-null.
  core::TensorF forward(const core::TensorF& input,
                        std::vector<KernelCall>* trace = nullptr) const;

  /// Total FLOPs of one forward pass (GEMMs dominate).
  double flops() const;

  const TransformerConfig& config() const { return config_; }

private:
  TransformerConfig config_;
  core::TensorF wq_, wk_, wv_, wo_;   // [d_model, d_model]
  core::TensorF w1_, w2_;             // FFN [d_ff, d_model], [d_model, d_ff]
  std::vector<float> ln1_gain_, ln1_bias_, ln2_gain_, ln2_bias_;
};

/// Max absolute elementwise difference between two equal-shape tensors.
float max_abs_diff(const core::TensorF& a, const core::TensorF& b);

/// Deterministic random activations [seq_len, d_model] in [-1, 1].
core::TensorF make_activations(const TransformerConfig& config,
                               std::uint64_t seed);

}  // namespace icsc::scf
