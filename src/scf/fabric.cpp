#include "scf/fabric.hpp"

#include <algorithm>
#include <cmath>

#include "core/fault.hpp"
#include "core/trace.hpp"

namespace icsc::scf {

namespace {

/// Core-op and FLOP costs per element for the non-GEMM kernels.
struct ElementCost {
  double ops;
  double flops;
};

ElementCost element_cost(KernelCall::Kind kind) {
  switch (kind) {
    case KernelCall::Kind::kSoftmax: return {6.0, 5.0};
    case KernelCall::Kind::kLayerNorm: return {5.0, 4.0};
    case KernelCall::Kind::kGelu: return {8.0, 6.0};
    case KernelCall::Kind::kResidualAdd: return {1.0, 1.0};
    case KernelCall::Kind::kGemm: return {0.0, 0.0};
  }
  return {0.0, 0.0};
}

}  // namespace

FabricHealth census_cus(const core::FaultConfig& faults, int total, int forced,
                        std::uint64_t site_base) {
  FabricHealth health;
  health.total_cus = std::max(1, total);
  const core::FaultInjector injector(faults, /*stream=*/0x5CF);
  const int force = std::clamp(forced, 0, health.total_cus);
  for (int id = 0; id < health.total_cus; ++id) {
    bool failed = id < force;
    bool slow = false;
    if (!failed && injector.enabled()) {
      switch (injector.at(site_base + static_cast<std::uint64_t>(id))) {
        case core::FaultKind::kDropout:
        case core::FaultKind::kStuckAtLow:
        case core::FaultKind::kStuckAtHigh:
          failed = true;  // CU is dead: powered off, excluded from work
          break;
        case core::FaultKind::kDelay:
        case core::FaultKind::kDrift:
          slow = true;  // CU is alive but paces every barrier
          break;
        default:
          break;
      }
    }
    if (failed) ++health.failed_cus;
    if (slow) ++health.slow_cus;
  }
  health.active_cus = health.total_cus - health.failed_cus;
  health.operational = health.active_cus > 0;
  return health;
}

ScalableComputeFabric::ScalableComputeFabric(FabricConfig config)
    : config_(config),
      cu_(config.cu),
      health_(census_cus(config.faults, config.num_cus,
                         config.forced_failed_cus)) {}

FabricRunStats ScalableComputeFabric::run_kernel(const KernelCall& call) const {
  FabricRunStats stats;
  const int total = health_.total_cus;
  const int live = health_.active_cus;
  if (live <= 0) {
    // Nothing can execute: the kernel is lost wholesale.
    stats.completed = false;
    stats.lost_kernels = 1;
    return stats;
  }
  // Repartitioning splits the kernel over the survivors; otherwise the
  // original partition stands and dead CUs' shares are silently dropped.
  const int cus = config_.repartition_on_failure ? live : total;
  // Bulk-synchronous kernels wait on the slowest participant.
  const double pace = health_.slow_cus > 0 ? config_.slow_cu_penalty : 1.0;
  const double live_frac =
      static_cast<double>(live) / static_cast<double>(total);
  if (call.kind == KernelCall::Kind::kGemm) {
    // Split output rows across CUs; every CU streams the full B operand.
    const std::size_t m_share =
        (call.m + static_cast<std::size_t>(cus) - 1) / cus;
    const auto cu_stats = cu_.run_gemm(m_share, call.k, call.n);
    // Interconnect: B (k x n) broadcast once + per-CU A/C shares, 2 B each.
    const double bytes =
        2.0 * (static_cast<double>(call.k) * call.n +
               static_cast<double>(call.m) * call.k +
               static_cast<double>(call.m) * call.n);
    const double transfer_cycles = bytes / config_.interconnect_bytes_per_cycle;
    // Double-buffered against compute: the slower one paces the kernel.
    stats.cycles = static_cast<std::uint64_t>(
        std::max(static_cast<double>(cu_stats.cycles) * pace,
                 transfer_cycles) +
        config_.dispatch_cycles);
    stats.flops = 2ull * call.m * call.k * call.n;
    stats.energy_pj = cu_stats.energy_pj * cus *
                      (static_cast<double>(call.m) /
                       (static_cast<double>(m_share) * cus));  // useful share
    // Idle CU leakage on the padded share plus transfer energy.
    stats.energy_pj += bytes * 0.3;  // pJ/byte on-chip interconnect
  } else {
    const ElementCost cost = element_cost(call.kind);
    const std::size_t share =
        (call.m + static_cast<std::size_t>(cus) - 1) / cus;
    const auto cu_stats = cu_.run_elementwise(share, cost.ops, cost.flops);
    stats.cycles = static_cast<std::uint64_t>(
                       static_cast<double>(cu_stats.cycles) * pace) +
                   static_cast<std::uint64_t>(config_.dispatch_cycles);
    stats.flops = static_cast<std::uint64_t>(
        static_cast<double>(call.m) * cost.flops);
    stats.energy_pj = static_cast<double>(call.m) * cost.ops *
                      config_.cu.core_op_energy_pj;
  }
  if (!config_.repartition_on_failure && health_.failed_cus > 0) {
    // The dead CUs' shares were never computed: the result is incomplete
    // and only the surviving fraction of the work (flops, dynamic energy)
    // was actually performed.
    stats.completed = false;
    stats.lost_kernels = 1;
    stats.flops = static_cast<std::uint64_t>(
        static_cast<double>(stats.flops) * live_frac);
    stats.energy_pj *= live_frac;
  }
  return stats;
}

FabricRunStats ScalableComputeFabric::run_trace(
    const std::vector<KernelCall>& trace) const {
  ICSC_TRACE_SPAN("scf/run_trace");
  ICSC_TRACE_COUNT("scf.kernels", trace.size());
  FabricRunStats total;
  for (const auto& call : trace) {
    const auto stats = run_kernel(call);
    total.cycles += stats.cycles;
    total.flops += stats.flops;
    total.energy_pj += stats.energy_pj;
    total.completed = total.completed && stats.completed;
    total.lost_kernels += stats.lost_kernels;
    if (stats.lost_kernels > 0) {
      ICSC_TRACE_COUNT("scf.lost_kernels",
                       static_cast<std::uint64_t>(stats.lost_kernels));
    }
  }
  // Static power of the live fabric over the run (dead CUs are powered off).
  const double seconds = total.seconds(config_.cu.fclk_mhz);
  total.energy_pj += (config_.cu.static_power_mw * health_.active_cus +
                      config_.uncore_power_mw) *
                     1e-3 * seconds * 1e12;
  return total;
}

DegradedKpi ScalableComputeFabric::degraded_kpi(
    const std::vector<KernelCall>& trace) const {
  DegradedKpi kpi;
  kpi.health = health_;
  FabricConfig healthy_cfg = config_;
  healthy_cfg.faults = core::FaultConfig{};
  healthy_cfg.forced_failed_cus = 0;
  const ScalableComputeFabric healthy(healthy_cfg);
  const auto h = healthy.run_trace(trace);
  const auto d = run_trace(trace);
  kpi.completed = d.completed;
  kpi.healthy_cycles = static_cast<double>(h.cycles);
  kpi.degraded_cycles = static_cast<double>(d.cycles);
  kpi.slowdown =
      h.cycles > 0 ? kpi.degraded_cycles / kpi.healthy_cycles : 1.0;
  kpi.healthy_gflops = h.gflops(config_.cu.fclk_mhz);
  kpi.degraded_gflops = d.gflops(config_.cu.fclk_mhz);
  return kpi;
}

double ScalableComputeFabric::average_power_w(
    const FabricRunStats& stats) const {
  const double seconds = stats.seconds(config_.cu.fclk_mhz);
  return seconds > 0 ? stats.energy_pj * 1e-12 / seconds : 0.0;
}

double ScalableComputeFabric::tflops_per_watt(
    const FabricRunStats& stats) const {
  const double watts = average_power_w(stats);
  const double seconds = stats.seconds(config_.cu.fclk_mhz);
  if (watts <= 0 || seconds <= 0) return 0.0;
  return static_cast<double>(stats.flops) / seconds * 1e-12 / watts;
}

std::vector<ScalingPoint> strong_scaling(const TransformerConfig& model,
                                         const FabricConfig& base,
                                         int max_cus) {
  const TransformerBlock block(model);
  std::vector<KernelCall> trace;
  block.forward(make_activations(model, 1), &trace);

  std::vector<ScalingPoint> points;
  double single_cycles = 0.0;
  for (int cus = 1; cus <= max_cus; cus *= 2) {
    FabricConfig config = base;
    config.num_cus = cus;
    const ScalableComputeFabric fabric(config);
    const auto stats = fabric.run_trace(trace);
    ScalingPoint point;
    point.cus = cus;
    if (cus == 1) single_cycles = static_cast<double>(stats.cycles);
    point.speedup = single_cycles / static_cast<double>(stats.cycles);
    point.efficiency = point.speedup / cus;
    point.gflops = stats.gflops(config.cu.fclk_mhz);
    point.tflops_per_watt = fabric.tflops_per_watt(stats);
    points.push_back(point);
  }
  return points;
}

std::vector<ScalingPoint> weak_scaling(const TransformerConfig& base_model,
                                       const FabricConfig& base, int max_cus) {
  std::vector<ScalingPoint> points;
  double base_rate = 0.0;  // flops per cycle on 1 CU
  for (int cus = 1; cus <= max_cus; cus *= 2) {
    TransformerConfig model = base_model;
    model.seq_len = base_model.seq_len * static_cast<std::size_t>(cus);
    const TransformerBlock block(model);
    std::vector<KernelCall> trace;
    // The kernel shapes (not the numerics) drive the timing model; use a
    // light activation tensor to build the trace.
    block.forward(make_activations(model, 1), &trace);

    FabricConfig config = base;
    config.num_cus = cus;
    const ScalableComputeFabric fabric(config);
    const auto stats = fabric.run_trace(trace);
    const double rate = static_cast<double>(stats.flops) /
                        static_cast<double>(stats.cycles);
    ScalingPoint point;
    point.cus = cus;
    if (cus == 1) base_rate = rate;
    point.speedup = rate / base_rate;
    point.efficiency = point.speedup / cus;
    point.gflops = stats.gflops(config.cu.fclk_mhz);
    point.tflops_per_watt = fabric.tflops_per_watt(stats);
    points.push_back(point);
  }
  return points;
}

}  // namespace icsc::scf
