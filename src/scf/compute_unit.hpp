// RISC-V Compute Unit model (Sec. VII, Fig. 9).
//
// "Figure 9 shows a prototype Compute Unit developed within the ICSC
// Flagship 2 for the acceleration of DNN and Transformer units. The CU,
// laid out in GlobalFoundries 12nm technology, occupies ~1.21mm^2 ...
// Thanks to accelerators using the BFloat16 precision for all major
// Transformer blocks, the CU achieves up to 150 GFLOPS and 1.5 TFLOPS/W at
// 460 MHz, 0.55 V."
//
// The model: a cluster of RISC-V cores (Snitch/CV32E40P-class) sharing an
// L1 scratchpad with a RedMule-style bf16 tensor engine (a rows x cols FMA
// grid) and a double-buffering DMA. GEMM work runs tile-by-tile on the
// grid; elementwise/softmax/normalisation work runs on the cores. Energy
// uses per-op costs calibrated to the published 12nm operating point.
#pragma once

#include <cstdint>
#include <string>

#include "core/metrics.hpp"

namespace icsc::scf {

struct CuConfig {
  std::string name = "ICSC CU (GF12, bf16)";
  int cores = 8;                 // compute-oriented RISC-V cores
  int tensor_rows = 12;          // RedMule-like FMA grid
  int tensor_cols = 14;
  double l1_kib = 128.0;
  double dma_bytes_per_cycle = 32.0;  // toward L2/HBM
  double fclk_mhz = 460.0;
  double vdd = 0.55;
  double area_mm2 = 1.21;
  // Energy at the nominal (460 MHz, 0.55 V) point.
  double fma_energy_pj = 1.0;    // one bf16 FMA incl. local operand motion
  double core_op_energy_pj = 2.0;  // one scalar core op (FPU + L1)
  double dma_byte_energy_pj = 0.8;
  double static_power_mw = 15.0;

  /// Peak bf16 FLOP/s: grid FMAs count as 2 FLOPs.
  double peak_gflops() const {
    return 2.0 * tensor_rows * tensor_cols * fclk_mhz * 1e-3;
  }
};

/// Voltage/frequency operating point scaling: energy ~ V^2, static ~ V^3,
/// fclk given explicitly (the CU is characterised at 460 MHz / 0.55 V).
CuConfig at_operating_point(const CuConfig& base, double fclk_mhz, double vdd);

/// Result of running a kernel on the CU.
struct CuRunStats {
  std::uint64_t cycles = 0;
  std::uint64_t flops = 0;
  double utilization = 0.0;   // FMA-grid busy fraction (GEMM only)
  double energy_pj = 0.0;

  double seconds(double fclk_mhz) const {
    return static_cast<double>(cycles) / (fclk_mhz * 1e6);
  }
  double gflops(double fclk_mhz) const {
    const double s = seconds(fclk_mhz);
    return s > 0 ? static_cast<double>(flops) / s * 1e-9 : 0.0;
  }
};

class ComputeUnit {
public:
  explicit ComputeUnit(CuConfig config = {});

  const CuConfig& config() const { return config_; }

  /// Tiled bf16 GEMM C[m,n] += A[m,k] B[k,n] on the tensor engine with
  /// double-buffered DMA; returns cycle/energy statistics.
  CuRunStats run_gemm(std::size_t m, std::size_t k, std::size_t n) const;

  /// Elementwise / reduction work on the cores: `elements` items at
  /// `ops_per_element` core operations each (softmax ~ 6, layernorm ~ 5,
  /// gelu ~ 8, add ~ 1).
  CuRunStats run_elementwise(std::size_t elements, double ops_per_element,
                             double flops_per_element) const;

  /// Combines statistics of consecutive kernels (sequential execution).
  static CuRunStats combine(const CuRunStats& a, const CuRunStats& b);

  /// Average power (W) implied by a run at the configured clock.
  double average_power_w(const CuRunStats& stats) const;

  /// TFLOPS/W of a run.
  double tflops_per_watt(const CuRunStats& stats) const;

private:
  CuConfig config_;
};

}  // namespace icsc::scf
