// Scalable Compute Fabric (Sec. VII, Fig. 8).
//
// "The template includes, on a single silicon chip/chiplet, a heterogeneous
// acceleration system with a host/controller Linux capable processor
// (e.g., based on the CVA6 design) and an acceleration fabric composed of a
// collection of Compute Units (CUs) ... connected using a scalable
// interconnect, such as a hierarchical AXI [45], [46] or a
// Network-on-Chip [47]."
//
// The model partitions each kernel of a transformer trace across the CUs
// (GEMMs split along the output rows, elementwise kernels split evenly),
// charges the shared interconnect for weight/activation movement, and adds
// a host dispatch cost per kernel -- the three effects that bound strong
// scaling.
#pragma once

#include <cstdint>

#include "core/fault.hpp"
#include "scf/compute_unit.hpp"
#include "scf/transformer.hpp"

namespace icsc::scf {

struct FabricConfig {
  CuConfig cu;
  int num_cus = 16;
  /// Shared interconnect bandwidth toward L2/HBM (bytes per CU-clock cycle).
  double interconnect_bytes_per_cycle = 128.0;
  /// Host/controller dispatch latency per kernel (cycles).
  double dispatch_cycles = 400.0;
  /// Uncore (host + interconnect + L2) power in mW.
  double uncore_power_mw = 120.0;
  /// CU-level fault injection (core/fault.hpp): dropout/stuck CUs are dead
  /// (powered off, excluded from partitioning), delay-faulted CUs are alive
  /// but pace every barrier by `slow_cu_penalty`. Rates default to zero.
  core::FaultConfig faults;
  /// Deterministically fails the first N CUs on top of `faults` (tests and
  /// sweeps that need an exact failure count).
  int forced_failed_cus = 0;
  /// When true (default) kernels are re-partitioned across the surviving
  /// CUs, so every kernel completes while at least one CU lives. When
  /// false, shares assigned to dead CUs are simply lost: the run reports
  /// completed = false -- the silent-corruption baseline the bench
  /// contrasts against.
  bool repartition_on_failure = true;
  /// Cycle multiplier a delay-faulted CU imposes on the kernels it joins
  /// (bulk-synchronous execution waits on the laggard).
  double slow_cu_penalty = 2.0;
};

struct FabricRunStats {
  std::uint64_t cycles = 0;
  std::uint64_t flops = 0;
  double energy_pj = 0.0;
  /// False when any kernel work was lost to failed CUs (only possible with
  /// repartition_on_failure = false or a fully-dead fabric).
  bool completed = true;
  /// Kernels that lost at least one CU share.
  std::size_t lost_kernels = 0;

  double seconds(double fclk_mhz) const {
    return static_cast<double>(cycles) / (fclk_mhz * 1e6);
  }
  double gflops(double fclk_mhz) const {
    const double s = seconds(fclk_mhz);
    return s > 0 ? static_cast<double>(flops) / s * 1e-9 : 0.0;
  }
};

/// CU census of a (possibly degraded) fabric.
struct FabricHealth {
  int total_cus = 0;
  int failed_cus = 0;  // dropout/stuck: dead, powered off
  int slow_cus = 0;    // delay-faulted: alive but pace barriers
  int active_cus = 0;  // total - failed
  bool operational = true;  // at least one live CU
};

/// Deterministic CU census for `total` CUs occupying fault sites
/// site_base .. site_base+total-1 (the first `forced` CUs are failed
/// unconditionally). Dropout/stuck faults kill a CU, delay/drift faults
/// mark it slow.
FabricHealth census_cus(const core::FaultConfig& faults, int total, int forced,
                        std::uint64_t site_base = 0);

/// Degraded-mode KPI report: the faulty fabric against its healthy twin.
struct DegradedKpi {
  FabricHealth health;
  bool completed = true;
  double healthy_cycles = 0.0;
  double degraded_cycles = 0.0;
  double slowdown = 1.0;  // degraded / healthy
  double healthy_gflops = 0.0;
  double degraded_gflops = 0.0;
};

class ScalableComputeFabric {
public:
  explicit ScalableComputeFabric(FabricConfig config = {});

  const FabricConfig& config() const { return config_; }

  /// CU failure census resolved at construction (deterministic per seed).
  const FabricHealth& health() const { return health_; }

  /// Executes one kernel across the fabric. With failures present and
  /// repartitioning enabled, work is split across the surviving CUs.
  FabricRunStats run_kernel(const KernelCall& call) const;

  /// Executes a transformer-block trace kernel by kernel (kernels are
  /// dependent, so they serialise; within a kernel, CUs run in parallel).
  FabricRunStats run_trace(const std::vector<KernelCall>& trace) const;

  /// Runs the trace on this fabric and on a fault-free twin and reports
  /// the degraded-mode KPIs (slowdown, completion, throughput).
  DegradedKpi degraded_kpi(const std::vector<KernelCall>& trace) const;

  /// Average power (W) of a run: active CUs + uncore.
  double average_power_w(const FabricRunStats& stats) const;
  double tflops_per_watt(const FabricRunStats& stats) const;

private:
  FabricConfig config_;
  ComputeUnit cu_;
  FabricHealth health_;
};

/// Strong-scaling study: same trace on 1..max_cus CUs; returns speedup
/// relative to one CU for each point.
struct ScalingPoint {
  int cus = 1;
  double speedup = 1.0;
  double efficiency = 1.0;
  double gflops = 0.0;
  double tflops_per_watt = 0.0;
};

std::vector<ScalingPoint> strong_scaling(const TransformerConfig& model,
                                         const FabricConfig& base,
                                         int max_cus);

/// Weak-scaling study (Gustafson): the sequence length grows with the CU
/// count so the work per CU stays constant; `speedup` is relative work
/// rate vs one CU on the base model. The SCF template is designed for this
/// regime ("HPC deep learning inference" on growing problem sizes).
std::vector<ScalingPoint> weak_scaling(const TransformerConfig& base_model,
                                       const FabricConfig& base, int max_cus);

}  // namespace icsc::scf
