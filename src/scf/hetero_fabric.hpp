// Heterogeneous Compute-Unit mixes for the SCF (Sec. VII).
//
// "CUs are based on (not necessarily identical) clusters of one or more
// RISC-V cores ... Each CU can further be augmented with special purpose
// units, such as vector processing units tightly-coupled to the cores
// [48]; local neural processing units (NPUs) [49]; tensor cores [50]".
//
// Transformer blocks mix GEMM-shaped work (tensor engines excel) with
// elementwise/reduction work (softmax, layernorm, GELU -- core/vector
// bound). A heterogeneous fabric routes each kernel to the pool that
// executes it best: tensor CUs (RedMule-style grid, few cores) take the
// GEMMs, vector CUs (Spatz-style, many lanes, no grid) take the rest.
#pragma once

#include "scf/fabric.hpp"

namespace icsc::scf {

/// Spatz-style vector CU: many execution lanes, no tensor grid. Same
/// 12nm-class energy figures; area comparable to the tensor CU.
CuConfig vector_cu_config();

struct HeteroFabricConfig {
  CuConfig tensor_cu;                 // default: the GF12 CU
  int tensor_cus = 12;
  CuConfig vector_cu = vector_cu_config();
  int vector_cus = 4;
  double interconnect_bytes_per_cycle = 128.0;
  double dispatch_cycles = 400.0;
  double uncore_power_mw = 120.0;
  /// CU-level fault injection across both pools: tensor CUs occupy fault
  /// sites 0..tensor_cus-1, vector CUs sites kVectorSiteBase+. Dropout and
  /// stuck faults kill a CU; delay faults pace its pool's barriers.
  core::FaultConfig faults;
  int forced_failed_tensor_cus = 0;
  int forced_failed_vector_cus = 0;
  /// With repartitioning, each pool splits its kernels over its survivors;
  /// when one pool dies entirely, its kernels fall back onto the other
  /// pool (graceful degradation instead of a lost run).
  bool repartition_on_failure = true;
  double slow_cu_penalty = 2.0;

  int total_cus() const { return tensor_cus + vector_cus; }
};

/// Per-pool health census of a heterogeneous fabric.
struct HeteroHealth {
  FabricHealth tensor;
  FabricHealth vector;
  bool operational = true;  // at least one live CU anywhere
};

class HeterogeneousFabric {
public:
  /// Fault-site base for vector CUs (keeps the two pools' sites disjoint).
  static constexpr std::uint64_t kVectorSiteBase = 1000;

  explicit HeterogeneousFabric(HeteroFabricConfig config = {});

  const HeteroFabricConfig& config() const { return config_; }
  const HeteroHealth& health() const { return health_; }

  FabricRunStats run_kernel(const KernelCall& call) const;
  FabricRunStats run_trace(const std::vector<KernelCall>& trace) const;

  double average_power_w(const FabricRunStats& stats) const;
  double tflops_per_watt(const FabricRunStats& stats) const;

private:
  HeteroFabricConfig config_;
  ComputeUnit tensor_cu_;
  ComputeUnit vector_cu_;
  HeteroHealth health_;
};

/// Comparison of a homogeneous fabric against hetero mixes with the same
/// total CU count on a transformer trace.
struct MixPoint {
  int tensor_cus = 0;
  int vector_cus = 0;
  double cycles = 0.0;
  double gflops = 0.0;
  double tflops_per_watt = 0.0;
};

std::vector<MixPoint> sweep_cu_mix(const TransformerConfig& model,
                                   int total_cus);

}  // namespace icsc::scf
