#include "scf/model.hpp"

namespace icsc::scf {

TransformerModel::TransformerModel(const TransformerConfig& config, int layers)
    : config_(config) {
  for (int l = 0; l < layers; ++l) {
    TransformerConfig block_config = config;
    block_config.seed = config.seed + static_cast<std::uint64_t>(l) * 101;
    blocks_.push_back(std::make_unique<TransformerBlock>(block_config));
  }
}

core::TensorF TransformerModel::forward(const core::TensorF& input,
                                        std::vector<KernelCall>* trace) const {
  core::TensorF activations = input;
  for (const auto& block : blocks_) {
    activations = block->forward(activations, trace);
  }
  return activations;
}

double TransformerModel::flops() const {
  double total = 0.0;
  for (const auto& block : blocks_) total += block->flops();
  return total;
}

ModelInferenceEstimate estimate_model_inference(const TransformerModel& model,
                                                const FabricConfig& fabric) {
  // Trace once (kernel shapes are identical across inputs).
  std::vector<KernelCall> trace;
  model.forward(make_activations(model.config(), 1), &trace);
  const ScalableComputeFabric scf(fabric);
  const auto stats = scf.run_trace(trace);

  ModelInferenceEstimate est;
  est.seconds_per_sequence = stats.seconds(fabric.cu.fclk_mhz);
  est.sequences_per_second =
      est.seconds_per_sequence > 0 ? 1.0 / est.seconds_per_sequence : 0.0;
  est.gflops_sustained = stats.gflops(fabric.cu.fclk_mhz);
  est.joules_per_sequence = stats.energy_pj * 1e-12;
  est.power_w = scf.average_power_w(stats);
  return est;
}

}  // namespace icsc::scf
