#include "scf/compute_unit.hpp"

#include <algorithm>
#include <cmath>

namespace icsc::scf {

CuConfig at_operating_point(const CuConfig& base, double fclk_mhz,
                            double vdd) {
  CuConfig config = base;
  config.fclk_mhz = fclk_mhz;
  config.vdd = vdd;
  const double v_ratio = vdd / base.vdd;
  config.fma_energy_pj = base.fma_energy_pj * v_ratio * v_ratio;
  config.core_op_energy_pj = base.core_op_energy_pj * v_ratio * v_ratio;
  config.dma_byte_energy_pj = base.dma_byte_energy_pj * v_ratio * v_ratio;
  config.static_power_mw = base.static_power_mw * v_ratio * v_ratio * v_ratio;
  return config;
}

ComputeUnit::ComputeUnit(CuConfig config) : config_(config) {}

CuRunStats ComputeUnit::run_gemm(std::size_t m, std::size_t k,
                                 std::size_t n) const {
  CuRunStats stats;
  if (m == 0 || k == 0 || n == 0) return stats;
  const auto rows = static_cast<std::size_t>(config_.tensor_rows);
  const auto cols = static_cast<std::size_t>(config_.tensor_cols);
  const std::size_t m_tiles = (m + rows - 1) / rows;
  const std::size_t n_tiles = (n + cols - 1) / cols;

  // Each output tile streams the full k dimension through the grid:
  // k cycles of rows x cols FMAs (partial tiles waste grid slots).
  const std::uint64_t compute_cycles_per_tile = k;
  // Double-buffered DMA per tile, weight-stationary: the B slab (k x cols)
  // stays resident across the m_tiles of its column strip; A slabs
  // (rows x k) and the C writeback (rows x cols) move per tile. bf16 = 2 B.
  const double tile_bytes =
      2.0 * (static_cast<double>(rows) * k +
             static_cast<double>(k) * cols / static_cast<double>(m_tiles) +
             static_cast<double>(rows) * cols);
  const double dma_cycles_per_tile = tile_bytes / config_.dma_bytes_per_cycle;
  // Steady state: compute and DMA overlap; the slower one paces the loop.
  const double paced =
      std::max(static_cast<double>(compute_cycles_per_tile),
               dma_cycles_per_tile);
  const std::size_t tiles = m_tiles * n_tiles;
  stats.cycles = static_cast<std::uint64_t>(paced * static_cast<double>(tiles)) +
                 static_cast<std::uint64_t>(dma_cycles_per_tile);  // prologue

  stats.flops = 2ull * m * k * n;
  const double ideal_cycles =
      static_cast<double>(m) * static_cast<double>(k) * n /
      (static_cast<double>(rows) * cols);
  stats.utilization =
      stats.cycles > 0 ? ideal_cycles / static_cast<double>(stats.cycles) : 0.0;

  // Energy: FMAs actually useful + grid overhead on partial tiles is
  // clock-gated (counted at 20%), plus DMA traffic, plus leakage.
  const double useful_fmas = static_cast<double>(m) * k * n;
  const double issued_fmas = static_cast<double>(tiles) * k * rows * cols;
  const double gated_fmas = issued_fmas - useful_fmas;
  stats.energy_pj = useful_fmas * config_.fma_energy_pj +
                    gated_fmas * config_.fma_energy_pj * 0.2 +
                    static_cast<double>(tiles) * tile_bytes *
                        config_.dma_byte_energy_pj;
  stats.energy_pj += config_.static_power_mw * 1e-3 *  // W
                     (static_cast<double>(stats.cycles) /
                      (config_.fclk_mhz * 1e6)) *
                     1e12;  // -> pJ
  return stats;
}

CuRunStats ComputeUnit::run_elementwise(std::size_t elements,
                                        double ops_per_element,
                                        double flops_per_element) const {
  CuRunStats stats;
  if (elements == 0) return stats;
  const double total_ops = static_cast<double>(elements) * ops_per_element;
  stats.cycles = static_cast<std::uint64_t>(
      std::ceil(total_ops / static_cast<double>(config_.cores)));
  stats.flops = static_cast<std::uint64_t>(
      static_cast<double>(elements) * flops_per_element);
  stats.energy_pj = total_ops * config_.core_op_energy_pj;
  stats.energy_pj += config_.static_power_mw * 1e-3 *
                     (static_cast<double>(stats.cycles) /
                      (config_.fclk_mhz * 1e6)) *
                     1e12;
  stats.utilization = 0.0;  // grid idle
  return stats;
}

CuRunStats ComputeUnit::combine(const CuRunStats& a, const CuRunStats& b) {
  CuRunStats out;
  out.cycles = a.cycles + b.cycles;
  out.flops = a.flops + b.flops;
  out.energy_pj = a.energy_pj + b.energy_pj;
  const double weight_a = static_cast<double>(a.cycles);
  const double weight_b = static_cast<double>(b.cycles);
  out.utilization =
      (weight_a + weight_b) > 0
          ? (a.utilization * weight_a + b.utilization * weight_b) /
                (weight_a + weight_b)
          : 0.0;
  return out;
}

double ComputeUnit::average_power_w(const CuRunStats& stats) const {
  const double seconds = stats.seconds(config_.fclk_mhz);
  return seconds > 0 ? stats.energy_pj * 1e-12 / seconds : 0.0;
}

double ComputeUnit::tflops_per_watt(const CuRunStats& stats) const {
  const double watts = average_power_w(stats);
  const double seconds = stats.seconds(config_.fclk_mhz);
  if (watts <= 0 || seconds <= 0) return 0.0;
  return static_cast<double>(stats.flops) / seconds * 1e-12 / watts;
}

}  // namespace icsc::scf
