#include "scf/hetero_fabric.hpp"

#include <algorithm>
#include <cmath>

namespace icsc::scf {

CuConfig vector_cu_config() {
  CuConfig config;
  config.name = "vector CU (Spatz-style, GF12)";
  config.cores = 64;       // vector lanes for elementwise work
  config.tensor_rows = 2;  // vestigial FMA capability
  config.tensor_cols = 2;
  config.area_mm2 = 1.1;
  config.core_op_energy_pj = 1.2;  // lane datapath beats scalar cores
  config.static_power_mw = 14.0;
  return config;
}

HeterogeneousFabric::HeterogeneousFabric(HeteroFabricConfig config)
    : config_(config),
      tensor_cu_(config.tensor_cu),
      vector_cu_(config.vector_cu) {
  health_.tensor = census_cus(config_.faults, config_.tensor_cus,
                              config_.forced_failed_tensor_cus,
                              /*site_base=*/0);
  health_.vector = census_cus(config_.faults, config_.vector_cus,
                              config_.forced_failed_vector_cus,
                              kVectorSiteBase);
  health_.operational =
      health_.tensor.active_cus + health_.vector.active_cus > 0;
}

namespace {

struct ElementCost {
  double ops;
  double flops;
};

ElementCost element_cost(KernelCall::Kind kind) {
  switch (kind) {
    case KernelCall::Kind::kSoftmax: return {6.0, 5.0};
    case KernelCall::Kind::kLayerNorm: return {5.0, 4.0};
    case KernelCall::Kind::kGelu: return {8.0, 6.0};
    case KernelCall::Kind::kResidualAdd: return {1.0, 1.0};
    case KernelCall::Kind::kGemm: return {0.0, 0.0};
  }
  return {0.0, 0.0};
}

}  // namespace

FabricRunStats HeterogeneousFabric::run_kernel(const KernelCall& call) const {
  FabricRunStats stats;
  const bool gemm = call.kind == KernelCall::Kind::kGemm;
  // Route to the preferred pool; when it has no survivors and
  // repartitioning is on, fall back onto the other pool (slower, but the
  // kernel completes) instead of losing the kernel outright.
  const FabricHealth* pool = gemm ? &health_.tensor : &health_.vector;
  bool on_tensor_pool = gemm;
  if (config_.repartition_on_failure && pool->active_cus <= 0) {
    const FabricHealth* other = gemm ? &health_.vector : &health_.tensor;
    if (other->active_cus > 0) {
      pool = other;
      on_tensor_pool = !gemm;
    }
  }
  if (pool->active_cus <= 0) {
    stats.completed = false;
    stats.lost_kernels = 1;
    return stats;
  }
  const int cus = std::max(1, config_.repartition_on_failure
                                  ? pool->active_cus
                                  : pool->total_cus);
  const double pace = pool->slow_cus > 0 ? config_.slow_cu_penalty : 1.0;
  const ComputeUnit& unit = on_tensor_pool ? tensor_cu_ : vector_cu_;
  const CuConfig& unit_cfg =
      on_tensor_pool ? config_.tensor_cu : config_.vector_cu;
  if (gemm) {
    const std::size_t m_share =
        (call.m + static_cast<std::size_t>(cus) - 1) / cus;
    const auto cu_stats = unit.run_gemm(m_share, call.k, call.n);
    const double bytes =
        2.0 * (static_cast<double>(call.k) * call.n +
               static_cast<double>(call.m) * call.k +
               static_cast<double>(call.m) * call.n);
    const double transfer_cycles =
        bytes / config_.interconnect_bytes_per_cycle;
    stats.cycles = static_cast<std::uint64_t>(
        std::max(static_cast<double>(cu_stats.cycles) * pace,
                 transfer_cycles) +
        config_.dispatch_cycles);
    stats.flops = 2ull * call.m * call.k * call.n;
    stats.energy_pj = cu_stats.energy_pj * cus *
                      (static_cast<double>(call.m) /
                       (static_cast<double>(m_share) * cus));
    stats.energy_pj += bytes * 0.3;
  } else {
    const ElementCost cost = element_cost(call.kind);
    const std::size_t share =
        (call.m + static_cast<std::size_t>(cus) - 1) / cus;
    const auto cu_stats = unit.run_elementwise(share, cost.ops, cost.flops);
    stats.cycles = static_cast<std::uint64_t>(
                       static_cast<double>(cu_stats.cycles) * pace) +
                   static_cast<std::uint64_t>(config_.dispatch_cycles);
    stats.flops = static_cast<std::uint64_t>(
        static_cast<double>(call.m) * cost.flops);
    stats.energy_pj = static_cast<double>(call.m) * cost.ops *
                      unit_cfg.core_op_energy_pj;
  }
  if (!config_.repartition_on_failure && pool->failed_cus > 0) {
    // Static partitioning: the shares mapped to dead CUs are lost.
    const double live_frac = static_cast<double>(pool->active_cus) /
                             static_cast<double>(pool->total_cus);
    stats.completed = false;
    stats.lost_kernels = 1;
    stats.flops = static_cast<std::uint64_t>(
        static_cast<double>(stats.flops) * live_frac);
    stats.energy_pj *= live_frac;
  }
  return stats;
}

FabricRunStats HeterogeneousFabric::run_trace(
    const std::vector<KernelCall>& trace) const {
  FabricRunStats total;
  for (const auto& call : trace) {
    const auto stats = run_kernel(call);
    total.cycles += stats.cycles;
    total.flops += stats.flops;
    total.energy_pj += stats.energy_pj;
    total.completed = total.completed && stats.completed;
    total.lost_kernels += stats.lost_kernels;
  }
  // Static power of the live CUs only (dead CUs are powered off).
  const double seconds = total.seconds(config_.tensor_cu.fclk_mhz);
  total.energy_pj +=
      (config_.tensor_cu.static_power_mw * health_.tensor.active_cus +
       config_.vector_cu.static_power_mw * health_.vector.active_cus +
       config_.uncore_power_mw) *
      1e-3 * seconds * 1e12;
  return total;
}

double HeterogeneousFabric::average_power_w(const FabricRunStats& stats) const {
  const double seconds = stats.seconds(config_.tensor_cu.fclk_mhz);
  return seconds > 0 ? stats.energy_pj * 1e-12 / seconds : 0.0;
}

double HeterogeneousFabric::tflops_per_watt(const FabricRunStats& stats) const {
  const double watts = average_power_w(stats);
  const double seconds = stats.seconds(config_.tensor_cu.fclk_mhz);
  if (watts <= 0 || seconds <= 0) return 0.0;
  return static_cast<double>(stats.flops) / seconds * 1e-12 / watts;
}

std::vector<MixPoint> sweep_cu_mix(const TransformerConfig& model,
                                   int total_cus) {
  const TransformerBlock block(model);
  std::vector<KernelCall> trace;
  block.forward(make_activations(model, 1), &trace);

  std::vector<MixPoint> points;
  for (int vector_cus = 0; vector_cus <= total_cus / 2;
       vector_cus += (vector_cus < 4 ? 1 : 2)) {
    HeteroFabricConfig config;
    config.tensor_cus = total_cus - vector_cus;
    config.vector_cus = std::max(1, vector_cus);
    if (vector_cus == 0) {
      // Homogeneous reference: elementwise runs on the tensor CUs' cores.
      config.vector_cu = config.tensor_cu;
      config.vector_cus = config.tensor_cus;
      config.tensor_cus = total_cus;
    }
    const HeterogeneousFabric fabric(config);
    const auto stats = fabric.run_trace(trace);
    MixPoint point;
    point.tensor_cus = vector_cus == 0 ? total_cus : total_cus - vector_cus;
    point.vector_cus = vector_cus;
    point.cycles = static_cast<double>(stats.cycles);
    point.gflops = stats.gflops(config.tensor_cu.fclk_mhz);
    point.tflops_per_watt = fabric.tflops_per_watt(stats);
    points.push_back(point);
  }
  return points;
}

}  // namespace icsc::scf
