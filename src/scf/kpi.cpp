#include "scf/kpi.hpp"

namespace icsc::scf {

const char* platform_class_name(PlatformClass cls) {
  switch (cls) {
    case PlatformClass::kCpu: return "CPU";
    case PlatformClass::kGpu: return "GPU";
    case PlatformClass::kTpuNpu: return "TPU/NPU";
    case PlatformClass::kFpga: return "FPGA";
    case PlatformClass::kCgra: return "CGRA";
    case PlatformClass::kImc: return "IMC/NPU";
    case PlatformClass::kRiscvSoc: return "RISC-V SoC";
  }
  return "?";
}

std::vector<SurveyEntry> fig1_survey() {
  // Published peak-throughput / board-power points (datasheet or paper
  // values at the noted precision), as collected by the project survey [1].
  return {
      {"Xeon 8380 (AVX-512)", PlatformClass::kCpu, 5.3, 270, 2021, "int8"},
      {"EPYC 9654", PlatformClass::kCpu, 7.4, 360, 2022, "int8"},
      {"NVIDIA A100", PlatformClass::kGpu, 624, 400, 2020, "int8"},
      {"NVIDIA H100 SXM", PlatformClass::kGpu, 1979, 700, 2022, "int8"},
      {"NVIDIA Jetson Orin", PlatformClass::kGpu, 275, 60, 2022, "int8"},
      {"Google TPUv4", PlatformClass::kTpuNpu, 275, 192, 2021, "bf16"},
      {"Tesla Dojo D1", PlatformClass::kTpuNpu, 362, 400, 2021, "bf16"},
      {"Alveo U50 (DSP int8)", PlatformClass::kFpga, 16.2, 75, 2020, "int8"},
      {"Versal VC1902", PlatformClass::kFpga, 133, 75, 2021, "int8"},
      {"Stratix-10 NX", PlatformClass::kFpga, 143, 150, 2020, "int8"},
      {"Plasticine-class CGRA", PlatformClass::kCgra, 49, 25, 2017, "int8"},
      {"Axelera Metis AIPU", PlatformClass::kImc, 209.6, 14, 2024, "int8"},
      {"ST DIMC multi-tile [8]", PlatformClass::kImc, 9.6, 0.031, 2023, "4b"},
      {"NeuRRAM (analog IMC)", PlatformClass::kImc, 0.3, 0.015, 2022, "4b"},
      {"Esperanto ET-SoC-1", PlatformClass::kRiscvSoc, 139, 20, 2022, "int8"},
      {"Tenstorrent Grayskull", PlatformClass::kTpuNpu, 92, 75, 2021, "fp8"},
  };
}

std::vector<RiscvEntry> fig7_survey() {
  // RISC-V DL/Transformer acceleration points ([1], Fig. 7): most cluster
  // in the 100 mW - 1 W range, EU efforts marked.
  return {
      {"GAP9 (GreenWaves)", 0.05, 32.0, "int8", true},
      {"Kraken (PULP)", 0.30, 1000.0, "int8/SNN", true},
      {"Marsellus (PULP)", 0.12, 637.0, "int8", true},
      {"Darkside", 0.25, 152.0, "int8/fp16", true},
      {"Vega (PULP)", 0.0494, 32.2, "int8", true},
      {"Archimedes (AR/VR) [49]", 0.35, 1200.0, "int8", true},
      {"RedMule cluster [50]", 0.22, 117.0, "fp16", true},
      {"Snitch cluster", 0.15, 25.6, "fp64/fp32", true},
      {"Spatz cluster [48]", 0.28, 79.0, "fp32", true},
      {"Occamy (dual chiplet) [46]", 5.0, 768.0, "fp64..fp8", true},
      {"Esperanto ET-SoC-1 [40]", 20.0, 139000.0, "int8", false},
      {"Celerity [42]", 2.0, 500.0, "int16", false},
      {"Metis AIPU [44]", 14.0, 209600.0, "int8", true},
  };
}

double fig7_fraction_in_power_band(double lo_w, double hi_w) {
  const auto entries = fig7_survey();
  if (entries.empty()) return 0.0;
  std::size_t inside = 0;
  for (const auto& e : entries) {
    if (e.power_w >= lo_w && e.power_w <= hi_w) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(entries.size());
}

}  // namespace icsc::scf
