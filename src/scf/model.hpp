// Multi-block transformer models on the SCF (Sec. VII system level).
//
// The CU/fabric models time one encoder block; real inference runs stacks
// of them (BERT-class encoders). TransformerModel composes L blocks with
// distinct weights, provides the end-to-end numerical forward pass, and
// rolls the full-model kernel trace into fabric-level latency/energy so
// "blocks/s" becomes "sequences/s" at model scale.
#pragma once

#include <memory>

#include "scf/fabric.hpp"
#include "scf/transformer.hpp"

namespace icsc::scf {

class TransformerModel {
public:
  /// `layers` encoder blocks sharing one TransformerConfig (weights differ
  /// per block via the seed).
  TransformerModel(const TransformerConfig& config, int layers);

  /// Full numerical forward pass through all blocks.
  core::TensorF forward(const core::TensorF& input,
                        std::vector<KernelCall>* trace = nullptr) const;

  double flops() const;
  int layers() const { return static_cast<int>(blocks_.size()); }
  const TransformerConfig& config() const { return config_; }

private:
  TransformerConfig config_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

/// End-to-end inference estimate of a model on a fabric configuration.
struct ModelInferenceEstimate {
  double seconds_per_sequence = 0.0;
  double sequences_per_second = 0.0;
  double gflops_sustained = 0.0;
  double joules_per_sequence = 0.0;
  double power_w = 0.0;
};

ModelInferenceEstimate estimate_model_inference(const TransformerModel& model,
                                                const FabricConfig& fabric);

}  // namespace icsc::scf
