#include "scf/transformer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/bfloat16.hpp"
#include "core/rng.hpp"

namespace icsc::scf {

namespace {

void round_tensor_bf16(core::TensorF& t, bool enabled) {
  if (!enabled) return;
  t.transform([](float v) { return core::bf16_round(v); });
}

/// C = A B^T with A [m, k], B [n, k] (weight layout), fp32 accumulation.
core::TensorF gemm_bt(const core::TensorF& a, const core::TensorF& b,
                      bool bf16) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  assert(b.dim(1) == k);
  core::TensorF c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0F;  // fp32 accumulator, as in the tensor engine
      for (std::size_t p = 0; p < k; ++p) acc += a(i, p) * b(j, p);
      c(i, j) = acc;
    }
  }
  round_tensor_bf16(c, bf16);
  return c;
}

/// C = A B with A [m, k], B [k, n].
core::TensorF gemm(const core::TensorF& a, const core::TensorF& b, bool bf16) {
  auto c = core::matmul(a, b);
  round_tensor_bf16(c, bf16);
  return c;
}

void softmax_rows(core::TensorF& t, bool bf16,
                  TransformerConfig::SoftmaxFn override_fn) {
  const std::size_t rows = t.dim(0), cols = t.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    if (override_fn != nullptr) {
      const auto probs = override_fn(
          std::span<const float>(&t(r, 0), cols));
      for (std::size_t c = 0; c < cols; ++c) t(r, c) = probs[c];
      continue;
    }
    float peak = t(r, 0);
    for (std::size_t c = 1; c < cols; ++c) peak = std::max(peak, t(r, c));
    float sum = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) {
      t(r, c) = std::exp(t(r, c) - peak);
      sum += t(r, c);
    }
    for (std::size_t c = 0; c < cols; ++c) t(r, c) /= sum;
  }
  round_tensor_bf16(t, bf16);
}

void layer_norm(core::TensorF& t, const std::vector<float>& gain,
                const std::vector<float>& bias, bool bf16) {
  const std::size_t rows = t.dim(0), cols = t.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    float mean = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) mean += t(r, c);
    mean /= static_cast<float>(cols);
    float var = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) {
      const float d = t(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float inv = 1.0F / std::sqrt(var + 1e-5F);
    for (std::size_t c = 0; c < cols; ++c) {
      t(r, c) = (t(r, c) - mean) * inv * gain[c] + bias[c];
    }
  }
  round_tensor_bf16(t, bf16);
}

void gelu(core::TensorF& t, bool bf16) {
  t.transform([](float v) {
    // tanh approximation, as hardware GELU units implement it.
    const float inner = 0.7978845608F * (v + 0.044715F * v * v * v);
    return 0.5F * v * (1.0F + std::tanh(inner));
  });
  round_tensor_bf16(t, bf16);
}

core::TensorF random_weights(std::size_t out, std::size_t in, core::Rng& rng) {
  core::TensorF w({out, in});
  const double sigma = 1.0 / std::sqrt(static_cast<double>(in));
  for (auto& v : w.data()) v = static_cast<float>(rng.normal(0.0, sigma));
  return w;
}

void trace_gemm(std::vector<KernelCall>* trace, std::size_t m, std::size_t k,
                std::size_t n, const std::string& label) {
  if (trace) {
    trace->push_back({KernelCall::Kind::kGemm, m, k, n, label});
  }
}

void trace_other(std::vector<KernelCall>* trace, KernelCall::Kind kind,
                 std::size_t elements, const std::string& label) {
  if (trace) trace->push_back({kind, elements, 0, 0, label});
}

}  // namespace

TransformerBlock::TransformerBlock(const TransformerConfig& config)
    : config_(config) {
  assert(config.d_model % config.heads == 0);
  core::Rng rng(config.seed);
  wq_ = random_weights(config.d_model, config.d_model, rng);
  wk_ = random_weights(config.d_model, config.d_model, rng);
  wv_ = random_weights(config.d_model, config.d_model, rng);
  wo_ = random_weights(config.d_model, config.d_model, rng);
  w1_ = random_weights(config.d_ff, config.d_model, rng);
  w2_ = random_weights(config.d_model, config.d_ff, rng);
  ln1_gain_.assign(config.d_model, 1.0F);
  ln1_bias_.assign(config.d_model, 0.0F);
  ln2_gain_.assign(config.d_model, 1.0F);
  ln2_bias_.assign(config.d_model, 0.0F);
  if (config.use_bf16) {
    for (auto* w : {&wq_, &wk_, &wv_, &wo_, &w1_, &w2_}) {
      round_tensor_bf16(*w, true);
    }
  }
}

core::TensorF TransformerBlock::forward(const core::TensorF& input,
                                        std::vector<KernelCall>* trace) const {
  const std::size_t s = config_.seq_len;
  const std::size_t d = config_.d_model;
  const std::size_t h = config_.heads;
  const std::size_t dh = config_.d_head();
  const bool bf16 = config_.use_bf16;
  assert(input.dim(0) == s && input.dim(1) == d);

  core::TensorF x = input;
  round_tensor_bf16(x, bf16);

  // QKV projections.
  const auto q = gemm_bt(x, wq_, bf16);
  trace_gemm(trace, s, d, d, "q_proj");
  const auto k_mat = gemm_bt(x, wk_, bf16);
  trace_gemm(trace, s, d, d, "k_proj");
  const auto v = gemm_bt(x, wv_, bf16);
  trace_gemm(trace, s, d, d, "v_proj");

  // Attention per head.
  core::TensorF context({s, d});
  const float scale = 1.0F / std::sqrt(static_cast<float>(dh));
  for (std::size_t head = 0; head < h; ++head) {
    const std::size_t off = head * dh;
    core::TensorF qh({s, dh}), kh({s, dh}), vh({s, dh});
    for (std::size_t r = 0; r < s; ++r) {
      for (std::size_t c = 0; c < dh; ++c) {
        qh(r, c) = q(r, off + c);
        kh(r, c) = k_mat(r, off + c);
        vh(r, c) = v(r, off + c);
      }
    }
    auto scores = gemm_bt(qh, kh, bf16);  // [s, s]
    trace_gemm(trace, s, dh, s, "attn_scores_h" + std::to_string(head));
    scores *= scale;
    round_tensor_bf16(scores, bf16);
    softmax_rows(scores, bf16, config_.softmax_override);
    trace_other(trace, KernelCall::Kind::kSoftmax, s * s,
                "softmax_h" + std::to_string(head));
    const auto ctx = gemm(scores, vh, bf16);  // [s, dh]
    trace_gemm(trace, s, s, dh, "attn_context_h" + std::to_string(head));
    for (std::size_t r = 0; r < s; ++r) {
      for (std::size_t c = 0; c < dh; ++c) context(r, off + c) = ctx(r, c);
    }
  }

  auto attn_out = gemm_bt(context, wo_, bf16);
  trace_gemm(trace, s, d, d, "out_proj");

  // Residual + layer norm.
  attn_out += x;
  round_tensor_bf16(attn_out, bf16);
  trace_other(trace, KernelCall::Kind::kResidualAdd, s * d, "residual1");
  layer_norm(attn_out, ln1_gain_, ln1_bias_, bf16);
  trace_other(trace, KernelCall::Kind::kLayerNorm, s * d, "ln1");

  // FFN.
  auto hidden = gemm_bt(attn_out, w1_, bf16);  // [s, d_ff]
  trace_gemm(trace, s, d, config_.d_ff, "ffn_up");
  gelu(hidden, bf16);
  trace_other(trace, KernelCall::Kind::kGelu, s * config_.d_ff, "gelu");
  auto out = gemm_bt(hidden, w2_, bf16);  // [s, d]
  trace_gemm(trace, s, config_.d_ff, d, "ffn_down");
  out += attn_out;
  round_tensor_bf16(out, bf16);
  trace_other(trace, KernelCall::Kind::kResidualAdd, s * d, "residual2");
  layer_norm(out, ln2_gain_, ln2_bias_, bf16);
  trace_other(trace, KernelCall::Kind::kLayerNorm, s * d, "ln2");
  return out;
}

double TransformerBlock::flops() const {
  const double s = static_cast<double>(config_.seq_len);
  const double d = static_cast<double>(config_.d_model);
  const double ff = static_cast<double>(config_.d_ff);
  // 4 projections + 2 attention GEMMs + 2 FFN GEMMs.
  return 2.0 * (4.0 * s * d * d + 2.0 * s * s * d + 2.0 * s * d * ff);
}

float max_abs_diff(const core::TensorF& a, const core::TensorF& b) {
  assert(a.same_shape(b));
  float worst = 0.0F;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

core::TensorF make_activations(const TransformerConfig& config,
                               std::uint64_t seed) {
  core::Rng rng(seed);
  core::TensorF x({config.seq_len, config.d_model});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

}  // namespace icsc::scf
