// Survey datasets and KPI roll-ups for Figs. 1 and 7.
//
// Fig. 1 plots state-of-the-art AI accelerators by computational speed,
// power, and TOPs/W (data from the project survey [1]/[2]); Fig. 7 plots
// RISC-V DL/Transformer accelerators clustered by power class, with the
// ICSC target zone above 1 W. Both figures are literature data: the
// entries below carry the published peak-throughput/power numbers
// (datasheet/paper values, precision as noted), and the bench adds the
// points produced by this framework's own models (CU, SCF, DIMC).
#pragma once

#include <string>
#include <vector>

namespace icsc::scf {

enum class PlatformClass { kCpu, kGpu, kTpuNpu, kFpga, kCgra, kImc, kRiscvSoc };

const char* platform_class_name(PlatformClass cls);

/// One accelerator point for the Fig. 1 scatter.
struct SurveyEntry {
  std::string name;
  PlatformClass cls = PlatformClass::kGpu;
  double tops = 0.0;     // peak at the cited precision
  double power_w = 0.0;
  int year = 2022;
  std::string precision;

  double tops_per_watt() const { return power_w > 0 ? tops / power_w : 0.0; }
};

/// Curated Fig. 1 dataset (published peak numbers).
std::vector<SurveyEntry> fig1_survey();

/// One RISC-V accelerator point for the Fig. 7 scatter.
struct RiscvEntry {
  std::string name;
  double power_w = 0.0;
  double gops = 0.0;     // peak DL throughput
  std::string precision;
  bool eu_based = false;

  double gops_per_watt() const { return power_w > 0 ? gops / power_w : 0.0; }
};

/// Curated Fig. 7 dataset ([1]): note the 100 mW - 1 W cluster.
std::vector<RiscvEntry> fig7_survey();

/// Fraction of fig7 entries inside [lo_w, hi_w] -- the paper's observation
/// that current RISC-V accelerators cluster in the 100mW-1W range.
double fig7_fraction_in_power_band(double lo_w, double hi_w);

}  // namespace icsc::scf
