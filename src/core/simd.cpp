// Runtime ISA detection and dispatch for the SIMD primitives.
//
// Detection uses the compiler's CPU feature builtins on x86 (which also
// check OS support for the AVX register state); aarch64 makes NEON
// architectural, so detection there is a compile-time fact. The resolved
// ISA is cached in an atomic: the first primitive call reads ICSC_SIMD,
// clamps it to what the CPU supports, and every later call is a single
// relaxed load plus a switch.
#include "core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/simd_dispatch.hpp"
#include "core/simd_scalar.hpp"

namespace icsc::core::simd {

namespace scalar_impl {

void myers_banded_batch(const std::uint64_t* peq, std::size_t blocks,
                        std::size_t pattern_len,
                        const std::uint8_t* const* texts,
                        const std::size_t* text_lens, std::size_t count,
                        int band, int* out) {
  std::vector<std::uint64_t> pv(blocks), mv(blocks);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = myers_banded_one(peq, blocks, pattern_len, texts[i],
                              text_lens[i], band, pv.data(), mv.data());
  }
}

}  // namespace scalar_impl

namespace {

// -1 = not resolved yet; otherwise the int value of the active Isa.
std::atomic<int> g_active{-1};

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse4:
      return "sse4";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse4:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Isa detected_isa() {
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_supported(Isa::kSse4)) return Isa::kSse4;
  if (isa_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

Isa resolve_isa(const char* env_value) {
  if (env_value != nullptr) {
    Isa requested = Isa::kScalar;
    bool known = true;
    if (std::strcmp(env_value, "scalar") == 0) {
      requested = Isa::kScalar;
    } else if (std::strcmp(env_value, "sse4") == 0) {
      requested = Isa::kSse4;
    } else if (std::strcmp(env_value, "avx2") == 0) {
      requested = Isa::kAvx2;
    } else if (std::strcmp(env_value, "neon") == 0) {
      requested = Isa::kNeon;
    } else {
      known = false;  // includes "auto": use the best supported ISA
    }
    if (known && isa_supported(requested)) return requested;
  }
  return detected_isa();
}

Isa active_isa() {
  int current = g_active.load(std::memory_order_relaxed);
  if (current < 0) {
    const Isa resolved = resolve_isa(std::getenv("ICSC_SIMD"));
    current = static_cast<int>(resolved);
    int expected = -1;
    // Another thread may have resolved concurrently; both resolve to the
    // same value, so whichever CAS wins is equivalent.
    g_active.compare_exchange_strong(expected, current,
                                     std::memory_order_relaxed);
    current = g_active.load(std::memory_order_relaxed);
  }
  return static_cast<Isa>(current);
}

Isa set_active_isa(Isa isa) {
  const Isa applied = isa_supported(isa) ? isa : detected_isa();
  g_active.store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

std::string cpu_features() {
  std::string features;
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse2")) append("sse2");
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("avx")) append("avx");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("fma")) append("fma");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
#elif defined(__aarch64__)
  append("neon");
#endif
  if (features.empty()) features = "none";
  return features;
}

void axpy_f32_f64(double w, const float* x, double* acc, std::size_t n) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::axpy_f32_f64(w, x, acc, n);
    case Isa::kSse4:
      return sse4::axpy_f32_f64(w, x, acc, n);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::axpy_f32_f64(w, x, acc, n);
#endif
    default:
      return scalar_impl::axpy_f32_f64(w, x, acc, n);
  }
}

void tap_panel_axpy_f32_f64(const float* const* rows, const double* weights,
                            std::size_t taps, double* acc, std::size_t n) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::tap_panel_axpy_f32_f64(rows, weights, taps, acc, n);
    case Isa::kSse4:
      return sse4::tap_panel_axpy_f32_f64(rows, weights, taps, acc, n);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::tap_panel_axpy_f32_f64(rows, weights, taps, acc, n);
#endif
    default:
      return scalar_impl::tap_panel_axpy_f32_f64(rows, weights, taps, acc, n);
  }
}

void quantize_fixed_f32(float* data, std::size_t n, int int_bits,
                        int frac_bits) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::quantize_fixed_f32(data, n, int_bits, frac_bits);
    case Isa::kSse4:
      return sse4::quantize_fixed_f32(data, n, int_bits, frac_bits);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::quantize_fixed_f32(data, n, int_bits, frac_bits);
#endif
    default:
      return scalar_impl::quantize_fixed_f32(data, n, int_bits, frac_bits);
  }
}

void scaled_axpy_f64(double a, double b, const double* x, double* acc,
                     std::size_t n) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::scaled_axpy_f64(a, b, x, acc, n);
    case Isa::kSse4:
      return sse4::scaled_axpy_f64(a, b, x, acc, n);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::scaled_axpy_f64(a, b, x, acc, n);
#endif
    default:
      return scalar_impl::scaled_axpy_f64(a, b, x, acc, n);
  }
}

void qtap_exact(const std::int32_t* x, std::int32_t w, int loa_bits,
                std::int64_t* acc, std::size_t n) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::qtap_exact(x, w, loa_bits, acc, n);
    case Isa::kSse4:
      return sse4::qtap_exact(x, w, loa_bits, acc, n);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::qtap_exact(x, w, loa_bits, acc, n);
#endif
    default:
      return scalar_impl::qtap_exact(x, w, loa_bits, acc, n);
  }
}

void qtap_truncated(const std::int32_t* x, std::int32_t w, int trunc_bits,
                    int loa_bits, std::int64_t* acc, std::size_t n) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::qtap_truncated(x, w, trunc_bits, loa_bits, acc, n);
    case Isa::kSse4:
      return sse4::qtap_truncated(x, w, trunc_bits, loa_bits, acc, n);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::qtap_truncated(x, w, trunc_bits, loa_bits, acc, n);
#endif
    default:
      return scalar_impl::qtap_truncated(x, w, trunc_bits, loa_bits, acc, n);
  }
}

std::uint32_t l1_distance_u16(const std::uint16_t* a, const std::uint16_t* b,
                              std::size_t n) {
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::l1_distance_u16(a, b, n);
    case Isa::kSse4:
      return sse4::l1_distance_u16(a, b, n);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::l1_distance_u16(a, b, n);
#endif
    default:
      return scalar_impl::l1_distance_u16(a, b, n);
  }
}

void myers_banded_batch(const std::uint64_t* peq, std::size_t blocks,
                        std::size_t pattern_len,
                        const std::uint8_t* const* texts,
                        const std::size_t* text_lens, std::size_t count,
                        int band, int* out) {
  // Narrow batches cannot amortise the vector kernel's per-column lane
  // housekeeping (masked blends, gather of the match masks, finalize
  // scan); the scalar kernel is faster until at least three lanes are
  // live. Results are identical either way -- the vector path is
  // bit-exact vs the scalar oracle by contract.
  if (count < 3) {
    return scalar_impl::myers_banded_batch(peq, blocks, pattern_len, texts,
                                           text_lens, count, band, out);
  }
  switch (active_isa()) {
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return avx2::myers_banded_batch(peq, blocks, pattern_len, texts,
                                      text_lens, count, band, out);
    case Isa::kSse4:
      return sse4::myers_banded_batch(peq, blocks, pattern_len, texts,
                                      text_lens, count, band, out);
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon::myers_banded_batch(peq, blocks, pattern_len, texts,
                                      text_lens, count, band, out);
#endif
    default:
      return scalar_impl::myers_banded_batch(peq, blocks, pattern_len, texts,
                                             text_lens, count, band, out);
  }
}

}  // namespace icsc::core::simd
