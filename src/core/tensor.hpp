// Minimal row-major N-dimensional tensor used throughout the framework.
//
// This is deliberately a small, value-semantic container (Core Guidelines
// C.10) rather than a full linear-algebra library: the accelerator models
// need shapes, element access, and a handful of elementwise helpers.
//
// Error contract: constructors, reshaped(), the elementwise operators, and
// the matvec/matmul helpers throw icsc::core::Error (with the offending
// shapes in the message) on shape or size mismatches; they never assert or
// silently read out of bounds. Multi-index operator() stays debug-assert
// only -- it is the hot path.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/aligned.hpp"
#include "core/error.hpp"

namespace icsc::core {

/// Shape of a tensor: extent per dimension.
using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering for error messages.
std::string shape_to_string(const Shape& shape);

/// Dense row-major tensor of arithmetic element type T. Storage is
/// 64-byte aligned (core/aligned.hpp) so the SIMD kernels can stream it
/// without split loads.
template <typename T>
class Tensor {
public:
  Tensor() = default;

  explicit Tensor(Shape shape, T fill = T{})
      : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {
    compute_strides();
  }

  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(data.begin(), data.end()) {
    if (data_.size() != shape_numel(shape_)) {
      throw Error("core::Tensor", "data size does not match shape",
                  std::to_string(data_.size()) + " elements vs " +
                      shape_to_string(shape_));
    }
    compute_strides();
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

  static Tensor full(Shape shape, T value) {
    return Tensor(std::move(shape), value);
  }

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_.at(axis); }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  T& operator[](std::size_t flat) { return data_[flat]; }
  const T& operator[](std::size_t flat) const { return data_[flat]; }

  /// Multi-index access; bounds-checked in debug builds only.
  template <typename... Ix>
  T& operator()(Ix... ix) {
    return data_[flatten(ix...)];
  }
  template <typename... Ix>
  const T& operator()(Ix... ix) const {
    return data_[flatten(ix...)];
  }

  /// Reinterprets the tensor with a new shape of equal element count.
  Tensor reshaped(Shape new_shape) const {
    if (shape_numel(new_shape) != numel()) {
      throw Error("core::Tensor::reshaped", "numel mismatch",
                  shape_to_string(shape_) + " -> " +
                      shape_to_string(new_shape));
    }
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    out.compute_strides();
    return out;
  }

  /// Applies fn to every element in place.
  template <typename Fn>
  Tensor& transform(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
    return *this;
  }

  /// Returns a tensor with fn applied elementwise (possibly changing type).
  template <typename Fn>
  auto map(Fn&& fn) const {
    using U = decltype(fn(std::declval<T>()));
    Tensor<U> out(shape_);
    for (std::size_t i = 0; i < data_.size(); ++i) out[i] = fn(data_[i]);
    return out;
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  Tensor& operator+=(const Tensor& rhs) {
    if (!same_shape(rhs)) {
      throw Error("core::Tensor::operator+=", "shape mismatch",
                  shape_to_string(shape_) + " vs " +
                      shape_to_string(rhs.shape_));
    }
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }
  Tensor& operator-=(const Tensor& rhs) {
    if (!same_shape(rhs)) {
      throw Error("core::Tensor::operator-=", "shape mismatch",
                  shape_to_string(shape_) + " vs " +
                      shape_to_string(rhs.shape_));
    }
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
  }
  Tensor& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

private:
  template <typename... Ix>
  std::size_t flatten(Ix... ix) const {
    assert(sizeof...(Ix) == shape_.size());
    const std::size_t indices[] = {static_cast<std::size_t>(ix)...};
    std::size_t flat = 0;
    for (std::size_t axis = 0; axis < sizeof...(Ix); ++axis) {
      assert(indices[axis] < shape_[axis]);
      flat += indices[axis] * strides_[axis];
    }
    return flat;
  }

  void compute_strides() {
    strides_.assign(shape_.size(), 1);
    for (std::size_t axis = shape_.size(); axis-- > 1;) {
      strides_[axis - 1] = strides_[axis] * shape_[axis];
    }
    assert(data_.empty() || is_aligned(data_.data()));
  }

  Shape shape_;
  std::vector<std::size_t> strides_;
  aligned_vector<T> data_;
};

/// 2-D matrix-vector product: y = A x, A is [m, n], x has n elements.
template <typename T>
std::vector<T> matvec(const Tensor<T>& a, std::span<const T> x) {
  if (a.rank() != 2) {
    throw Error("core::matvec", "matrix must be rank-2",
                "got shape " + shape_to_string(a.shape()));
  }
  if (a.dim(1) != x.size()) {
    throw Error("core::matvec", "vector length mismatch",
                "matrix " + shape_to_string(a.shape()) + " vs vector of " +
                    std::to_string(x.size()));
  }
  std::vector<T> y(a.dim(0), T{});
  for (std::size_t i = 0; i < a.dim(0); ++i) {
    T acc{};
    for (std::size_t j = 0; j < a.dim(1); ++j) acc += a(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

/// Dense GEMM: C = A B with A [m, k] and B [k, n].
template <typename T>
Tensor<T> matmul(const Tensor<T>& a, const Tensor<T>& b) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw Error("core::matmul", "operands must be rank-2",
                shape_to_string(a.shape()) + " x " +
                    shape_to_string(b.shape()));
  }
  if (a.dim(1) != b.dim(0)) {
    throw Error("core::matmul", "inner dimension mismatch",
                shape_to_string(a.shape()) + " x " +
                    shape_to_string(b.shape()));
  }
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor<T> c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const T apk = a(i, p);
      for (std::size_t j = 0; j < n; ++j) c(i, j) += apk * b(p, j);
    }
  }
  return c;
}

using TensorF = Tensor<float>;
using TensorD = Tensor<double>;
using TensorI32 = Tensor<std::int32_t>;

}  // namespace icsc::core
