#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "core/trace.hpp"

namespace icsc::core {

namespace {

thread_local bool t_force_serial = false;
thread_local bool t_in_worker = false;

std::size_t env_thread_count() {
  if (const char* env = std::getenv("ICSC_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) {
      return static_cast<std::size_t>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t concurrency() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    return workers_.size() + 1;
  }

  void configure(std::size_t total_threads) {
    std::lock_guard<std::mutex> lock(config_mutex_);
    if (total_threads == 0) total_threads = env_thread_count();
    shutdown_locked();
    spawn_locked(total_threads - 1);
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
  }

  ~ThreadPool() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    shutdown_locked();
  }

 private:
  ThreadPool() { spawn_locked(env_thread_count() - 1); }

  void spawn_locked(std::size_t worker_count) {
    workers_.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void shutdown_locked() {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = false;
    // Pending helper tasks are optional (the issuing loop completes all
    // iterations itself); drop them.
    queue_.clear();
  }

  void worker_main() {
    t_in_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        if (queue_.empty()) continue;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex config_mutex_;  // guards workers_ (re)configuration
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// State shared between the caller and its helper tasks. Held by
/// shared_ptr so a helper that dequeues late (after the loop finished and
/// the caller moved on) finds the cursor exhausted and exits harmlessly.
struct LoopState {
  std::size_t begin = 0;
  std::size_t count = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  const CancelToken* cancel = nullptr;  // null = non-cancellable loop
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  /// First chunk offset that observed cancellation; chunks at or past it
  /// are skipped. Monotonically lowered (fetch-min), so every chunk below
  /// the final value is guaranteed to have executed.
  std::atomic<std::size_t> stop_at{SIZE_MAX};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t completed = 0;        // guarded by mutex
  std::exception_ptr error;         // guarded by mutex; first thrower wins
};

void drain_chunks(const std::shared_ptr<LoopState>& state) {
  for (;;) {
    const std::size_t i =
        state->next.fetch_add(state->grain, std::memory_order_relaxed);
    if (i >= state->count) return;
    const std::size_t chunk_begin = state->begin + i;
    const std::size_t chunk_end =
        state->begin + std::min(state->count, i + state->grain);
    bool skip = state->failed.load(std::memory_order_acquire) ||
                i >= state->stop_at.load(std::memory_order_acquire);
    if (!skip && state->cancel && state->cancel->cancelled()) {
      // Lower stop_at to this chunk. A skip triggered by an *existing*
      // stop_at value never needs this: that value is already <= i.
      std::size_t current = state->stop_at.load(std::memory_order_relaxed);
      while (i < current && !state->stop_at.compare_exchange_weak(
                                current, i, std::memory_order_acq_rel)) {
      }
      skip = true;
    }
    if (!skip) {
      try {
        (*state->fn)(chunk_begin, chunk_end);
      } catch (...) {
        state->failed.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(state->mutex);
    state->completed += chunk_end - chunk_begin;
    if (state->completed == state->count) state->done_cv.notify_all();
  }
}

/// Shared driver behind both parallel_for overloads; returns the executed
/// prefix length (== count when cancel is null or never fires).
std::size_t run_loop(std::size_t begin, std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& fn,
                     const CancelToken* cancel) {
  if (begin >= end) return 0;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  ICSC_TRACE_COUNT("parallel.loops", 1);
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t threads =
      (t_force_serial || t_in_worker) ? 1 : pool.concurrency();
  if (threads == 1 || count <= grain) {
    if (!cancel) {
      fn(begin, end);
      return count;
    }
    // Inline execution still honours the chunk-granular poll contract so
    // serial and pooled runs cancel at the same granularity.
    for (std::size_t i = 0; i < count; i += grain) {
      if (cancel->cancelled()) {
        ICSC_TRACE_COUNT("parallel.cancelled_loops", 1);
        return i;
      }
      fn(begin + i, begin + std::min(count, i + grain));
    }
    return count;
  }

  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->count = count;
  state->grain = grain;
  state->fn = &fn;
  state->cancel = cancel;

  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t helpers = std::min(threads - 1, chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state] { drain_chunks(state); });
  }
  drain_chunks(state);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->completed == count; });
  if (state->error) std::rethrow_exception(state->error);
  const std::size_t prefix =
      std::min(count, state->stop_at.load(std::memory_order_acquire));
  if (prefix < count) ICSC_TRACE_COUNT("parallel.cancelled_loops", 1);
  return prefix;
}

}  // namespace

std::size_t parallel_threads() { return ThreadPool::instance().concurrency(); }

void set_parallel_threads(std::size_t total_threads) {
  ThreadPool::instance().configure(total_threads);
}

ScopedSerial::ScopedSerial() : previous_(t_force_serial) {
  t_force_serial = true;
}

ScopedSerial::~ScopedSerial() { t_force_serial = previous_; }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  run_loop(begin, end, grain, fn, nullptr);
}

std::size_t parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn,
    const CancelToken& cancel) {
  return run_loop(begin, end, grain, fn, &cancel);
}

}  // namespace icsc::core
