// Operation and energy bookkeeping shared by all accelerator models.
//
// Accelerator claims in the paper are expressed as op counts (MAC savings,
// TCUPS), energy efficiencies (TOPs/W, Mpair/Joule, TFLOPS/W) and derived
// KPIs. OpCounter and EnergyLedger give every model one consistent way to
// accumulate those quantities.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "core/error.hpp"

namespace icsc::core {

/// Counts classed operations (e.g. "mac", "add", "cmp", "mem_read").
class OpCounter {
public:
  void add(const std::string& kind, std::uint64_t count = 1);
  std::uint64_t count(const std::string& kind) const;
  std::uint64_t total() const;
  void reset();

  const std::map<std::string, std::uint64_t>& by_kind() const { return counts_; }

private:
  std::map<std::string, std::uint64_t> counts_;
};

class EnergyLedger;

/// A pre-resolved accumulation slot into an EnergyLedger: the component
/// name is hashed into the ledger once, at EnergyLedger::cell(), and each
/// add_pj() afterwards is a validated pointer add. Charge paths that fire
/// per analog pass use this so the accounting does not re-run a string
/// map lookup on every operation. The slot stays valid for the ledger's
/// lifetime (map nodes are stable) but is invalidated by
/// EnergyLedger::reset().
class EnergyCell {
public:
  EnergyCell() = default;

  /// Same contract as EnergyLedger::add_pj. No-op on a default-constructed
  /// (unbound) cell.
  void add_pj(double picojoules) {
    if (slot_ == nullptr) return;
    if (!(picojoules >= 0.0) || !std::isfinite(picojoules)) {
      throw Error("core::EnergyCell::add_pj",
                  "energy must be nonnegative and finite",
                  component_ + (" += " + std::to_string(picojoules)));
    }
    *slot_ += picojoules;
  }

private:
  friend class EnergyLedger;
  EnergyCell(double* slot, std::string component)
      : slot_(slot), component_(std::move(component)) {}
  double* slot_ = nullptr;
  std::string component_;
};

/// Accumulates energy per named component, in picojoules.
class EnergyLedger {
public:
  /// Adds a nonnegative energy contribution. Negative or non-finite
  /// energies are modelling bugs that previously accumulated silently and
  /// corrupted every derived efficiency figure; they throw core::Error.
  void add_pj(const std::string& component, double picojoules);
  double component_pj(const std::string& component) const;
  double total_pj() const;
  double total_nj() const { return total_pj() * 1e-3; }
  double total_uj() const { return total_pj() * 1e-6; }
  double total_mj() const { return total_pj() * 1e-9; }
  double total_j() const { return total_pj() * 1e-12; }
  void reset();

  /// Returns a stable accumulation slot for `component`, creating the
  /// component (at 0 pJ) if it does not exist yet. reset() invalidates
  /// every cell handed out before it.
  EnergyCell cell(const std::string& component) {
    return EnergyCell(&pj_[component], component);
  }

  const std::map<std::string, double>& by_component() const { return pj_; }

private:
  std::map<std::string, double> pj_;
};

/// Converts (ops, seconds, watts) into the figures of merit the paper uses.
///
/// Throughput over zero or negative time (and efficiency at zero or
/// negative power) is undefined; the old silent `return 0.0` masked
/// upstream bugs as "zero TOPS" rows in every table that consumed them.
/// The accessors now throw core::Error; callers that can legitimately see
/// an empty run must test `seconds` / `watts` themselves first.
struct Kpi {
  double ops = 0.0;
  double seconds = 0.0;
  double watts = 0.0;

  double tops() const {
    if (!(seconds > 0.0) || !std::isfinite(seconds)) {
      throw Error("core::Kpi::tops", "seconds must be positive and finite",
                  "got " + std::to_string(seconds));
    }
    return ops / seconds * 1e-12;
  }
  double gops() const { return tops() * 1e3; }
  double tops_per_watt() const {
    if (!(watts > 0.0) || !std::isfinite(watts)) {
      throw Error("core::Kpi::tops_per_watt",
                  "watts must be positive and finite",
                  "got " + std::to_string(watts));
    }
    return tops() / watts;
  }
  double gflops() const { return gops(); }
  double tflops_per_watt() const { return tops_per_watt(); }
};

}  // namespace icsc::core
