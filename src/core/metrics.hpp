// Operation and energy bookkeeping shared by all accelerator models.
//
// Accelerator claims in the paper are expressed as op counts (MAC savings,
// TCUPS), energy efficiencies (TOPs/W, Mpair/Joule, TFLOPS/W) and derived
// KPIs. OpCounter and EnergyLedger give every model one consistent way to
// accumulate those quantities.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace icsc::core {

/// Counts classed operations (e.g. "mac", "add", "cmp", "mem_read").
class OpCounter {
public:
  void add(const std::string& kind, std::uint64_t count = 1);
  std::uint64_t count(const std::string& kind) const;
  std::uint64_t total() const;
  void reset();

  const std::map<std::string, std::uint64_t>& by_kind() const { return counts_; }

private:
  std::map<std::string, std::uint64_t> counts_;
};

/// Accumulates energy per named component, in picojoules.
class EnergyLedger {
public:
  void add_pj(const std::string& component, double picojoules);
  double component_pj(const std::string& component) const;
  double total_pj() const;
  double total_nj() const { return total_pj() * 1e-3; }
  double total_uj() const { return total_pj() * 1e-6; }
  double total_mj() const { return total_pj() * 1e-9; }
  double total_j() const { return total_pj() * 1e-12; }
  void reset();

  const std::map<std::string, double>& by_component() const { return pj_; }

private:
  std::map<std::string, double> pj_;
};

/// Converts (ops, seconds, watts) into the figures of merit the paper uses.
struct Kpi {
  double ops = 0.0;
  double seconds = 0.0;
  double watts = 0.0;

  double tops() const { return seconds > 0 ? ops / seconds * 1e-12 : 0.0; }
  double gops() const { return seconds > 0 ? ops / seconds * 1e-9 : 0.0; }
  double tops_per_watt() const { return watts > 0 ? tops() / watts : 0.0; }
  double gflops() const { return gops(); }
  double tflops_per_watt() const { return tops_per_watt(); }
};

}  // namespace icsc::core
