// Low-overhead structured tracing and metrics.
//
// Every long campaign in the framework -- a DSE sweep, an HTCONV run, an
// IMC pipeline, a DNA archival simulation -- needs to answer "where did
// the time go?" the same way ACADL-style accelerator models and the PULP
// per-component performance counters attribute cycles: named, nested
// timing scopes plus monotonic counters, collected centrally and exported
// in a tool-readable format. This header provides:
//
//   Span        -- RAII timing scope. Nesting is implicit: spans opened on
//                  the same thread overlap in time and Chrome's trace
//                  viewer stacks them by (tid, ts, dur).
//   counter_add -- monotonic named counter (per-thread cells, merged on
//                  collection, so hot paths never contend on a lock).
//   gauge_set   -- last-value-wins named gauge (rare writes, global map).
//
// Storage is one fixed-capacity buffer per thread, registered on first
// use by any thread -- pool workers from core/parallel included. The
// owning thread appends events and publishes them by bumping an atomic
// index (release); the collector reads the index (acquire) and only the
// events below it, so collection is race-free while producers keep
// running. A full buffer drops new events and counts the drops; nothing
// blocks, nothing reallocates on the hot path.
//
// Exporters:
//   export_chrome_json()  -- Chrome trace_event JSON ("X" complete events
//                            plus one "C" event per counter), loadable in
//                            chrome://tracing or Perfetto.
//   aggregate_spans()     -- per-name count/total/mean/min/max/p99 table
//                            (computed via core/stats).
//
// Cost contract: compiled out entirely with -DICSC_TRACE=0; compiled in
// but runtime-disabled (the default), every macro costs exactly one
// relaxed atomic load and a predictable branch. Enable at runtime with
// trace::set_enabled(true) or by exporting ICSC_TRACE_ENABLE=1.
//
// reset() and set_enabled() are meant for quiescent points (between
// campaigns / benchmark phases); collection itself is always safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#ifndef ICSC_TRACE
#define ICSC_TRACE 1  // compiled in by default; configure with -DICSC_TRACE=0
#endif

namespace icsc::core::trace {

/// One finished span, as drained from a thread buffer.
struct TraceEvent {
  const char* name = "";       // string literal supplied to Span
  std::uint64_t start_ns = 0;  // since the process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;       // registration-order thread id
};

namespace detail {
/// The runtime switch, inline so the disabled path of every macro really
/// is one relaxed load plus a predictable branch -- not a cross-TU
/// function call -- in per-job dispatch loops. Defaults from the
/// ICSC_TRACE_ENABLE environment variable.
inline std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("ICSC_TRACE_ENABLE");
  return env != nullptr && env[0] == '1';
}()};
}  // namespace detail

/// True when tracing is compiled in AND runtime-enabled. The disabled
/// path is one relaxed atomic load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime switch. Call at quiescent points; spans already open when the
/// state flips record or drop according to the state they observed at
/// construction.
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Nanoseconds since the process trace epoch (first trace use).
std::uint64_t now_ns();

/// RAII timing scope. `name` must be a string literal (or otherwise
/// outlive collection): only the pointer is stored on the hot path.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) begin(name);
  }
  ~Span() {
    if (armed_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Adds `delta` to the named monotonic counter. `name` must outlive
/// collection (string literal).
void counter_add(const char* name, std::uint64_t delta = 1);

/// Sets the named gauge to `value` (last write wins across threads).
void gauge_set(const char* name, double value);

/// Snapshot of every published span, across all registered threads,
/// ordered by (tid, start).
std::vector<TraceEvent> collect();

/// Merged counter totals across all threads.
std::map<std::string, std::uint64_t> counters();

/// Current gauge values.
std::map<std::string, double> gauges();

/// Events dropped because a thread buffer was full.
std::uint64_t dropped();

/// Clears all recorded spans, counters, gauges, and drop counts. Call
/// only at quiescent points (no spans in flight).
void reset();

/// Per-span-name aggregate over collect(), durations in milliseconds.
struct SpanStats {
  std::string name;
  std::size_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p99_ms = 0.0;
};

/// Aggregates, sorted by total time descending.
std::vector<SpanStats> aggregate_spans();

/// Renders aggregate_spans() plus counters as an aligned text table.
std::string aggregate_table();

/// Serializes spans + counters to Chrome trace_event JSON (the
/// {"traceEvents":[...]} object form). Locale-independent output.
std::string export_chrome_json();

/// Writes export_chrome_json() to `path`; throws core::Error on I/O
/// failure.
void write_chrome_json(const std::string& path);

}  // namespace icsc::core::trace

#define ICSC_TRACE_CONCAT_INNER(a, b) a##b
#define ICSC_TRACE_CONCAT(a, b) ICSC_TRACE_CONCAT_INNER(a, b)

#if ICSC_TRACE
/// Opens a RAII span covering the rest of the enclosing scope.
#define ICSC_TRACE_SPAN(name) \
  ::icsc::core::trace::Span ICSC_TRACE_CONCAT(icsc_trace_span_, __LINE__)(name)
/// Adds `delta` to the named monotonic counter. The enabled() check sits
/// in the macro so the disabled path never leaves the calling function.
#define ICSC_TRACE_COUNT(name, delta)                    \
  (::icsc::core::trace::enabled()                        \
       ? ::icsc::core::trace::counter_add(name, delta)   \
       : (void)0)
/// Sets the named gauge.
#define ICSC_TRACE_GAUGE(name, value)                    \
  (::icsc::core::trace::enabled()                        \
       ? ::icsc::core::trace::gauge_set(name, value)     \
       : (void)0)
#else
#define ICSC_TRACE_SPAN(name) ((void)0)
#define ICSC_TRACE_COUNT(name, delta) ((void)0)
#define ICSC_TRACE_GAUGE(name, value) ((void)0)
#endif
