// Statistical campaign acceleration: online accumulators, sequential
// confidence-interval early stopping, and stratified (Neyman) allocation.
//
// The framework's Monte-Carlo campaigns -- IMC device variation sweeps
// (Sec. IV), fault-injection campaigns (core/fault.hpp), cycle-approximate
// SPARTA runs (Sec. III) -- historically ran fixed trial budgets, wasting
// most of their work on already-converged estimates. This module supplies
// the three statistical primitives that convert a fixed budget into a
// stopping rule at equal statistical power:
//
//   OnlineStats          -- Welford mean/variance accumulator: one pass,
//                           numerically stable, deterministic for a given
//                           input order.
//   SequentialController -- CI-driven early stopping: stop once the
//                           relative confidence-interval half-width of
//                           every tracked KPI falls below a target. The
//                           stop decision is a *pure function of the
//                           completed-trial prefix* (no wall clock, no
//                           RNG), so a killed and resumed campaign replays
//                           its prefix and lands on the identical stop
//                           point with bit-identical estimates.
//   neyman_allocation    -- split a campaign into strata (fault model,
//   combine_strata          injected-cell count, SPARTA phase, ...), pilot
//                           each stratum, then spend the remaining budget
//                           where the variance lives; combine per-stratum
//                           accumulators into one stratified estimate with
//                           a Welch-Satterthwaite confidence interval.
//
// Exhaustive runs remain the oracle: consumers keep their fixed-budget
// paths and the validation modes assert the exhaustive result lands inside
// the early-stopped CI at the configured confidence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace icsc::core::sampling {

/// One-pass Welford accumulator for mean and variance. Deterministic: the
/// state after pushing a sequence is a pure function of that sequence, so
/// replaying a checkpointed trial prefix reproduces it bit-identically.
class OnlineStats {
public:
  void push(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased (n-1) sample variance; 0 below two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A point estimate with its two-sided confidence interval.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  // infinity below two samples
  double stddev = 0.0;      // sample stddev
  std::size_t count = 0;
  double confidence = 0.0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  bool contains(double v) const { return v >= lo() && v <= hi(); }
  /// Half-width relative to max(|mean|, floor): the convergence figure the
  /// stopping rule tests.
  double relative_half_width(double floor) const;
};

/// Student-t interval on the accumulator's mean.
Estimate mean_estimate(const OnlineStats& stats, double confidence);

/// Large-sample half-width on the accumulator's sample stddev:
/// z * s / sqrt(2 (n - 1)). Infinity below two samples.
double stddev_half_width(const OnlineStats& stats, double confidence);

/// Why a sequential campaign ended.
enum class StopReason : std::uint8_t {
  kNone = 0,    // still running
  kConverged,   // every tracked KPI met its CI target
  kBudget,      // trial budget exhausted before convergence
};

const char* stop_reason_name(StopReason reason);

/// Sequential early-stopping rule. Default-constructed config is disabled:
/// campaigns run their full fixed budget, bit-identical to the pre-sampling
/// code path.
struct EarlyStopConfig {
  bool enabled = false;
  /// Two-sided confidence level of the reported intervals and the stop test.
  double confidence = 0.95;
  /// Stop once every tracked KPI's CI half-width falls below
  /// relative_half_width * max(|mean|, absolute_floor).
  double relative_half_width = 0.05;
  /// Guards the relative test when a KPI's mean is (near) zero: below the
  /// floor the target becomes absolute (relative_half_width * floor).
  double absolute_floor = 1e-9;
  /// No stop decision before this many trials, however tight the CI.
  std::size_t min_trials = 16;
  /// The stop rule is evaluated at min_trials and every check_every trials
  /// after it (evaluating per-trial would bias the realized coverage low;
  /// checking in blocks also keeps the controller off the hot path).
  std::size_t check_every = 4;

  /// Throws core::Error on out-of-range parameters.
  void validate() const;
  /// Deterministic hash of every parameter (and enablement), folded into
  /// campaign checkpoint fingerprints so a snapshot taken under one
  /// stopping rule is never resumed under another.
  std::uint64_t fingerprint() const;
};

/// Outcome of one stop-rule evaluation.
struct StopDecision {
  bool stop = false;
  StopReason reason = StopReason::kNone;
};

/// Feeds per-trial KPI vectors in trial order and evaluates the stopping
/// rule at the configured check points. All state is a pure function of
/// the observed prefix: kill/resume replays the completed prefix through a
/// fresh controller and reaches the identical decision.
class SequentialController {
public:
  /// `kpis` is the number of KPIs tracked per trial (>= 1). Validates the
  /// config (throws core::Error).
  SequentialController(const EarlyStopConfig& config, std::size_t kpis);

  /// Observes one trial's KPI values (size must match `kpis`; throws
  /// core::Error otherwise). Returns true when this trial triggers the
  /// stop rule; once triggered the controller stays stopped and further
  /// observations are rejected with core::Error (the campaign must not
  /// run past its own stop point).
  bool observe(std::span<const double> kpi_values);

  bool stopped() const { return stopped_; }
  /// Number of trials observed so far.
  std::size_t trials() const { return trials_; }
  std::size_t kpi_count() const { return kpis_.size(); }
  const OnlineStats& kpi(std::size_t i) const { return kpis_[i]; }
  /// Estimate (at the config's confidence) of KPI i.
  Estimate estimate(std::size_t i) const;
  /// True iff every tracked KPI currently meets its CI target (the raw
  /// convergence predicate, independent of min_trials/check_every gating).
  bool converged() const;

  const EarlyStopConfig& config() const { return config_; }

private:
  EarlyStopConfig config_;
  std::vector<OnlineStats> kpis_;
  std::size_t trials_ = 0;
  bool stopped_ = false;
};

/// Neyman allocation: distribute `budget` trials over strata proportionally
/// to weight_h * sigma_h (sampling where the variance lives), with at least
/// `min_per_stratum` trials each and the total summing to exactly `budget`
/// (largest-remainder rounding, ties broken by lower stratum index --
/// deterministic). When every sigma is zero the allocation falls back to
/// weight-proportional. Throws core::Error on empty/mismatched inputs,
/// non-positive weights, negative sigmas, or a budget below
/// strata * min_per_stratum.
std::vector<std::size_t> neyman_allocation(std::span<const double> weights,
                                           std::span<const double> sigmas,
                                           std::size_t budget,
                                           std::size_t min_per_stratum);

/// Combines per-stratum accumulators into the stratified population
/// estimate: mean = sum_h w_h * mean_h (weights normalized), with the
/// standard stratified variance sum_h w_h^2 s_h^2 / n_h and a
/// Welch-Satterthwaite effective-df Student-t interval. A stratum with
/// fewer than two samples makes the half-width infinite (its variance is
/// unknowable). Throws core::Error on empty/mismatched inputs or
/// non-positive weights.
Estimate combine_strata(std::span<const double> weights,
                        std::span<const OnlineStats> strata,
                        double confidence);

}  // namespace icsc::core::sampling
