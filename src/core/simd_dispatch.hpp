// Internal: per-ISA entry points behind core/simd.hpp's dispatchers.
//
// Each namespace is defined by one translation unit compiled with the
// matching -m flags (simd_sse4.cpp, simd_avx2.cpp, simd_neon.cpp); the
// kernel bodies themselves are shared via simd_kernels.inl, instantiated
// against that TU's vector wrapper. Only simd.cpp includes this header.
#pragma once

#include <cstddef>
#include <cstdint>

// Declares the full primitive set inside the current namespace; kept as a
// macro so the three variant declarations cannot drift apart.
#define ICSC_SIMD_DECLARE_VARIANT()                                          \
  void axpy_f32_f64(double w, const float* x, double* acc, std::size_t n);   \
  void scaled_axpy_f64(double a, double b, const double* x, double* acc,     \
                       std::size_t n);                                       \
  void tap_panel_axpy_f32_f64(const float* const* rows,                      \
                              const double* weights, std::size_t taps,       \
                              double* acc, std::size_t n);                   \
  void quantize_fixed_f32(float* data, std::size_t n, int int_bits,          \
                          int frac_bits);                                    \
  void qtap_exact(const std::int32_t* x, std::int32_t w, int loa_bits,       \
                  std::int64_t* acc, std::size_t n);                         \
  void qtap_truncated(const std::int32_t* x, std::int32_t w, int trunc_bits, \
                      int loa_bits, std::int64_t* acc, std::size_t n);       \
  std::uint32_t l1_distance_u16(const std::uint16_t* a,                      \
                                const std::uint16_t* b, std::size_t n);      \
  void myers_banded_batch(const std::uint64_t* peq, std::size_t blocks,      \
                          std::size_t pattern_len,                           \
                          const std::uint8_t* const* texts,                  \
                          const std::size_t* text_lens, std::size_t count,   \
                          int band, int* out);

namespace icsc::core::simd {

#if defined(__x86_64__) || defined(__i386__)
namespace sse4 {
ICSC_SIMD_DECLARE_VARIANT()
}
namespace avx2 {
ICSC_SIMD_DECLARE_VARIANT()
}
#endif

#if defined(__aarch64__)
namespace neon {
ICSC_SIMD_DECLARE_VARIANT()
}
#endif

}  // namespace icsc::core::simd
