#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace icsc::core::sampling {

void OnlineStats::push(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  // m2_ can dip infinitesimally negative from cancellation on
  // near-constant streams; clamp so stddev() never NaNs.
  return std::max(0.0, m2_) / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Estimate::relative_half_width(double floor) const {
  const double scale = std::max(std::fabs(mean), floor);
  return scale > 0.0 ? half_width / scale
                     : std::numeric_limits<double>::infinity();
}

Estimate mean_estimate(const OnlineStats& stats, double confidence) {
  Estimate e;
  e.mean = stats.mean();
  e.stddev = stats.stddev();
  e.count = stats.count();
  e.confidence = confidence;
  if (stats.count() < 2) {
    e.half_width = std::numeric_limits<double>::infinity();
    return e;
  }
  const double t = student_t_critical(
      static_cast<double>(stats.count() - 1), confidence);
  e.half_width = t * e.stddev / std::sqrt(static_cast<double>(stats.count()));
  return e;
}

double stddev_half_width(const OnlineStats& stats, double confidence) {
  if (stats.count() < 2) return std::numeric_limits<double>::infinity();
  const double z = normal_critical(confidence);
  return z * stats.stddev() /
         std::sqrt(2.0 * static_cast<double>(stats.count() - 1));
}

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kConverged: return "converged";
    case StopReason::kBudget: return "budget";
  }
  return "unknown";
}

void EarlyStopConfig::validate() const {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw Error("core::sampling", "confidence must be in (0, 1)",
                "got " + std::to_string(confidence));
  }
  if (!(relative_half_width > 0.0)) {
    throw Error("core::sampling", "relative_half_width must be > 0",
                "got " + std::to_string(relative_half_width));
  }
  if (!(absolute_floor >= 0.0)) {
    throw Error("core::sampling", "absolute_floor must be >= 0",
                "got " + std::to_string(absolute_floor));
  }
  if (min_trials < 2) {
    throw Error("core::sampling", "min_trials must be >= 2",
                "got " + std::to_string(min_trials));
  }
  if (check_every == 0) {
    throw Error("core::sampling", "check_every must be >= 1");
  }
}

std::uint64_t EarlyStopConfig::fingerprint() const {
  // splitmix64 fold over every parameter's bit pattern; any change to the
  // stopping rule changes the fingerprint, so checkpoints never mix rules.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    std::uint64_t z = h ^ (v + 0x9E37'79B9'7F4A'7C15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBULL;
    return z ^ (z >> 31);
  };
  auto bits = [](double v) {
    std::uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(v));
    __builtin_memcpy(&u, &v, sizeof(u));
    return u;
  };
  std::uint64_t h = 0x5A4D'F11E'57A7'5EEDULL;
  h = mix(h, enabled ? 1 : 0);
  h = mix(h, bits(confidence));
  h = mix(h, bits(relative_half_width));
  h = mix(h, bits(absolute_floor));
  h = mix(h, min_trials);
  h = mix(h, check_every);
  return h;
}

SequentialController::SequentialController(const EarlyStopConfig& config,
                                           std::size_t kpis)
    : config_(config), kpis_(kpis) {
  config_.validate();
  if (kpis == 0) {
    throw Error("core::sampling", "controller needs at least one KPI");
  }
}

bool SequentialController::converged() const {
  for (const auto& stats : kpis_) {
    const Estimate e = mean_estimate(stats, config_.confidence);
    if (!(e.relative_half_width(config_.absolute_floor) <=
          config_.relative_half_width)) {
      return false;
    }
  }
  return true;
}

bool SequentialController::observe(std::span<const double> kpi_values) {
  if (stopped_) {
    throw Error("core::sampling",
                "observe() after the stop rule already fired",
                "trial " + std::to_string(trials_));
  }
  if (kpi_values.size() != kpis_.size()) {
    throw Error("core::sampling", "KPI vector size mismatch",
                std::to_string(kpi_values.size()) + " vs " +
                    std::to_string(kpis_.size()));
  }
  for (std::size_t i = 0; i < kpis_.size(); ++i) kpis_[i].push(kpi_values[i]);
  ++trials_;
  if (!config_.enabled) return false;
  if (trials_ < config_.min_trials) return false;
  if ((trials_ - config_.min_trials) % config_.check_every != 0) return false;
  if (converged()) stopped_ = true;
  return stopped_;
}

Estimate SequentialController::estimate(std::size_t i) const {
  if (i >= kpis_.size()) {
    throw Error("core::sampling", "KPI index out of range",
                std::to_string(i) + " >= " + std::to_string(kpis_.size()));
  }
  return mean_estimate(kpis_[i], config_.confidence);
}

std::vector<std::size_t> neyman_allocation(std::span<const double> weights,
                                           std::span<const double> sigmas,
                                           std::size_t budget,
                                           std::size_t min_per_stratum) {
  if (weights.empty()) {
    throw Error("core::sampling", "neyman_allocation needs >= 1 stratum");
  }
  if (weights.size() != sigmas.size()) {
    throw Error("core::sampling", "weights/sigmas size mismatch",
                std::to_string(weights.size()) + " vs " +
                    std::to_string(sigmas.size()));
  }
  const std::size_t strata = weights.size();
  if (budget < strata * min_per_stratum) {
    throw Error("core::sampling", "budget below strata * min_per_stratum",
                std::to_string(budget) + " < " +
                    std::to_string(strata * min_per_stratum));
  }
  double score_sum = 0.0;
  for (std::size_t h = 0; h < strata; ++h) {
    if (!(weights[h] > 0.0)) {
      throw Error("core::sampling", "stratum weights must be > 0",
                  "stratum " + std::to_string(h));
    }
    if (!(sigmas[h] >= 0.0)) {
      throw Error("core::sampling", "stratum sigmas must be >= 0",
                  "stratum " + std::to_string(h));
    }
    score_sum += weights[h] * sigmas[h];
  }
  // All-zero sigmas (e.g. a pilot that saw constant KPIs): fall back to
  // weight-proportional so the allocation is still well defined.
  std::vector<double> scores(strata);
  if (score_sum > 0.0) {
    for (std::size_t h = 0; h < strata; ++h) {
      scores[h] = weights[h] * sigmas[h] / score_sum;
    }
  } else {
    double weight_sum = 0.0;
    for (const double w : weights) weight_sum += w;
    for (std::size_t h = 0; h < strata; ++h) scores[h] = weights[h] / weight_sum;
  }

  std::vector<std::size_t> alloc(strata, min_per_stratum);
  const std::size_t spread = budget - strata * min_per_stratum;
  std::vector<double> remainders(strata);
  std::size_t assigned = 0;
  for (std::size_t h = 0; h < strata; ++h) {
    const double ideal = static_cast<double>(spread) * scores[h];
    const auto whole = static_cast<std::size_t>(ideal);
    alloc[h] += whole;
    assigned += whole;
    remainders[h] = ideal - static_cast<double>(whole);
  }
  // Largest-remainder rounding; ties deterministically to the lower index.
  std::vector<std::size_t> order(strata);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainders[a] > remainders[b];
                   });
  for (std::size_t i = 0; assigned < spread; ++i) {
    ++alloc[order[i % strata]];
    ++assigned;
  }
  ICSC_TRACE_COUNT("sampling.strata.allocated", strata);
  return alloc;
}

Estimate combine_strata(std::span<const double> weights,
                        std::span<const OnlineStats> strata,
                        double confidence) {
  if (weights.empty() || weights.size() != strata.size()) {
    throw Error("core::sampling", "combine_strata size mismatch",
                std::to_string(weights.size()) + " vs " +
                    std::to_string(strata.size()));
  }
  double weight_sum = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0)) {
      throw Error("core::sampling", "stratum weights must be > 0");
    }
    weight_sum += w;
  }
  ICSC_TRACE_COUNT("sampling.strata.combined", strata.size());
  Estimate e;
  e.confidence = confidence;
  double variance = 0.0;          // of the stratified mean
  double df_denom = 0.0;          // Welch-Satterthwaite denominator
  bool unknown_variance = false;
  for (std::size_t h = 0; h < strata.size(); ++h) {
    const double w = weights[h] / weight_sum;
    e.mean += w * strata[h].mean();
    e.count += strata[h].count();
    if (strata[h].count() < 2) {
      unknown_variance = true;
      continue;
    }
    const double term = w * w * strata[h].variance() /
                        static_cast<double>(strata[h].count());
    variance += term;
    df_denom += term * term / static_cast<double>(strata[h].count() - 1);
  }
  e.stddev = std::sqrt(variance);
  if (unknown_variance) {
    e.half_width = std::numeric_limits<double>::infinity();
    return e;
  }
  if (variance == 0.0) {
    e.half_width = 0.0;
    return e;
  }
  const double df =
      df_denom > 0.0 ? std::max(1.0, variance * variance / df_denom) : 1.0;
  e.half_width = student_t_critical(df, confidence) * e.stddev;
  return e;
}

}  // namespace icsc::core::sampling
