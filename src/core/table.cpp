#include "core/table.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace icsc::core {

namespace {

template <typename... Args>
std::string chars_to_string(Args... args) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), args...);
  if (ec != std::errc{}) throw std::invalid_argument("json_num: overflow");
  return std::string(buf, ptr);
}

}  // namespace

std::string json_num(double value) {
  if (!std::isfinite(value)) return "null";
  return chars_to_string(value);
}

std::string json_num(double value, int precision) {
  if (!std::isfinite(value)) return "null";
  return chars_to_string(value, std::chars_format::fixed,
                         std::max(0, precision));
}

std::string json_num(std::uint64_t value) { return chars_to_string(value); }

std::string json_num(std::int64_t value) { return chars_to_string(value); }

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string TextTable::si(double value, int precision) {
  static constexpr const char* suffixes[] = {"", "k", "M", "G", "T", "P"};
  int index = 0;
  double magnitude = std::abs(value);
  while (magnitude >= 1000.0 && index < 5) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++index;
  }
  return num(value, precision) + suffixes[index];
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (std::size_t w : widths) rule += std::string(w + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace icsc::core
