// Parameterised two's-complement fixed-point arithmetic.
//
// The approximate-computing accelerators of Sec. V operate on 16-bit
// fixed-point data/weights (Table I: bitwidth (16, 16)); the IMC digital
// periphery and the HLS op library also use fixed point. FixedPoint<I, F>
// models a signed Q(I).(F) number stored in the smallest integer that fits,
// with round-to-nearest conversion from floating point and saturating
// arithmetic (hardware quantisers saturate rather than wrap).
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace icsc::core {

namespace detail {
template <int Bits>
struct StorageFor {
  using type = std::conditional_t<
      (Bits <= 8), std::int8_t,
      std::conditional_t<(Bits <= 16), std::int16_t,
                         std::conditional_t<(Bits <= 32), std::int32_t,
                                            std::int64_t>>>;
};
}  // namespace detail

/// Signed fixed-point value with I integer bits, F fractional bits, and one
/// sign bit (total width I + F + 1 <= 63).
template <int I, int F>
class FixedPoint {
  static_assert(I >= 0 && F >= 0 && I + F + 1 <= 63,
                "FixedPoint: unsupported width");

public:
  static constexpr int integer_bits = I;
  static constexpr int fractional_bits = F;
  static constexpr int total_bits = I + F + 1;

  using Storage = typename detail::StorageFor<total_bits>::type;
  /// Wide type used for intermediate products.
  using Wide = std::int64_t;

  static constexpr Wide raw_max = (Wide{1} << (I + F)) - 1;
  static constexpr Wide raw_min = -(Wide{1} << (I + F));
  static constexpr double scale = static_cast<double>(Wide{1} << F);

  constexpr FixedPoint() = default;

  /// Converts from double with round-to-nearest-even-free (half away from
  /// zero, as typical DSP quantisers do) and saturation.
  static FixedPoint from_double(double value) {
    const double scaled = value * scale;
    const double rounded = scaled >= 0.0 ? std::floor(scaled + 0.5)
                                         : std::ceil(scaled - 0.5);
    return from_raw_saturating(static_cast<Wide>(
        std::clamp(rounded, static_cast<double>(raw_min),
                   static_cast<double>(raw_max))));
  }

  static constexpr FixedPoint from_raw(Storage raw) {
    FixedPoint fp;
    fp.raw_ = raw;
    return fp;
  }

  static constexpr FixedPoint from_raw_saturating(Wide raw) {
    FixedPoint fp;
    fp.raw_ = static_cast<Storage>(std::clamp(raw, raw_min, raw_max));
    return fp;
  }

  constexpr Storage raw() const { return raw_; }
  double to_double() const { return static_cast<double>(raw_) / scale; }
  float to_float() const { return static_cast<float>(to_double()); }

  /// Saturating addition.
  friend FixedPoint operator+(FixedPoint a, FixedPoint b) {
    return from_raw_saturating(static_cast<Wide>(a.raw_) +
                               static_cast<Wide>(b.raw_));
  }
  friend FixedPoint operator-(FixedPoint a, FixedPoint b) {
    return from_raw_saturating(static_cast<Wide>(a.raw_) -
                               static_cast<Wide>(b.raw_));
  }
  friend FixedPoint operator-(FixedPoint a) {
    return from_raw_saturating(-static_cast<Wide>(a.raw_));
  }

  /// Saturating multiplication with truncation of the low F bits, matching
  /// a hardware multiplier followed by a right shift.
  friend FixedPoint operator*(FixedPoint a, FixedPoint b) {
    const Wide product = static_cast<Wide>(a.raw_) * static_cast<Wide>(b.raw_);
    return from_raw_saturating(product >> F);
  }

  FixedPoint& operator+=(FixedPoint rhs) { return *this = *this + rhs; }
  FixedPoint& operator-=(FixedPoint rhs) { return *this = *this - rhs; }
  FixedPoint& operator*=(FixedPoint rhs) { return *this = *this * rhs; }

  friend constexpr auto operator<=>(FixedPoint, FixedPoint) = default;

  /// Smallest representable increment.
  static constexpr double epsilon() { return 1.0 / scale; }

private:
  Storage raw_ = 0;
};

/// Q7.8 with sign: the 16-bit "(16, 16)" format of Table I.
using Q16 = FixedPoint<7, 8>;
/// Q3.12: higher-precision 16-bit variant for activation-heavy layers.
using Q16HiFrac = FixedPoint<3, 12>;
/// 13-bit format of the accelerator in [15] (data, weights) = (13, 13).
using Q13 = FixedPoint<4, 8>;
/// 32-bit accumulator format used inside MAC trees.
using Q32Acc = FixedPoint<15, 16>;

/// Quantises a double to Q(I).(F) and back, returning the representable value.
template <int I, int F>
double quantize(double value) {
  return FixedPoint<I, F>::from_double(value).to_double();
}

}  // namespace icsc::core
