// Crash-safe persistence for long-running campaigns.
//
// Two durability primitives sit under every resumable campaign in the
// framework (DSE sweeps, Monte-Carlo fault campaigns, DNA archival runs):
//
//   Snapshot (SnapshotWriter / SnapshotReader) -- one versioned,
//     CRC-guarded binary blob written with write-to-temp + fsync + atomic
//     rename, so the file on disk is always a *complete* snapshot: a
//     process killed mid-save leaves the previous snapshot intact.
//
//   RunJournal -- an append-only record log with one fsync per record. A
//     campaign appends a record per completed unit of work; after a crash,
//     replay() recovers every valid record: a torn or corrupt tail is
//     detected by CRC and truncated away (at most the one record being
//     written when the process died is lost), and a CRC-mismatched record
//     *mid-file* (bit-flip) is skipped and counted rather than silently
//     discarding everything after it.
//
// All integers are serialized little-endian byte-by-byte, so snapshots and
// journals are portable across compilers and architectures. Corruption
// (bad magic, CRC mismatch, truncated payload, wrong version) is reported
// as core::Error -- a corrupt snapshot must never be silently accepted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace icsc::core {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t crc = 0);

/// Append-only binary serializer: fixed-width little-endian fields.
class SnapshotWriter {
 public:
  void put_u8(std::uint8_t value) { bytes_.push_back(value); }
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i32(std::int32_t value) {
    put_u32(static_cast<std::uint32_t>(value));
  }
  void put_i64(std::int64_t value) {
    put_u64(static_cast<std::uint64_t>(value));
  }
  void put_f64(double value);  // IEEE-754 bit pattern, bit-exact round trip
  void put_bool(bool value) { put_u8(value ? 1 : 0); }
  void put_bytes(const void* data, std::size_t size);
  void put_string(const std::string& value);

  const std::vector<std::uint8_t>& payload() const { return bytes_; }

  /// Atomically persists header + payload to `path`: writes `path`.tmp,
  /// fsyncs it, renames over `path`, and fsyncs the directory. `kind` tags
  /// the snapshot stream (each subsystem picks its own constant) and
  /// `version` its format revision; both are checked on load.
  void save(const std::string& path, std::uint32_t kind,
            std::uint32_t version) const;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a snapshot payload. Reading past the end or
/// loading a corrupt/mismatched file throws core::Error.
class SnapshotReader {
 public:
  /// Loads and validates `path`. Returns nullopt iff the file does not
  /// exist (fresh start); throws core::Error on any corruption -- bad
  /// magic, header/payload CRC mismatch, truncation, wrong `kind`, or a
  /// version newer than `max_version`.
  static std::optional<SnapshotReader> try_load(const std::string& path,
                                                std::uint32_t kind,
                                                std::uint32_t max_version);

  /// Wraps an in-memory payload (journal record bodies reuse the field
  /// codec).
  explicit SnapshotReader(std::vector<std::uint8_t> payload,
                          std::uint32_t version = 0)
      : bytes_(std::move(payload)), version_(version) {}

  std::uint32_t version() const { return version_; }
  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool done() const { return remaining() == 0; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  bool get_bool() { return get_u8() != 0; }
  std::vector<std::uint8_t> get_bytes(std::size_t size);
  std::string get_string();

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
  std::uint32_t version_ = 0;
};

/// One recovered journal record.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Append-only, fsync-per-record run journal. Opening an existing file
/// recovers the longest valid record prefix and truncates any torn tail,
/// so append() continues exactly after the last durable record.
class RunJournal {
 public:
  RunJournal() = default;

  /// Opens (creating if absent) `path` for stream `kind`. Records already
  /// present with a matching kind are exposed via recovered(); a corrupt
  /// or torn tail is truncated. A first record of a different kind throws
  /// core::Error (the file belongs to another experiment).
  RunJournal(const std::string& path, std::uint32_t kind);

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;
  RunJournal(RunJournal&& other) noexcept;
  RunJournal& operator=(RunJournal&& other) noexcept;
  ~RunJournal();

  bool open() const { return fd_ >= 0; }

  /// Path this journal was opened on (empty for a default-constructed
  /// handle). Carried so every I/O failure -- fsync included -- can name
  /// the offending file in its core::Error.
  const std::string& path() const { return path_; }

  /// Records recovered when the journal was opened. A corrupt record
  /// mid-file (bit-flip) is skipped -- the scan resynchronizes on the next
  /// valid record boundary -- so only the torn tail is ever dropped.
  const std::vector<JournalRecord>& recovered() const { return recovered_; }

  /// Corrupt mid-file records skipped during open-time recovery (also
  /// counted on the `journal.skipped_records` trace counter).
  std::size_t skipped() const { return skipped_; }

  /// Sequence number the next append() will carry.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Appends one record and fsyncs; when this returns, the record survives
  /// SIGKILL / power loss.
  void append(const void* data, std::size_t size);
  void append(const SnapshotWriter& writer) {
    append(writer.payload().data(), writer.payload().size());
  }

  /// Records appended through this handle (excludes recovered ones).
  std::size_t appended() const { return appended_; }

  void close();

  /// Read-only replay of `path`: every valid record for `kind`, skipping
  /// (and counting into `*skipped_records`, when non-null) corrupt
  /// mid-file records, up to the torn tail. Missing file yields an empty
  /// vector; a first record of the wrong kind throws core::Error.
  static std::vector<JournalRecord> replay(
      const std::string& path, std::uint32_t kind,
      std::size_t* skipped_records = nullptr);

 private:
  int fd_ = -1;
  std::string path_;
  std::uint32_t kind_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t appended_ = 0;
  std::size_t skipped_ = 0;
  std::vector<JournalRecord> recovered_;
};

}  // namespace icsc::core
