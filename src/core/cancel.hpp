// Cooperative cancellation for long-running campaigns.
//
// Every exploratory loop in the framework -- HLS design-space exploration
// (Sec. III), Monte-Carlo fault campaigns (Sec. IV), DNA archival
// simulation (Sec. VI) -- can run for minutes to hours at production
// scale. A Deadline gives such a run a wall-clock budget; a CancelToken
// lets an external controller stop it early. Both are *cooperative*: the
// chunk loops in core/parallel.hpp poll the token between units of work,
// drain the chunks already in flight, and the campaign returns a valid
// partial result (flagged incomplete) instead of tearing the process down.
//
// Tokens are cheap shared handles: copies observe the same stop flag, so a
// controller thread holding one copy can stop a campaign holding another.
// Deadline expiry latches into the stop flag on first observation, so all
// holders agree on cancellation from that point on.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace icsc::core {

/// Wall-clock budget against std::chrono::steady_clock. Default-constructed
/// deadlines never expire.
class Deadline {
 public:
  Deadline() = default;

  /// Never expires (the default).
  static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline after(double seconds);

  /// Expires at the given clock point.
  static Deadline at(std::chrono::steady_clock::time_point when);

  /// The earlier of two deadlines (a never-deadline yields to any finite one).
  static Deadline sooner(const Deadline& a, const Deadline& b);

  bool finite() const { return finite_; }
  bool expired() const;

  /// Seconds until expiry; +infinity for a never-deadline, clamped at 0
  /// once expired.
  double remaining_seconds() const;

 private:
  std::chrono::steady_clock::time_point when_{};
  bool finite_ = false;
};

/// Shared-state stop handle. cancelled() is true once request_stop() was
/// called on any copy *or* the attached deadline expired; expiry latches
/// into the shared flag so subsequent polls are one atomic load.
class CancelToken {
 public:
  /// Fresh token: not stopped, no deadline.
  CancelToken() : stop_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Fresh token that also cancels when `deadline` expires.
  explicit CancelToken(Deadline deadline) : CancelToken() {
    deadline_ = deadline;
  }

  /// Requests cooperative stop; visible to every copy of this token.
  void request_stop() { stop_->store(true, std::memory_order_release); }

  /// True iff request_stop() was called (deadline expiry also sets this
  /// once observed by cancelled()).
  bool stop_requested() const {
    return stop_->load(std::memory_order_acquire);
  }

  /// Stop requested or deadline expired. Poll this between units of work.
  bool cancelled() const {
    if (stop_->load(std::memory_order_acquire)) return true;
    if (deadline_.expired()) {
      stop_->store(true, std::memory_order_release);  // latch for all copies
      return true;
    }
    return false;
  }

  const Deadline& deadline() const { return deadline_; }

  /// A token sharing this one's stop flag but bounded by the earlier of
  /// this token's deadline and `deadline` -- how a campaign combines its
  /// caller's token with its own wall-clock budget.
  CancelToken with_deadline(Deadline deadline) const {
    CancelToken bounded(*this);
    bounded.deadline_ = Deadline::sooner(deadline_, deadline);
    return bounded;
  }

 private:
  std::shared_ptr<std::atomic<bool>> stop_;
  Deadline deadline_;
};

}  // namespace icsc::core
