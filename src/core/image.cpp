#include "core/image.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace icsc::core {

float Image::at_clamped(std::ptrdiff_t row, std::ptrdiff_t col) const {
  const auto h = static_cast<std::ptrdiff_t>(height());
  const auto w = static_cast<std::ptrdiff_t>(width());
  if (h == 0 || w == 0) return 0.0F;
  row = std::clamp<std::ptrdiff_t>(row, 0, h - 1);
  col = std::clamp<std::ptrdiff_t>(col, 0, w - 1);
  return pixels_(static_cast<std::size_t>(row), static_cast<std::size_t>(col));
}

void Image::clamp01() {
  pixels_.transform([](float v) { return std::clamp(v, 0.0F, 1.0F); });
}

double mse(const Image& a, const Image& b) {
  const std::size_t n = a.tensor().numel();
  if (n == 0 || n != b.tensor().numel()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double acc = 0.0;
  auto da = a.tensor().data();
  auto db = b.tensor().data();
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(da[i]) - db[i];
    acc += diff * diff;
  }
  return acc / static_cast<double>(n);
}

double psnr(const Image& a, const Image& b) {
  const double err = mse(a, b);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / err);
}

Image downscale2x(const Image& hires) {
  Image out(hires.height() / 2, hires.width() / 2);
  for (std::size_t r = 0; r < out.height(); ++r) {
    for (std::size_t c = 0; c < out.width(); ++c) {
      out.at(r, c) = 0.25F * (hires.at(2 * r, 2 * c) + hires.at(2 * r, 2 * c + 1) +
                              hires.at(2 * r + 1, 2 * c) +
                              hires.at(2 * r + 1, 2 * c + 1));
    }
  }
  return out;
}

Image downscale2x_aligned(const Image& hires) {
  Image out(hires.height() / 2, hires.width() / 2);
  constexpr float kTap[3] = {0.25F, 0.5F, 0.25F};
  for (std::size_t r = 0; r < out.height(); ++r) {
    for (std::size_t c = 0; c < out.width(); ++c) {
      float acc = 0.0F;
      for (int u = -1; u <= 1; ++u) {
        for (int v = -1; v <= 1; ++v) {
          acc += kTap[u + 1] * kTap[v + 1] *
                 hires.at_clamped(static_cast<std::ptrdiff_t>(2 * r) + u,
                                  static_cast<std::ptrdiff_t>(2 * c) + v);
        }
      }
      out.at(r, c) = acc;
    }
  }
  return out;
}

Image upscale2x_bilinear(const Image& lowres) {
  Image out(lowres.height() * 2, lowres.width() * 2);
  for (std::size_t r = 0; r < out.height(); ++r) {
    for (std::size_t c = 0; c < out.width(); ++c) {
      // Map the output pixel centre back to LR coordinates.
      const double sr = (static_cast<double>(r) + 0.5) / 2.0 - 0.5;
      const double sc = (static_cast<double>(c) + 0.5) / 2.0 - 0.5;
      const auto r0 = static_cast<std::ptrdiff_t>(std::floor(sr));
      const auto c0 = static_cast<std::ptrdiff_t>(std::floor(sc));
      const double fr = sr - static_cast<double>(r0);
      const double fc = sc - static_cast<double>(c0);
      const double v =
          (1 - fr) * ((1 - fc) * lowres.at_clamped(r0, c0) +
                      fc * lowres.at_clamped(r0, c0 + 1)) +
          fr * ((1 - fc) * lowres.at_clamped(r0 + 1, c0) +
                fc * lowres.at_clamped(r0 + 1, c0 + 1));
      out.at(r, c) = static_cast<float>(v);
    }
  }
  return out;
}

namespace {

void add_gradient(Image& img, Rng& rng) {
  const double gx = rng.uniform(-0.4, 0.4);
  const double gy = rng.uniform(-0.4, 0.4);
  const double base = rng.uniform(0.3, 0.7);
  for (std::size_t r = 0; r < img.height(); ++r) {
    for (std::size_t c = 0; c < img.width(); ++c) {
      const double u = static_cast<double>(r) / std::max<std::size_t>(1, img.height());
      const double v = static_cast<double>(c) / std::max<std::size_t>(1, img.width());
      img.at(r, c) += static_cast<float>(base + gx * u + gy * v);
    }
  }
}

void add_blobs(Image& img, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const double cy = rng.uniform(0.0, static_cast<double>(img.height()));
    const double cx = rng.uniform(0.0, static_cast<double>(img.width()));
    const double sigma = rng.uniform(0.05, 0.2) * static_cast<double>(img.width());
    const double amp = rng.uniform(-0.3, 0.3);
    for (std::size_t r = 0; r < img.height(); ++r) {
      for (std::size_t c = 0; c < img.width(); ++c) {
        const double dy = static_cast<double>(r) - cy;
        const double dx = static_cast<double>(c) - cx;
        img.at(r, c) += static_cast<float>(
            amp * std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma)));
      }
    }
  }
}

void add_rectangles(Image& img, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const std::size_t r0 = rng.below(img.height());
    const std::size_t c0 = rng.below(img.width());
    const std::size_t rh = 1 + rng.below(std::max<std::size_t>(1, img.height() / 3));
    const std::size_t cw = 1 + rng.below(std::max<std::size_t>(1, img.width() / 3));
    const float level = static_cast<float>(rng.uniform(0.1, 0.9));
    for (std::size_t r = r0; r < std::min(img.height(), r0 + rh); ++r) {
      for (std::size_t c = c0; c < std::min(img.width(), c0 + cw); ++c) {
        img.at(r, c) = level;
      }
    }
  }
}

void add_texture(Image& img, Rng& rng) {
  // Sum of random low/mid-frequency sinusoids: band-limited so that a 2x
  // downscale retains recoverable structure (pure white noise would not).
  const int waves = 8;
  for (int i = 0; i < waves; ++i) {
    const double fy = rng.uniform(0.5, 6.0);
    const double fx = rng.uniform(0.5, 6.0);
    const double phase = rng.uniform(0.0, 6.28318);
    const double amp = rng.uniform(0.02, 0.12);
    for (std::size_t r = 0; r < img.height(); ++r) {
      for (std::size_t c = 0; c < img.width(); ++c) {
        const double u = static_cast<double>(r) / std::max<std::size_t>(1, img.height());
        const double v = static_cast<double>(c) / std::max<std::size_t>(1, img.width());
        img.at(r, c) += static_cast<float>(
            amp * std::sin(6.28318 * (fy * u + fx * v) + phase));
      }
    }
  }
}

}  // namespace

Image make_scene(SceneKind kind, std::size_t height, std::size_t width,
                 std::uint64_t seed) {
  Rng rng(seed);
  Image img(height, width, 0.5F);
  switch (kind) {
    case SceneKind::kSmoothGradient:
      img = Image(height, width, 0.0F);
      add_gradient(img, rng);
      add_blobs(img, rng, 4);
      break;
    case SceneKind::kEdges:
      add_rectangles(img, rng, 12);
      break;
    case SceneKind::kTexture:
      add_texture(img, rng);
      break;
    case SceneKind::kNaturalComposite:
      img = Image(height, width, 0.0F);
      add_gradient(img, rng);
      add_blobs(img, rng, 3);
      add_rectangles(img, rng, 5);
      add_texture(img, rng);
      break;
  }
  img.clamp01();
  return img;
}

}  // namespace icsc::core
