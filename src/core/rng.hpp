// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the framework (device variability, DNA channel
// noise, synthetic workload generators, ...) draw from icsc::core::Rng so that
// every benchmark and test is bit-reproducible given a seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace icsc::core {

/// xoshiro256++ generator (Blackman & Vigna). Small state, excellent
/// statistical quality, and -- unlike std::mt19937 -- identical output on
/// every platform and standard library implementation.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x1C5C'F2ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  int poisson(double lambda);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (stream splitting).
  Rng split();

  /// Complete serializable generator state: the four xoshiro words plus the
  /// Box-Muller cache. Saving and restoring it makes any sequential
  /// RNG-driven loop checkpointable mid-stream (core/checkpoint.hpp) with
  /// bit-identical continuation.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void restore(const State& state);

private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace icsc::core
