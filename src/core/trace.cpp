#include "core/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

namespace icsc::core::trace {

namespace {

/// Per-thread event storage. The owning thread is the only writer: it
/// fills events_[count_] and then publishes with a release store of
/// count_ + 1. Collectors acquire-load count_ and read only below it, so
/// a concurrent producer never races the collector. When the buffer is
/// full new events are dropped (drop-newest keeps the earliest spans,
/// which anchor the timeline) and counted.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;

  explicit ThreadBuffer(std::uint32_t tid) : tid_(tid) {
    events_.resize(kCapacity);
  }

  void push(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = TraceEvent{name, start_ns, dur_ns, tid_};
    count_.store(n + 1, std::memory_order_release);
  }

  void add_counter(const char* name, std::uint64_t delta) {
    std::lock_guard<std::mutex> lock(counter_mutex_);
    counters_[name] += delta;
  }

  std::vector<TraceEvent> events_;            // fixed after construction
  std::atomic<std::size_t> count_{0};         // publish index
  std::atomic<std::uint64_t> dropped_{0};
  std::mutex counter_mutex_;                  // owner-hot, collector-rare
  std::unordered_map<const char*, std::uint64_t> counters_;
  std::uint32_t tid_ = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // outlive their threads
  std::map<std::string, double> gauges;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto fresh = std::make_shared<ThreadBuffer>(r.next_tid++);
    r.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

/// JSON string escaping for span/counter names.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void Span::begin(const char* name) {
  name_ = name;
  start_ns_ = now_ns();
  armed_ = true;
}

void Span::end() {
  local_buffer().push(name_, start_ns_, now_ns() - start_ns_);
}

void counter_add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  local_buffer().add_counter(name, delta);
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.gauges[name] = value;
}

std::vector<TraceEvent> collect() {
  Registry& r = registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    const std::size_t n = buffer->count_.load(std::memory_order_acquire);
    out.insert(out.end(), buffer->events_.begin(),
               buffer->events_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid
                                    : a.start_ns < b.start_ns;
            });
  return out;
}

std::map<std::string, std::uint64_t> counters() {
  Registry& r = registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }
  std::map<std::string, std::uint64_t> merged;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->counter_mutex_);
    for (const auto& [name, value] : buffer->counters_) {
      merged[name] += value;
    }
  }
  return merged;
}

std::map<std::string, double> gauges() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.gauges;
}

std::uint64_t dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : r.buffers) {
    total += buffer->dropped_.load(std::memory_order_relaxed);
  }
  return total;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buffer : r.buffers) {
    buffer->count_.store(0, std::memory_order_release);
    buffer->dropped_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> counter_lock(buffer->counter_mutex_);
    buffer->counters_.clear();
  }
  r.gauges.clear();
}

std::vector<SpanStats> aggregate_spans() {
  const auto events = collect();
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& event : events) {
    by_name[event.name].push_back(static_cast<double>(event.dur_ns) * 1e-6);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (const auto& [name, durations] : by_name) {
    const Summary s = summarize(durations);
    SpanStats stats;
    stats.name = name;
    stats.count = s.count;
    stats.total_ms = s.mean * static_cast<double>(s.count);
    stats.mean_ms = s.mean;
    stats.min_ms = s.min;
    stats.max_ms = s.max;
    stats.p99_ms = percentile(durations, 99.0);
    out.push_back(std::move(stats));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::string aggregate_table() {
  TextTable t({"span", "count", "total (ms)", "mean (ms)", "p99 (ms)"});
  for (const auto& s : aggregate_spans()) {
    t.add_row({s.name, std::to_string(s.count), TextTable::num(s.total_ms, 3),
               TextTable::num(s.mean_ms, 4), TextTable::num(s.p99_ms, 4)});
  }
  std::string out = t.to_string();
  const auto counts = counters();
  if (!counts.empty()) {
    TextTable c({"counter", "value"});
    for (const auto& [name, value] : counts) {
      c.add_row({name, std::to_string(value)});
    }
    out += c.to_string();
  }
  return out;
}

std::string export_chrome_json() {
  const auto events = collect();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(event.name) +
           "\",\"cat\":\"icsc\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           json_num(static_cast<std::uint64_t>(event.tid)) +
           ",\"ts\":" + json_num(static_cast<double>(event.start_ns) * 1e-3) +
           ",\"dur\":" + json_num(static_cast<double>(event.dur_ns) * 1e-3) +
           "}";
  }
  // Counter totals as one "C" sample each, stamped at the end of the run.
  const std::uint64_t ts = now_ns();
  for (const auto& [name, value] : counters()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(name) +
           "\",\"cat\":\"icsc\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" +
           json_num(static_cast<double>(ts) * 1e-3) + ",\"args\":{\"value\":" +
           json_num(value) + "}}";
  }
  for (const auto& [name, value] : gauges()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(name) +
           "\",\"cat\":\"icsc\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":" +
           json_num(static_cast<double>(ts) * 1e-3) + ",\"args\":{\"value\":" +
           json_num(value) + "}}";
  }
  out += "],\"otherData\":{\"dropped_events\":" + json_num(dropped()) + "}}";
  return out;
}

void write_chrome_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("core::trace", "cannot open trace output", path);
  }
  out << export_chrome_json();
  out.flush();
  if (!out) {
    throw Error("core::trace", "failed writing trace output", path);
  }
}

}  // namespace icsc::core::trace
