// Grayscale image container, quality metrics, and synthetic scene
// generators for the super-resolution experiments of Sec. V.
//
// Real FSRCNN evaluations use Set5/Set14 photographs; offline we generate
// deterministic synthetic scenes (band-limited textures, edges, blobs) that
// exercise the same frequency content an upscaler cares about, so PSNR
// comparisons between exact and approximate pipelines remain meaningful.
#pragma once

#include <cstddef>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace icsc::core {

/// Single-channel image with float pixels in [0, 1].
class Image {
public:
  Image() = default;
  Image(std::size_t height, std::size_t width, float fill = 0.0F)
      : pixels_({height, width}, fill) {}
  explicit Image(TensorF pixels) : pixels_(std::move(pixels)) {}

  std::size_t height() const { return pixels_.rank() == 2 ? pixels_.dim(0) : 0; }
  std::size_t width() const { return pixels_.rank() == 2 ? pixels_.dim(1) : 0; }

  float& at(std::size_t row, std::size_t col) { return pixels_(row, col); }
  float at(std::size_t row, std::size_t col) const { return pixels_(row, col); }

  /// Clamped access: out-of-range coordinates replicate the border pixel
  /// (the padding policy of the Sec. V convolution engines).
  float at_clamped(std::ptrdiff_t row, std::ptrdiff_t col) const;

  TensorF& tensor() { return pixels_; }
  const TensorF& tensor() const { return pixels_; }

  /// Clamps every pixel into [0, 1].
  void clamp01();

private:
  TensorF pixels_;
};

/// Mean squared error between equally sized images.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB for peak value 1.0. Returns +inf for
/// identical images.
double psnr(const Image& a, const Image& b);

/// 2x box-filter downscale. Note the resulting samples sit at half-pixel
/// positions of the HR grid; use downscale2x_aligned when the LR image
/// feeds a polyphase (zero-insertion) upsampler.
Image downscale2x(const Image& hires);

/// 2x decimation with a centred [1 2 1]/4 binomial anti-alias filter:
/// lr(i, j) is the filtered HR value *at* (2i, 2j), so a stride-2
/// transposed convolution reconstructs it without sub-pixel shift. This is
/// the LR-generation used for all SR PSNR evaluations (Sec. V).
Image downscale2x_aligned(const Image& hires);

/// Bicubic-free bilinear 2x upscale baseline.
Image upscale2x_bilinear(const Image& lowres);

/// Synthetic scene kinds used by tests and benches.
enum class SceneKind {
  kSmoothGradient,   // low-frequency ramp + broad Gaussian blobs
  kEdges,            // rectangles and diagonal edges (high-frequency content)
  kTexture,          // band-limited pseudo-random texture
  kNaturalComposite  // mixture of the above, closest to a natural image
};

/// Deterministically generates a synthetic scene of the requested size.
Image make_scene(SceneKind kind, std::size_t height, std::size_t width,
                 std::uint64_t seed = 7);

}  // namespace icsc::core
