// Internal: ISA-generic bodies of the SIMD primitives, written against the
// wrapper API of simd_vec.inl. Included inside a per-ISA namespace right
// after simd_vec.inl, so the same (reviewed-once) kernel logic serves
// SSE4.2, AVX2 and NEON. Tail elements always go through the scalar_impl
// helpers, which are also the equivalence oracle.

void axpy_f32_f64(double w, const float* x, double* acc, std::size_t n) {
  const VF64 vw = vf_broadcast(w);
  std::size_t i = 0;
  for (; i + kF64Lanes <= n; i += kF64Lanes) {
    const VF64 va =
        vf_add(vf_loadu(acc + i), vf_mul(vw, vf_load_f32(x + i)));
    vf_storeu(acc + i, va);
  }
  scalar_impl::axpy_f32_f64(w, x + i, acc + i, n - i);
}

void tap_panel_axpy_f32_f64(const float* const* rows, const double* weights,
                            std::size_t taps, double* acc, std::size_t n) {
  // Column tiles held in registers across the whole tap loop: the
  // accumulator is loaded and stored once per tile instead of once per
  // tap, and the four independent chains hide the FP add latency. Per
  // column the tap sequence (one IEEE multiply + add each, ascending t)
  // is unchanged, so the loop interchange is bit-exact vs scalar_impl.
  constexpr std::size_t kTile = 4 * kF64Lanes;
  std::size_t i = 0;
  for (; i + kTile <= n; i += kTile) {
    VF64 a0 = vf_loadu(acc + i);
    VF64 a1 = vf_loadu(acc + i + kF64Lanes);
    VF64 a2 = vf_loadu(acc + i + 2 * kF64Lanes);
    VF64 a3 = vf_loadu(acc + i + 3 * kF64Lanes);
    for (std::size_t t = 0; t < taps; ++t) {
      const VF64 w = vf_broadcast(weights[t]);
      const float* x = rows[t] + i;
      a0 = vf_add(a0, vf_mul(w, vf_load_f32(x)));
      a1 = vf_add(a1, vf_mul(w, vf_load_f32(x + kF64Lanes)));
      a2 = vf_add(a2, vf_mul(w, vf_load_f32(x + 2 * kF64Lanes)));
      a3 = vf_add(a3, vf_mul(w, vf_load_f32(x + 3 * kF64Lanes)));
    }
    vf_storeu(acc + i, a0);
    vf_storeu(acc + i + kF64Lanes, a1);
    vf_storeu(acc + i + 2 * kF64Lanes, a2);
    vf_storeu(acc + i + 3 * kF64Lanes, a3);
  }
  for (; i + kF64Lanes <= n; i += kF64Lanes) {
    VF64 a0 = vf_loadu(acc + i);
    for (std::size_t t = 0; t < taps; ++t) {
      a0 = vf_add(a0, vf_mul(vf_broadcast(weights[t]),
                             vf_load_f32(rows[t] + i)));
    }
    vf_storeu(acc + i, a0);
  }
  if (i < n) {
    for (std::size_t t = 0; t < taps; ++t) {
      scalar_impl::axpy_f32_f64(weights[t], rows[t] + i, acc + i, n - i);
    }
  }
}

void quantize_fixed_f32(float* data, std::size_t n, int int_bits,
                        int frac_bits) {
  const double scale_s = static_cast<double>(std::int64_t{1} << frac_bits);
  const double raw_max_s =
      static_cast<double>((std::int64_t{1} << (int_bits + frac_bits)) - 1);
  const VF64 scale = vf_broadcast(scale_s);
  const VF64 half = vf_broadcast(0.5);
  const VF64 zero = vf_broadcast(0.0);
  const VF64 raw_max = vf_broadcast(raw_max_s);
  const VF64 raw_min = vf_broadcast(-raw_max_s - 1.0);
  std::size_t i = 0;
  for (; i + kF64Lanes <= n; i += kF64Lanes) {
    const VF64 scaled = vf_mul(vf_load_f32(data + i), scale);
    // Round half away from zero: both directed roundings, selected on the
    // sign lane mask (NaN compares false, and the min/max operand order
    // lets NaN flow through the clamp exactly like std::clamp).
    const VF64 rounded = vf_blend(vf_ceil(vf_sub(scaled, half)),
                                  vf_floor(vf_add(scaled, half)),
                                  vf_cmpge(scaled, zero));
    const VF64 clamped = vf_min(raw_max, vf_max(raw_min, rounded));
    // scale is a power of two, so the division is exact and the narrowing
    // conversion rounds once, matching the scalar static_cast<float>.
    vf_store_f32(data + i, vf_div(clamped, scale));
  }
  scalar_impl::quantize_fixed_f32(data + i, n - i, int_bits, frac_bits);
}

void scaled_axpy_f64(double a, double b, const double* x, double* acc,
                     std::size_t n) {
  const VF64 va = vf_broadcast(a);
  const VF64 vb = vf_broadcast(b);
  std::size_t i = 0;
  for (; i + kF64Lanes <= n; i += kF64Lanes) {
    const VF64 t = vf_mul(vf_mul(va, vf_loadu(x + i)), vb);
    vf_storeu(acc + i, vf_add(vf_loadu(acc + i), t));
  }
  scalar_impl::scaled_axpy_f64(a, b, x + i, acc + i, n - i);
}

namespace detail {

/// Lane-wise LOA add (mask != 0) or exact add (callers branch).
inline VU64 loa_add(VU64 a, VU64 b, VU64 mask, VU64 inv_mask) {
  const VU64 low = vu_and(vu_or(a, b), mask);
  const VU64 high = vu_add(vu_and(a, inv_mask), vu_and(b, inv_mask));
  return vu_or(high, low);
}

}  // namespace detail

void qtap_exact(const std::int32_t* x, std::int32_t w, int loa_bits,
                std::int64_t* acc, std::size_t n) {
  const std::uint64_t mask_bits = scalar_impl::loa_mask(loa_bits);
  const VU64 vw = vu_broadcast(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(w)));
  const VU64 mask = vu_broadcast(mask_bits);
  const VU64 inv_mask = vu_broadcast(~mask_bits);
  auto* uacc = reinterpret_cast<std::uint64_t*>(acc);
  std::size_t i = 0;
  for (; i + kU64Lanes <= n; i += kU64Lanes) {
    const VU64 prod = vu_mullo64(vu_load_i32(x + i), vw);
    const VU64 va = vu_loadu(uacc + i);
    const VU64 sum = mask_bits == 0
                         ? vu_add(va, prod)
                         : detail::loa_add(va, prod, mask, inv_mask);
    vu_storeu(uacc + i, sum);
  }
  scalar_impl::qtap_exact(x + i, w, loa_bits, acc + i, n - i);
}

void qtap_truncated(const std::int32_t* x, std::int32_t w, int trunc_bits,
                    int loa_bits, std::int64_t* acc, std::size_t n) {
  if (trunc_bits <= 0) {
    qtap_exact(x, w, loa_bits, acc, n);
    return;
  }
  const scalar_impl::TruncWeight tw =
      scalar_impl::make_trunc_weight(w, trunc_bits);
  const std::uint64_t mask_bits = scalar_impl::loa_mask(loa_bits);
  const VU64 mask = vu_broadcast(mask_bits);
  const VU64 inv_mask = vu_broadcast(~mask_bits);
  const VU64 vhi = vu_broadcast(tw.hi);
  const VU64 zero = vu_zero();
  auto* uacc = reinterpret_cast<std::uint64_t*>(acc);
  std::size_t i = 0;
  for (; i + kU64Lanes <= n; i += kU64Lanes) {
    const VU64 a64 = vu_load_i32(x + i);
    const VU64 neg_a = vu_cmpgt_i64(zero, a64);
    const VU64 ua = vu_blend(a64, vu_sub(zero, a64), neg_a);
    // magnitude = |a| * hi + (sum of |a| >> (t - j)) << t, mod 2^64 — the
    // closed form of the column-truncated partial-product sum.
    VU64 low = zero;
    for (int k = 0; k < tw.shift_count; ++k) {
      low = vu_add(low, vu_shr(ua, tw.shifts[k]));
    }
    const VU64 mag =
        vu_add(vu_mul_u32(ua, vhi), vu_shl(low, tw.trunc));
    // Negate lanes where exactly one operand is negative.
    const VU64 neg_out = tw.negative ? vu_not(neg_a) : neg_a;
    const VU64 prod = vu_blend(mag, vu_sub(zero, mag), neg_out);
    const VU64 va = vu_loadu(uacc + i);
    const VU64 sum = mask_bits == 0
                         ? vu_add(va, prod)
                         : detail::loa_add(va, prod, mask, inv_mask);
    vu_storeu(uacc + i, sum);
  }
  scalar_impl::qtap_truncated(x + i, w, trunc_bits, loa_bits, acc + i, n - i);
}

std::uint32_t l1_distance_u16(const std::uint16_t* a, const std::uint16_t* b,
                              std::size_t n) {
  VU32 acc = vu32_zero();
  std::size_t i = 0;
  for (; i + kU16Lanes <= n; i += kU16Lanes) {
    acc = v16_l1_accum(acc, a + i, b + i);
  }
  // Modular uint32 sums commute, so lane order does not affect the result.
  return vu32_hsum(acc) + scalar_impl::l1_distance_u16(a + i, b + i, n - i);
}

void myers_banded_batch(const std::uint64_t* peq, std::size_t blocks,
                        std::size_t pattern_len,
                        const std::uint8_t* const* texts,
                        const std::size_t* text_lens, std::size_t count,
                        int band, int* out) {
  constexpr int kWord = 64;
  const auto pn = static_cast<std::int64_t>(pattern_len);
  const std::uint64_t score_bit =
      pattern_len == 0 ? 0 : std::uint64_t{1} << ((pattern_len - 1) % kWord);
  const VU64 zero = vu_zero();
  const VU64 one = vu_broadcast(1);
  const VU64 vband = vu_broadcast(static_cast<std::uint64_t>(band));

  std::vector<VU64> pv(blocks), mv(blocks);
  for (std::size_t base = 0; base < count; base += kU64Lanes) {
    const std::size_t lanes =
        count - base < kU64Lanes ? count - base : kU64Lanes;

    // Prescreen each lane exactly as the scalar kernel does before its
    // column loop; lanes it decides are marked done up front.
    bool done[kU64Lanes];
    const std::uint8_t* text[kU64Lanes];
    std::uint64_t tlen[kU64Lanes];
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < kU64Lanes; ++l) {
      done[l] = true;
      text[l] = nullptr;
      tlen[l] = 0;
      if (l >= lanes) continue;
      const auto tm = static_cast<std::int64_t>(text_lens[base + l]);
      if ((pn > tm ? pn - tm : tm - pn) > band) {
        out[base + l] = band + 1;
      } else if (pn == 0 || tm == 0) {
        out[base + l] = static_cast<int>(pn > tm ? pn : tm);
      } else {
        done[l] = false;
        text[l] = texts[base + l];
        tlen[l] = static_cast<std::uint64_t>(tm);
        if (static_cast<std::size_t>(tm) > max_len) {
          max_len = static_cast<std::size_t>(tm);
        }
      }
    }
    if (max_len == 0) continue;

    for (std::size_t blk = 0; blk < blocks; ++blk) {
      pv[blk] = vu_broadcast(~std::uint64_t{0});
      mv[blk] = zero;
    }
    VU64 score = vu_broadcast(static_cast<std::uint64_t>(pn));
    std::uint64_t done_lanes[kU64Lanes];
    for (std::size_t l = 0; l < kU64Lanes; ++l) {
      done_lanes[l] = done[l] ? ~std::uint64_t{0} : 0;
    }
    VU64 done_mask = vu_loadu(done_lanes);
    const VU64 vtlen = vu_loadu(tlen);

    for (std::size_t j = 0; j < max_len; ++j) {
      const VU64 col_active = vu_andnot(
          done_mask,
          vu_cmpgt_i64(vtlen, vu_broadcast(static_cast<std::uint64_t>(j))));
      if (!vu_test_any(col_active)) break;

      std::uint64_t eq_lane[kU64Lanes];
      std::uint8_t code[kU64Lanes];
      for (std::size_t l = 0; l < kU64Lanes; ++l) {
        code[l] = (!done[l] && j < tlen[l]) ? text[l][j] : 0;
      }

      // hin carries between blocks as +1/-1 lane masks; a column starts
      // with hin = 1 (row 0 of the DP matrix increases left to right).
      VU64 hp = vu_broadcast(~std::uint64_t{0});
      VU64 hm = zero;
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        for (std::size_t l = 0; l < kU64Lanes; ++l) {
          eq_lane[l] = peq[blk * 4 + code[l]];
        }
        const VU64 eq = vu_loadu(eq_lane);
        const VU64 pv_b = pv[blk];
        const VU64 mv_b = mv[blk];
        const VU64 xv = vu_or(eq, mv_b);
        const VU64 eqh = vu_or(eq, vu_and(hm, one));
        const VU64 xh = vu_or(
            vu_xor(vu_add(vu_and(eqh, pv_b), pv_b), pv_b), eqh);
        VU64 ph = vu_or(mv_b, vu_not(vu_or(xh, pv_b)));
        VU64 mh = vu_and(pv_b, xh);

        const VU64 out_bit = vu_broadcast(
            blk == blocks - 1 ? score_bit : std::uint64_t{1} << (kWord - 1));
        const VU64 hout_p = vu_cmpeq(vu_and(ph, out_bit), out_bit);
        const VU64 hout_m = vu_cmpeq(vu_and(mh, out_bit), out_bit);

        // ph and mh are disjoint, so at most one of hp/hm feeds the
        // carry-in bit — matching the scalar hin < 0 / hin > 0 branches.
        ph = vu_or(vu_shl(ph, 1), vu_and(hp, one));
        mh = vu_or(vu_shl(mh, 1), vu_and(hm, one));
        const VU64 pv_new = vu_or(mh, vu_not(vu_or(xv, ph)));
        const VU64 mv_new = vu_and(ph, xv);
        pv[blk] = vu_blend(pv_b, pv_new, col_active);
        mv[blk] = vu_blend(mv_b, mv_new, col_active);
        hp = hout_p;
        hm = hout_m;
      }
      const VU64 delta = vu_sub(vu_and(hp, one), vu_and(hm, one));
      score = vu_add(score, vu_and(delta, col_active));

      // Early abandon: score - remaining > band can never recover.
      const VU64 rem =
          vu_sub(vtlen, vu_broadcast(static_cast<std::uint64_t>(j + 1)));
      const VU64 abandon =
          vu_and(vu_cmpgt_i64(vu_sub(score, rem), vband), col_active);
      bool masks_dirty = false;
      if (vu_test_any(abandon)) {
        std::uint64_t ab[kU64Lanes];
        vu_storeu(ab, abandon);
        for (std::size_t l = 0; l < kU64Lanes; ++l) {
          if (ab[l] && !done[l]) {
            done[l] = true;
            out[base + l] = band + 1;
            masks_dirty = true;
          }
        }
      }
      // Lanes whose text just ran out finalize with the scalar epilogue.
      std::uint64_t score_lanes[kU64Lanes];
      bool scores_stored = false;
      for (std::size_t l = 0; l < kU64Lanes; ++l) {
        if (done[l] || j + 1 != tlen[l]) continue;
        if (!scores_stored) {
          vu_storeu(score_lanes, score);
          scores_stored = true;
        }
        const int s = static_cast<int>(
            static_cast<std::int64_t>(score_lanes[l]));
        out[base + l] = s <= band ? s : band + 1;
        done[l] = true;
        masks_dirty = true;
      }
      if (masks_dirty) {
        for (std::size_t l = 0; l < kU64Lanes; ++l) {
          done_lanes[l] = done[l] ? ~std::uint64_t{0} : 0;
        }
        done_mask = vu_loadu(done_lanes);
      }
    }
  }
}
