// Structured error type for invalid inputs across the framework.
//
// Error contract: any API that validates its inputs throws
// icsc::core::Error (a std::runtime_error) whose message carries a
// "subsystem: what went wrong (context)" string. Validation failures are
// programmer-visible conditions -- shape mismatches, out-of-range indices,
// malformed configurations -- and must never manifest as silent garbage or
// debug-only asserts on the library boundary. Hot inner loops may still
// assert; the boundary functions documented as "throws Error" do the
// checking exactly once on entry.
#pragma once

#include <stdexcept>
#include <string>

namespace icsc::core {

class Error : public std::runtime_error {
public:
  /// `where` names the subsystem/function, `what` describes the failure,
  /// `context` (optional) carries offending values, e.g. shapes.
  Error(const std::string& where, const std::string& what,
        const std::string& context = {})
      : std::runtime_error(context.empty()
                               ? where + ": " + what
                               : where + ": " + what + " (" + context + ")"),
        where_(where) {}

  const std::string& where() const { return where_; }

private:
  std::string where_;
};

}  // namespace icsc::core
