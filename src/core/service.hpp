// Overload-robust multi-tenant campaign service.
//
// Composes the resilience substrate built up across the framework --
// cooperative cancellation/deadlines (core/cancel.hpp), crash-safe
// checkpoints and journals (core/checkpoint.hpp), bounded retry
// (core/retry.hpp), tracing (core/trace.hpp) -- into the long-running
// service layer the "heavy traffic" north star needs: a job scheduler in
// front of the shared thread pool (core/parallel.hpp) that accepts DSE
// campaigns, fault campaigns, and small MVM/conv jobs from multiple
// tenants and *survives sustained overload*. The design rule is that the
// service refuses, sheds, and degrades deliberately instead of queueing
// unboundedly or starving tenants:
//
//   Admission control -- a bounded queue (depth and, optionally, estimated
//     backlog seconds). Submitting past the bound is rejected explicitly
//     with a retry-after hint; nothing buffers without limit.
//   Fair share -- deficit-round-robin over per-tenant FIFO queues with
//     integer weights, so one tenant's burst cannot starve the others. A
//     tenant whose queue drains forfeits its banked deficit (standard DRR).
//   Priority classes -- every request carries a PriorityClass
//     (interactive / batch / background). Dequeue is strict-priority
//     across classes with DRR tenant fairness *within* each class, plus an
//     anti-starvation aging bound: a queued job whose wait exceeds
//     ServiceConfig::priority_aging_seconds is promoted to the interactive
//     band, so background work is delayed, never starved.
//   Coalescing -- jobs submitted with the same non-empty coalesce_key
//     (a shape/config fingerprint) are grouped into one batch: the
//     dispatcher that dequeues such a job claims up to coalesce_max_batch
//     same-key queued jobs (holding a bounded window open for
//     coalesce_max_wait_seconds for more arrivals) and runs the members
//     back-to-back on its own thread with shared per-group state, so an
//     adapter can gather inputs and issue a single device pass (e.g. one
//     Crossbar::matvec_raw_batch) instead of N. The window never outlives
//     any member's deadline budget, and a member cancelled before the
//     group runs detaches cleanly (it is finalised, not executed, and the
//     rest of the batch proceeds).
//   Deadline propagation -- a job's deadline flows into the CancelToken its
//     body polls, so work already doomed to miss its SLO is cancelled
//     early, and jobs whose deadline expired (or whose remaining budget is
//     smaller than their estimated cost) are shed from the queue before
//     execution ever starts.
//   Graceful degradation -- under queue pressure newly admitted jobs are
//     tagged with a DegradeTier; tier-aware bodies (src/service) switch to
//     cheaper modes (sampled campaigns, strided DSE, fewer re-read passes)
//     and the tier is recorded in the job status.
//   Watchdog -- running jobs report progress via JobContext::heartbeat();
//     a job with no heartbeat within the configured timeout is cancelled
//     and journaled (job id, tenant, last checkpoint path), so the tenant
//     gets a *resumable* partial instead of a hang.
//
// Threading model: the service owns a small set of dispatcher threads
// (ServiceConfig::workers). Each dequeues one job at a time via DRR and
// runs its body inline; bodies are free to fan out internally on the
// shared pool (concurrent loops from several dispatchers interleave safely
// on the pool's single task queue). All service state is guarded by one
// mutex; job bodies run without holding it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/checkpoint.hpp"
#include "core/error.hpp"

namespace icsc::core {

/// Lifecycle of one submitted job. Terminal states are kDone, kFailed,
/// kCancelled, kExpired, and kWatchdogKilled.
enum class JobState : std::uint8_t {
  kQueued = 0,       // admitted, waiting for a dispatcher
  kRunning,          // body executing
  kDone,             // body returned (result may still be a flagged partial)
  kFailed,           // body threw; JobStatus::error carries the message
  kCancelled,        // cancel() before or during execution
  kExpired,          // shed: deadline expired (or doomed) before execution
  kWatchdogKilled,   // watchdog cancelled a stuck body
};

const char* job_state_name(JobState state);

/// Degradation tier assigned at admission from queue pressure. Tier-aware
/// job bodies map tiers to cheaper execution modes; the service only
/// assigns and records them.
enum class DegradeTier : std::uint8_t {
  kFull = 0,     // no pressure: exhaustive mode
  kReduced = 1,  // moderate pressure: sampled / reduced trial counts
  kMinimal = 2,  // heavy pressure: cheapest acceptable answer
};

const char* degrade_tier_name(DegradeTier tier);

/// Scheduling class carried by every request. Dequeue is strict-priority
/// across classes (interactive first) with DRR tenant fairness within each
/// class; ServiceConfig::priority_aging_seconds bounds how long a lower
/// class can be bypassed before promotion.
enum class PriorityClass : std::uint8_t {
  kInteractive = 0,  // latency-sensitive: always served first
  kBatch = 1,        // the default: normal campaign work
  kBackground = 2,   // best-effort: runs when nothing else is queued
};

inline constexpr std::size_t kNumPriorityClasses = 3;

const char* priority_class_name(PriorityClass priority);

using JobId = std::uint64_t;

/// Thrown by submit_or_throw() when admission fails; carries the same
/// retry-after hint as the non-throwing SubmitOutcome.
class Overloaded : public Error {
 public:
  Overloaded(const std::string& reason, double retry_after_seconds)
      : Error("core::service", "overloaded: " + reason,
              "retry after " + std::to_string(retry_after_seconds) + " s"),
        retry_after_seconds_(retry_after_seconds) {}

  double retry_after_seconds() const { return retry_after_seconds_; }

 private:
  double retry_after_seconds_ = 0.0;
};

class CampaignService;

/// Handed to a running job body. The body must poll cancel() between units
/// of work (the deadline is folded in) and should heartbeat() at least once
/// per watchdog interval; bodies that persist progress report their latest
/// durable snapshot via note_checkpoint() so a watchdog kill leaves a
/// resumable journal entry.
class JobContext {
 public:
  JobId id() const { return id_; }
  DegradeTier tier() const { return tier_; }

  /// Tenant that submitted this job; bodies use it to namespace per-tenant
  /// durable state (e.g. the cross-run result store directory).
  const std::string& tenant() const { return *tenant_; }

  /// Deadline-bound stop handle: fires on explicit cancel(), service
  /// shutdown, watchdog kill, or SLO expiry.
  const CancelToken& cancel() const { return *cancel_; }
  bool cancelled() const { return cancel_->cancelled(); }

  /// Seconds until this job's deadline (+inf when none).
  double remaining_seconds() const {
    return cancel_->deadline().remaining_seconds();
  }

  /// Progress signal for the watchdog; cheap (one relaxed atomic add).
  void heartbeat();

  /// Coalesced-group introspection. Members of one batch group run
  /// back-to-back on a single dispatcher thread; batch_index() is this
  /// job's position in that order and batch_size() the number of live
  /// members (1 for a solo run). The canonical coalescing shape is:
  /// every member gathers its input into batch_state(), and the last
  /// member (batch_index()+1 == batch_size()) runs one device pass and
  /// scatters per-member results.
  std::size_t batch_index() const { return batch_index_; }
  std::size_t batch_size() const { return batch_size_; }

  /// Shared per-group state slot: every member of one coalesced group sees
  /// the same slot (a solo job gets a private one). The first member that
  /// needs it assigns it; group members run sequentially on one thread, so
  /// access needs no lock. The slot dies with the group.
  std::shared_ptr<void>& batch_state() { return *batch_state_; }

  /// Namespaced path for per-job durable state, derived from the service
  /// scratch directory ("" when the service has none configured).
  std::string checkpoint_path(const std::string& leaf) const;

  /// Records the job's latest durable snapshot/journal; surfaces in
  /// JobStatus::checkpoint_path and in the watchdog/shed journal record,
  /// marking the job resumable.
  void note_checkpoint(const std::string& path);

 private:
  friend class CampaignService;
  JobContext() = default;

  CampaignService* service_ = nullptr;
  JobId id_ = 0;
  DegradeTier tier_ = DegradeTier::kFull;
  /// Borrowed from the Job record, which outlives the body call: keeps
  /// per-member context setup on the dispatch hot path free of string and
  /// token-refcount copies.
  const std::string* tenant_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  std::size_t batch_index_ = 0;
  std::size_t batch_size_ = 1;
  std::shared_ptr<void>* batch_state_ = nullptr;
  /// The job's heartbeat counter, cached so heartbeat() is a single
  /// relaxed atomic add -- no service mutex, no job-table lookup. The Job
  /// outlives its body call, so the pointer is safe for the body's
  /// lifetime.
  std::atomic<std::uint64_t>* heartbeats_ = nullptr;
};

/// One unit of tenant work. The body is type-erased: producers capture
/// their own result slot (see src/service adapters) and read it back after
/// poll() reports kDone.
struct JobRequest {
  std::string tenant = "default";
  /// Strict-priority scheduling class (see PriorityClass). Within a class
  /// the DRR tenant weights decide; across classes interactive always
  /// dequeues first, subject to the aging bound.
  PriorityClass priority = PriorityClass::kBatch;
  /// Same-shape coalescing fingerprint. Jobs queued with the same
  /// non-empty key may be claimed into one batch group and run
  /// back-to-back with shared JobContext::batch_state(), letting the body
  /// fold the group into a single device pass. Empty = never coalesced.
  std::string coalesce_key;
  /// SLO for this job; propagated into the body's CancelToken. A job whose
  /// deadline expires while queued is shed before execution.
  Deadline deadline;
  /// Estimated execution cost in seconds. Drives backlog-based admission,
  /// the doomed-to-miss-SLO shed check, and the DRR debit (clamped to a
  /// small minimum so zero-cost jobs still consume schedule share).
  double cost_estimate_seconds = 0.0;
  /// Opt out of degradation: the job always runs at kFull tier.
  bool allow_degrade = true;
  std::function<void(JobContext&)> body;
};

/// Result of submit(): either an admitted job id (+ assigned tier) or an
/// explicit rejection with a retry-after hint.
struct SubmitOutcome {
  bool admitted = false;
  JobId id = 0;
  DegradeTier tier = DegradeTier::kFull;
  double retry_after_seconds = 0.0;
  /// Rejection cause: "queue_full", "backlog", "tenant_quota", "expired",
  /// or "shutdown". Empty when admitted.
  std::string reason;
};

/// Snapshot of one job's lifecycle, returned by poll().
struct JobStatus {
  JobId id = 0;
  std::string tenant;
  JobState state = JobState::kQueued;
  DegradeTier tier = DegradeTier::kFull;
  PriorityClass priority = PriorityClass::kBatch;
  /// Live members of the coalesced group this job ran in: 1 for a solo
  /// run, > 1 when it was batched, 0 while it has not started.
  std::size_t batch_size = 0;
  bool terminal = false;
  /// Seconds spent queued (and, once started, running). Monotonic clock.
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// True when the deadline fired while the body was running (the body
  /// still returns a flagged partial; the state stays kDone).
  bool hit_deadline = false;
  /// Latest durable state reported via JobContext::note_checkpoint();
  /// non-empty means the job is resumable from this path.
  std::string checkpoint_path;
  /// kFailed only: the body's exception message.
  std::string error;
};

/// Per-tenant fair-share configuration.
struct TenantConfig {
  /// DRR weight (>= 1): relative share of dispatcher time under
  /// contention.
  int weight = 1;
  /// Per-tenant bound on *queued* jobs (0 = no per-tenant bound beyond the
  /// global queue depth).
  std::size_t max_queued = 0;
};

struct ServiceConfig {
  /// Dispatcher threads (>= 1). Bodies may additionally fan out on the
  /// shared core/parallel pool.
  std::size_t workers = 2;
  /// Global bound on queued jobs; admission past it is rejected.
  std::size_t max_queue_depth = 64;
  /// Bound on estimated backlog (sum of queued cost estimates divided by
  /// workers, in seconds); 0 disables the backlog check.
  double max_backlog_seconds = 0.0;
  /// Queue-fill fractions (of max_queue_depth) at which newly admitted
  /// jobs degrade to kReduced / kMinimal.
  double degrade_reduced_at = 0.5;
  double degrade_minimal_at = 0.8;
  /// Shed queued jobs whose remaining deadline budget is smaller than
  /// their cost estimate (already doomed to miss their SLO).
  bool shed_doomed = true;
  /// Watchdog: a running job with no heartbeat for this long is cancelled
  /// and journaled (0 disables the watchdog).
  double watchdog_timeout_seconds = 0.0;
  /// Watchdog scan interval.
  double watchdog_poll_seconds = 0.01;
  /// DRR quantum in cost-seconds credited per scheduling round per weight
  /// unit.
  double drr_quantum_seconds = 0.05;
  /// Coalescing bound: a dispatcher that dequeues a job with a non-empty
  /// coalesce_key claims up to this many same-key queued jobs (across all
  /// tenants and priority classes) into one batch group. 1 disables
  /// coalescing entirely.
  std::size_t coalesce_max_batch = 1;
  /// How long the group leader may hold the batching window open waiting
  /// for more same-key arrivals (0 = claim only what is already queued).
  /// The window is clipped so that no member's deadline budget (remaining
  /// minus its cost estimate) can expire inside it -- a job that would
  /// expire inside the window runs without waiting.
  double coalesce_max_wait_seconds = 0.0;
  /// Anti-starvation bound for priority classes: a queued batch/background
  /// job whose wait exceeds this is promoted (front-of-line) to the
  /// interactive band. 0 disables aging; strict priority can then starve
  /// lower classes under sustained interactive load.
  double priority_aging_seconds = 0.0;
  /// Capacity of the per-tenant sojourn-sample ring (>= 1): the most
  /// recent N completed-job sojourns are kept, oldest overwritten first.
  std::size_t sojourn_capacity = 1 << 16;
  /// Event journal (shed / watchdog / cancel records, core/checkpoint
  /// RunJournal); empty disables journaling.
  std::string journal_path;
  /// Directory for per-job durable state (JobContext::checkpoint_path);
  /// empty means jobs get no service-provided scratch paths.
  std::string scratch_dir;
};

/// Journal record kinds (ServiceEvent::kind).
enum class ServiceEventKind : std::uint8_t {
  kShedExpired = 0,   // dropped from the queue: deadline expired / doomed
  kWatchdogKill = 1,  // stuck body cancelled by the watchdog
  kCancelled = 2,     // explicit cancel() on a queued or running job
};

const char* service_event_kind_name(ServiceEventKind kind);

/// One replayed service-journal record.
struct ServiceEvent {
  ServiceEventKind kind = ServiceEventKind::kShedExpired;
  JobId id = 0;
  std::string tenant;
  /// Last checkpoint the job reported before the event; non-empty means
  /// the work is resumable from this path.
  std::string checkpoint_path;
  double uptime_seconds = 0.0;  // service uptime when the event fired
};

/// Per-tenant accounting. Counters are cumulative since construction.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;        // kDone
  std::uint64_t failed = 0;           // kFailed
  std::uint64_t cancelled = 0;        // kCancelled
  std::uint64_t shed_expired = 0;     // kExpired
  std::uint64_t watchdog_kills = 0;   // kWatchdogKilled
  std::uint64_t degraded = 0;         // admitted at a tier below kFull
  std::uint64_t batched = 0;          // ran inside a coalesced group (> 1)
  std::uint64_t aged = 0;             // promoted to interactive by aging
  /// Sojourn (submit -> done) seconds of completed jobs, oldest to newest.
  /// Feed core::percentile for p50/p99/p999. Bounded by
  /// ServiceConfig::sojourn_capacity: a fixed-capacity ring overwrites the
  /// oldest sample one at a time, so the window always holds the most
  /// recent completions (no wholesale history drops biasing the tail).
  std::vector<double> sojourn_seconds;
};

struct ServiceStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t peak_queue_depth = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t shed_expired = 0;
  std::uint64_t watchdog_kills = 0;
  std::uint64_t degraded = 0;
  /// Coalescing accounting: groups of >= 2 that ran one shared pass, the
  /// jobs they carried, and the largest group seen.
  std::uint64_t coalesced_batches = 0;
  std::uint64_t coalesced_jobs = 0;
  std::size_t max_batch_size = 0;
  /// Queued jobs promoted to the interactive band by the aging bound.
  std::uint64_t aged_promotions = 0;
  std::map<std::string, TenantStats> tenants;
};

/// The in-process campaign service. Construction spawns the dispatcher
/// (and, if configured, watchdog) threads; destruction shuts down
/// gracefully: queued jobs are cancelled, running bodies get a stop
/// request and are joined.
class CampaignService {
 public:
  /// Tenants absent from `tenants` are created on first submit with a
  /// default TenantConfig. Throws core::Error on invalid configuration.
  explicit CampaignService(ServiceConfig config,
                           std::map<std::string, TenantConfig> tenants = {});
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Admission-controlled submit; never throws on overload. Throws
  /// core::Error on malformed requests (no body, empty tenant name).
  SubmitOutcome submit(JobRequest request);

  /// submit() that converts rejection into an Overloaded exception.
  JobId submit_or_throw(JobRequest request);

  /// Status snapshot; throws core::Error for an unknown id.
  JobStatus poll(JobId id) const;

  /// Requests cooperative cancellation. A queued job is finalised
  /// immediately; a running one gets a stop request and finalises as
  /// kCancelled when its body drains. Returns false if the job was already
  /// terminal (or unknown).
  bool cancel(JobId id);

  /// Blocks until no job is queued or running.
  void drain();

  /// Stops admission, cancels queued jobs, stops running bodies
  /// cooperatively, joins all threads. Idempotent; the destructor calls it.
  void shutdown();

  ServiceStats stats() const;

  const ServiceConfig& config() const { return config_; }

  /// Replays the event journal written by a (possibly dead) service
  /// instance: the durable shed/watchdog/cancel record prefix.
  static std::vector<ServiceEvent> replay_events(const std::string& path);

  /// Journal stream tag ("SRVC").
  static constexpr std::uint32_t kJournalKind = 0x53525643;

 private:
  struct Job;
  struct Tenant;

  void dispatcher_main();
  void watchdog_main();
  std::shared_ptr<Job> pick_job_locked();
  void promote_aged_locked();
  void claim_locked(const std::shared_ptr<Job>& job);
  void claim_same_key_locked(const std::string& key,
                             std::vector<std::shared_ptr<Job>>* group);
  void collect_batch_locked(std::unique_lock<std::mutex>& lock,
                            std::vector<std::shared_ptr<Job>>* group);
  void finalize_locked(
      const std::shared_ptr<Job>& job, JobState state,
      std::chrono::steady_clock::time_point end_time =
          std::chrono::steady_clock::now());
  void run_group(std::vector<std::shared_ptr<Job>> group);
  void shed_expired_queued_locked(std::vector<ServiceEvent>* events);
  ServiceEvent make_event(ServiceEventKind kind, const Job& job) const;
  void append_events(const std::vector<ServiceEvent>& events);
  double backlog_seconds_locked() const;
  double tenant_drain_rate_locked(const Tenant& tenant) const;
  double uptime_seconds() const;
  Tenant& tenant_locked(const std::string& name);
  void note_checkpoint(JobId id, const std::string& path);

  friend class JobContext;

  ServiceConfig config_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  // The dispatchers get their own condition variable: submit() signals with
  // notify_one(), and if the watchdog shared the queue it could swallow
  // that single wakeup during its timed poll wait, leaving the job queued
  // with every dispatcher asleep.
  std::condition_variable work_cv_;      // dispatchers wait here
  std::condition_variable drain_cv_;     // drain()/shutdown() wait here
  std::condition_variable watchdog_cv_;  // watchdog's poll-interval wait
  // Batching-window waits get their own cv for the same reason as the
  // watchdog: a leader parked inside its window must not swallow the
  // notify_one() submit() aims at an idle dispatcher.
  std::condition_variable batch_cv_;
  std::size_t batch_waiters_ = 0;
  bool stopped_ = false;

  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<std::string> tenant_order_;  // DRR round-robin order
  std::size_t drr_cursor_ = 0;

  std::map<JobId, std::shared_ptr<Job>> jobs_;
  /// Raw pointers: jobs_ keeps every Job alive for the service lifetime,
  /// and the list is only touched under the service mutex, so the running
  /// list does not need to pay refcount traffic per dispatch.
  std::vector<Job*> running_jobs_;  // size <= workers
  JobId next_id_ = 1;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::size_t peak_queue_depth_ = 0;
  ServiceStats totals_;  // scalar counters only; queues/tenants live above

  std::mutex journal_mutex_;
  std::unique_ptr<RunJournal> journal_;

  std::vector<std::thread> dispatchers_;
  std::thread watchdog_;
};

}  // namespace icsc::core
