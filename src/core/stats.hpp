// Small statistics toolkit: summary statistics and least-squares fitting.
//
// Used by the device-characterisation experiments (fitting drift exponents
// from simulated conductance measurements, Sec. IV) and by benches that
// report measured distributions.
#pragma once

#include <cstddef>
#include <span>

namespace icsc::core {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// Ordinary least squares y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient.
double correlation(std::span<const double> x, std::span<const double> y);

}  // namespace icsc::core
