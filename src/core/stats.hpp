// Small statistics toolkit: summary statistics and least-squares fitting.
//
// Used by the device-characterisation experiments (fitting drift exponents
// from simulated conductance measurements, Sec. IV) and by benches that
// report measured distributions.
#pragma once

#include <cstddef>
#include <span>

namespace icsc::core {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// p-th percentile, p in [0, 100], linear interpolation between order
/// statistics (p=50 is the median, p=100 the max). A single sample is
/// every percentile of itself. Throws core::Error on an empty input or
/// p outside [0, 100] -- there is no meaningful value to return.
double percentile(std::span<const double> values, double p);

/// Ordinary least squares y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient.
double correlation(std::span<const double> x, std::span<const double> y);

}  // namespace icsc::core
