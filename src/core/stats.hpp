// Small statistics toolkit: summary statistics, least-squares fitting, and
// confidence intervals.
//
// Used by the device-characterisation experiments (fitting drift exponents
// from simulated conductance measurements, Sec. IV), by benches that
// report measured distributions, and by the sequential early-stopping
// controller (core/sampling.hpp) that turns fixed Monte-Carlo budgets into
// CI-driven stopping rules.
#pragma once

#include <cstddef>
#include <span>

namespace icsc::core {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// p-th percentile, p in [0, 100], linear interpolation between order
/// statistics (p=50 is the median, p=100 the max). A single sample is
/// every percentile of itself. Throws core::Error on an empty input or
/// p outside [0, 100] -- there is no meaningful value to return.
double percentile(std::span<const double> values, double p);

/// A symmetric two-sided confidence interval [center - half_width,
/// center + half_width].
struct ConfidenceInterval {
  double center = 0.0;
  double half_width = 0.0;

  double lo() const { return center - half_width; }
  double hi() const { return center + half_width; }
  bool contains(double v) const { return v >= lo() && v <= hi(); }
};

/// Two-sided critical value of the standard normal: the z with
/// P(-z <= N(0,1) <= z) = confidence. Throws core::Error unless
/// confidence is in (0, 1).
double normal_critical(double confidence);

/// Two-sided critical value of Student's t with `df` degrees of freedom.
/// Exact table entries cover the standard confidences (0.90 / 0.95 /
/// 0.99) up to df = 30; everything else inverts the t CDF via the
/// regularized incomplete beta function. Converges to normal_critical as
/// df grows. Throws core::Error on df < 1 or confidence outside (0, 1).
double student_t_critical(double df, double confidence);

/// Student-t confidence interval for the population mean. Throws
/// core::Error on fewer than two samples (a single sample has no
/// estimable dispersion -- there is no meaningful interval to return).
ConfidenceInterval mean_ci(std::span<const double> values, double confidence);

/// Large-sample confidence interval for the population standard
/// deviation: s +- z * s / sqrt(2 (n - 1)) (normal approximation to the
/// chi-square sampling distribution of s). Throws core::Error on fewer
/// than two samples.
ConfidenceInterval stddev_ci(std::span<const double> values,
                             double confidence);

/// Ordinary least squares y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Throws core::Error when x and y differ in length (previously an
/// NDEBUG-vanishing assert).
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient. Throws core::Error when x and y
/// differ in length.
double correlation(std::span<const double> x, std::span<const double> y);

}  // namespace icsc::core
