// Software bfloat16 (BF16) arithmetic.
//
// The Sec. VII Compute Unit "uses the BFloat16 precision for all major
// Transformer blocks". BF16 is the top 16 bits of an IEEE-754 binary32:
// 1 sign, 8 exponent, 7 mantissa bits. We implement storage conversion with
// round-to-nearest-even and define arithmetic as convert->fp32 op->convert,
// which matches how BF16 FMA datapaths behave (fp32 accumulate happens in
// the tensor engine; see scf::ComputeUnit).
#pragma once

#include <bit>
#include <compare>
#include <cstdint>
#include <cstring>

namespace icsc::core {

class BFloat16 {
public:
  constexpr BFloat16() = default;

  /// Converts from float with round-to-nearest-even on the dropped 16 bits.
  static BFloat16 from_float(float value) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
    // NaN must stay NaN: force a quiet-NaN payload bit so truncation cannot
    // produce an infinity.
    if ((bits & 0x7F80'0000u) == 0x7F80'0000u && (bits & 0x007F'FFFFu) != 0) {
      return from_bits(static_cast<std::uint16_t>((bits >> 16) | 0x0040u));
    }
    const std::uint32_t rounding_bias = 0x0000'7FFFu + ((bits >> 16) & 1u);
    return from_bits(static_cast<std::uint16_t>((bits + rounding_bias) >> 16));
  }

  static constexpr BFloat16 from_bits(std::uint16_t bits) {
    BFloat16 b;
    b.bits_ = bits;
    return b;
  }

  float to_float() const {
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits_) << 16);
  }

  std::uint16_t bits() const { return bits_; }

  friend BFloat16 operator+(BFloat16 a, BFloat16 b) {
    return from_float(a.to_float() + b.to_float());
  }
  friend BFloat16 operator-(BFloat16 a, BFloat16 b) {
    return from_float(a.to_float() - b.to_float());
  }
  friend BFloat16 operator*(BFloat16 a, BFloat16 b) {
    return from_float(a.to_float() * b.to_float());
  }
  friend BFloat16 operator/(BFloat16 a, BFloat16 b) {
    return from_float(a.to_float() / b.to_float());
  }

  BFloat16& operator+=(BFloat16 rhs) { return *this = *this + rhs; }
  BFloat16& operator*=(BFloat16 rhs) { return *this = *this * rhs; }

  friend bool operator==(BFloat16 a, BFloat16 b) {
    return a.to_float() == b.to_float();  // NaN != NaN, -0 == +0, as IEEE.
  }
  friend auto operator<=>(BFloat16 a, BFloat16 b) {
    return a.to_float() <=> b.to_float();
  }

private:
  std::uint16_t bits_ = 0;
};

/// Rounds a float through BF16 storage (the "bf16 quantisation" operator).
inline float bf16_round(float value) {
  return BFloat16::from_float(value).to_float();
}

}  // namespace icsc::core
