// Deterministic bounded-retry policy.
//
// Transient-failure loops recur across the framework: the IMC
// program-and-verify controller re-programs a cell with an escalating
// pulse budget (Sec. IV), the DNA pipeline puts starved strands back on
// the sequencer for another pass (Sec. VI), and fault campaigns re-issue
// work displaced by injected faults. This header centralizes the loop
// shape those call sites previously duplicated: bounded attempts,
// multiplicative (exponential) budget escalation, and optional seeded
// jitter. Everything is deterministic -- the jitter for retry round r is a
// stateless hash of (seed, r), never a draw from a shared RNG -- so
// retried runs stay bit-reproducible under the thread pool.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/fault.hpp"
#include "core/trace.hpp"

namespace icsc::core {

/// Bounded-attempt policy with exponential budget escalation. `max_retries`
/// counts *extra* attempts after the first, so the default policy performs
/// exactly one attempt (every pre-existing call site's seed behaviour).
struct RetryPolicy {
  int max_retries = 0;     // retry rounds after the first attempt
  double backoff = 2.0;    // budget multiplier per retry round
  double jitter = 0.0;     // fractional spread in [0, 1): scale *= 1 +- jitter
  std::uint64_t seed = 0;  // jitter stream; unused when jitter == 0

  /// Budget multiplier for retry round r >= 1 (round 0, the first attempt,
  /// always has scale 1). backoff^r, widened deterministically into
  /// [backoff^r * (1 - jitter), backoff^r * (1 + jitter)) by a stateless
  /// hash of (seed, r).
  double budget_scale(int retry) const {
    if (retry <= 0) return 1.0;
    double scale = std::pow(backoff, retry);
    if (jitter > 0.0) {
      const double u =
          fault_uniform(seed ^ 0x52'E7'24'11ULL,
                        static_cast<std::uint64_t>(retry));
      scale *= 1.0 - jitter + 2.0 * jitter * u;
    }
    return scale;
  }

  /// Escalates an integer budget by one backoff step with ceiling rounding
  /// -- the cumulative update rule of the IMC program-and-verify retry
  /// controller (applied once per retry round to the previous round's
  /// budget).
  int escalate(int budget) const {
    return static_cast<int>(std::ceil(budget * backoff));
  }
};

/// Outcome of a retry_until() loop.
struct RetryStats {
  int attempts = 0;    // total attempts performed (>= 1 unless max_retries < 0)
  int retries = 0;     // attempts - 1, capped at policy.max_retries
  bool succeeded = false;
};

/// Runs `attempt(retry)` -- retry 0 is the first try -- until it returns
/// true or the policy's attempts are exhausted. The attempt callback owns
/// any escalating state (e.g. a pulse budget updated via
/// RetryPolicy::escalate), which keeps refactored call sites bit-identical
/// to their original hand-rolled loops.
template <typename Fn>
RetryStats retry_until(const RetryPolicy& policy, Fn&& attempt) {
  RetryStats stats;
  for (int retry = 0; retry <= policy.max_retries; ++retry) {
    if (retry > 0) {
      ++stats.retries;
      ICSC_TRACE_COUNT("retry.retries", 1);
    }
    ++stats.attempts;
    if (attempt(retry)) {
      stats.succeeded = true;
      break;
    }
  }
  if (!stats.succeeded) ICSC_TRACE_COUNT("retry.exhausted", 1);
  return stats;
}

}  // namespace icsc::core
