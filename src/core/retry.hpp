// Deterministic bounded-retry policy.
//
// Transient-failure loops recur across the framework: the IMC
// program-and-verify controller re-programs a cell with an escalating
// pulse budget (Sec. IV), the DNA pipeline puts starved strands back on
// the sequencer for another pass (Sec. VI), and fault campaigns re-issue
// work displaced by injected faults. This header centralizes the loop
// shape those call sites previously duplicated: bounded attempts,
// multiplicative (exponential) budget escalation, and optional seeded
// jitter. Everything is deterministic -- the jitter for retry round r is a
// stateless hash of (seed, r), never a draw from a shared RNG -- so
// retried runs stay bit-reproducible under the thread pool.
//
// Observability: every loop exports core/trace counters -- retry.attempts
// (each attempt), retry.retries (rounds after the first), retry.give_ups
// (loops that exhausted their policy), retry.elapsed_capped (loops the
// max-elapsed cap refused) -- so a backoff storm shows up in the p99
// aggregate table instead of hiding inside sleeping clients.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/fault.hpp"
#include "core/trace.hpp"

namespace icsc::core {

/// Bounded-attempt policy with exponential budget escalation. `max_retries`
/// counts *extra* attempts after the first, so the default policy performs
/// exactly one attempt (every pre-existing call site's seed behaviour).
///
/// The delay-schedule fields drive callers that *sleep* between attempts
/// (e.g. resubmitting to an overloaded service). They are inert by default
/// (base_delay_seconds == 0 -> no delays, no elapsed cap), so every
/// pre-existing deterministic call site is bit-identical.
struct RetryPolicy {
  int max_retries = 0;     // retry rounds after the first attempt
  double backoff = 2.0;    // budget multiplier per retry round
  double jitter = 0.0;     // fractional spread in [0, 1): scale *= 1 +- jitter
  std::uint64_t seed = 0;  // jitter stream; unused when jitter == 0

  // --- delay schedule (inert unless base_delay_seconds > 0) --------------
  /// First-retry delay; 0 disables the schedule entirely.
  double base_delay_seconds = 0.0;
  /// Per-delay cap.
  double max_delay_seconds = 60.0;
  /// Cap on the *cumulative scheduled delay*: once the sum of delays for
  /// rounds 1..r would exceed it, round r (and everything after) is
  /// refused. Deterministic by construction -- the cap is evaluated on the
  /// schedule, not on measured wall-clock -- so capped runs stay
  /// bit-reproducible. 0 disables the cap.
  double max_elapsed_seconds = 0.0;
  /// Decorrelated jitter (the AWS "decorrelated jitter" scheme): the delay
  /// chain d_1 = base, d_r = min(cap, uniform(base, 3 * d_{r-1})), with
  /// each uniform drawn statelessly from (seed, r). Deterministic for a
  /// given seed, decorrelated across rounds and across seeds -- colliding
  /// clients that seed differently spread out instead of retrying in
  /// lockstep. false keeps the deterministic exponential schedule.
  bool decorrelated = false;

  /// Budget multiplier for retry round r >= 1 (round 0, the first attempt,
  /// always has scale 1). backoff^r, widened deterministically into
  /// [backoff^r * (1 - jitter), backoff^r * (1 + jitter)) by a stateless
  /// hash of (seed, r).
  double budget_scale(int retry) const {
    if (retry <= 0) return 1.0;
    double scale = std::pow(backoff, retry);
    if (jitter > 0.0) {
      const double u =
          fault_uniform(seed ^ 0x52'E7'24'11ULL,
                        static_cast<std::uint64_t>(retry));
      scale *= 1.0 - jitter + 2.0 * jitter * u;
    }
    return scale;
  }

  /// Escalates an integer budget by one backoff step with ceiling rounding
  /// -- the cumulative update rule of the IMC program-and-verify retry
  /// controller (applied once per retry round to the previous round's
  /// budget).
  int escalate(int budget) const {
    return static_cast<int>(std::ceil(budget * backoff));
  }

  /// Scheduled sleep before retry round r >= 1, in seconds (0 for the
  /// first attempt or when the schedule is disabled). Deterministic mode:
  /// base * backoff^(r-1), widened by `jitter` exactly like budget_scale.
  /// Decorrelated mode: the stateless-seeded decorrelated-jitter chain
  /// documented on the field. Both are capped at max_delay_seconds.
  double delay_seconds(int retry) const {
    if (retry <= 0 || base_delay_seconds <= 0.0) return 0.0;
    if (!decorrelated) {
      double delay = base_delay_seconds * std::pow(backoff, retry - 1);
      if (jitter > 0.0) {
        const double u = fault_uniform(seed ^ 0x52'E7'24'11ULL,
                                       static_cast<std::uint64_t>(retry));
        delay *= 1.0 - jitter + 2.0 * jitter * u;
      }
      return std::min(delay, max_delay_seconds);
    }
    double previous = base_delay_seconds;
    for (int r = 2; r <= retry; ++r) {
      const double u = fault_uniform(seed ^ 0xDE'C0'44'E1ULL,
                                     static_cast<std::uint64_t>(r));
      previous = std::min(
          max_delay_seconds,
          base_delay_seconds + u * (3.0 * previous - base_delay_seconds));
    }
    return std::min(previous, max_delay_seconds);
  }

  /// Cumulative scheduled delay before retry round r (sum of
  /// delay_seconds(1..r)).
  double elapsed_before(int retry) const {
    double total = 0.0;
    for (int r = 1; r <= retry; ++r) total += delay_seconds(r);
    return total;
  }

  /// True when retry round r may proceed: attempts not exhausted AND the
  /// cumulative scheduled delay through round r stays within
  /// max_elapsed_seconds (when set).
  bool allow_retry(int retry) const {
    if (retry > max_retries) return false;
    if (max_elapsed_seconds > 0.0 &&
        elapsed_before(retry) > max_elapsed_seconds) {
      return false;
    }
    return true;
  }
};

/// Outcome of a retry_until() loop.
struct RetryStats {
  int attempts = 0;    // total attempts performed (>= 1 unless max_retries < 0)
  int retries = 0;     // attempts - 1, capped at policy.max_retries
  bool succeeded = false;
  /// Sum of the scheduled delays actually taken (sleeping overload only).
  double scheduled_delay_seconds = 0.0;
  /// True when the loop stopped because max_elapsed_seconds refused the
  /// next round, not because max_retries ran out.
  bool elapsed_capped = false;
};

/// Runs `attempt(retry)` -- retry 0 is the first try -- until it returns
/// true or the policy's attempts are exhausted. The attempt callback owns
/// any escalating state (e.g. a pulse budget updated via
/// RetryPolicy::escalate), which keeps refactored call sites bit-identical
/// to their original hand-rolled loops.
template <typename Fn>
RetryStats retry_until(const RetryPolicy& policy, Fn&& attempt) {
  RetryStats stats;
  for (int retry = 0; retry <= policy.max_retries; ++retry) {
    if (retry > 0) {
      ++stats.retries;
      ICSC_TRACE_COUNT("retry.retries", 1);
    }
    ++stats.attempts;
    ICSC_TRACE_COUNT("retry.attempts", 1);
    if (attempt(retry)) {
      stats.succeeded = true;
      break;
    }
  }
  if (!stats.succeeded) ICSC_TRACE_COUNT("retry.give_ups", 1);
  return stats;
}

/// Sleeping variant for real-time call sites (service resubmission,
/// overload backoff): before retry round r it checks policy.allow_retry(r)
/// -- honouring both max_retries and the max-elapsed cap -- and hands
/// policy.delay_seconds(r) to `sleep` (signature void(double seconds)).
/// Injecting the sleeper keeps tests instant and deterministic; production
/// callers pass something like
///   [](double s){ std::this_thread::sleep_for(std::chrono::duration<double>(s)); }
template <typename Fn, typename SleepFn>
RetryStats retry_until(const RetryPolicy& policy, Fn&& attempt,
                       SleepFn&& sleep) {
  RetryStats stats;
  for (int retry = 0;; ++retry) {
    if (retry > 0) {
      if (!policy.allow_retry(retry)) {
        stats.elapsed_capped = retry <= policy.max_retries;
        if (stats.elapsed_capped) ICSC_TRACE_COUNT("retry.elapsed_capped", 1);
        break;
      }
      const double delay = policy.delay_seconds(retry);
      if (delay > 0.0) {
        sleep(delay);
        stats.scheduled_delay_seconds += delay;
      }
      ++stats.retries;
      ICSC_TRACE_COUNT("retry.retries", 1);
    }
    ++stats.attempts;
    ICSC_TRACE_COUNT("retry.attempts", 1);
    if (attempt(retry)) {
      stats.succeeded = true;
      break;
    }
  }
  if (!stats.succeeded) ICSC_TRACE_COUNT("retry.give_ups", 1);
  return stats;
}

}  // namespace icsc::core
