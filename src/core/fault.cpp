#include "core/fault.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <span>

#include "core/checkpoint.hpp"
#include "core/parallel.hpp"
#include "core/trace.hpp"

namespace icsc::core {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStuckAtLow: return "stuck-at-low";
    case FaultKind::kStuckAtHigh: return "stuck-at-high";
    case FaultKind::kTransientFlip: return "transient-flip";
    case FaultKind::kDrift: return "drift";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t site) {
  // splitmix64 finaliser over a golden-ratio site stride: high-quality
  // avalanche, no sequential state, identical everywhere.
  std::uint64_t z = seed + 0x9E37'79B9'7F4A'7C15ULL * (site + 1);
  z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBULL;
  return z ^ (z >> 31);
}

double fault_uniform(std::uint64_t seed, std::uint64_t site) {
  return static_cast<double>(fault_hash(seed, site) >> 11) * 0x1.0p-53;
}

bool fault_fires(std::uint64_t seed, std::uint64_t site, double rate) {
  return rate > 0.0 && fault_uniform(seed, site) < rate;
}

namespace {

// Domain separators so the kind draw, the low/high split, severity, and
// transient draws are mutually independent streams.
constexpr std::uint64_t kKindDomain = 0xFA'01;
constexpr std::uint64_t kSplitDomain = 0xFA'02;
constexpr std::uint64_t kSeverityDomain = 0xFA'03;
constexpr std::uint64_t kTransientDomain = 0xFA'04;

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t stream)
    : config_(config),
      key_(fault_hash(config.seed, stream ^ 0x51'7E'AD'5ULL)),
      enabled_(config.any()) {}

FaultKind FaultInjector::at(std::uint64_t site) const {
  if (!enabled_) return FaultKind::kNone;
  const double u = fault_uniform(key_ ^ kKindDomain, site);
  // Cumulative thresholds: one uniform classifies the site, so each kind's
  // set is nested as its own rate grows (the preceding rates held fixed).
  double edge = config_.stuck_at_rate;
  if (u < edge) {
    // Independent bit decides the stuck polarity, so the low/high split
    // does not reshuffle as stuck_at_rate is swept.
    return (fault_hash(key_ ^ kSplitDomain, site) & 1) != 0
               ? FaultKind::kStuckAtHigh
               : FaultKind::kStuckAtLow;
  }
  if (u < (edge += config_.drift_rate)) return FaultKind::kDrift;
  if (u < (edge += config_.dropout_rate)) return FaultKind::kDropout;
  if (u < (edge += config_.delay_rate)) return FaultKind::kDelay;
  return FaultKind::kNone;
}

bool FaultInjector::transient(std::uint64_t site, std::uint64_t op) const {
  if (!enabled_ || config_.transient_rate <= 0.0) return false;
  return fault_uniform(key_ ^ kTransientDomain,
                       fault_hash(site, op)) < config_.transient_rate;
}

double FaultInjector::severity(std::uint64_t site) const {
  return fault_uniform(key_ ^ kSeverityDomain, site);
}

std::uint64_t FaultCampaign::trial_seed(std::size_t t) const {
  return fault_hash(seed_ ^ 0xCA'4D'A1'5ULL, t);
}

std::vector<TrialResult> FaultCampaign::run(
    const std::function<TrialResult(std::uint64_t, std::size_t)>& fn) const {
  ICSC_TRACE_SPAN("campaign/run");
  ICSC_TRACE_COUNT("campaign.trials", trials_);
  return parallel_map(trials_, 1, [&](std::size_t t) {
    return fn(trial_seed(t), t);
  });
}

namespace {

constexpr std::uint32_t kCampaignSnapshotKind = 0x46434D50;  // "FCMP"
constexpr std::uint32_t kCampaignSnapshotVersion = 1;

void put_trial(SnapshotWriter& writer, const TrialResult& trial) {
  writer.put_f64(trial.metric);
  writer.put_f64(trial.latency);
  writer.put_bool(trial.completed);
  writer.put_u64(trial.faults_injected);
  writer.put_u64(trial.repairs);
}

TrialResult get_trial(SnapshotReader& reader) {
  TrialResult trial;
  trial.metric = reader.get_f64();
  trial.latency = reader.get_f64();
  trial.completed = reader.get_bool();
  trial.faults_injected = reader.get_u64();
  trial.repairs = reader.get_u64();
  return trial;
}

void save_campaign_snapshot(const std::string& path, std::uint64_t fingerprint,
                            const std::vector<TrialResult>& results,
                            bool completed) {
  SnapshotWriter writer;
  writer.put_u64(fingerprint);
  writer.put_bool(completed);
  writer.put_u64(results.size());
  for (const auto& trial : results) put_trial(writer, trial);
  writer.save(path, kCampaignSnapshotKind, kCampaignSnapshotVersion);
}

}  // namespace

namespace {

/// Fills the early-stop accounting of a finished (or truncated) outcome
/// from its trial prefix; pure function of the prefix, so resumed and
/// uninterrupted runs report bit-identical estimates.
void finalize_sequential(CampaignRunOutcome& outcome, std::size_t budget,
                         const CampaignRunOptions& options) {
  if (!options.early_stop.enabled) return;
  sampling::OnlineStats metric, latency;
  for (const auto& r : outcome.results) {
    metric.push(r.metric);
    latency.push(r.latency);
  }
  const double confidence = options.early_stop.confidence;
  outcome.metric_estimate = sampling::mean_estimate(metric, confidence);
  outcome.latency_estimate = sampling::mean_estimate(latency, confidence);
  outcome.stopped_early =
      outcome.completed && outcome.results.size() < budget;
  if (outcome.stopped_early) {
    outcome.stop_reason = sampling::StopReason::kConverged;
  } else if (outcome.results.size() == budget) {
    outcome.stop_reason = sampling::StopReason::kBudget;
  } else {
    outcome.stop_reason = sampling::StopReason::kNone;
  }
  if (outcome.completed) {
    ICSC_TRACE_COUNT("sampling.trials_run", outcome.results.size());
    ICSC_TRACE_COUNT("sampling.trials_saved",
                     budget - outcome.results.size());
    if (outcome.stop_reason == sampling::StopReason::kConverged) {
      ICSC_TRACE_COUNT("sampling.stop.converged", 1);
    } else {
      ICSC_TRACE_COUNT("sampling.stop.budget", 1);
    }
  }
}

}  // namespace

CampaignRunOutcome FaultCampaign::run(
    const std::function<TrialResult(std::uint64_t, std::size_t)>& fn,
    const CampaignRunOptions& options) const {
  ICSC_TRACE_SPAN("campaign/run_resilient");
  const bool sequential = options.early_stop.enabled;
  // The fingerprint pins a snapshot to this exact campaign: resuming a
  // different (seed, trials) run from it would silently mix experiments.
  // The early-stop rule is folded in so a snapshot taken under one
  // stopping rule (or none) is never resumed under another.
  std::uint64_t fingerprint = fault_hash(seed_ ^ 0xC4'3C'4B'01ULL, trials_);
  if (sequential) {
    fingerprint = fault_hash(
        fingerprint, options.early_stop.fingerprint() ^
                         (options.early_stop_track_latency ? 0x1A7E0C1ULL : 0));
  }
  // The controller only ever sees trials in trial order, so its verdict is
  // a pure function of the completed prefix regardless of thread count,
  // checkpoint granularity, or how many kill/resume cycles preceded us.
  std::optional<sampling::SequentialController> controller;
  if (sequential) {
    controller.emplace(options.early_stop,
                       options.early_stop_track_latency ? 2u : 1u);
  }
  auto feed = [&](const TrialResult& r) {
    if (!controller) return false;
    if (options.early_stop_track_latency) {
      const double kpis[2] = {r.metric, r.latency};
      return controller->observe(kpis);
    }
    return controller->observe(std::span<const double>(&r.metric, 1));
  };

  CampaignRunOutcome outcome;
  outcome.trials_budgeted = trials_;
  bool snapshot_completed = false;
  if (!options.checkpoint_path.empty()) {
    if (auto snapshot = SnapshotReader::try_load(options.checkpoint_path,
                                                 kCampaignSnapshotKind,
                                                 kCampaignSnapshotVersion)) {
      if (snapshot->get_u64() != fingerprint) {
        throw Error("core::fault",
                    "checkpoint belongs to a different campaign",
                    options.checkpoint_path);
      }
      snapshot_completed = snapshot->get_bool();
      const std::uint64_t done = snapshot->get_u64();
      outcome.results.reserve(static_cast<std::size_t>(done));
      for (std::uint64_t t = 0; t < done; ++t) {
        outcome.results.push_back(get_trial(*snapshot));
      }
      outcome.resumed_trials = outcome.results.size();
    }
  }
  // Replay the resumed prefix through the stopping rule. A prior process
  // never persists past its own stop point, but truncate defensively so a
  // hand-edited snapshot cannot push the campaign beyond it.
  bool stopped = false;
  if (controller) {
    for (std::size_t t = 0; t < outcome.results.size() && !stopped; ++t) {
      if (feed(outcome.results[t])) {
        outcome.results.resize(t + 1);
        outcome.resumed_trials = outcome.results.size();
        stopped = true;
      }
    }
  }
  if (snapshot_completed || stopped) {
    outcome.completed = true;
    finalize_sequential(outcome, trials_, options);
    return outcome;
  }

  const CancelToken token = options.cancel.with_deadline(options.deadline);
  const std::size_t block = std::max<std::size_t>(1, options.checkpoint_every);
  const std::size_t stop_at =
      options.trial_budget == 0
          ? trials_
          : std::min(trials_, outcome.results.size() + options.trial_budget);
  bool cancelled = false;
  while (outcome.results.size() < stop_at && !cancelled && !stopped) {
    if (token.cancelled()) {
      cancelled = true;
      break;
    }
    const std::size_t base = outcome.results.size();
    const std::size_t block_end = std::min(stop_at, base + block);
    auto results = parallel_map(
        block_end - base, 1,
        [&](std::size_t i) { return fn(trial_seed(base + i), base + i); },
        token);
    cancelled = results.size() < block_end - base;
    ICSC_TRACE_COUNT("campaign.trials", results.size());
    for (auto& trial : results) {
      outcome.results.push_back(trial);
      if (feed(trial)) {
        // Stop point reached: any trials computed past it in this block
        // are discarded so the persisted prefix IS the stop prefix.
        stopped = true;
        break;
      }
    }
    outcome.completed =
        (outcome.results.size() == trials_ && !cancelled) || stopped;
    if (!options.checkpoint_path.empty()) {
      save_campaign_snapshot(options.checkpoint_path, fingerprint,
                             outcome.results, outcome.completed);
    }
  }
  outcome.completed =
      (outcome.results.size() == trials_ && !cancelled) || stopped;
  finalize_sequential(outcome, trials_, options);
  return outcome;
}

CampaignSummary FaultCampaign::summarize(
    const std::vector<TrialResult>& results) {
  CampaignSummary summary;
  summary.trials = results.size();
  if (results.empty()) return summary;
  summary.min_metric = std::numeric_limits<double>::infinity();
  summary.max_metric = -std::numeric_limits<double>::infinity();
  std::size_t completed = 0;
  for (const auto& r : results) {
    summary.mean_metric += r.metric;
    summary.mean_latency += r.latency;
    summary.min_metric = std::min(summary.min_metric, r.metric);
    summary.max_metric = std::max(summary.max_metric, r.metric);
    summary.total_faults += r.faults_injected;
    summary.total_repairs += r.repairs;
    if (r.completed) ++completed;
  }
  const auto n = static_cast<double>(results.size());
  summary.mean_metric /= n;
  summary.mean_latency /= n;
  summary.completion_rate = static_cast<double>(completed) / n;
  return summary;
}

sampling::Estimate campaign_metric_estimate(
    const std::vector<TrialResult>& results, double confidence) {
  sampling::OnlineStats stats;
  for (const auto& r : results) stats.push(r.metric);
  return sampling::mean_estimate(stats, confidence);
}

sampling::Estimate campaign_latency_estimate(
    const std::vector<TrialResult>& results, double confidence) {
  sampling::OnlineStats stats;
  for (const auto& r : results) stats.push(r.latency);
  return sampling::mean_estimate(stats, confidence);
}

bool campaign_results_identical(const std::vector<TrialResult>& a,
                                const std::vector<TrialResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metric != b[i].metric || a[i].latency != b[i].latency ||
        a[i].completed != b[i].completed ||
        a[i].faults_injected != b[i].faults_injected ||
        a[i].repairs != b[i].repairs) {
      return false;
    }
  }
  return true;
}

}  // namespace icsc::core
