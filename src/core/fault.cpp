#include "core/fault.hpp"

#include <algorithm>
#include <limits>

#include "core/parallel.hpp"

namespace icsc::core {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStuckAtLow: return "stuck-at-low";
    case FaultKind::kStuckAtHigh: return "stuck-at-high";
    case FaultKind::kTransientFlip: return "transient-flip";
    case FaultKind::kDrift: return "drift";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kDelay: return "delay";
  }
  return "unknown";
}

std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t site) {
  // splitmix64 finaliser over a golden-ratio site stride: high-quality
  // avalanche, no sequential state, identical everywhere.
  std::uint64_t z = seed + 0x9E37'79B9'7F4A'7C15ULL * (site + 1);
  z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBULL;
  return z ^ (z >> 31);
}

double fault_uniform(std::uint64_t seed, std::uint64_t site) {
  return static_cast<double>(fault_hash(seed, site) >> 11) * 0x1.0p-53;
}

bool fault_fires(std::uint64_t seed, std::uint64_t site, double rate) {
  return rate > 0.0 && fault_uniform(seed, site) < rate;
}

namespace {

// Domain separators so the kind draw, the low/high split, severity, and
// transient draws are mutually independent streams.
constexpr std::uint64_t kKindDomain = 0xFA'01;
constexpr std::uint64_t kSplitDomain = 0xFA'02;
constexpr std::uint64_t kSeverityDomain = 0xFA'03;
constexpr std::uint64_t kTransientDomain = 0xFA'04;

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t stream)
    : config_(config),
      key_(fault_hash(config.seed, stream ^ 0x51'7E'AD'5ULL)),
      enabled_(config.any()) {}

FaultKind FaultInjector::at(std::uint64_t site) const {
  if (!enabled_) return FaultKind::kNone;
  const double u = fault_uniform(key_ ^ kKindDomain, site);
  // Cumulative thresholds: one uniform classifies the site, so each kind's
  // set is nested as its own rate grows (the preceding rates held fixed).
  double edge = config_.stuck_at_rate;
  if (u < edge) {
    // Independent bit decides the stuck polarity, so the low/high split
    // does not reshuffle as stuck_at_rate is swept.
    return (fault_hash(key_ ^ kSplitDomain, site) & 1) != 0
               ? FaultKind::kStuckAtHigh
               : FaultKind::kStuckAtLow;
  }
  if (u < (edge += config_.drift_rate)) return FaultKind::kDrift;
  if (u < (edge += config_.dropout_rate)) return FaultKind::kDropout;
  if (u < (edge += config_.delay_rate)) return FaultKind::kDelay;
  return FaultKind::kNone;
}

bool FaultInjector::transient(std::uint64_t site, std::uint64_t op) const {
  if (!enabled_ || config_.transient_rate <= 0.0) return false;
  return fault_uniform(key_ ^ kTransientDomain,
                       fault_hash(site, op)) < config_.transient_rate;
}

double FaultInjector::severity(std::uint64_t site) const {
  return fault_uniform(key_ ^ kSeverityDomain, site);
}

std::uint64_t FaultCampaign::trial_seed(std::size_t t) const {
  return fault_hash(seed_ ^ 0xCA'4D'A1'5ULL, t);
}

std::vector<TrialResult> FaultCampaign::run(
    const std::function<TrialResult(std::uint64_t, std::size_t)>& fn) const {
  return parallel_map(trials_, 1, [&](std::size_t t) {
    return fn(trial_seed(t), t);
  });
}

CampaignSummary FaultCampaign::summarize(
    const std::vector<TrialResult>& results) {
  CampaignSummary summary;
  summary.trials = results.size();
  if (results.empty()) return summary;
  summary.min_metric = std::numeric_limits<double>::infinity();
  summary.max_metric = -std::numeric_limits<double>::infinity();
  std::size_t completed = 0;
  for (const auto& r : results) {
    summary.mean_metric += r.metric;
    summary.mean_latency += r.latency;
    summary.min_metric = std::min(summary.min_metric, r.metric);
    summary.max_metric = std::max(summary.max_metric, r.metric);
    summary.total_faults += r.faults_injected;
    summary.total_repairs += r.repairs;
    if (r.completed) ++completed;
  }
  const auto n = static_cast<double>(results.size());
  summary.mean_metric /= n;
  summary.mean_latency /= n;
  summary.completion_rate = static_cast<double>(completed) / n;
  return summary;
}

bool campaign_results_identical(const std::vector<TrialResult>& a,
                                const std::vector<TrialResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metric != b[i].metric || a[i].latency != b[i].latency ||
        a[i].completed != b[i].completed ||
        a[i].faults_injected != b[i].faults_injected ||
        a[i].repairs != b[i].repairs) {
      return false;
    }
  }
  return true;
}

}  // namespace icsc::core
