#include "core/metrics.hpp"

namespace icsc::core {

void OpCounter::add(const std::string& kind, std::uint64_t count) {
  counts_[kind] += count;
}

std::uint64_t OpCounter::count(const std::string& kind) const {
  const auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t OpCounter::total() const {
  std::uint64_t sum = 0;
  for (const auto& [kind, n] : counts_) sum += n;
  return sum;
}

void OpCounter::reset() { counts_.clear(); }

void EnergyLedger::add_pj(const std::string& component, double picojoules) {
  if (!(picojoules >= 0.0) || !std::isfinite(picojoules)) {
    throw Error("core::EnergyLedger::add_pj",
                "energy must be nonnegative and finite",
                component + " += " + std::to_string(picojoules));
  }
  pj_[component] += picojoules;
}

double EnergyLedger::component_pj(const std::string& component) const {
  const auto it = pj_.find(component);
  return it == pj_.end() ? 0.0 : it->second;
}

double EnergyLedger::total_pj() const {
  double sum = 0.0;
  for (const auto& [component, pj] : pj_) sum += pj;
  return sum;
}

void EnergyLedger::reset() { pj_.clear(); }

}  // namespace icsc::core
