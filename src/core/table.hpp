// Fixed-width text table rendering.
//
// Every bench binary regenerates a paper table/figure as aligned text rows;
// TextTable keeps the formatting logic in one place so outputs are uniform
// and diff-friendly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace icsc::core {

/// Locale-independent JSON number formatting. std::to_string and
/// printf("%f") honour LC_NUMERIC and emit comma decimal separators under
/// locales like de_DE, producing invalid JSON; these helpers go through
/// std::to_chars, which is locale-independent by specification. Every JSON
/// emitter in the framework (bench JSON lines, the trace exporter) must
/// use them for non-integer values.
///
/// Shortest round-trip representation; NaN/Inf become "null" (JSON has no
/// encoding for them).
std::string json_num(double value);
/// Fixed-precision variant (%.Nf equivalent); NaN/Inf become "null".
std::string json_num(double value, int precision);
std::string json_num(std::uint64_t value);
std::string json_num(std::int64_t value);

class TextTable {
public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one data row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  /// Formats with SI-style suffix (k, M, G, T) for large magnitudes.
  static std::string si(double value, int precision = 1);

  /// Renders with a header rule; every column padded to its widest cell.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace icsc::core
