#include "core/nn.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace icsc::core {

Dataset make_gaussian_clusters(std::size_t samples_per_class, int classes,
                               std::size_t dim, double noise_sigma,
                               std::uint64_t seed) {
  Rng rng(seed);
  // Random unit-ish cluster centres, scaled apart so the task is separable.
  std::vector<std::vector<double>> centres(classes, std::vector<double>(dim));
  for (auto& centre : centres) {
    for (auto& coord : centre) coord = rng.normal(0.0, 1.0);
  }
  const std::size_t n = samples_per_class * static_cast<std::size_t>(classes);
  Dataset data;
  data.features = TensorF({n, dim});
  data.labels.resize(n);
  data.num_classes = classes;
  std::size_t row = 0;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s, ++row) {
      data.labels[row] = c;
      for (std::size_t d = 0; d < dim; ++d) {
        data.features(row, d) = static_cast<float>(
            centres[c][d] + rng.normal(0.0, noise_sigma));
      }
    }
  }
  return data;
}

Dataset make_two_spirals(std::size_t samples_per_class, std::size_t dim,
                         double noise_sigma, std::uint64_t seed) {
  Rng rng(seed);
  // Random projection matrix lifting (x, y) into dim dimensions.
  std::vector<std::vector<double>> projection(dim, std::vector<double>(2));
  for (auto& row : projection) {
    row[0] = rng.normal(0.0, 1.0);
    row[1] = rng.normal(0.0, 1.0);
  }
  const std::size_t n = samples_per_class * 2;
  Dataset data;
  data.features = TensorF({n, dim});
  data.labels.resize(n);
  data.num_classes = 2;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double t = 0.25 + 2.0 * rng.uniform();  // spiral parameter
    const double angle =
        t * 2.0 * std::numbers::pi + (label == 0 ? 0.0 : std::numbers::pi);
    const double x = t * std::cos(angle) + rng.normal(0.0, noise_sigma);
    const double y = t * std::sin(angle) + rng.normal(0.0, noise_sigma);
    data.labels[i] = label;
    for (std::size_t d = 0; d < dim; ++d) {
      data.features(i, d) =
          static_cast<float>(projection[d][0] * x + projection[d][1] * y);
    }
  }
  return data;
}

DenseLayer::DenseLayer(std::size_t out, std::size_t in, Rng& rng)
    : weights({out, in}), bias(out, 0.0F) {
  // He initialisation, appropriate for the ReLU hidden layers.
  const double sigma = std::sqrt(2.0 / static_cast<double>(in));
  for (auto& w : weights.data()) {
    w = static_cast<float>(rng.normal(0.0, sigma));
  }
}

Mlp::Mlp(std::vector<std::size_t> layer_dims, std::uint64_t seed)
    : seed_(seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < layer_dims.size(); ++i) {
    layers_.emplace_back(layer_dims[i + 1], layer_dims[i], rng);
  }
}

namespace {

std::vector<float> dense_forward(const DenseLayer& layer,
                                 std::span<const float> x) {
  std::vector<float> y = matvec(layer.weights, x);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += layer.bias[i];
  return y;
}

void relu_inplace(std::vector<float>& v) {
  for (auto& x : v) x = std::max(0.0F, x);
}

}  // namespace

std::vector<float> Mlp::forward(std::span<const float> x) const {
  std::vector<float> act(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    act = dense_forward(layers_[l], act);
    if (l + 1 < layers_.size()) relu_inplace(act);
  }
  return act;
}

int Mlp::predict(std::span<const float> x) const {
  const auto logits = forward(x);
  return static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

double Mlp::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::span<const float> x = data.features.data().subspan(i * data.dim(),
                                                            data.dim());
    if (predict(x) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double Mlp::train_epoch(const Dataset& data, float learning_rate, Rng& rng) {
  const auto order = rng.permutation(data.size());
  double loss_sum = 0.0;
  for (const std::size_t sample : order) {
    std::span<const float> x =
        data.features.data().subspan(sample * data.dim(), data.dim());

    // Forward, retaining pre- and post-activation values per layer.
    std::vector<std::vector<float>> activations;  // inputs to each layer
    activations.emplace_back(x.begin(), x.end());
    std::vector<std::vector<float>> pre_relu;  // outputs before ReLU
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      auto z = dense_forward(layers_[l], activations.back());
      pre_relu.push_back(z);
      if (l + 1 < layers_.size()) relu_inplace(z);
      activations.push_back(std::move(z));
    }
    const auto probs = softmax(activations.back());
    const int label = data.labels[sample];
    loss_sum += -std::log(std::max(probs[label], 1e-12F));

    // Backward: delta at logits = probs - onehot.
    std::vector<float> delta = probs;
    delta[label] -= 1.0F;
    for (std::size_t l = layers_.size(); l-- > 0;) {
      DenseLayer& layer = layers_[l];
      const auto& input = activations[l];
      // Gradient step on W and b; compute input delta before mutating W.
      std::vector<float> input_delta(layer.in_dim(), 0.0F);
      for (std::size_t o = 0; o < layer.out_dim(); ++o) {
        for (std::size_t i = 0; i < layer.in_dim(); ++i) {
          input_delta[i] += layer.weights(o, i) * delta[o];
        }
      }
      for (std::size_t o = 0; o < layer.out_dim(); ++o) {
        const float grad_scale = learning_rate * delta[o];
        for (std::size_t i = 0; i < layer.in_dim(); ++i) {
          layer.weights(o, i) -= grad_scale * input[i];
        }
        layer.bias[o] -= grad_scale;
      }
      if (l > 0) {
        // Backprop through the ReLU that fed this layer.
        for (std::size_t i = 0; i < input_delta.size(); ++i) {
          if (pre_relu[l - 1][i] <= 0.0F) input_delta[i] = 0.0F;
        }
        delta = std::move(input_delta);
      }
    }
  }
  return loss_sum / static_cast<double>(data.size());
}

double Mlp::train(const Dataset& data, float learning_rate, int max_epochs,
                  double target_accuracy) {
  Rng rng(seed_ ^ 0x7E57ULL);
  double acc = accuracy(data);
  for (int epoch = 0; epoch < max_epochs && acc < target_accuracy; ++epoch) {
    // 1/t learning-rate decay stabilises late epochs on hard tasks.
    const float lr = learning_rate / (1.0F + 0.01F * static_cast<float>(epoch));
    train_epoch(data, lr, rng);
    acc = accuracy(data);
  }
  return acc;
}

std::vector<float> softmax(std::span<const float> logits) {
  std::vector<float> probs(logits.begin(), logits.end());
  const float peak = *std::max_element(probs.begin(), probs.end());
  float sum = 0.0F;
  for (auto& p : probs) {
    p = std::exp(p - peak);
    sum += p;
  }
  for (auto& p : probs) p /= sum;
  return probs;
}

std::vector<float> forward_with_override(const Mlp& mlp,
                                         std::span<const float> x,
                                         MatvecOverride& override) {
  std::vector<float> act(x.begin(), x.end());
  const auto& layers = mlp.layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    auto y = override.matvec(l, layers[l].weights, act);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += layers[l].bias[i];
    if (l + 1 < layers.size()) relu_inplace(y);
    act = std::move(y);
  }
  return act;
}

double accuracy_with_override(const Mlp& mlp, const Dataset& data,
                              MatvecOverride& override) {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::span<const float> x =
        data.features.data().subspan(i * data.dim(), data.dim());
    const auto logits = forward_with_override(mlp, x, override);
    const int predicted = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (predicted == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace icsc::core
