#include "core/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace icsc::core {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    throw Error("core::percentile", "empty input has no percentiles");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    throw Error("core::percentile", "p must be in [0, 100]",
                "got " + std::to_string(p));
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const auto sx = summarize(x);
  const auto sy = summarize(y);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(n);
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace icsc::core
