#include "core/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace icsc::core {

namespace {

void check_confidence(const char* where, double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw Error(where, "confidence must be in (0, 1)",
                "got " + std::to_string(confidence));
  }
}

void check_same_length(const char* where, std::size_t nx, std::size_t ny) {
  if (nx != ny) {
    throw Error(where, "x and y must have the same length",
                std::to_string(nx) + " vs " + std::to_string(ny));
  }
}

/// Acklam's rational approximation to the inverse standard-normal CDF
/// (relative error < 1.15e-9 over the full open interval).
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

/// Continued-fraction evaluation of the regularized incomplete beta
/// function I_x(a, b) (Lentz's method, Numerical-Recipes style).
double incomplete_beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * incomplete_beta_cf(a, b, x) / a;
  }
  return 1.0 - front * incomplete_beta_cf(b, a, 1.0 - x) / b;
}

/// P(|T_df| <= t): two-sided Student-t CDF mass inside [-t, t].
double student_t_two_sided(double df, double t) {
  if (t <= 0.0) return 0.0;
  const double x = df / (df + t * t);
  return 1.0 - incomplete_beta(0.5 * df, 0.5, x);
}

/// Classic two-sided t table for the standard confidence levels: exact
/// textbook critical values for df = 1..30. Row index df - 1; columns
/// 90% / 95% / 99%.
constexpr std::array<std::array<double, 3>, 30> kStudentTTable = {{
    {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925},  {2.353, 3.182, 5.841},
    {2.132, 2.776, 4.604},   {2.015, 2.571, 4.032},  {1.943, 2.447, 3.707},
    {1.895, 2.365, 3.499},   {1.860, 2.306, 3.355},  {1.833, 2.262, 3.250},
    {1.812, 2.228, 3.169},   {1.796, 2.201, 3.106},  {1.782, 2.179, 3.055},
    {1.771, 2.160, 3.012},   {1.761, 2.145, 2.977},  {1.753, 2.131, 2.947},
    {1.746, 2.120, 2.921},   {1.740, 2.110, 2.898},  {1.734, 2.101, 2.878},
    {1.729, 2.093, 2.861},   {1.725, 2.086, 2.845},  {1.721, 2.080, 2.831},
    {1.717, 2.074, 2.819},   {1.714, 2.069, 2.807},  {1.711, 2.064, 2.797},
    {1.708, 2.060, 2.787},   {1.706, 2.056, 2.779},  {1.703, 2.052, 2.771},
    {1.701, 2.048, 2.763},   {1.699, 2.045, 2.756},  {1.697, 2.042, 2.750},
}};

}  // namespace

double normal_critical(double confidence) {
  check_confidence("core::normal_critical", confidence);
  return inverse_normal_cdf(0.5 * (1.0 + confidence));
}

double student_t_critical(double df, double confidence) {
  check_confidence("core::student_t_critical", confidence);
  if (!(df >= 1.0)) {
    throw Error("core::student_t_critical", "df must be >= 1",
                "got " + std::to_string(df));
  }
  // Fast path: the textbook table at the standard confidences.
  if (df <= 30.0 && df == std::floor(df)) {
    const auto& row = kStudentTTable[static_cast<std::size_t>(df) - 1];
    if (confidence == 0.90) return row[0];
    if (confidence == 0.95) return row[1];
    if (confidence == 0.99) return row[2];
  }
  // General path: bisect the two-sided CDF. Monotone in t, so the answer
  // is deterministic; the normal critical value anchors the bracket.
  const double z = normal_critical(confidence);
  double lo = z;                 // t_df >= z for every finite df
  double hi = std::max(4.0 * z, 4.0);
  while (student_t_two_sided(df, hi) < confidence) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_two_sided(df, mid) < confidence) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

ConfidenceInterval mean_ci(std::span<const double> values, double confidence) {
  check_confidence("core::mean_ci", confidence);
  if (values.size() < 2) {
    throw Error("core::mean_ci", "need at least two samples",
                "got " + std::to_string(values.size()));
  }
  const auto s = summarize(values);
  const auto n = static_cast<double>(values.size());
  // summarize() reports the population stddev; rescale to the sample
  // stddev the t interval wants.
  const double sample_stddev = s.stddev * std::sqrt(n / (n - 1.0));
  const double t = student_t_critical(n - 1.0, confidence);
  return {s.mean, t * sample_stddev / std::sqrt(n)};
}

ConfidenceInterval stddev_ci(std::span<const double> values,
                             double confidence) {
  check_confidence("core::stddev_ci", confidence);
  if (values.size() < 2) {
    throw Error("core::stddev_ci", "need at least two samples",
                "got " + std::to_string(values.size()));
  }
  const auto s = summarize(values);
  const auto n = static_cast<double>(values.size());
  const double sample_stddev = s.stddev * std::sqrt(n / (n - 1.0));
  const double z = normal_critical(confidence);
  return {sample_stddev, z * sample_stddev / std::sqrt(2.0 * (n - 1.0))};
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    throw Error("core::percentile", "empty input has no percentiles");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    throw Error("core::percentile", "p must be in [0, 100]",
                "got " + std::to_string(p));
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  check_same_length("core::fit_linear", x.size(), y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  check_same_length("core::correlation", x.size(), y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const auto sx = summarize(x);
  const auto sy = summarize(y);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(n);
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace icsc::core
