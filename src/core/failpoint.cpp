#include "core/failpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <mutex>

#include "core/fault.hpp"

namespace icsc::core::failpoint {

namespace {

struct SiteState {
  Trigger trigger;
  bool armed = false;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast-path state: the wrappers only take the registry mutex when either
// something is armed or a simulated crash is pending.
std::atomic<int> armed_count{0};
std::atomic<bool> crash_pending{false};

}  // namespace

const char* action_name(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kShortWrite: return "short_write";
    case Action::kError: return "error";
    case Action::kFsyncError: return "fsync_error";
    case Action::kCrash: return "crash";
  }
  return "?";
}

bool enabled() {
  return armed_count.load(std::memory_order_relaxed) > 0 ||
         crash_pending.load(std::memory_order_relaxed);
}

void arm(const std::string& site, const Trigger& trigger) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  SiteState& state = r.sites[site];
  if (!state.armed) armed_count.fetch_add(1, std::memory_order_relaxed);
  state.trigger = trigger;
  state.armed = true;
  state.hits = 0;
}

void disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
  armed_count.store(0, std::memory_order_relaxed);
}

Fired hit(const char* site) {
  Fired fired;
  if (!enabled()) return fired;
  if (crash_pending.load(std::memory_order_relaxed)) {
    fired.action = Action::kCrash;
    return fired;
  }
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  SiteState& state = r.sites[site];  // unarmed sites still count hits
  const std::uint64_t index = state.hits++;
  if (!state.armed || state.trigger.action == Action::kNone ||
      index != state.trigger.at_hit) {
    return fired;
  }
  fired.action = state.trigger.action;
  fired.error_code = state.trigger.error_code;
  fired.keep_fraction = state.trigger.keep_fraction;
  if (fired.action == Action::kCrash || fired.action == Action::kShortWrite) {
    crash_pending.store(true, std::memory_order_relaxed);
  }
  return fired;
}

std::map<std::string, std::uint64_t> hit_counts() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::map<std::string, std::uint64_t> counts;
  for (const auto& [site, state] : r.sites) counts[site] = state.hits;
  return counts;
}

bool crashed() { return crash_pending.load(std::memory_order_relaxed); }

void clear_crash() { crash_pending.store(false, std::memory_order_relaxed); }

Schedule seeded_schedule(
    std::uint64_t seed, const std::map<std::string, std::uint64_t>& universe) {
  Schedule schedule;
  if (universe.empty()) return schedule;
  // std::map iterates in sorted key order, so index -> site is stable
  // across runs and platforms.
  std::vector<const std::string*> sites;
  std::uint64_t total_hits = 0;
  for (const auto& [site, hits] : universe) {
    sites.push_back(&site);
    total_hits += hits;
  }
  // Weight site choice by hit count so hot sites (per-record writes) get
  // proportionally more schedules than one-shot sites (open, rename).
  std::uint64_t pick = total_hits == 0
                           ? 0
                           : fault_hash(seed, 0xF41'000) % total_hits;
  std::size_t site_index = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const std::uint64_t hits = universe.at(*sites[i]);
    if (pick < hits) {
      site_index = i;
      break;
    }
    pick -= hits;
  }
  schedule.site = *sites[site_index];
  const std::uint64_t site_hits =
      std::max<std::uint64_t>(1, universe.at(schedule.site));
  schedule.trigger.at_hit = fault_hash(seed, 0xF41'001) % site_hits;
  switch (fault_hash(seed, 0xF41'002) % 5) {
    case 0: schedule.trigger.action = Action::kShortWrite; break;
    case 1:
      schedule.trigger.action = Action::kError;
      schedule.trigger.error_code = EIO;
      break;
    case 2:
      schedule.trigger.action = Action::kError;
      schedule.trigger.error_code = ENOSPC;
      break;
    case 3: schedule.trigger.action = Action::kFsyncError; break;
    default: schedule.trigger.action = Action::kCrash; break;
  }
  schedule.trigger.keep_fraction = fault_uniform(seed, 0xF41'003);
  return schedule;
}

// ---------------------------------------------------------------------------
// Wrappers

ssize_t checked_write(const char* site, int fd, const void* data,
                      std::size_t size) {
  if (!enabled()) return ::write(fd, data, size);
  const Fired fired = hit(site);
  switch (fired.action) {
    case Action::kNone:
      return ::write(fd, data, size);
    case Action::kError:
    case Action::kFsyncError:
      errno = fired.error_code;
      return -1;
    case Action::kShortWrite: {
      // Persist a prefix, then die: the canonical torn-frame crash. The
      // prefix really reaches the fd so recovery scans see the torn bytes.
      const auto keep = static_cast<std::size_t>(
          static_cast<double>(size) * fired.keep_fraction);
      if (keep > 0) {
        [[maybe_unused]] const ssize_t wrote = ::write(fd, data, keep);
      }
      throw CrashError(site);
    }
    case Action::kCrash:
      throw CrashError(site);
  }
  return ::write(fd, data, size);
}

int checked_fsync(const char* site, int fd) {
  if (!enabled()) return ::fsync(fd);
  const Fired fired = hit(site);
  switch (fired.action) {
    case Action::kNone:
      return ::fsync(fd);
    case Action::kError:
    case Action::kFsyncError:
      errno = fired.error_code ? fired.error_code : EIO;
      return -1;
    case Action::kShortWrite:
    case Action::kCrash:
      throw CrashError(site);
  }
  return ::fsync(fd);
}

int checked_rename(const char* site, const char* from, const char* to) {
  if (!enabled()) return ::rename(from, to);
  const Fired fired = hit(site);
  switch (fired.action) {
    case Action::kNone:
      return ::rename(from, to);
    case Action::kError:
    case Action::kFsyncError:
      errno = fired.error_code ? fired.error_code : EIO;
      return -1;
    case Action::kShortWrite:
    case Action::kCrash:
      throw CrashError(site);
  }
  return ::rename(from, to);
}

int checked_ftruncate(const char* site, int fd, off_t length) {
  if (!enabled()) return ::ftruncate(fd, length);
  const Fired fired = hit(site);
  switch (fired.action) {
    case Action::kNone:
      return ::ftruncate(fd, length);
    case Action::kError:
    case Action::kFsyncError:
      errno = fired.error_code ? fired.error_code : EIO;
      return -1;
    case Action::kShortWrite:
    case Action::kCrash:
      throw CrashError(site);
  }
  return ::ftruncate(fd, length);
}

}  // namespace icsc::core::failpoint
