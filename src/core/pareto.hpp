// Pareto-frontier utilities for design-space exploration (Sec. III).
//
// Every DSE result in the framework is a set of design points with multiple
// minimised objectives (latency, LUTs, energy, ...). These helpers extract
// the non-dominated subset and compute hypervolume-style quality measures
// used by the DSE strategy ablations.
#pragma once

#include <cstddef>
#include <vector>

namespace icsc::core {

/// A design point: opaque id plus objective values (all minimised).
struct ParetoPoint {
  std::size_t id = 0;
  std::vector<double> objectives;
};

/// True if a dominates b: a is <= in every objective and < in at least one.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Returns the non-dominated subset, preserving input order. Duplicate
/// objective vectors are all kept (they do not dominate each other).
std::vector<ParetoPoint> pareto_front(const std::vector<ParetoPoint>& points);

/// 2-D hypervolume (area dominated) with respect to a reference point that
/// must be dominated by every frontier point. Used to compare DSE strategies.
double hypervolume_2d(std::vector<ParetoPoint> front,
                      double ref_x, double ref_y);

}  // namespace icsc::core
