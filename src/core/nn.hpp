// Minimal neural-network library: inference plus SGD training for MLPs.
//
// The IMC experiments of Sec. IV need *trained* networks whose weights can
// be programmed into (noisy) crossbars so accuracy degradation is
// measurable; the SCF experiments of Sec. VII reuse the dense kernels. We
// therefore implement dense layers with full backprop, ReLU, and a softmax
// cross-entropy head, trained on deterministic synthetic classification
// tasks. This is intentionally a small substrate, not a DL framework.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace icsc::core {

/// Labelled dataset: row-major features [n, dim], labels in [0, classes).
struct Dataset {
  TensorF features;
  std::vector<int> labels;
  int num_classes = 0;

  std::size_t size() const { return labels.size(); }
  std::size_t dim() const { return features.rank() == 2 ? features.dim(1) : 0; }
};

/// Gaussian-cluster classification task: `classes` isotropic clusters on a
/// sphere, with optional within-class noise. Easy enough that an MLP reaches
/// high accuracy, so device-noise degradation is clearly visible.
Dataset make_gaussian_clusters(std::size_t samples_per_class, int classes,
                               std::size_t dim, double noise_sigma,
                               std::uint64_t seed);

/// Two interleaved spirals in 2-D lifted to `dim` by random projection:
/// a task that genuinely needs hidden layers.
Dataset make_two_spirals(std::size_t samples_per_class, std::size_t dim,
                         double noise_sigma, std::uint64_t seed);

/// Fully connected layer y = W x + b.
struct DenseLayer {
  TensorF weights;  // [out, in]
  std::vector<float> bias;

  DenseLayer(std::size_t out, std::size_t in, Rng& rng);

  std::size_t in_dim() const { return weights.dim(1); }
  std::size_t out_dim() const { return weights.dim(0); }
};

/// MLP: dense -> relu -> dense -> relu -> ... -> dense (logits).
class Mlp {
public:
  /// layer_dims = {in, hidden..., out}.
  Mlp(std::vector<std::size_t> layer_dims, std::uint64_t seed);

  /// Forward pass on one sample; returns logits.
  std::vector<float> forward(std::span<const float> x) const;

  /// Predicted class (argmax of logits).
  int predict(std::span<const float> x) const;

  /// Fraction of correctly classified samples.
  double accuracy(const Dataset& data) const;

  /// One epoch of SGD with softmax cross-entropy; returns mean loss.
  double train_epoch(const Dataset& data, float learning_rate, Rng& rng);

  /// Trains until accuracy target or max_epochs; returns final accuracy.
  double train(const Dataset& data, float learning_rate, int max_epochs,
               double target_accuracy = 1.1);

  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

private:
  std::vector<DenseLayer> layers_;
  std::uint64_t seed_;
};

/// Numerically stable softmax.
std::vector<float> softmax(std::span<const float> logits);

/// Evaluates the MLP with an arbitrary matvec implementation substituted
/// for every dense layer -- the hook the IMC pipeline uses to run the same
/// network through noisy crossbars. The functor receives (layer_index,
/// weights, input) and must return W x (bias is added by the caller).
class MatvecOverride {
public:
  virtual ~MatvecOverride() = default;
  virtual std::vector<float> matvec(std::size_t layer_index,
                                    const TensorF& weights,
                                    std::span<const float> x) = 0;
};

std::vector<float> forward_with_override(const Mlp& mlp,
                                         std::span<const float> x,
                                         MatvecOverride& override);

double accuracy_with_override(const Mlp& mlp, const Dataset& data,
                              MatvecOverride& override);

}  // namespace icsc::core
