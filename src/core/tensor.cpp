#include "core/tensor.hpp"

namespace icsc::core {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t extent : shape) n *= extent;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

}  // namespace icsc::core
