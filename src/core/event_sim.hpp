// Small discrete-event simulation kernel.
//
// Shared by the SPARTA accelerator simulator (Sec. III) and the
// heterogeneous-pipeline model (Sec. VI). Events are closures scheduled at
// absolute times; ties are broken by insertion order so simulations are
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace icsc::core {

class EventSim {
public:
  using Time = double;
  using Action = std::function<void()>;

  /// Schedules an action at absolute time t (must be >= now()).
  void schedule_at(Time t, Action action);

  /// Schedules an action delay time units from now.
  void schedule_after(Time delay, Action action);

  /// Runs until the event queue drains or `until` is reached.
  /// Returns the final simulation time.
  Time run(Time until = -1.0);

  Time now() const { return now_; }
  std::size_t events_processed() const { return events_processed_; }

private:
  struct Event {
    Time time;
    std::uint64_t sequence;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::size_t events_processed_ = 0;
};

}  // namespace icsc::core
