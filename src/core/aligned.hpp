// Cache-line / SIMD-aligned heap allocation.
//
// The SIMD layer (core/simd.hpp) loads tensor and panel buffers with vector
// instructions; allocating them on 64-byte boundaries keeps every vector
// load inside one cache line and avoids split-load penalties on the
// aligned-stream hot paths. std::allocator only guarantees
// alignof(std::max_align_t) (16 on x86-64), so containers that feed the
// SIMD kernels use aligned_vector instead of std::vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace icsc::core {

/// Byte alignment every SIMD-visible buffer is allocated to. One cache
/// line; also the widest vector register this codebase targets (AVX-512
/// would still be satisfied).
inline constexpr std::size_t kSimdAlignment = 64;

/// True when `p` sits on an `alignment`-byte boundary.
inline bool is_aligned(const void* p, std::size_t alignment = kSimdAlignment) {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

/// Minimal C++17 aligned allocator: over-aligned operator new/delete, so it
/// composes with every standard container.
template <typename T, std::size_t Alignment = kSimdAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must satisfy the element type");

public:
  using value_type = T;
  using size_type = std::size_t;
  using difference_type = std::ptrdiff_t;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Alignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose buffer starts on a 64-byte boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace icsc::core
