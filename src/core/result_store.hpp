// Crash-safe persistent cross-run result store.
//
// The per-run memoization layers (the DSE EvalCache, campaign snapshots)
// die with the process; this store is the durable tier above them: a
// fingerprint-keyed, append-only, CRC-framed log on disk that survives
// kill -9, torn writes, injected I/O errors, and bit-flips, so a second
// identical exploration -- in the same process, a later run, or another
// service instance on the same scratch volume -- costs ~zero.
//
// On-disk format: one file `store.log` under the store directory, a
// sequence of frames
//
//   u32 magic "RST1" | u32 schema_version | u64 fingerprint |
//   u64 payload_size | u32 payload_crc | u32 header_crc | payload
//
// (all little-endian, same codec as core/checkpoint). Appends are
// frame-at-a-time + fsync under an exclusive flock on `store.lock`, so
// concurrent writers -- threads or whole processes -- never interleave
// frames.
//
// Robustness contract, enforced by the failpoint torture suite:
//   * Recovery from any crash point: opening scans the log, indexes every
//     valid frame, resynchronizes past corrupt mid-file frames (bit-flips)
//     by searching for the next valid frame boundary, and truncates the
//     torn tail a dying writer left behind.
//   * Quarantine: a frame whose CRC fails is never indexed and never
//     served; a record whose schema version differs from the reader's is
//     counted and reported as a miss, never deserialized.
//   * Failed appends heal: an injected EIO/ENOSPC/fsync failure rolls the
//     log back to the pre-append frame boundary; if even the rollback
//     fails the store seals itself (lookups keep working, puts throw)
//     rather than risk interleaving into a torn frame.
//   * Compaction is copy + fsync + atomic rename (+ directory fsync), so
//     a crash anywhere leaves either the old log or the new one, complete.
//
// Eviction: when the log outgrows `max_bytes` (or holds more than
// `max_records` live records) compaction keeps the most-recently-used
// records -- last-lookup order, insertion order for never-read ones -- and
// drops the rest, bounding disk use for long-lived service scratch dirs.
//
// Observability: hits/misses/quarantines/appends/evictions are exported
// through core/trace counters (result_store.*) and via stats().
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace icsc::core {

struct ResultStoreConfig {
  /// Store directory (created, parents included, if absent).
  std::string dir;
  /// Compaction trigger: log size past which put() compacts. 0 disables.
  std::uint64_t max_bytes = 64ULL << 20;
  /// Eviction bound on live records at compaction (0 = unbounded).
  std::size_t max_records = 0;
};

/// Cumulative accounting since open (per handle, not persisted).
struct ResultStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Lookups refused because the stored schema version differs.
  std::uint64_t version_mismatches = 0;
  std::uint64_t appends = 0;
  /// Valid frames indexed from disk (recovery at open + refresh pickups
  /// of other writers' frames), as opposed to appends through this handle.
  std::uint64_t recovered_records = 0;
  /// Corrupt mid-file regions skipped during recovery scans (each region
  /// is at least one unrecoverable record).
  std::uint64_t quarantined_regions = 0;
  std::uint64_t quarantined_bytes = 0;
  /// Torn trailing bytes truncated at open (a writer died mid-frame).
  std::uint64_t torn_tail_bytes = 0;
  /// Appends rolled back after an injected/real I/O failure.
  std::uint64_t failed_appends = 0;
  std::uint64_t evicted = 0;
  std::uint64_t compactions = 0;
  /// Current state.
  std::size_t live_records = 0;
  std::uint64_t file_bytes = 0;
  bool sealed = false;  // puts refused after an unrecoverable append failure
};

/// One open handle on a store directory. Thread-safe; multi-process-safe
/// through the flock protocol described in the header comment.
class ResultStore {
 public:
  explicit ResultStore(ResultStoreConfig config);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Returns the stored payload for (fingerprint, schema_version), or
  /// nullopt on miss. A record whose stored schema version differs is a
  /// counted miss, never served. Never returns bytes whose CRC did not
  /// validate at recovery time.
  std::optional<std::vector<std::uint8_t>> lookup(
      std::uint64_t fingerprint, std::uint32_t schema_version);

  /// Durably appends (fingerprint, schema_version) -> payload; when this
  /// returns, the record survives kill -9. Re-putting an identical record
  /// is a no-op; a different payload for the same key supersedes the old
  /// one (last frame wins on recovery). Throws core::Error on I/O failure
  /// (the log is rolled back to the previous frame boundary first) and on
  /// a sealed store.
  void put(std::uint64_t fingerprint, std::uint32_t schema_version,
           const void* data, std::size_t size);
  void put(std::uint64_t fingerprint, std::uint32_t schema_version,
           const std::vector<std::uint8_t>& payload) {
    put(fingerprint, schema_version, payload.data(), payload.size());
  }

  /// Picks up frames appended by other processes since open()/the last
  /// refresh, and re-opens the log if another process compacted it.
  void refresh();

  /// Rewrites the log to live records only (most-recently-used first,
  /// capped at max_records), via temp file + fsync + atomic rename.
  void compact();

  std::size_t size() const;
  ResultStoreStats stats() const;
  const std::string& dir() const { return config_.dir; }

  /// Log frame header size, exposed for tests that build corrupt frames.
  static constexpr std::size_t kFrameHeaderSize = 32;

 private:
  struct Entry {
    std::uint32_t schema_version = 0;
    std::vector<std::uint8_t> payload;
    std::uint64_t last_use = 0;  // monotonically increasing use tick
  };

  void open_and_recover();
  void scan_locked(const std::vector<std::uint8_t>& bytes,
                   std::uint64_t base_offset);
  void append_frame_locked(std::uint64_t fingerprint,
                           std::uint32_t schema_version, const void* data,
                           std::size_t size);
  void compact_locked();
  void refresh_locked();
  void lock_file();
  void unlock_file();

  ResultStoreConfig config_;
  mutable std::mutex mutex_;
  int lock_fd_ = -1;
  int log_fd_ = -1;
  std::uint64_t scan_offset_ = 0;  // log bytes already indexed
  std::uint64_t use_tick_ = 0;
  bool sealed_ = false;
  std::map<std::uint64_t, Entry> index_;
  ResultStoreStats stats_;
};

}  // namespace icsc::core
