// AVX2 variant of the SIMD primitives (4 x 64-bit lanes). This TU is the
// only one compiled with -mavx2; it must never be entered on CPUs without
// AVX2 (the dispatcher in simd.cpp guarantees that).
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd_dispatch.hpp"
#include "core/simd_scalar.hpp"

#define ICSC_SIMD_VARIANT 2

namespace icsc::core::simd::avx2 {

#include "core/simd_vec.inl"
#include "core/simd_kernels.inl"

}  // namespace icsc::core::simd::avx2
