// Deterministic fault-injection framework.
//
// The paper's thrusts are dominated by non-ideal hardware behaviour:
// RRAM/PCM cells stick, drift, and mis-program (Sec. IV), DNA strands drop
// out and pick up error bursts (Sec. VI), and the compute fabric's scaling
// claims silently assume every CU is healthy (Sec. VII). This module is the
// one shared substrate those subsystems inject faults through, built around
// two determinism rules that make campaigns reproducible under the shared
// thread pool (core/parallel.hpp):
//
//   1. Fault-site decisions are *stateless*: whether site `s` is faulty is
//      a pure hash of (seed, site), never a draw from a sequential RNG, so
//      the answer is independent of query order and thread interleaving.
//      Rates are threshold tests on one uniform per site, so the faulty
//      set at rate r1 is a subset of the faulty set at rate r2 >= r1 for
//      the same seed -- degradation sweeps are monotone by construction.
//   2. Monte-Carlo campaigns (FaultCampaign) derive every trial's seed
//      from the campaign seed up front and combine results in trial order
//      via parallel_map, so serial and multi-threaded runs are
//      bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/sampling.hpp"

namespace icsc::core {

/// The fault taxonomy shared by every subsystem. What each kind means is
/// subsystem-specific (a stuck IMC cell pins its conductance; a dropped-out
/// CU disappears from the fabric; a delayed strand read costs an extra
/// sequencing pass), but rates and reporting use one vocabulary.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kStuckAtLow,    // permanently pinned at the low extreme (e.g. Gmin)
  kStuckAtHigh,   // permanently pinned at the high extreme (e.g. Gmax)
  kTransientFlip, // per-operation value corruption (SEU-style)
  kDrift,         // accelerated parametric degradation over time
  kDropout,       // unit lost entirely (dead CU, unsynthesised strand)
  kDelay,         // unit alive but late (retry pass, slow column)
};

const char* fault_kind_name(FaultKind kind);

/// Stateless splitmix64-style mix of (seed, site): the primitive every
/// fault decision reduces to. Identical on all platforms.
std::uint64_t fault_hash(std::uint64_t seed, std::uint64_t site);

/// Uniform double in [0, 1) derived from fault_hash.
double fault_uniform(std::uint64_t seed, std::uint64_t site);

/// True iff `site` is faulty at probability `rate` under `seed`. Threshold
/// test on fault_uniform, so the true set is nested across rates.
bool fault_fires(std::uint64_t seed, std::uint64_t site, double rate);

/// Per-subsystem fault rates. All zero (the default) disables injection
/// entirely; `seed` decorrelates fault maps between experiments.
struct FaultConfig {
  std::uint64_t seed = 0x1C5C'F2'FA'17ULL;
  double stuck_at_rate = 0.0;   // split 50/50 low/high by an independent bit
  double transient_rate = 0.0;  // per-operation, queried via transient()
  double drift_rate = 0.0;
  double dropout_rate = 0.0;
  double delay_rate = 0.0;

  bool any() const {
    return stuck_at_rate > 0.0 || transient_rate > 0.0 || drift_rate > 0.0 ||
           dropout_rate > 0.0 || delay_rate > 0.0;
  }
};

/// Order-independent fault oracle for one array/fabric/channel instance.
/// `stream` decorrelates instances sharing one FaultConfig (e.g. the tiles
/// of a TiledMatvec).
class FaultInjector {
public:
  /// Disabled injector: at() always returns kNone.
  FaultInjector() = default;

  FaultInjector(const FaultConfig& config, std::uint64_t stream = 0);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }

  /// Permanent fault classification of `site`. Pure function of
  /// (config.seed, stream, site); the kStuckAt*/kDrift/kDropout/kDelay sets
  /// are nested as their respective rates grow.
  FaultKind at(std::uint64_t site) const;

  /// Transient (per-operation) corruption of `site` during operation `op`.
  bool transient(std::uint64_t site, std::uint64_t op) const;

  /// Stable per-site severity in [0, 1): how hard a faulty site fails
  /// (drawn independently of the fault decision itself).
  double severity(std::uint64_t site) const;

private:
  FaultConfig config_;
  std::uint64_t key_ = 0;
  bool enabled_ = false;
};

/// Outcome of one Monte-Carlo trial. `metric` is the campaign's fidelity
/// figure (accuracy, RMSE, byte-error-rate -- caller-defined), `latency`
/// its cost figure (us, cycles, passes).
struct TrialResult {
  double metric = 0.0;
  double latency = 0.0;
  bool completed = true;
  std::uint64_t faults_injected = 0;
  std::uint64_t repairs = 0;
};

/// Aggregate over a campaign's trials.
struct CampaignSummary {
  std::size_t trials = 0;
  double mean_metric = 0.0;
  double min_metric = 0.0;
  double max_metric = 0.0;
  double mean_latency = 0.0;
  double completion_rate = 1.0;
  std::uint64_t total_faults = 0;
  std::uint64_t total_repairs = 0;
};

/// Resilience controls for FaultCampaign::run. Default-constructed options
/// reproduce the plain open-loop run: no deadline, no cancellation, no
/// checkpointing.
struct CampaignRunOptions {
  /// Wall-clock budget; combined with `cancel` (whichever fires first).
  Deadline deadline;
  /// External cooperative stop handle.
  CancelToken cancel;
  /// Snapshot file for checkpoint/resume (core/checkpoint.hpp). Empty
  /// disables persistence. An existing snapshot for the same (seed,
  /// trials) campaign is resumed; a snapshot from a different campaign
  /// throws core::Error.
  std::string checkpoint_path;
  /// Trials folded between snapshot saves; 1 (the default) persists after
  /// every completed trial, so a killed process replays at most one trial.
  std::size_t checkpoint_every = 1;
  /// Max trials to execute in *this* invocation (0 = no limit) -- lets the
  /// kill/resume benches truncate a run at a deterministic point.
  std::size_t trial_budget = 0;
  /// Sequential CI-driven early stopping (core/sampling.hpp). Disabled by
  /// default, which keeps the run bit-identical to the fixed-budget path.
  /// When enabled, the campaign's `trials` count becomes a *budget*: the
  /// run stops at the first checked trial prefix whose tracked KPI
  /// confidence intervals are all inside the target, and the stop decision
  /// is a pure function of that prefix -- a killed and resumed campaign
  /// replays its checkpointed prefix and stops at the identical trial with
  /// bit-identical estimates. The early-stop parameters are folded into
  /// the checkpoint fingerprint, so snapshots never mix stopping rules.
  sampling::EarlyStopConfig early_stop;
  /// Track TrialResult::latency as a second stopped-on KPI (metric is
  /// always tracked). Off by default: many campaigns' latency converges
  /// slower than the fidelity metric and would dominate the stop time.
  bool early_stop_track_latency = false;
};

/// Outcome of a resilient campaign run: the trial-order prefix completed so
/// far (all trials when `completed`; a converged early-stopped prefix also
/// counts as completed -- the campaign met its statistical goal).
struct CampaignRunOutcome {
  std::vector<TrialResult> results;
  bool completed = true;        // false when truncated by deadline/cancel/budget
  std::size_t resumed_trials = 0;  // restored from the checkpoint, not re-run
  /// Early-stop accounting, filled when options.early_stop.enabled:
  std::size_t trials_budgeted = 0;    // the campaign's full trial budget
  bool stopped_early = false;         // converged before the budget ran out
  sampling::StopReason stop_reason = sampling::StopReason::kNone;
  sampling::Estimate metric_estimate;   // mean +- CI over results
  sampling::Estimate latency_estimate;

  std::size_t trials_run() const { return results.size(); }
};

/// Seeded Monte-Carlo fault-campaign driver. Trials fan out over the
/// shared pool; per-trial seeds are pre-derived from the campaign seed, so
/// results are bit-identical between ICSC_THREADS=1 and any thread count.
/// The options overload adds deadlines, cooperative cancellation, and
/// per-trial checkpointing: a killed or cancelled campaign resumed from its
/// snapshot finishes with results bit-identical to an uninterrupted run.
class FaultCampaign {
public:
  FaultCampaign(std::uint64_t seed, std::size_t trials)
      : seed_(seed), trials_(trials) {}

  std::size_t trials() const { return trials_; }

  /// The deterministic seed of trial `t` (what run() hands the trial fn).
  std::uint64_t trial_seed(std::size_t t) const;

  /// Runs fn(trial_seed, trial_index) for every trial on the shared pool
  /// and returns the outcomes in trial order.
  std::vector<TrialResult> run(
      const std::function<TrialResult(std::uint64_t, std::size_t)>& fn) const;

  /// Resilient run: honours options.deadline / options.cancel by draining
  /// in-flight trials and returning the completed prefix, and persists
  /// progress to options.checkpoint_path so a later call resumes after the
  /// last durable trial instead of restarting.
  CampaignRunOutcome run(
      const std::function<TrialResult(std::uint64_t, std::size_t)>& fn,
      const CampaignRunOptions& options) const;

  static CampaignSummary summarize(const std::vector<TrialResult>& results);

private:
  std::uint64_t seed_ = 0;
  std::size_t trials_ = 0;
};

/// Exact (bitwise on every field) equality of two campaign outcome lists;
/// the serial-vs-parallel determinism checks in tests and the campaign
/// bench both use this.
bool campaign_results_identical(const std::vector<TrialResult>& a,
                                const std::vector<TrialResult>& b);

/// Student-t interval on the mean metric (resp. latency) of a trial list:
/// what the early-stop validation modes compare the exhaustive oracle
/// against.
sampling::Estimate campaign_metric_estimate(
    const std::vector<TrialResult>& results, double confidence);
sampling::Estimate campaign_latency_estimate(
    const std::vector<TrialResult>& results, double confidence);

}  // namespace icsc::core
