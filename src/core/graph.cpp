#include "core/graph.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>

#include "core/error.hpp"

namespace icsc::core {

CsrGraph csr_from_edges(
    std::size_t num_vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
    Rng* weight_rng) {
  for (const auto& [src, dst] : edges) {
    if (src >= num_vertices || dst >= num_vertices) {
      throw Error("core::csr_from_edges", "edge endpoint out of range",
                  "(" + std::to_string(src) + ", " + std::to_string(dst) +
                      ") with " + std::to_string(num_vertices) + " vertices");
    }
  }
  std::sort(edges.begin(), edges.end());
  CsrGraph g;
  g.row_offsets.assign(num_vertices + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++g.row_offsets[src + 1];
  }
  for (std::size_t v = 0; v < num_vertices; ++v) {
    g.row_offsets[v + 1] += g.row_offsets[v];
  }
  g.column_indices.reserve(edges.size());
  g.edge_weights.reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    (void)src;
    g.column_indices.push_back(dst);
    g.edge_weights.push_back(
        weight_rng ? static_cast<float>(weight_rng->uniform(0.1, 1.0)) : 1.0F);
  }
  return g;
}

CsrGraph make_uniform_graph(std::size_t num_vertices, double avg_degree,
                            std::uint64_t seed) {
  Rng rng(seed);
  const auto num_edges =
      static_cast<std::size_t>(avg_degree * static_cast<double>(num_vertices));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(num_edges);
  for (std::size_t i = 0; i < num_edges; ++i) {
    edges.emplace_back(static_cast<std::uint32_t>(rng.below(num_vertices)),
                       static_cast<std::uint32_t>(rng.below(num_vertices)));
  }
  Rng weights = rng.split();
  return csr_from_edges(num_vertices, std::move(edges), &weights);
}

CsrGraph make_rmat_graph(int scale, double avg_degree, std::uint64_t seed) {
  const std::size_t num_vertices = std::size_t{1} << scale;
  const auto num_edges =
      static_cast<std::size_t>(avg_degree * static_cast<double>(num_vertices));
  Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(num_edges);
  constexpr double a = 0.57, b = 0.19, c = 0.19;  // d = 0.05
  for (std::size_t e = 0; e < num_edges; ++e) {
    std::uint32_t src = 0, dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double p = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (p < a) {
        // top-left quadrant: neither bit set
      } else if (p < a + b) {
        dst |= 1;
      } else if (p < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.emplace_back(src, dst);
  }
  Rng weights = rng.split();
  return csr_from_edges(num_vertices, std::move(edges), &weights);
}

std::vector<std::int32_t> bfs_levels(const CsrGraph& g, std::uint32_t root) {
  std::vector<std::int32_t> level(g.num_vertices(), -1);
  if (root >= g.num_vertices()) return level;
  std::queue<std::uint32_t> frontier;
  level[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      const std::uint32_t w = g.column_indices[e];
      if (level[w] < 0) {
        level[w] = level[v] + 1;
        frontier.push(w);
      }
    }
  }
  return level;
}

std::vector<float> spmv(const CsrGraph& g, const std::vector<float>& x) {
  if (x.size() != g.num_vertices()) {
    throw Error("core::spmv", "vector length mismatch",
                "got " + std::to_string(x.size()) + ", expected " +
                    std::to_string(g.num_vertices()));
  }
  std::vector<float> y(g.num_vertices(), 0.0F);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    float acc = 0.0F;
    for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
      acc += g.edge_weights[e] * x[g.column_indices[e]];
    }
    y[v] = acc;
  }
  return y;
}

std::vector<float> pagerank(const CsrGraph& g, int iterations, float damping) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return {};
  std::vector<float> rank(n, 1.0F / static_cast<float>(n));
  std::vector<float> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0F - damping) / static_cast<float>(n));
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint32_t deg = g.degree(static_cast<std::uint32_t>(v));
      if (deg == 0) continue;
      const float share = damping * rank[v] / static_cast<float>(deg);
      for (std::uint32_t e = g.row_offsets[v]; e < g.row_offsets[v + 1]; ++e) {
        next[g.column_indices[e]] += share;
      }
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace icsc::core
