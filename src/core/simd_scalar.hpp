// Internal: scalar reference implementations of the SIMD primitives.
//
// These are the equivalence oracles: every vector variant must match them
// bit-for-bit. The vector kernels also call the element helpers for their
// tail elements, so a primitive's tail and body can never disagree.
//
// The approximate-arithmetic helpers mirror approx/approx_arith.cpp
// exactly (LOA: low bits OR'd, high bits added with no carry-in;
// truncated multiplier: partial products below bit `trunc_bits` dropped,
// sign-magnitude). The truncated multiplier uses the closed form
//   |a| * (|b| with low t bits cleared)
//     + (sum over set bits j < min(t, 32) of |b| of |a| >> (t - j)) << t
// which equals the partial-product loop mod 2^64: partial products with
// j >= t pass the column mask untouched and sum to the first term, and
// (|a| << j) >> t = |a| >> (t - j) for the truncated low columns (no
// intermediate overflow since |a| <= 2^31 and j <= 31).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace icsc::core::simd::scalar_impl {

/// Clamped LOA mask: 0 means "exact adder".
inline std::uint64_t loa_mask(int loa_bits) {
  if (loa_bits <= 0) return 0;
  if (loa_bits > 63) loa_bits = 63;
  return (std::uint64_t{1} << loa_bits) - 1;
}

/// approx::loa_add with the mask precomputed (mask == 0: exact add).
inline std::int64_t loa_add(std::int64_t a, std::int64_t b,
                            std::uint64_t mask) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  if (mask == 0) return static_cast<std::int64_t>(ua + ub);
  const std::uint64_t low = (ua | ub) & mask;
  const std::uint64_t high = (ua & ~mask) + (ub & ~mask);
  return static_cast<std::int64_t>(high | low);
}

/// Precomputed per-weight state for the truncated multiplier: with the
/// weight fixed across a panel row, only |a| varies per element.
struct TruncWeight {
  std::uint64_t hi = 0;      // |w| with the low trunc_bits cleared
  int shifts[32] = {};       // t - j for every set bit j < min(t, 32) of |w|
  int shift_count = 0;
  int trunc = 0;             // clamped truncated_bits (>= 1)
  bool negative = false;     // sign of w
};

inline TruncWeight make_trunc_weight(std::int32_t w, int trunc_bits) {
  TruncWeight tw;
  tw.trunc = trunc_bits > 63 ? 63 : trunc_bits;
  tw.negative = w < 0;
  const auto uw = static_cast<std::uint64_t>(std::llabs(w));
  tw.hi = uw & ~((std::uint64_t{1} << tw.trunc) - 1);
  const int low_bits = tw.trunc < 32 ? tw.trunc : 32;
  for (int j = 0; j < low_bits; ++j) {
    if ((uw >> j) & 1) tw.shifts[tw.shift_count++] = tw.trunc - j;
  }
  return tw;
}

/// approx::truncated_mul(a, w, trunc_bits) via the closed form; requires
/// trunc_bits >= 1 (callers use plain 64-bit multiply otherwise).
inline std::int64_t truncated_mul(std::int32_t a, const TruncWeight& tw) {
  const auto ua = static_cast<std::uint64_t>(std::llabs(a));
  std::uint64_t low = 0;
  for (int k = 0; k < tw.shift_count; ++k) low += ua >> tw.shifts[k];
  const std::uint64_t magnitude = ua * tw.hi + (low << tw.trunc);
  const bool negative = (a < 0) != tw.negative;
  const auto signed_mag = static_cast<std::int64_t>(magnitude);
  return negative ? -signed_mag : signed_mag;
}

inline void axpy_f32_f64(double w, const float* x, double* acc,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += w * static_cast<double>(x[i]);
  }
}

inline void scaled_axpy_f64(double a, double b, const double* x, double* acc,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += (a * x[i]) * b;
}

inline void tap_panel_axpy_f32_f64(const float* const* rows,
                                   const double* weights, std::size_t taps,
                                   double* acc, std::size_t n) {
  for (std::size_t t = 0; t < taps; ++t) {
    axpy_f32_f64(weights[t], rows[t], acc, n);
  }
}

inline void quantize_fixed_f32(float* data, std::size_t n, int int_bits,
                               int frac_bits) {
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  const double raw_max =
      static_cast<double>((std::int64_t{1} << (int_bits + frac_bits)) - 1);
  const double raw_min = -raw_max - 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double scaled = static_cast<double>(data[i]) * scale;
    // Round half away from zero, then clamp to the representable raw range.
    scaled =
        scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
    scaled = std::clamp(scaled, raw_min, raw_max);
    data[i] = static_cast<float>(scaled / scale);
  }
}

inline void qtap_exact(const std::int32_t* x, std::int32_t w, int loa_bits,
                       std::int64_t* acc, std::size_t n) {
  const std::uint64_t mask = loa_mask(loa_bits);
  const auto w64 = static_cast<std::int64_t>(w);
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = loa_add(acc[i], static_cast<std::int64_t>(x[i]) * w64, mask);
  }
}

inline void qtap_truncated(const std::int32_t* x, std::int32_t w,
                           int trunc_bits, int loa_bits, std::int64_t* acc,
                           std::size_t n) {
  if (trunc_bits <= 0) {
    qtap_exact(x, w, loa_bits, acc, n);
    return;
  }
  const std::uint64_t mask = loa_mask(loa_bits);
  const TruncWeight tw = make_trunc_weight(w, trunc_bits);
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = loa_add(acc[i], truncated_mul(x[i], tw), mask);
  }
}

inline std::uint32_t l1_distance_u16(const std::uint16_t* a,
                                     const std::uint16_t* b, std::size_t n) {
  std::uint32_t l1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    l1 += static_cast<std::uint32_t>(a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return l1;
}

/// One-text banded Myers over a prebuilt peq table: a verbatim port of
/// hetero::dna::levenshtein_myers_banded past its peq construction.
inline int myers_banded_one(const std::uint64_t* peq, std::size_t blocks,
                            std::size_t pattern_len, const std::uint8_t* text,
                            std::size_t text_len, int band,
                            std::uint64_t* pv, std::uint64_t* mv) {
  const auto n = static_cast<int>(pattern_len);
  const auto m = static_cast<int>(text_len);
  if ((n > m ? n - m : m - n) > band) return band + 1;
  if (n == 0 || m == 0) return n > m ? n : m;

  constexpr int kWord = 64;
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    pv[blk] = ~std::uint64_t{0};
    mv[blk] = 0;
  }
  const std::size_t last = blocks - 1;
  const std::uint64_t score_bit = std::uint64_t{1}
                                  << ((pattern_len - 1) % kWord);
  int score = n;

  for (int j = 0; j < m; ++j) {
    const std::uint8_t tc = text[static_cast<std::size_t>(j)];
    int hin = 1;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      std::uint64_t eq = peq[blk * 4 + tc];
      const std::uint64_t pv_b = pv[blk];
      const std::uint64_t mv_b = mv[blk];
      const std::uint64_t xv = eq | mv_b;
      if (hin < 0) eq |= 1;
      const std::uint64_t xh = (((eq & pv_b) + pv_b) ^ pv_b) | eq;
      std::uint64_t ph = mv_b | ~(xh | pv_b);
      std::uint64_t mh = pv_b & xh;

      int hout = 0;
      const std::uint64_t out_bit =
          blk == last ? score_bit : std::uint64_t{1} << (kWord - 1);
      if (ph & out_bit) hout = 1;
      if (mh & out_bit) hout = -1;

      ph <<= 1;
      mh <<= 1;
      if (hin < 0) {
        mh |= 1;
      } else if (hin > 0) {
        ph |= 1;
      }
      pv[blk] = mh | ~(xv | ph);
      mv[blk] = ph & xv;
      hin = hout;
    }
    score += hin;
    const int remaining = m - 1 - j;
    if (score - remaining > band) return band + 1;
  }
  return score <= band ? score : band + 1;
}

void myers_banded_batch(const std::uint64_t* peq, std::size_t blocks,
                        std::size_t pattern_len,
                        const std::uint8_t* const* texts,
                        const std::size_t* text_lens, std::size_t count,
                        int band, int* out);

}  // namespace icsc::core::simd::scalar_impl
