#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "core/failpoint.hpp"
#include "core/trace.hpp"

namespace icsc::core {

namespace {

// File layouts (all integers little-endian):
//   snapshot: "ICSCSNAP" | u32 kind | u32 version | u64 payload_size |
//             u32 payload_crc | u32 header_crc | payload
//   journal record: u32 magic | u32 kind | u64 seq | u64 payload_size |
//                   u32 payload_crc | u32 header_crc | payload
constexpr char kSnapshotMagic[8] = {'I', 'C', 'S', 'C', 'S', 'N', 'A', 'P'};
constexpr std::size_t kSnapshotHeaderSize = 32;
constexpr std::uint32_t kJournalMagic = 0x4C4E524AU;  // "JRNL"
constexpr std::size_t kJournalHeaderSize = 32;
// Torn-tail safety valve: a corrupted size field must not drive a
// multi-gigabyte allocation while scanning a journal.
constexpr std::uint64_t kMaxRecordBytes = 1ULL << 32;

void store_u32(std::uint8_t* at, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) at[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void store_u64(std::uint8_t* at, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) at[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint32_t load_u32(const std::uint8_t* at) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{at[i]} << (8 * i);
  return value;
}

std::uint64_t load_u64(const std::uint8_t* at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= std::uint64_t{at[i]} << (8 * i);
  return value;
}

/// Full write through the failpoint layer: `site` names the durability
/// code path ("checkpoint/write", "journal/write") so the torture suite
/// can inject short writes, EIO/ENOSPC, and crash-here at this exact
/// boundary. A passthrough (one relaxed load) when nothing is armed.
void write_all(const char* site, int fd, const void* data, std::size_t size,
               const std::string& path) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t written = failpoint::checked_write(site, fd, bytes, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw Error("core::checkpoint", "write failed",
                  path + ": " + std::strerror(errno));
    }
    bytes += written;
    size -= static_cast<std::size_t>(written);
  }
}

std::vector<std::uint8_t> read_whole_file(int fd, const std::string& path) {
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const ssize_t got = ::read(fd, chunk.data(), chunk.size());
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error("core::checkpoint", "read failed",
                  path + ": " + std::strerror(errno));
    }
    if (got == 0) break;
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + got);
  }
  return bytes;
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best-effort: rename durability on exotic filesystems
  ::fsync(fd);
  ::close(fd);
}

/// True when a complete, CRC-clean record starts at `bytes[at]`; fills the
/// outputs. Does not check the record's stream kind.
bool parse_journal_record(const std::vector<std::uint8_t>& bytes,
                          std::size_t at, std::uint32_t* record_kind,
                          std::uint64_t* seq, const std::uint8_t** payload,
                          std::uint64_t* size, std::size_t* record_end) {
  if (bytes.size() - at < kJournalHeaderSize) return false;
  const std::uint8_t* head = bytes.data() + at;
  if (load_u32(head) != kJournalMagic ||
      crc32(head, kJournalHeaderSize - 4) != load_u32(head + 28)) {
    return false;
  }
  const std::uint64_t payload_size = load_u64(head + 16);
  if (payload_size > kMaxRecordBytes ||
      bytes.size() - at - kJournalHeaderSize < payload_size) {
    return false;
  }
  const std::uint8_t* body = head + kJournalHeaderSize;
  if (crc32(body, static_cast<std::size_t>(payload_size)) !=
      load_u32(head + 24)) {
    return false;
  }
  *record_kind = load_u32(head + 4);
  *seq = load_u64(head + 8);
  *payload = body;
  *size = payload_size;
  *record_end = at + kJournalHeaderSize + static_cast<std::size_t>(payload_size);
  return true;
}

/// Scans `bytes` for valid journal records of `kind`; returns the records
/// and sets `valid_end` to the byte offset of the last complete, CRC-clean
/// record. A corrupt record *mid-file* (bit-flip, interrupted overwrite)
/// is skipped and counted in `*skipped` -- the scan resynchronizes on the
/// next valid record boundary -- so one damaged record no longer silently
/// discards every record after it. Only the trailing region with no valid
/// record after it (the torn tail a dying writer leaves) is dropped.
std::vector<JournalRecord> scan_journal(const std::vector<std::uint8_t>& bytes,
                                        std::uint32_t kind,
                                        const std::string& path,
                                        std::size_t* valid_end,
                                        std::size_t* skipped) {
  std::vector<JournalRecord> records;
  std::size_t cursor = 0;
  *valid_end = 0;
  *skipped = 0;
  while (cursor < bytes.size()) {
    std::uint32_t record_kind = 0;
    std::uint64_t seq = 0;
    const std::uint8_t* payload = nullptr;
    std::uint64_t size = 0;
    std::size_t record_end = 0;
    if (parse_journal_record(bytes, cursor, &record_kind, &seq, &payload,
                             &size, &record_end)) {
      if (record_kind != kind) {
        if (records.empty() && *skipped == 0) {
          throw Error("core::checkpoint", "journal belongs to another stream",
                      path);
        }
        break;
      }
      JournalRecord record;
      record.seq = seq;
      record.payload.assign(payload, payload + size);
      records.push_back(std::move(record));
      cursor = record_end;
      *valid_end = cursor;
      continue;
    }
    // Invalid bytes at `cursor`: resynchronize by searching for the next
    // offset that parses as a complete valid record. Found -> the gap was
    // a corrupt mid-file record: count it and continue after it. Not
    // found -> torn tail; stop at the last valid record.
    std::size_t next = cursor + 1;
    bool resynced = false;
    for (; next + kJournalHeaderSize <= bytes.size(); ++next) {
      if (load_u32(bytes.data() + next) != kJournalMagic) continue;
      std::size_t probe_end = 0;
      if (parse_journal_record(bytes, next, &record_kind, &seq, &payload,
                               &size, &probe_end)) {
        resynced = true;
        break;
      }
    }
    if (!resynced) break;
    ++*skipped;
    ICSC_TRACE_COUNT("journal.skipped_records", 1);
    cursor = next;
  }
  return records;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void SnapshotWriter::put_u32(std::uint32_t value) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 4);
  store_u32(bytes_.data() + at, value);
}

void SnapshotWriter::put_u64(std::uint64_t value) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 8);
  store_u64(bytes_.data() + at, value);
}

void SnapshotWriter::put_f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(bits);
}

void SnapshotWriter::put_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void SnapshotWriter::put_string(const std::string& value) {
  put_u64(value.size());
  put_bytes(value.data(), value.size());
}

void SnapshotWriter::save(const std::string& path, std::uint32_t kind,
                          std::uint32_t version) const {
  ICSC_TRACE_SPAN("checkpoint/save");
  ICSC_TRACE_COUNT("checkpoint.saves", 1);
  ICSC_TRACE_COUNT("checkpoint.bytes", bytes_.size());
  std::array<std::uint8_t, kSnapshotHeaderSize> header{};
  std::memcpy(header.data(), kSnapshotMagic, sizeof(kSnapshotMagic));
  store_u32(header.data() + 8, kind);
  store_u32(header.data() + 12, version);
  store_u64(header.data() + 16, bytes_.size());
  store_u32(header.data() + 24, crc32(bytes_.data(), bytes_.size()));
  store_u32(header.data() + 28, crc32(header.data(), kSnapshotHeaderSize - 4));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("core::checkpoint", "cannot create snapshot temp file",
                tmp + ": " + std::strerror(errno));
  }
  try {
    write_all("checkpoint/write", fd, header.data(), header.size(), tmp);
    write_all("checkpoint/write", fd, bytes_.data(), bytes_.size(), tmp);
    if (failpoint::checked_fsync("checkpoint/fsync", fd) != 0) {
      throw Error("core::checkpoint", "fsync failed",
                  tmp + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (failpoint::checked_rename("checkpoint/rename", tmp.c_str(),
                                path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw Error("core::checkpoint", "atomic rename failed",
                path + ": " + std::strerror(errno));
  }
  fsync_parent_dir(path);
}

std::optional<SnapshotReader> SnapshotReader::try_load(
    const std::string& path, std::uint32_t kind, std::uint32_t max_version) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;  // fresh start
    throw Error("core::checkpoint", "cannot open snapshot",
                path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_whole_file(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  if (bytes.size() < kSnapshotHeaderSize) {
    throw Error("core::checkpoint", "snapshot truncated (header)", path);
  }
  const std::uint8_t* head = bytes.data();
  if (std::memcmp(head, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    throw Error("core::checkpoint", "bad snapshot magic", path);
  }
  if (crc32(head, kSnapshotHeaderSize - 4) != load_u32(head + 28)) {
    throw Error("core::checkpoint", "snapshot header CRC mismatch", path);
  }
  const std::uint32_t file_kind = load_u32(head + 8);
  if (file_kind != kind) {
    throw Error("core::checkpoint", "snapshot belongs to another stream",
                path);
  }
  const std::uint32_t version = load_u32(head + 12);
  if (version > max_version) {
    throw Error("core::checkpoint", "snapshot version too new", path);
  }
  const std::uint64_t size = load_u64(head + 16);
  if (bytes.size() - kSnapshotHeaderSize != size) {
    throw Error("core::checkpoint", "snapshot truncated (payload)", path);
  }
  const std::uint8_t* payload = head + kSnapshotHeaderSize;
  if (crc32(payload, static_cast<std::size_t>(size)) != load_u32(head + 24)) {
    throw Error("core::checkpoint", "snapshot payload CRC mismatch", path);
  }
  return SnapshotReader(
      std::vector<std::uint8_t>(payload, payload + size), version);
}

std::uint8_t SnapshotReader::get_u8() {
  if (remaining() < 1) {
    throw Error("core::checkpoint", "snapshot payload overrun");
  }
  return bytes_[cursor_++];
}

std::uint32_t SnapshotReader::get_u32() {
  if (remaining() < 4) {
    throw Error("core::checkpoint", "snapshot payload overrun");
  }
  const std::uint32_t value = load_u32(bytes_.data() + cursor_);
  cursor_ += 4;
  return value;
}

std::uint64_t SnapshotReader::get_u64() {
  if (remaining() < 8) {
    throw Error("core::checkpoint", "snapshot payload overrun");
  }
  const std::uint64_t value = load_u64(bytes_.data() + cursor_);
  cursor_ += 8;
  return value;
}

double SnapshotReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<std::uint8_t> SnapshotReader::get_bytes(std::size_t size) {
  if (remaining() < size) {
    throw Error("core::checkpoint", "snapshot payload overrun");
  }
  std::vector<std::uint8_t> out(bytes_.begin() + cursor_,
                                bytes_.begin() + cursor_ + size);
  cursor_ += size;
  return out;
}

std::string SnapshotReader::get_string() {
  const std::uint64_t size = get_u64();
  if (remaining() < size) {
    throw Error("core::checkpoint", "snapshot payload overrun");
  }
  std::string out(reinterpret_cast<const char*>(bytes_.data()) + cursor_,
                  static_cast<std::size_t>(size));
  cursor_ += static_cast<std::size_t>(size);
  return out;
}

RunJournal::RunJournal(const std::string& path, std::uint32_t kind)
    : path_(path), kind_(kind) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw Error("core::checkpoint", "cannot open journal",
                path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_whole_file(fd_, path);
    std::size_t valid_end = 0;
    recovered_ = scan_journal(bytes, kind, path, &valid_end, &skipped_);
    // Truncate the torn tail (if any) so new records append cleanly after
    // the last durable one.
    if (valid_end != bytes.size() && ::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      throw Error("core::checkpoint", "cannot truncate torn journal tail",
                  path + ": " + std::strerror(errno));
    }
    if (::lseek(fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
      throw Error("core::checkpoint", "journal seek failed",
                  path + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  next_seq_ = recovered_.empty() ? 0 : recovered_.back().seq + 1;
}

RunJournal::RunJournal(RunJournal&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      kind_(other.kind_),
      next_seq_(other.next_seq_),
      appended_(other.appended_),
      skipped_(other.skipped_),
      recovered_(std::move(other.recovered_)) {
  other.fd_ = -1;
}

RunJournal& RunJournal::operator=(RunJournal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    kind_ = other.kind_;
    next_seq_ = other.next_seq_;
    appended_ = other.appended_;
    skipped_ = other.skipped_;
    recovered_ = std::move(other.recovered_);
    other.fd_ = -1;
  }
  return *this;
}

RunJournal::~RunJournal() { close(); }

void RunJournal::append(const void* data, std::size_t size) {
  ICSC_TRACE_SPAN("journal/append");
  ICSC_TRACE_COUNT("journal.appends", 1);
  ICSC_TRACE_COUNT("journal.bytes", size);
  if (fd_ < 0) {
    throw Error("core::checkpoint", "append on closed journal", path_);
  }
  std::array<std::uint8_t, kJournalHeaderSize> header{};
  store_u32(header.data(), kJournalMagic);
  store_u32(header.data() + 4, kind_);
  store_u64(header.data() + 8, next_seq_);
  store_u64(header.data() + 16, size);
  store_u32(header.data() + 24, crc32(data, size));
  store_u32(header.data() + 28, crc32(header.data(), kJournalHeaderSize - 4));
  write_all("journal/write", fd_, header.data(), header.size(), path_);
  write_all("journal/write", fd_, data, size, path_);
  if (failpoint::checked_fsync("journal/fsync", fd_) != 0) {
    throw Error("core::checkpoint", "journal fsync failed",
                path_ + ": " + std::strerror(errno));
  }
  ++next_seq_;
  ++appended_;
}

void RunJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<JournalRecord> RunJournal::replay(const std::string& path,
                                              std::uint32_t kind,
                                              std::size_t* skipped_records) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      if (skipped_records != nullptr) *skipped_records = 0;
      return {};
    }
    throw Error("core::checkpoint", "cannot open journal",
                path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_whole_file(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  std::size_t valid_end = 0;
  std::size_t skipped = 0;
  auto records = scan_journal(bytes, kind, path, &valid_end, &skipped);
  if (skipped_records != nullptr) *skipped_records = skipped;
  return records;
}

}  // namespace icsc::core
