// Internal: per-ISA vector wrapper types behind the shared kernel bodies.
//
// A variant translation unit defines ICSC_SIMD_VARIANT (1 = SSE4.2,
// 2 = AVX2, 3 = NEON) and includes this file inside its namespace, then
// includes simd_kernels.inl, which implements the primitives against this
// API. Semantics every variant must honour:
//   - VF64 ops are lane-wise IEEE double multiply/add (no FMA, so results
//     match the scalar oracle bit-for-bit),
//   - VU64 ops are lane-wise 64-bit two's-complement / bitwise ops,
//   - compares produce all-ones / all-zero 64-bit lane masks.
// This file is only ever compiled inside TUs built with the matching -m
// flags, so plain intrinsics (no target attributes) are correct here.
// The including TU provides <immintrin.h> / <arm_neon.h> at global scope
// (this file is included inside a namespace, so it cannot).

#if !defined(ICSC_SIMD_VARIANT) || ICSC_SIMD_VARIANT < 1 || \
    ICSC_SIMD_VARIANT > 3
#error "ICSC_SIMD_VARIANT must be 1 (sse4), 2 (avx2) or 3 (neon)"
#endif

#if ICSC_SIMD_VARIANT == 2  // ------------------------------------- AVX2

inline constexpr std::size_t kF64Lanes = 4;
inline constexpr std::size_t kU64Lanes = 4;
inline constexpr std::size_t kU16Lanes = 16;

struct VF64 {
  __m256d v;
};
struct VU64 {
  __m256i v;
};
struct VU32 {
  __m256i v;
};

inline VF64 vf_broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline VF64 vf_loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void vf_storeu(double* p, VF64 a) { _mm256_storeu_pd(p, a.v); }
inline VF64 vf_load_f32(const float* p) {
  return {_mm256_cvtps_pd(_mm_loadu_ps(p))};
}
inline VF64 vf_add(VF64 a, VF64 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VF64 vf_sub(VF64 a, VF64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VF64 vf_mul(VF64 a, VF64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VF64 vf_div(VF64 a, VF64 b) { return {_mm256_div_pd(a.v, b.v)}; }
inline VF64 vf_floor(VF64 a) { return {_mm256_floor_pd(a.v)}; }
inline VF64 vf_ceil(VF64 a) { return {_mm256_ceil_pd(a.v)}; }
/// Lane-wise min/max. On x86 a NaN in either operand yields operand b, so
/// callers that need NaN to propagate (like std::clamp does) must pass the
/// possibly-NaN value as b.
inline VF64 vf_min(VF64 a, VF64 b) { return {_mm256_min_pd(a.v, b.v)}; }
inline VF64 vf_max(VF64 a, VF64 b) { return {_mm256_max_pd(a.v, b.v)}; }
/// a >= b per lane as an all-ones / all-zero f64 mask; NaN compares false.
inline VF64 vf_cmpge(VF64 a, VF64 b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
/// Lane-wise select: b where mask is set, else a (mirrors vu_blend).
inline VF64 vf_blend(VF64 a, VF64 b, VF64 mask) {
  return {_mm256_blendv_pd(a.v, b.v, mask.v)};
}
/// Narrows kF64Lanes doubles to float (round to nearest even) and stores.
inline void vf_store_f32(float* p, VF64 a) {
  _mm_storeu_ps(p, _mm256_cvtpd_ps(a.v));
}

inline VU64 vu_broadcast(std::uint64_t x) {
  return {_mm256_set1_epi64x(static_cast<long long>(x))};
}
inline VU64 vu_zero() { return {_mm256_setzero_si256()}; }
inline VU64 vu_loadu(const std::uint64_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
inline void vu_storeu(std::uint64_t* p, VU64 a) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
}
inline VU64 vu_add(VU64 a, VU64 b) { return {_mm256_add_epi64(a.v, b.v)}; }
inline VU64 vu_sub(VU64 a, VU64 b) { return {_mm256_sub_epi64(a.v, b.v)}; }
inline VU64 vu_and(VU64 a, VU64 b) { return {_mm256_and_si256(a.v, b.v)}; }
inline VU64 vu_or(VU64 a, VU64 b) { return {_mm256_or_si256(a.v, b.v)}; }
inline VU64 vu_xor(VU64 a, VU64 b) { return {_mm256_xor_si256(a.v, b.v)}; }
/// ~a & b (the _mm_andnot operand order).
inline VU64 vu_andnot(VU64 a, VU64 b) {
  return {_mm256_andnot_si256(a.v, b.v)};
}
inline VU64 vu_not(VU64 a) {
  return {_mm256_xor_si256(a.v, _mm256_set1_epi64x(-1))};
}
inline VU64 vu_shl(VU64 a, int s) {
  return {_mm256_sll_epi64(a.v, _mm_cvtsi32_si128(s))};
}
inline VU64 vu_shr(VU64 a, int s) {
  return {_mm256_srl_epi64(a.v, _mm_cvtsi32_si128(s))};
}
inline VU64 vu_cmpeq(VU64 a, VU64 b) {
  return {_mm256_cmpeq_epi64(a.v, b.v)};
}
inline VU64 vu_cmpgt_i64(VU64 a, VU64 b) {
  return {_mm256_cmpgt_epi64(a.v, b.v)};
}
/// Sign-extends kU64Lanes int32 values to 64-bit lanes.
inline VU64 vu_load_i32(const std::int32_t* p) {
  return {_mm256_cvtepi32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
}
/// Per-lane (a & 0xFFFFFFFF) * (b & 0xFFFFFFFF), full 64-bit product.
inline VU64 vu_mul_u32(VU64 a, VU64 b) {
  return {_mm256_mul_epu32(a.v, b.v)};
}
inline bool vu_test_any(VU64 a) { return !_mm256_testz_si256(a.v, a.v); }

inline VU32 vu32_zero() { return {_mm256_setzero_si256()}; }
/// acc += widened |a - b| over one register of uint16 histogram entries.
inline VU32 v16_l1_accum(VU32 acc, const std::uint16_t* a,
                         const std::uint16_t* b) {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i d = _mm256_sub_epi16(_mm256_max_epu16(va, vb),
                                     _mm256_min_epu16(va, vb));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i lo = _mm256_unpacklo_epi16(d, zero);
  const __m256i hi = _mm256_unpackhi_epi16(d, zero);
  return {_mm256_add_epi32(acc.v, _mm256_add_epi32(lo, hi))};
}
inline std::uint32_t vu32_hsum(VU32 a) {
  const __m128i lo = _mm256_castsi256_si128(a.v);
  const __m128i hi = _mm256_extracti128_si256(a.v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

#elif ICSC_SIMD_VARIANT == 1  // ---------------------------------- SSE4.2

inline constexpr std::size_t kF64Lanes = 2;
inline constexpr std::size_t kU64Lanes = 2;
inline constexpr std::size_t kU16Lanes = 8;

struct VF64 {
  __m128d v;
};
struct VU64 {
  __m128i v;
};
struct VU32 {
  __m128i v;
};

inline VF64 vf_broadcast(double x) { return {_mm_set1_pd(x)}; }
inline VF64 vf_loadu(const double* p) { return {_mm_loadu_pd(p)}; }
inline void vf_storeu(double* p, VF64 a) { _mm_storeu_pd(p, a.v); }
inline VF64 vf_load_f32(const float* p) {
  return {_mm_cvtps_pd(_mm_castsi128_ps(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))))};
}
inline VF64 vf_add(VF64 a, VF64 b) { return {_mm_add_pd(a.v, b.v)}; }
inline VF64 vf_sub(VF64 a, VF64 b) { return {_mm_sub_pd(a.v, b.v)}; }
inline VF64 vf_mul(VF64 a, VF64 b) { return {_mm_mul_pd(a.v, b.v)}; }
inline VF64 vf_div(VF64 a, VF64 b) { return {_mm_div_pd(a.v, b.v)}; }
inline VF64 vf_floor(VF64 a) { return {_mm_floor_pd(a.v)}; }
inline VF64 vf_ceil(VF64 a) { return {_mm_ceil_pd(a.v)}; }
inline VF64 vf_min(VF64 a, VF64 b) { return {_mm_min_pd(a.v, b.v)}; }
inline VF64 vf_max(VF64 a, VF64 b) { return {_mm_max_pd(a.v, b.v)}; }
inline VF64 vf_cmpge(VF64 a, VF64 b) { return {_mm_cmpge_pd(a.v, b.v)}; }
inline VF64 vf_blend(VF64 a, VF64 b, VF64 mask) {
  return {_mm_blendv_pd(a.v, b.v, mask.v)};
}
inline void vf_store_f32(float* p, VF64 a) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p),
                   _mm_castps_si128(_mm_cvtpd_ps(a.v)));
}

inline VU64 vu_broadcast(std::uint64_t x) {
  return {_mm_set1_epi64x(static_cast<long long>(x))};
}
inline VU64 vu_zero() { return {_mm_setzero_si128()}; }
inline VU64 vu_loadu(const std::uint64_t* p) {
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
}
inline void vu_storeu(std::uint64_t* p, VU64 a) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
}
inline VU64 vu_add(VU64 a, VU64 b) { return {_mm_add_epi64(a.v, b.v)}; }
inline VU64 vu_sub(VU64 a, VU64 b) { return {_mm_sub_epi64(a.v, b.v)}; }
inline VU64 vu_and(VU64 a, VU64 b) { return {_mm_and_si128(a.v, b.v)}; }
inline VU64 vu_or(VU64 a, VU64 b) { return {_mm_or_si128(a.v, b.v)}; }
inline VU64 vu_xor(VU64 a, VU64 b) { return {_mm_xor_si128(a.v, b.v)}; }
inline VU64 vu_andnot(VU64 a, VU64 b) { return {_mm_andnot_si128(a.v, b.v)}; }
inline VU64 vu_not(VU64 a) {
  return {_mm_xor_si128(a.v, _mm_set1_epi64x(-1))};
}
inline VU64 vu_shl(VU64 a, int s) {
  return {_mm_sll_epi64(a.v, _mm_cvtsi32_si128(s))};
}
inline VU64 vu_shr(VU64 a, int s) {
  return {_mm_srl_epi64(a.v, _mm_cvtsi32_si128(s))};
}
inline VU64 vu_cmpeq(VU64 a, VU64 b) { return {_mm_cmpeq_epi64(a.v, b.v)}; }
inline VU64 vu_cmpgt_i64(VU64 a, VU64 b) {
  return {_mm_cmpgt_epi64(a.v, b.v)};
}
inline VU64 vu_load_i32(const std::int32_t* p) {
  return {_mm_cvtepi32_epi64(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)))};
}
inline VU64 vu_mul_u32(VU64 a, VU64 b) { return {_mm_mul_epu32(a.v, b.v)}; }
inline bool vu_test_any(VU64 a) { return !_mm_testz_si128(a.v, a.v); }

inline VU32 vu32_zero() { return {_mm_setzero_si128()}; }
inline VU32 v16_l1_accum(VU32 acc, const std::uint16_t* a,
                         const std::uint16_t* b) {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i d =
      _mm_sub_epi16(_mm_max_epu16(va, vb), _mm_min_epu16(va, vb));
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo = _mm_unpacklo_epi16(d, zero);
  const __m128i hi = _mm_unpackhi_epi16(d, zero);
  return {_mm_add_epi32(acc.v, _mm_add_epi32(lo, hi))};
}
inline std::uint32_t vu32_hsum(VU32 a) {
  __m128i s =
      _mm_add_epi32(a.v, _mm_shuffle_epi32(a.v, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

#elif ICSC_SIMD_VARIANT == 3  // ------------------------------------ NEON

inline constexpr std::size_t kF64Lanes = 2;
inline constexpr std::size_t kU64Lanes = 2;
inline constexpr std::size_t kU16Lanes = 8;

struct VF64 {
  float64x2_t v;
};
struct VU64 {
  uint64x2_t v;
};
struct VU32 {
  uint32x4_t v;
};

inline VF64 vf_broadcast(double x) { return {vdupq_n_f64(x)}; }
inline VF64 vf_loadu(const double* p) { return {vld1q_f64(p)}; }
inline void vf_storeu(double* p, VF64 a) { vst1q_f64(p, a.v); }
inline VF64 vf_load_f32(const float* p) {
  return {vcvt_f64_f32(vld1_f32(p))};
}
inline VF64 vf_add(VF64 a, VF64 b) { return {vaddq_f64(a.v, b.v)}; }
inline VF64 vf_sub(VF64 a, VF64 b) { return {vsubq_f64(a.v, b.v)}; }
inline VF64 vf_mul(VF64 a, VF64 b) { return {vmulq_f64(a.v, b.v)}; }
inline VF64 vf_div(VF64 a, VF64 b) { return {vdivq_f64(a.v, b.v)}; }
inline VF64 vf_floor(VF64 a) { return {vrndmq_f64(a.v)}; }
inline VF64 vf_ceil(VF64 a) { return {vrndpq_f64(a.v)}; }
// NEON min/max propagate NaN from either operand, which still satisfies the
// "possibly-NaN operand last" contract the x86 wrappers require.
inline VF64 vf_min(VF64 a, VF64 b) { return {vminq_f64(a.v, b.v)}; }
inline VF64 vf_max(VF64 a, VF64 b) { return {vmaxq_f64(a.v, b.v)}; }
inline VF64 vf_cmpge(VF64 a, VF64 b) {
  return {vreinterpretq_f64_u64(vcgeq_f64(a.v, b.v))};
}
inline VF64 vf_blend(VF64 a, VF64 b, VF64 mask) {
  return {vbslq_f64(vreinterpretq_u64_f64(mask.v), b.v, a.v)};
}
inline void vf_store_f32(float* p, VF64 a) {
  vst1_f32(p, vcvt_f32_f64(a.v));
}

inline VU64 vu_broadcast(std::uint64_t x) { return {vdupq_n_u64(x)}; }
inline VU64 vu_zero() { return {vdupq_n_u64(0)}; }
inline VU64 vu_loadu(const std::uint64_t* p) { return {vld1q_u64(p)}; }
inline void vu_storeu(std::uint64_t* p, VU64 a) { vst1q_u64(p, a.v); }
inline VU64 vu_add(VU64 a, VU64 b) { return {vaddq_u64(a.v, b.v)}; }
inline VU64 vu_sub(VU64 a, VU64 b) { return {vsubq_u64(a.v, b.v)}; }
inline VU64 vu_and(VU64 a, VU64 b) { return {vandq_u64(a.v, b.v)}; }
inline VU64 vu_or(VU64 a, VU64 b) { return {vorrq_u64(a.v, b.v)}; }
inline VU64 vu_xor(VU64 a, VU64 b) { return {veorq_u64(a.v, b.v)}; }
inline VU64 vu_andnot(VU64 a, VU64 b) { return {vbicq_u64(b.v, a.v)}; }
inline VU64 vu_not(VU64 a) {
  return {veorq_u64(a.v, vdupq_n_u64(~std::uint64_t{0}))};
}
inline VU64 vu_shl(VU64 a, int s) {
  return {vshlq_u64(a.v, vdupq_n_s64(s))};
}
inline VU64 vu_shr(VU64 a, int s) {
  return {vshlq_u64(a.v, vdupq_n_s64(-s))};
}
inline VU64 vu_cmpeq(VU64 a, VU64 b) { return {vceqq_u64(a.v, b.v)}; }
inline VU64 vu_cmpgt_i64(VU64 a, VU64 b) {
  return {vcgtq_s64(vreinterpretq_s64_u64(a.v), vreinterpretq_s64_u64(b.v))};
}
inline VU64 vu_load_i32(const std::int32_t* p) {
  return {vreinterpretq_u64_s64(vmovl_s32(vld1_s32(p)))};
}
inline VU64 vu_mul_u32(VU64 a, VU64 b) {
  return {vmull_u32(vmovn_u64(a.v), vmovn_u64(b.v))};
}
inline bool vu_test_any(VU64 a) {
  return vmaxvq_u32(vreinterpretq_u32_u64(a.v)) != 0;
}

inline VU32 vu32_zero() { return {vdupq_n_u32(0)}; }
inline VU32 v16_l1_accum(VU32 acc, const std::uint16_t* a,
                         const std::uint16_t* b) {
  const uint16x8_t d = vabdq_u16(vld1q_u16(a), vld1q_u16(b));
  return {vpadalq_u16(acc.v, d)};
}
inline std::uint32_t vu32_hsum(VU32 a) { return vaddvq_u32(a.v); }

#endif  // ICSC_SIMD_VARIANT

/// (a * b) mod 2^64 per lane, from 32x32 partial products. Exact for any
/// operands, which makes it the vector twin of int64 multiplication.
inline VU64 vu_mullo64(VU64 a, VU64 b) {
  const VU64 lo = vu_mul_u32(a, b);
  const VU64 cross =
      vu_add(vu_mul_u32(vu_shr(a, 32), b), vu_mul_u32(a, vu_shr(b, 32)));
  return vu_add(lo, vu_shl(cross, 32));
}

/// (a & ~mask) | (b & mask): lane-wise select.
inline VU64 vu_blend(VU64 a, VU64 b, VU64 mask) {
  return vu_or(vu_andnot(mask, a), vu_and(mask, b));
}
