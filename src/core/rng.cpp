#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace icsc::core {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits give a uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's multiply-shift with rejection for unbiased bounded integers.
  if (n == 0) return 0;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  double sin_theta = 0.0;
  double cos_theta = 0.0;
#if defined(__GLIBC__)
  // One fused argument reduction for the Box-Muller pair. Every read-noise
  // draw in the analog models funnels through here, so the second trig
  // call is a measurable share of small-MVM cost.
  ::sincos(theta, &sin_theta, &cos_theta);
#else
  sin_theta = std::sin(theta);
  cos_theta = std::cos(theta);
#endif
  cached_normal_ = r * sin_theta;
  has_cached_normal_ = true;
  return r * cos_theta;
}

double Rng::normal(double mu, double sigma) { return mu + sigma * normal(); }

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

int Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double product = uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large lambda.
  const double value = normal(lambda, std::sqrt(lambda));
  return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() { return Rng((*this)() ^ 0xA5A5'5A5A'DEAD'BEEFULL); }

Rng::State Rng::state() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::restore(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace icsc::core
