#include "core/result_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "core/checkpoint.hpp"
#include "core/failpoint.hpp"
#include "core/trace.hpp"

namespace icsc::core {

namespace {

constexpr std::uint32_t kStoreMagic = 0x31545352U;  // "RST1"
// Corrupt size fields must not drive huge allocations during recovery.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 30;

void store_u32(std::uint8_t* at, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) at[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void store_u64(std::uint8_t* at, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) at[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint32_t load_u32(const std::uint8_t* at) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= std::uint32_t{at[i]} << (8 * i);
  return value;
}

std::uint64_t load_u64(const std::uint8_t* at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= std::uint64_t{at[i]} << (8 * i);
  return value;
}

/// Creates `dir` and any missing parents (mkdir -p).
void make_dirs(const std::string& dir) {
  std::string prefix;
  std::size_t at = 0;
  while (at <= dir.size()) {
    const std::size_t slash = dir.find('/', at);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    at = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw Error("core::result_store", "cannot create store directory",
                  prefix + ": " + std::strerror(errno));
    }
  }
}

/// Failpoint-aware full write: loops real short writes (EINTR included),
/// converts injected/real failures into core::Error. A failpoint crash
/// propagates as CrashError.
void write_all(const char* site, int fd, const void* data, std::size_t size,
               const std::string& path) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t written = failpoint::checked_write(site, fd, bytes, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw Error("core::result_store", "write failed",
                  path + ": " + std::strerror(errno));
    }
    bytes += written;
    size -= static_cast<std::size_t>(written);
  }
}

std::vector<std::uint8_t> read_from(int fd, std::uint64_t offset,
                                    const std::string& path) {
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    throw Error("core::result_store", "seek failed",
                path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const ssize_t got = ::read(fd, chunk.data(), chunk.size());
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error("core::result_store", "read failed",
                  path + ": " + std::strerror(errno));
    }
    if (got == 0) break;
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + got);
  }
  return bytes;
}

std::uint64_t file_size(int fd, const std::string& path) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    throw Error("core::result_store", "fstat failed",
                path + ": " + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(st.st_size);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best-effort, matching core/checkpoint
  ::fsync(fd);
  ::close(fd);
}

/// Validates the frame starting at bytes[at]; on success fills the outputs
/// and returns true. `*frame_end` is the offset one past the payload.
bool parse_frame(const std::vector<std::uint8_t>& bytes, std::size_t at,
                 std::uint64_t* fingerprint, std::uint32_t* version,
                 const std::uint8_t** payload, std::uint64_t* payload_size,
                 std::size_t* frame_end) {
  if (bytes.size() - at < ResultStore::kFrameHeaderSize) return false;
  const std::uint8_t* head = bytes.data() + at;
  if (load_u32(head) != kStoreMagic) return false;
  if (crc32(head, ResultStore::kFrameHeaderSize - 4) != load_u32(head + 28)) {
    return false;
  }
  const std::uint64_t size = load_u64(head + 16);
  if (size > kMaxPayloadBytes ||
      bytes.size() - at - ResultStore::kFrameHeaderSize < size) {
    return false;
  }
  const std::uint8_t* body = head + ResultStore::kFrameHeaderSize;
  if (crc32(body, static_cast<std::size_t>(size)) != load_u32(head + 24)) {
    return false;
  }
  *fingerprint = load_u64(head + 8);
  *version = load_u32(head + 4);
  *payload = body;
  *payload_size = size;
  *frame_end = at + ResultStore::kFrameHeaderSize +
               static_cast<std::size_t>(size);
  return true;
}

std::array<std::uint8_t, ResultStore::kFrameHeaderSize> build_header(
    std::uint64_t fingerprint, std::uint32_t schema_version, const void* data,
    std::size_t size) {
  std::array<std::uint8_t, ResultStore::kFrameHeaderSize> header{};
  store_u32(header.data(), kStoreMagic);
  store_u32(header.data() + 4, schema_version);
  store_u64(header.data() + 8, fingerprint);
  store_u64(header.data() + 16, size);
  store_u32(header.data() + 24, crc32(data, size));
  store_u32(header.data() + 28,
            crc32(header.data(), ResultStore::kFrameHeaderSize - 4));
  return header;
}

}  // namespace

ResultStore::ResultStore(ResultStoreConfig config)
    : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw Error("core::result_store", "store directory must be non-empty");
  }
  make_dirs(config_.dir);
  const std::string lock_path = config_.dir + "/store.lock";
  lock_fd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (lock_fd_ < 0) {
    throw Error("core::result_store", "cannot open lock file",
                lock_path + ": " + std::strerror(errno));
  }
  try {
    open_and_recover();
  } catch (...) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    if (log_fd_ >= 0) {
      ::close(log_fd_);
      log_fd_ = -1;
    }
    throw;
  }
}

ResultStore::~ResultStore() {
  if (log_fd_ >= 0) ::close(log_fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void ResultStore::lock_file() {
  while (::flock(lock_fd_, LOCK_EX) != 0) {
    if (errno == EINTR) continue;
    throw Error("core::result_store", "cannot lock store",
                config_.dir + ": " + std::strerror(errno));
  }
}

void ResultStore::unlock_file() { ::flock(lock_fd_, LOCK_UN); }

void ResultStore::open_and_recover() {
  ICSC_TRACE_SPAN("result_store/open");
  const std::string log_path = config_.dir + "/store.log";
  log_fd_ = ::open(log_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (log_fd_ < 0) {
    throw Error("core::result_store", "cannot open store log",
                log_path + ": " + std::strerror(errno));
  }
  lock_file();
  try {
    // A temp file left by a compaction that died pre-rename is garbage.
    ::unlink((log_path + ".tmp").c_str());
    scan_offset_ = 0;
    index_.clear();
    const std::vector<std::uint8_t> bytes = read_from(log_fd_, 0, log_path);
    scan_locked(bytes, 0);
    // Trailing bytes past the last valid frame are a torn tail from a
    // writer that died mid-append: truncate so the file ends on a frame
    // boundary. (Mid-file corrupt regions, which have valid frames after
    // them, were quarantined by the scan and stay in place.)
    if (scan_offset_ < bytes.size()) {
      stats_.torn_tail_bytes += bytes.size() - scan_offset_;
      if (failpoint::checked_ftruncate("result_store/truncate", log_fd_,
                                       static_cast<off_t>(scan_offset_)) !=
          0) {
        throw Error("core::result_store", "cannot truncate torn tail",
                    log_path + ": " + std::strerror(errno));
      }
    }
    stats_.file_bytes = scan_offset_;
  } catch (...) {
    unlock_file();
    throw;
  }
  unlock_file();
}

void ResultStore::scan_locked(const std::vector<std::uint8_t>& bytes,
                              std::uint64_t base_offset) {
  std::size_t cursor = 0;
  std::size_t valid_end = 0;
  while (cursor < bytes.size()) {
    std::uint64_t fingerprint = 0;
    std::uint32_t version = 0;
    const std::uint8_t* payload = nullptr;
    std::uint64_t payload_size = 0;
    std::size_t frame_end = 0;
    if (parse_frame(bytes, cursor, &fingerprint, &version, &payload,
                    &payload_size, &frame_end)) {
      Entry& entry = index_[fingerprint];  // later frames supersede earlier
      entry.schema_version = version;
      entry.payload.assign(payload, payload + payload_size);
      entry.last_use = ++use_tick_;
      cursor = frame_end;
      valid_end = cursor;
      ++stats_.recovered_records;
      continue;
    }
    // Corrupt or torn bytes at `cursor`: resynchronize by searching for
    // the next offset that parses as a complete valid frame. Found one ->
    // the gap was a corrupt mid-file region (bit-flip, interrupted
    // rollback): quarantine it -- count it, never index it -- and resume.
    // Not found -> everything from `cursor` on is the torn tail.
    std::size_t next = cursor + 1;
    bool resynced = false;
    for (; next + kFrameHeaderSize <= bytes.size(); ++next) {
      if (load_u32(bytes.data() + next) != kStoreMagic) continue;
      std::size_t probe_end = 0;
      if (parse_frame(bytes, next, &fingerprint, &version, &payload,
                      &payload_size, &probe_end)) {
        resynced = true;
        break;
      }
    }
    if (!resynced) break;  // torn tail; caller decides whether to truncate
    ++stats_.quarantined_regions;
    stats_.quarantined_bytes += next - cursor;
    ICSC_TRACE_COUNT("result_store.quarantined", 1);
    cursor = next;
  }
  scan_offset_ = base_offset + valid_end;
  stats_.live_records = index_.size();
}

std::optional<std::vector<std::uint8_t>> ResultStore::lookup(
    std::uint64_t fingerprint, std::uint32_t schema_version) {
  ICSC_TRACE_SPAN("result_store/lookup");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++stats_.misses;
    ICSC_TRACE_COUNT("result_store.misses", 1);
    return std::nullopt;
  }
  if (it->second.schema_version != schema_version) {
    // Version-mismatched records are quarantined at read time: they stay
    // on disk for readers of their own schema, but are never deserialized
    // by this one.
    ++stats_.version_mismatches;
    ++stats_.misses;
    ICSC_TRACE_COUNT("result_store.version_mismatches", 1);
    ICSC_TRACE_COUNT("result_store.misses", 1);
    return std::nullopt;
  }
  it->second.last_use = ++use_tick_;
  ++stats_.hits;
  ICSC_TRACE_COUNT("result_store.hits", 1);
  return it->second.payload;
}

void ResultStore::put(std::uint64_t fingerprint, std::uint32_t schema_version,
                      const void* data, std::size_t size) {
  ICSC_TRACE_SPAN("result_store/put");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (sealed_) {
    throw Error("core::result_store", "store sealed after append failure",
                config_.dir);
  }
  const auto it = index_.find(fingerprint);
  if (it != index_.end() && it->second.schema_version == schema_version &&
      it->second.payload.size() == size &&
      std::memcmp(it->second.payload.data(), data, size) == 0) {
    return;  // identical record already durable
  }
  lock_file();
  try {
    append_frame_locked(fingerprint, schema_version, data, size);
    const bool over_bytes =
        config_.max_bytes > 0 && stats_.file_bytes > config_.max_bytes;
    const bool over_records =
        config_.max_records > 0 && index_.size() > config_.max_records;
    if (over_records || over_bytes) {
      // Compacting an all-live log cannot shrink it; only rewrite when
      // there is dead weight to drop or records to evict.
      std::uint64_t live_bytes = 0;
      for (const auto& [fp, entry] : index_) {
        live_bytes += kFrameHeaderSize + entry.payload.size();
      }
      if (over_records || live_bytes < stats_.file_bytes) compact_locked();
    }
  } catch (...) {
    unlock_file();
    throw;
  }
  unlock_file();
}

void ResultStore::append_frame_locked(std::uint64_t fingerprint,
                                      std::uint32_t schema_version,
                                      const void* data, std::size_t size) {
  const std::string log_path = config_.dir + "/store.log";
  // Another process may have appended (or compacted) since our last scan:
  // fold its frames in first so this handle's view stays a superset and
  // the failure rollback below truncates to the true pre-append boundary.
  refresh_locked();
  const std::uint64_t before = file_size(log_fd_, log_path);
  const auto header = build_header(fingerprint, schema_version, data, size);
  try {
    write_all("result_store/write", log_fd_, header.data(), header.size(),
              log_path);
    write_all("result_store/write", log_fd_, data, size, log_path);
    if (failpoint::checked_fsync("result_store/fsync", log_fd_) != 0) {
      throw Error("core::result_store", "fsync failed",
                  log_path + ": " + std::strerror(errno));
    }
  } catch (const failpoint::CrashError&) {
    // Simulated kill -9 mid-append: the process is gone, so no rollback
    // happens -- exactly the torn tail the next open must recover from.
    // This handle is dead either way.
    sealed_ = true;
    stats_.sealed = true;
    ++stats_.failed_appends;
    throw;
  } catch (...) {
    // The frame may be partially on disk. Roll the log back to the
    // pre-append boundary so later appends cannot interleave into a torn
    // frame; if even that fails, seal the store (lookups keep serving the
    // in-memory index, puts are refused).
    ++stats_.failed_appends;
    ICSC_TRACE_COUNT("result_store.failed_appends", 1);
    bool rolled_back = false;
    try {
      rolled_back = failpoint::checked_ftruncate(
                        "result_store/truncate", log_fd_,
                        static_cast<off_t>(before)) == 0;
    } catch (const failpoint::CrashError&) {
      rolled_back = false;
    }
    if (!rolled_back) {
      sealed_ = true;
      stats_.sealed = true;
    }
    throw;
  }
  Entry& entry = index_[fingerprint];
  entry.schema_version = schema_version;
  entry.payload.assign(static_cast<const std::uint8_t*>(data),
                       static_cast<const std::uint8_t*>(data) + size);
  entry.last_use = ++use_tick_;
  scan_offset_ = before + kFrameHeaderSize + size;
  stats_.file_bytes = scan_offset_;
  stats_.live_records = index_.size();
  ++stats_.appends;
  ICSC_TRACE_COUNT("result_store.appends", 1);
}

void ResultStore::refresh() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lock_file();
  try {
    refresh_locked();
  } catch (...) {
    unlock_file();
    throw;
  }
  unlock_file();
}

void ResultStore::refresh_locked() {
  const std::string log_path = config_.dir + "/store.log";
  // Another process's compaction atomically replaced the log file; our fd
  // still points at the old inode. Reopen and rescan from scratch (the
  // compactor folded every durable frame in before rewriting).
  struct ::stat ours{}, current{};
  if (::fstat(log_fd_, &ours) == 0 &&
      ::stat(log_path.c_str(), &current) == 0 &&
      (ours.st_ino != current.st_ino || ours.st_dev != current.st_dev)) {
    const int fd = ::open(log_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      throw Error("core::result_store", "cannot reopen compacted log",
                  log_path + ": " + std::strerror(errno));
    }
    ::close(log_fd_);
    log_fd_ = fd;
    scan_offset_ = 0;
    index_.clear();
  }
  const std::uint64_t end = file_size(log_fd_, log_path);
  if (end > scan_offset_) {
    const std::vector<std::uint8_t> tail =
        read_from(log_fd_, scan_offset_, log_path);
    const std::uint64_t base = scan_offset_;
    scan_locked(tail, base);
    // Trailing garbage can only be the torn tail of a writer that died
    // while holding the lock we now hold: truncate it away so our next
    // append lands on a frame boundary.
    if (scan_offset_ < end) {
      stats_.torn_tail_bytes += end - scan_offset_;
      if (failpoint::checked_ftruncate("result_store/truncate", log_fd_,
                                       static_cast<off_t>(scan_offset_)) !=
          0) {
        throw Error("core::result_store", "cannot truncate torn tail",
                    log_path + ": " + std::strerror(errno));
      }
    }
  }
  stats_.file_bytes = scan_offset_;
}

void ResultStore::compact() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lock_file();
  try {
    refresh_locked();
    compact_locked();
  } catch (...) {
    unlock_file();
    throw;
  }
  unlock_file();
}

void ResultStore::compact_locked() {
  ICSC_TRACE_SPAN("result_store/compact");
  const std::string log_path = config_.dir + "/store.log";
  const std::string tmp_path = log_path + ".tmp";

  // Eviction: keep the max_records most-recently-used entries (insertion
  // counts as a use, so never-read records age out first among peers).
  std::vector<std::uint64_t> victims;
  if (config_.max_records > 0 && index_.size() > config_.max_records) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> by_use;  // (tick, fp)
    by_use.reserve(index_.size());
    for (const auto& [fp, entry] : index_) {
      by_use.emplace_back(entry.last_use, fp);
    }
    std::sort(by_use.begin(), by_use.end());
    const std::size_t drop = index_.size() - config_.max_records;
    for (std::size_t i = 0; i < drop; ++i) victims.push_back(by_use[i].second);
  }
  for (const std::uint64_t fp : victims) {
    index_.erase(fp);
    ++stats_.evicted;
    ICSC_TRACE_COUNT("result_store.evicted", 1);
  }

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error("core::result_store", "cannot create compaction temp file",
                tmp_path + ": " + std::strerror(errno));
  }
  std::uint64_t written = 0;
  try {
    for (const auto& [fp, entry] : index_) {
      const auto header = build_header(fp, entry.schema_version,
                                       entry.payload.data(),
                                       entry.payload.size());
      write_all("result_store/write", fd, header.data(), header.size(),
                tmp_path);
      write_all("result_store/write", fd, entry.payload.data(),
                entry.payload.size(), tmp_path);
      written += kFrameHeaderSize + entry.payload.size();
    }
    if (failpoint::checked_fsync("result_store/fsync", fd) != 0) {
      throw Error("core::result_store", "compaction fsync failed",
                  tmp_path + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp_path.c_str());  // no-op after a simulated crash: the tmp
                                 // file is garbage either way, cleaned at
                                 // the next open
    throw;
  }
  ::close(fd);
  if (failpoint::checked_rename("result_store/rename", tmp_path.c_str(),
                                log_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    throw Error("core::result_store", "compaction rename failed",
                log_path + ": " + std::strerror(errno));
  }
  fsync_dir(config_.dir);
  // Our append fd still points at the replaced inode: reopen.
  const int reopened =
      ::open(log_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (reopened < 0) {
    throw Error("core::result_store", "cannot reopen compacted log",
                log_path + ": " + std::strerror(errno));
  }
  ::close(log_fd_);
  log_fd_ = reopened;
  scan_offset_ = written;
  stats_.file_bytes = written;
  stats_.live_records = index_.size();
  ++stats_.compactions;
  ICSC_TRACE_COUNT("result_store.compactions", 1);
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

ResultStoreStats ResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace icsc::core
