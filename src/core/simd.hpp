// Runtime-dispatched SIMD primitives for the hot kernels.
//
// Design rules (ROADMAP item 2):
//   - One binary runs everywhere: the ISA is picked at runtime from CPUID
//     (x86) or the architecture (aarch64), never at configure time. Each
//     ISA variant lives in its own translation unit compiled with the
//     matching -m flags, so the portable TUs never emit illegal opcodes.
//   - The scalar fallback is always compiled and is the equivalence
//     oracle: every vector path must produce bit-identical results.
//     Floating-point primitives therefore perform exactly the scalar
//     operation sequence per output element (separate IEEE multiply and
//     add, no FMA contraction, no cross-element reassociation) — lanes
//     only ever span *independent* accumulators. Integer primitives are
//     exact mod 2^64 by construction.
//   - `ICSC_SIMD=scalar|sse4|avx2|neon` overrides the choice, mirroring
//     ICSC_THREADS. Unsupported or unknown requests fall back to the best
//     ISA the CPU supports (never a crash, never an illegal instruction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace icsc::core::simd {

/// Instruction sets the dispatcher knows about, weakest first.
enum class Isa : int {
  kScalar = 0,
  kSse4 = 1,  // x86 SSE4.2 (2 x 64-bit lanes)
  kAvx2 = 2,  // x86 AVX2   (4 x 64-bit lanes)
  kNeon = 3,  // aarch64 Advanced SIMD (2 x 64-bit lanes)
};

/// Short lowercase name ("scalar", "sse4", "avx2", "neon") — the same
/// tokens ICSC_SIMD accepts.
const char* isa_name(Isa isa);

/// True when this CPU (and this build) can execute `isa`.
bool isa_supported(Isa isa);

/// Best ISA this CPU supports, ignoring any override.
Isa detected_isa();

/// ISA the primitives currently dispatch to. First use resolves the
/// ICSC_SIMD override (falling back to detected_isa() on unknown or
/// unsupported values); thereafter it only changes via set_active_isa.
Isa active_isa();

/// Requests `isa`; unsupported requests clamp to detected_isa(). Returns
/// the ISA actually now active. Used by the equivalence tests to sweep
/// every supported path.
Isa set_active_isa(Isa isa);

/// Pure resolution helper: the ISA that a given ICSC_SIMD value selects
/// ("auto"/unknown/unsupported -> detected_isa()). Exposed so the env
/// override is unit-testable without spawning processes.
Isa resolve_isa(const char* env_value);

/// Space-separated feature string of this CPU ("sse4.2 avx2 ..."), for the
/// bench scoreboard JSON.
std::string cpu_features();

// ---------------------------------------------------------------------------
// Floating-point panel primitives (conv / htconv / crossbar MVM).
// ---------------------------------------------------------------------------

/// acc[i] += w * double(x[i]) for i in [0, n). One widening convert, one
/// multiply, one add per element — the exact scalar sequence of the conv
/// row-panel accumulation, applied to n independent accumulators.
void axpy_f32_f64(double w, const float* x, double* acc, std::size_t n);

/// acc[i] += (a * x[i]) * b for i in [0, n). Matches the crossbar bitline
/// accumulation `acc += dac * g * attenuation` (left-associative).
void scaled_axpy_f64(double a, double b, const double* x, double* acc,
                     std::size_t n);

/// Whole-panel accumulation: acc[c] += sum over taps t (ascending) of
/// weights[t] * double(rows[t][c]), one IEEE multiply + add per tap per
/// column -- the same per-column sequence as `taps` successive
/// axpy_f32_f64 calls, but with the accumulator tiled into registers
/// across the tap loop so it is loaded/stored once per column tile
/// instead of once per tap.
void tap_panel_axpy_f32_f64(const float* const* rows, const double* weights,
                            std::size_t taps, double* acc, std::size_t n);

/// In-place fixed-point quantisation of a float buffer: each element is
/// scaled by 2^frac_bits, rounded half away from zero, clamped to the
/// signed (int_bits + frac_bits)-bit raw range, and rescaled — the exact
/// operation sequence of QuantConfig's per-element quantiser (double
/// arithmetic, one narrowing conversion at the end), applied lane-wise.
/// Every output-activation quantisation pass funnels through this.
void quantize_fixed_f32(float* data, std::size_t n, int int_bits,
                        int frac_bits);

// ---------------------------------------------------------------------------
// Quantised conv tap primitives (approximate-arithmetic datapath).
// ---------------------------------------------------------------------------

/// acc[i] = add(acc[i], int64(x[i]) * w): exact multiply, with the LOA
/// approximate adder when loa_bits > 0 (low `loa_bits` OR'd, high bits
/// added carry-free) and the exact adder otherwise. Wrap-around follows
/// two's-complement mod 2^64, matching approx::loa_add exactly.
void qtap_exact(const std::int32_t* x, std::int32_t w, int loa_bits,
                std::int64_t* acc, std::size_t n);

/// acc[i] = add(acc[i], truncated_mul(x[i], w, trunc_bits)): the truncated
/// array multiplier (partial products below bit `trunc_bits` dropped,
/// sign-magnitude), combined with the exact or LOA adder as above.
/// Bit-identical to approx::truncated_mul + approx::loa_add for every
/// input, including INT32_MIN and wrap-around.
void qtap_truncated(const std::int32_t* x, std::int32_t w, int trunc_bits,
                    int loa_bits, std::int64_t* acc, std::size_t n);

// ---------------------------------------------------------------------------
// Histogram / bit-parallel genomics primitives.
// ---------------------------------------------------------------------------

/// Sum over i of |a[i] - b[i]| for uint16 histograms, mod 2^32 (identical
/// wrap-around to the scalar uint32 accumulation). The q-gram screen of
/// the DNA clustering pass spends most of its time here.
std::uint32_t l1_distance_u16(const std::uint16_t* a, const std::uint16_t* b,
                              std::size_t n);

/// Banded Myers/Hyyro bit-parallel edit distance of one pattern against
/// `count` texts, lanes batched across texts. `peq` is the pattern's
/// match-mask table, laid out [block][symbol] with 4 symbols per block
/// (64 pattern positions per block); `pattern_len` is the pattern length.
/// Texts are symbol codes in [0, 4). out[i] is exactly what the scalar
/// banded kernel returns: the edit distance when <= band, else band + 1.
void myers_banded_batch(const std::uint64_t* peq, std::size_t blocks,
                        std::size_t pattern_len,
                        const std::uint8_t* const* texts,
                        const std::size_t* text_lens, std::size_t count,
                        int band, int* out);

}  // namespace icsc::core::simd
