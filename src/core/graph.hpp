// Compressed-sparse-row graphs and generators for the Sec. III SPARTA
// experiments (graph-processing kernels: BFS, SpMV, PageRank).
//
// SPARTA was "primarily tested on graph processing kernels, to demonstrate
// its ability to generate efficient accelerators for irregular applications".
// RMAT graphs give the skewed degree distributions that make those kernels
// irregular; uniform graphs are the easy baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace icsc::core {

/// Directed graph in CSR form. Vertices are [0, num_vertices).
struct CsrGraph {
  std::vector<std::uint32_t> row_offsets;  // size num_vertices + 1
  std::vector<std::uint32_t> column_indices;
  std::vector<float> edge_weights;  // parallel to column_indices

  std::size_t num_vertices() const {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
  std::size_t num_edges() const { return column_indices.size(); }
  std::uint32_t degree(std::uint32_t v) const {
    return row_offsets[v + 1] - row_offsets[v];
  }
};

/// Builds a CSR graph from an edge list (duplicates kept, self-loops kept).
///
/// Error contract: throws icsc::core::Error when any edge endpoint is not
/// in [0, num_vertices) -- out-of-range vertices would otherwise corrupt
/// the row-offset table and send every downstream kernel out of bounds.
CsrGraph csr_from_edges(std::size_t num_vertices,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
                        Rng* weight_rng = nullptr);

/// Erdos-Renyi-style uniform random graph with the given average degree.
CsrGraph make_uniform_graph(std::size_t num_vertices, double avg_degree,
                            std::uint64_t seed);

/// RMAT generator (Chakrabarti et al.) with the classic (0.57, 0.19, 0.19,
/// 0.05) partition probabilities: power-law degrees, community structure.
CsrGraph make_rmat_graph(int scale, double avg_degree, std::uint64_t seed);

/// Reference kernels the accelerators are validated against.
/// BFS levels from a root (-1 for unreachable).
std::vector<std::int32_t> bfs_levels(const CsrGraph& g, std::uint32_t root);

/// y = A x over the weighted adjacency (SpMV). Throws icsc::core::Error
/// when x.size() != g.num_vertices().
std::vector<float> spmv(const CsrGraph& g, const std::vector<float>& x);

/// PageRank with damping d, fixed iteration count.
std::vector<float> pagerank(const CsrGraph& g, int iterations, float damping);

}  // namespace icsc::core
