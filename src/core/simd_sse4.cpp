// SSE4.2 variant of the SIMD primitives (2 x 64-bit lanes). This TU is
// the only one compiled with -msse4.2; the dispatcher in simd.cpp only
// enters it on CPUs that support SSE4.2.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd_dispatch.hpp"
#include "core/simd_scalar.hpp"

#define ICSC_SIMD_VARIANT 1

namespace icsc::core::simd::sse4 {

#include "core/simd_vec.inl"
#include "core/simd_kernels.inl"

}  // namespace icsc::core::simd::sse4
