#include "core/cancel.hpp"

#include <limits>

namespace icsc::core {

Deadline Deadline::after(double seconds) {
  return at(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds)));
}

Deadline Deadline::at(std::chrono::steady_clock::time_point when) {
  Deadline deadline;
  deadline.when_ = when;
  deadline.finite_ = true;
  return deadline;
}

Deadline Deadline::sooner(const Deadline& a, const Deadline& b) {
  if (!a.finite_) return b;
  if (!b.finite_) return a;
  return a.when_ <= b.when_ ? a : b;
}

bool Deadline::expired() const {
  return finite_ && std::chrono::steady_clock::now() >= when_;
}

double Deadline::remaining_seconds() const {
  if (!finite_) return std::numeric_limits<double>::infinity();
  const double remaining =
      std::chrono::duration<double>(when_ - std::chrono::steady_clock::now())
          .count();
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace icsc::core
