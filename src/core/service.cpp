#include "core/service.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "core/trace.hpp"

namespace icsc::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Minimum DRR debit: a zero-cost job must still consume schedule share or
// a tenant flooding free jobs would monopolise the dispatchers.
constexpr double kMinDrrCost = 1e-3;

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
    case JobState::kWatchdogKilled: return "watchdog_killed";
  }
  return "?";
}

const char* degrade_tier_name(DegradeTier tier) {
  switch (tier) {
    case DegradeTier::kFull: return "full";
    case DegradeTier::kReduced: return "reduced";
    case DegradeTier::kMinimal: return "minimal";
  }
  return "?";
}

const char* priority_class_name(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive: return "interactive";
    case PriorityClass::kBatch: return "batch";
    case PriorityClass::kBackground: return "background";
  }
  return "?";
}

const char* service_event_kind_name(ServiceEventKind kind) {
  switch (kind) {
    case ServiceEventKind::kShedExpired: return "shed_expired";
    case ServiceEventKind::kWatchdogKill: return "watchdog_kill";
    case ServiceEventKind::kCancelled: return "cancelled";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Internal state

struct CampaignService::Job {
  JobId id = 0;
  std::string tenant;
  /// The owning Tenant record, resolved once at admission. Tenant objects
  /// are heap-allocated and never removed, so the pointer is stable; it
  /// keeps the per-job hot path (claim, finalise) off the string-keyed
  /// tenant map.
  Tenant* home = nullptr;
  /// This job's index in running_jobs_ while it is on the running list
  /// (guarded by the service mutex); lets finalise swap-pop in O(1).
  std::size_t running_slot = 0;
  JobState state = JobState::kQueued;
  DegradeTier tier = DegradeTier::kFull;
  PriorityClass priority = PriorityClass::kBatch;
  std::string coalesce_key;      // empty = never coalesced
  std::size_t batch_size = 0;    // live group size once running (1 = solo)
  bool aged = false;             // promoted to interactive by the aging bound
  double cost = 0.0;      // caller's estimate, seconds
  double drr_cost = kMinDrrCost;
  Deadline deadline;
  CancelToken token;
  std::function<void(JobContext&)> body;
  bool cancel_requested = false;
  bool watchdog_flagged = false;
  bool hit_deadline = false;
  std::string checkpoint_path;  // guarded by the service mutex
  std::string error;
  Clock::time_point submit_time{};
  Clock::time_point start_time{};
  Clock::time_point end_time{};
  bool started = false;
  bool ended = false;
  std::atomic<std::uint64_t> heartbeats{0};
  // Watchdog bookkeeping (guarded by the service mutex).
  std::uint64_t watchdog_seen = 0;
  Clock::time_point watchdog_progress{};
};

/// Fixed-capacity ring of the most recent sojourn samples. Push is O(1)
/// (overwrite the oldest once full) and the storage grows on demand up to
/// the capacity, so idle tenants never pay the full allocation. The old
/// bounded-vector scheme front-erased half the buffer (O(n) under the
/// service mutex) and discarded the oldest history wholesale, which biased
/// p99 toward whatever burst followed an eviction.
struct SojournRing {
  std::size_t capacity = 1;
  std::vector<double> samples;  // grows to capacity, then wraps
  std::size_t next = 0;         // overwrite cursor once full

  void push(double value) {
    if (samples.size() < capacity) {
      samples.push_back(value);
      return;
    }
    samples[next] = value;
    next = (next + 1) % capacity;
  }

  /// Linearises oldest -> newest into `out` (core::percentile consumers
  /// keep working on the snapshot unchanged).
  void snapshot(std::vector<double>* out) const {
    out->clear();
    out->reserve(samples.size());
    for (std::size_t k = 0; k < samples.size(); ++k) {
      out->push_back(samples[(next + k) % samples.size()]);
    }
  }
};

struct CampaignService::Tenant {
  std::string name;
  TenantConfig config;
  /// Per-priority-class FIFO queues (may hold finalised corpses). Strict
  /// priority scans kInteractive first; DRR fairness applies within a
  /// class.
  std::array<std::deque<std::shared_ptr<Job>>, kNumPriorityClasses> queues;
  std::size_t queued = 0;                  // jobs across `queues` still kQueued
  double queued_cost = 0.0;                // sum of their cost estimates
  double deficit = 0.0;                    // DRR credit, cost-seconds
  TenantStats stats;
  SojournRing sojourns;
};

// ---------------------------------------------------------------------------
// JobContext

void JobContext::heartbeat() {
  ICSC_TRACE_COUNT("service.heartbeats", 1);
  if (heartbeats_ != nullptr) {
    heartbeats_->fetch_add(1, std::memory_order_relaxed);
  }
}

std::string JobContext::checkpoint_path(const std::string& leaf) const {
  if (service_ == nullptr || service_->config().scratch_dir.empty()) return "";
  return service_->config().scratch_dir + "/job_" + std::to_string(id_) + "_" +
         leaf;
}

void JobContext::note_checkpoint(const std::string& path) {
  if (service_ != nullptr) service_->note_checkpoint(id_, path);
}

// ---------------------------------------------------------------------------
// Construction / teardown

CampaignService::CampaignService(ServiceConfig config,
                                 std::map<std::string, TenantConfig> tenants)
    : config_(std::move(config)), epoch_(Clock::now()) {
  if (config_.workers == 0) {
    throw Error("core::service", "workers must be >= 1");
  }
  if (config_.max_queue_depth == 0) {
    throw Error("core::service", "max_queue_depth must be >= 1");
  }
  if (config_.max_backlog_seconds < 0.0) {
    throw Error("core::service", "max_backlog_seconds must be >= 0");
  }
  if (config_.degrade_reduced_at < 0.0 || config_.degrade_minimal_at < 0.0 ||
      config_.degrade_reduced_at > config_.degrade_minimal_at) {
    throw Error("core::service",
                "degrade thresholds must satisfy 0 <= reduced <= minimal");
  }
  if (config_.watchdog_timeout_seconds < 0.0 ||
      config_.watchdog_poll_seconds <= 0.0) {
    throw Error("core::service", "invalid watchdog configuration");
  }
  if (config_.drr_quantum_seconds <= 0.0) {
    throw Error("core::service", "drr_quantum_seconds must be > 0");
  }
  if (config_.coalesce_max_batch == 0) {
    throw Error("core::service", "coalesce_max_batch must be >= 1");
  }
  if (config_.coalesce_max_wait_seconds < 0.0) {
    throw Error("core::service", "coalesce_max_wait_seconds must be >= 0");
  }
  if (config_.priority_aging_seconds < 0.0) {
    throw Error("core::service", "priority_aging_seconds must be >= 0");
  }
  if (config_.sojourn_capacity == 0) {
    throw Error("core::service", "sojourn_capacity must be >= 1");
  }
  for (auto& [name, tenant_config] : tenants) {
    if (name.empty()) {
      throw Error("core::service", "tenant name must be non-empty");
    }
    if (tenant_config.weight < 1) {
      throw Error("core::service", "tenant weight must be >= 1", name);
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->config = tenant_config;
    tenant->sojourns.capacity = config_.sojourn_capacity;
    tenants_.emplace(name, std::move(tenant));
    tenant_order_.push_back(name);
  }
  if (!config_.journal_path.empty()) {
    journal_ = std::make_unique<RunJournal>(config_.journal_path, kJournalKind);
  }
  dispatchers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  }
  if (config_.watchdog_timeout_seconds > 0.0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

CampaignService::~CampaignService() { shutdown(); }

void CampaignService::shutdown() {
  std::vector<ServiceEvent> events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stopped_) {
      stopped_ = true;
      // Cancel everything still queued; running bodies get a cooperative
      // stop request and are joined below.
      for (auto& [name, tenant] : tenants_) {
        for (auto& queue : tenant->queues) {
          for (auto& job : queue) {
            if (job->state != JobState::kQueued) continue;
            job->cancel_requested = true;
            job->token.request_stop();
            events.push_back(make_event(ServiceEventKind::kCancelled, *job));
            finalize_locked(job, JobState::kCancelled);
          }
        }
      }
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) job->token.request_stop();
      }
    }
    work_cv_.notify_all();
    watchdog_cv_.notify_all();
    batch_cv_.notify_all();
  }
  append_events(events);
  // Join outside the lock; guard against double-join on repeated calls.
  for (auto& thread : dispatchers_) {
    if (thread.joinable()) thread.join();
  }
  dispatchers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
}

// ---------------------------------------------------------------------------
// Admission

CampaignService::Tenant& CampaignService::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->sojourns.capacity = config_.sojourn_capacity;
  Tenant& ref = *tenant;
  tenants_.emplace(name, std::move(tenant));
  tenant_order_.push_back(name);
  return ref;
}

double CampaignService::backlog_seconds_locked() const {
  double total = 0.0;
  for (const auto& [name, tenant] : tenants_) total += tenant->queued_cost;
  return total / static_cast<double>(config_.workers);
}

double CampaignService::tenant_drain_rate_locked(const Tenant& tenant) const {
  // Cost-seconds per second DRR grants this tenant: its weight share of
  // the workers, over the weights of every tenant currently contending
  // (queued work, this tenant included). Dividing queued cost by *all*
  // workers -- the old retry-after arithmetic -- pretended the tenant owned
  // the whole dispatcher pool and underestimated the wait whenever anyone
  // else was queued.
  int active_weight = 0;
  for (const auto& [name, other] : tenants_) {
    if (other->queued > 0 || other.get() == &tenant) {
      active_weight += other->config.weight;
    }
  }
  if (active_weight <= 0) active_weight = tenant.config.weight;
  const double share = static_cast<double>(tenant.config.weight) /
                       static_cast<double>(active_weight);
  return static_cast<double>(config_.workers) * share;
}

SubmitOutcome CampaignService::submit(JobRequest request) {
  if (!request.body) {
    throw Error("core::service", "job has no body", request.tenant);
  }
  if (request.tenant.empty()) {
    throw Error("core::service", "tenant name must be non-empty");
  }
  const double cost = std::max(0.0, request.cost_estimate_seconds);

  SubmitOutcome outcome;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Tenant& tenant = tenant_locked(request.tenant);
    ++totals_.submitted;
    ++tenant.stats.submitted;

    const auto reject = [&](const char* reason, double retry_after) {
      ++totals_.rejected;
      ++tenant.stats.rejected;
      ICSC_TRACE_COUNT("service.rejected", 1);
      outcome.admitted = false;
      outcome.reason = reason;
      outcome.retry_after_seconds = retry_after;
    };

    const double backlog = backlog_seconds_locked();
    const double mean_cost =
        queued_ > 0 ? backlog * static_cast<double>(config_.workers) /
                          static_cast<double>(queued_)
                    : std::max(cost, kMinDrrCost);
    if (stopped_) {
      reject("shutdown", 0.0);
    } else if (request.deadline.finite() && request.deadline.expired()) {
      reject("expired", 0.0);
    } else if (tenant.config.max_queued > 0 &&
               tenant.queued >= tenant.config.max_queued) {
      // Hint: time for this tenant's queue to drain at its DRR fair-share
      // rate, not at the full worker pool it does not own.
      reject("tenant_quota",
             std::max(kMinDrrCost,
                      tenant.queued_cost / tenant_drain_rate_locked(tenant)));
    } else if (queued_ >= config_.max_queue_depth) {
      // Hint: expected time for one queue slot to free up.
      reject("queue_full",
             std::max(kMinDrrCost,
                      mean_cost / static_cast<double>(config_.workers)));
    } else if (config_.max_backlog_seconds > 0.0 &&
               backlog + cost / static_cast<double>(config_.workers) >
                   config_.max_backlog_seconds) {
      reject("backlog", std::max(kMinDrrCost,
                                 backlog + cost /
                                     static_cast<double>(config_.workers) -
                                     config_.max_backlog_seconds));
    } else {
      // Admit; assign the degradation tier from current pressure.
      DegradeTier tier = DegradeTier::kFull;
      if (request.allow_degrade) {
        const double fill =
            static_cast<double>(queued_ + 1) /
            static_cast<double>(config_.max_queue_depth);
        double pressure = fill;
        if (config_.max_backlog_seconds > 0.0) {
          pressure = std::max(
              pressure, backlog / config_.max_backlog_seconds);
        }
        if (pressure >= config_.degrade_minimal_at) {
          tier = DegradeTier::kMinimal;
        } else if (pressure >= config_.degrade_reduced_at) {
          tier = DegradeTier::kReduced;
        }
      }
      auto job = std::make_shared<Job>();
      job->id = next_id_++;
      job->tenant = request.tenant;
      job->home = &tenant;
      job->tier = tier;
      job->priority = request.priority;
      job->coalesce_key = std::move(request.coalesce_key);
      job->cost = cost;
      job->drr_cost = std::max(kMinDrrCost, cost);
      job->deadline = request.deadline;
      job->token = CancelToken(request.deadline);
      job->body = std::move(request.body);
      job->submit_time = Clock::now();
      jobs_.emplace(job->id, job);
      tenant.queues[static_cast<std::size_t>(job->priority)].push_back(job);
      ++tenant.queued;
      tenant.queued_cost += cost;
      ++queued_;
      peak_queue_depth_ = std::max(peak_queue_depth_, queued_);
      ++totals_.admitted;
      ++tenant.stats.admitted;
      if (tier != DegradeTier::kFull) {
        ++totals_.degraded;
        ++tenant.stats.degraded;
        ICSC_TRACE_COUNT("service.degraded", 1);
      }
      ICSC_TRACE_COUNT("service.admitted", 1);
      ICSC_TRACE_GAUGE("service/queue_depth", static_cast<double>(queued_));
      outcome.admitted = true;
      outcome.id = job->id;
      outcome.tier = tier;
      work_cv_.notify_one();
      // A batching-window leader may be parked waiting for exactly this
      // arrival; it waits on its own cv so the notify_one() above still
      // reaches an idle dispatcher.
      if (!job->coalesce_key.empty() && batch_waiters_ > 0) {
        batch_cv_.notify_all();
      }
    }
  }
  return outcome;
}

JobId CampaignService::submit_or_throw(JobRequest request) {
  const SubmitOutcome outcome = submit(std::move(request));
  if (!outcome.admitted) {
    throw Overloaded(outcome.reason, outcome.retry_after_seconds);
  }
  return outcome.id;
}

// ---------------------------------------------------------------------------
// Scheduling (strict priority across classes, deficit round robin within)

void CampaignService::promote_aged_locked() {
  if (config_.priority_aging_seconds <= 0.0) return;
  const auto now = Clock::now();
  for (auto& [name, tenant] : tenants_) {
    auto& interactive =
        tenant->queues[static_cast<std::size_t>(PriorityClass::kInteractive)];
    for (std::size_t cls = 1; cls < kNumPriorityClasses; ++cls) {
      auto& queue = tenant->queues[cls];
      // FIFO order means waits are monotone front-to-back: once the head
      // is young enough, the rest is too. Promoted jobs go to the *front*
      // of the interactive band (preserving their relative order), which
      // gives the aging bound teeth: the next dequeue serves them.
      std::vector<std::shared_ptr<Job>> promoted;
      while (!queue.empty()) {
        const std::shared_ptr<Job>& head = queue.front();
        if (head->state != JobState::kQueued) {
          queue.pop_front();  // corpse
          continue;
        }
        if (seconds_between(head->submit_time, now) <
            config_.priority_aging_seconds) {
          break;
        }
        promoted.push_back(head);
        queue.pop_front();
      }
      for (auto it = promoted.rbegin(); it != promoted.rend(); ++it) {
        (*it)->aged = true;
        ++totals_.aged_promotions;
        ++tenant->stats.aged;
        ICSC_TRACE_COUNT("service.aged", 1);
        interactive.push_front(*it);
      }
    }
  }
}

std::shared_ptr<CampaignService::Job> CampaignService::pick_job_locked() {
  if (queued_ == 0) return nullptr;
  promote_aged_locked();
  const std::size_t n = tenant_order_.size();
  // Idle tenants (nothing queued in any class) forfeit banked credit.
  for (auto& [name, tenant] : tenants_) {
    if (tenant->queued == 0) tenant->deficit = 0.0;
  }
  // Strict priority: drain every interactive job before looking at batch,
  // and batch before background. DRR tenant fairness applies within the
  // class being served; the credit loop only credits tenants with queued
  // work in that class, so a background-only tenant cannot bank unbounded
  // deficit while interactive traffic is being served.
  for (std::size_t cls = 0; cls < kNumPriorityClasses; ++cls) {
    for (;;) {
      bool any = false;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (drr_cursor_ + k) % n;
        Tenant& tenant = *tenants_.at(tenant_order_[idx]);
        auto& queue = tenant.queues[cls];
        while (!queue.empty() &&
               queue.front()->state != JobState::kQueued) {
          queue.pop_front();  // corpse
        }
        if (queue.empty()) continue;
        any = true;
        std::shared_ptr<Job>& head = queue.front();
        if (tenant.deficit + 1e-12 >= head->drr_cost) {
          tenant.deficit = std::max(0.0, tenant.deficit - head->drr_cost);
          std::shared_ptr<Job> job = std::move(head);  // no refcount round trip
          queue.pop_front();
          drr_cursor_ = idx;  // keep serving this tenant while credit lasts
          return job;
        }
      }
      if (!any) break;  // class empty: fall through to the next one
      // No tenant with work in this class had enough credit for its
      // head-of-line job: credit one quantum per weight unit and retry.
      // Deficits grow without bound while the class is non-empty, so this
      // loop terminates.
      for (std::size_t k = 0; k < n; ++k) {
        Tenant& tenant = *tenants_.at(tenant_order_[k]);
        auto& queue = tenant.queues[cls];
        while (!queue.empty() &&
               queue.front()->state != JobState::kQueued) {
          queue.pop_front();
        }
        if (!queue.empty()) {
          tenant.deficit +=
              config_.drr_quantum_seconds * tenant.config.weight;
        }
      }
    }
  }
  return nullptr;
}

void CampaignService::dispatcher_main() {
  for (;;) {
    std::vector<std::shared_ptr<Job>> group;
    std::vector<ServiceEvent> events;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopped_ || queued_ > 0; });
      if (stopped_) return;  // shutdown() has already cancelled the queue
      std::shared_ptr<Job> job = pick_job_locked();
      if (!job) continue;
      // Shed-before-execution: expired deadlines, and jobs whose remaining
      // budget cannot cover their estimated cost (doomed to miss the SLO).
      const bool expired = job->token.cancelled() && !job->cancel_requested;
      const bool doomed =
          config_.shed_doomed && job->deadline.finite() &&
          job->deadline.remaining_seconds() < job->cost;
      if (job->cancel_requested) {
        events.push_back(make_event(ServiceEventKind::kCancelled, *job));
        finalize_locked(job, JobState::kCancelled);
      } else if (expired || doomed) {
        events.push_back(make_event(ServiceEventKind::kShedExpired, *job));
        finalize_locked(job, JobState::kExpired);
      } else {
        claim_locked(job);
        group.push_back(std::move(job));
        if (!group.front()->coalesce_key.empty() &&
            config_.coalesce_max_batch > 1) {
          collect_batch_locked(lock, &group);
        }
      }
    }
    append_events(events);
    if (!group.empty()) run_group(std::move(group));
  }
}

// Takes a picked job out of the queue accounting without starting it:
// claimed members of a forming batch are kRunning for drain()/shutdown
// purposes (++running_ balances the eventual finalise) but stay out of
// running_jobs_ so the watchdog does not time them while they wait for the
// group to fill.
void CampaignService::claim_locked(const std::shared_ptr<Job>& job) {
  Tenant& tenant = *job->home;
  if (tenant.queued > 0) --tenant.queued;
  tenant.queued_cost = std::max(0.0, tenant.queued_cost - job->cost);
  if (queued_ > 0) --queued_;
  ++running_;
  job->state = JobState::kRunning;
  ICSC_TRACE_GAUGE("service/queue_depth", static_cast<double>(queued_));
}

// Claims every queued job carrying `key` (scanning tenants in DRR order,
// classes in priority order, each deque FIFO) into `group`, up to
// coalesce_max_batch. Claimed members debit their tenant's deficit so
// riding a batch is not a DRR bypass, but no credit is required: the batch
// saves a device pass either way.
void CampaignService::claim_same_key_locked(
    const std::string& key, std::vector<std::shared_ptr<Job>>* group) {
  const std::size_t n = tenant_order_.size();
  for (std::size_t k = 0; k < n && group->size() < config_.coalesce_max_batch;
       ++k) {
    Tenant& tenant = *tenants_.at(tenant_order_[(drr_cursor_ + k) % n]);
    for (std::size_t cls = 0;
         cls < kNumPriorityClasses && group->size() < config_.coalesce_max_batch;
         ++cls) {
      auto& queue = tenant.queues[cls];
      for (auto it = queue.begin();
           it != queue.end() && group->size() < config_.coalesce_max_batch;) {
        const std::shared_ptr<Job>& job = *it;
        if (job->state != JobState::kQueued || job->coalesce_key != key) {
          ++it;
          continue;
        }
        std::shared_ptr<Job> claimed = std::move(*it);
        it = queue.erase(it);
        claim_locked(claimed);
        tenant.deficit = std::max(0.0, tenant.deficit - claimed->drr_cost);
        group->push_back(std::move(claimed));
      }
    }
  }
}

// Holds the batching window open: claim whatever same-key work is already
// queued, then (window > 0) park on batch_cv_ for more arrivals. The
// window end is clipped by every member's deadline slack (remaining budget
// minus cost estimate) so no member can expire inside it -- a member with
// no slack makes the window collapse and the group runs at once.
void CampaignService::collect_batch_locked(
    std::unique_lock<std::mutex>& lock,
    std::vector<std::shared_ptr<Job>>* group) {
  const std::string key = group->front()->coalesce_key;
  claim_same_key_locked(key, group);
  if (config_.coalesce_max_wait_seconds <= 0.0) return;

  const auto clip = [&](Clock::time_point end) {
    for (const auto& job : *group) {
      if (!job->deadline.finite()) continue;
      // Budget the wait at half the member's slack (remaining deadline
      // minus its cost estimate): waiting the *whole* slack would deliver
      // the member to its deadline with nothing left to run on, so the
      // other half stays reserved for execution and dispatch jitter. A
      // member with no slack collapses the window -- it runs at once.
      const double slack = job->deadline.remaining_seconds() - job->cost;
      const auto job_end =
          Clock::now() +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(std::max(0.0, 0.5 * slack)));
      end = std::min(end, job_end);
    }
    return end;
  };

  auto window_end = clip(
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             config_.coalesce_max_wait_seconds)));
  while (!stopped_ && group->size() < config_.coalesce_max_batch &&
         Clock::now() < window_end) {
    ++batch_waiters_;
    batch_cv_.wait_until(lock, window_end);
    --batch_waiters_;
    if (stopped_) break;
    const std::size_t before = group->size();
    claim_same_key_locked(key, group);
    if (group->size() > before) {
      window_end = clip(window_end);  // new members may have less slack
    }
  }
}

void CampaignService::run_group(std::vector<std::shared_ptr<Job>> group) {
  // Late shed/cancel filter: a member cancelled (or expired) while the
  // window was open detaches here -- finalised, never executed -- and the
  // survivors proceed as a smaller group.
  std::vector<std::shared_ptr<Job>> live;
  live.reserve(group.size());
  std::vector<ServiceEvent> events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto now = Clock::now();
    for (auto& job : group) {
      if (job->cancel_requested) {
        // cancel() already journaled the event (the member was kRunning
        // from the moment it was claimed); just finalise without running.
        finalize_locked(job, JobState::kCancelled);
        continue;
      }
      const bool expired = job->deadline.finite() && job->deadline.expired();
      const bool doomed =
          config_.shed_doomed && job->deadline.finite() &&
          job->deadline.remaining_seconds() < job->cost;
      if (expired || doomed) {
        events.push_back(make_event(ServiceEventKind::kShedExpired, *job));
        finalize_locked(job, JobState::kExpired);
        continue;
      }
      live.push_back(std::move(job));
    }
    for (const auto& job : live) {
      job->started = true;
      job->start_time = now;
      job->batch_size = live.size();
      job->watchdog_seen = job->heartbeats.load(std::memory_order_relaxed);
      job->watchdog_progress = now;
      job->running_slot = running_jobs_.size();
      running_jobs_.push_back(job.get());
    }
    if (live.size() > 1) {
      ++totals_.coalesced_batches;
      totals_.coalesced_jobs += live.size();
      totals_.max_batch_size = std::max(totals_.max_batch_size, live.size());
      for (const auto& job : live) {
        ++job->home->stats.batched;
      }
      ICSC_TRACE_COUNT("service.batches", 1);
      ICSC_TRACE_COUNT("service.batched", live.size());
      ICSC_TRACE_COUNT("service.batch_size", live.size());
    }
  }
  append_events(events);
  if (live.empty()) return;

  // One shared state slot for the whole group (solo jobs included): every
  // member's JobContext::batch_state() aliases it, which is what lets the
  // last member run a single device pass over inputs the earlier members
  // gathered. Members run sequentially on this thread, so no lock.
  std::shared_ptr<void> batch_state;
  std::vector<char> failed(live.size(), 0);
  std::vector<std::string> errors(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    ICSC_TRACE_SPAN("service/job");
    const std::shared_ptr<Job>& job = live[i];
    JobContext ctx;
    ctx.service_ = this;
    ctx.id_ = job->id;
    ctx.tier_ = job->tier;
    ctx.tenant_ = &job->tenant;
    ctx.cancel_ = &job->token;
    ctx.batch_index_ = i;
    ctx.batch_size_ = live.size();
    ctx.batch_state_ = &batch_state;
    ctx.heartbeats_ = &job->heartbeats;
    try {
      job->body(ctx);
    } catch (const std::exception& e) {
      failed[i] = 1;
      errors[i] = e.what();
    } catch (...) {
      failed[i] = 1;
      errors[i] = "unknown exception";
    }
  }
  // Finalise every member only after *all* bodies ran: the canonical
  // gather/scatter adapter writes member results during the last body, so
  // finalising earlier members as kDone before that pass would let a
  // poller read an unfilled result slot.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // One timestamp for the group: every member's result lands with the
    // final (scatter) body, so they genuinely end together.
    const auto end = Clock::now();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::shared_ptr<Job>& job = live[i];
      job->hit_deadline = job->deadline.finite() && job->deadline.expired();
      job->error = std::move(errors[i]);
      JobState state = JobState::kDone;
      if (failed[i] != 0) {
        state = JobState::kFailed;
      } else if (job->watchdog_flagged) {
        state = JobState::kWatchdogKilled;
      } else if (job->cancel_requested) {
        state = JobState::kCancelled;
      }
      finalize_locked(job, state, end);
    }
  }
}

void CampaignService::finalize_locked(const std::shared_ptr<Job>& job,
                                      JobState state,
                                      Clock::time_point end_time) {
  Tenant& tenant = *job->home;
  if (job->state == JobState::kQueued) {
    if (tenant.queued > 0) --tenant.queued;
    tenant.queued_cost = std::max(0.0, tenant.queued_cost - job->cost);
    if (queued_ > 0) --queued_;
    ICSC_TRACE_GAUGE("service/queue_depth", static_cast<double>(queued_));
  } else if (job->state == JobState::kRunning) {
    if (running_ > 0) --running_;
    // O(1) swap-pop: the job records its slot while on the running list.
    // Claimed-but-unstarted batch members are never on the list, so their
    // slot is only trusted when the list entry really is this job.
    const std::size_t slot = job->running_slot;
    if (slot < running_jobs_.size() && running_jobs_[slot] == job.get()) {
      if (slot + 1 != running_jobs_.size()) {
        running_jobs_[slot] = std::move(running_jobs_.back());
        running_jobs_[slot]->running_slot = slot;
      }
      running_jobs_.pop_back();
    }
  }
  job->state = state;
  job->ended = true;
  job->end_time = end_time;
  switch (state) {
    case JobState::kDone:
      ++totals_.completed;
      ++tenant.stats.completed;
      ICSC_TRACE_COUNT("service.completed", 1);
      tenant.sojourns.push(seconds_between(job->submit_time, job->end_time));
      break;
    case JobState::kFailed:
      ++totals_.failed;
      ++tenant.stats.failed;
      ICSC_TRACE_COUNT("service.failed", 1);
      break;
    case JobState::kCancelled:
      ++totals_.cancelled;
      ++tenant.stats.cancelled;
      ICSC_TRACE_COUNT("service.cancelled", 1);
      break;
    case JobState::kExpired:
      ++totals_.shed_expired;
      ++tenant.stats.shed_expired;
      ICSC_TRACE_COUNT("service.shed", 1);
      break;
    case JobState::kWatchdogKilled:
      ++totals_.watchdog_kills;
      ++tenant.stats.watchdog_kills;
      ICSC_TRACE_COUNT("service.watchdog_kills", 1);
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // not terminal; never passed here
  }
  if (queued_ == 0 && running_ == 0) drain_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Watchdog

void CampaignService::watchdog_main() {
  const auto poll = std::chrono::duration<double>(config_.watchdog_poll_seconds);
  for (;;) {
    std::vector<ServiceEvent> events;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      watchdog_cv_.wait_for(
          lock, std::chrono::duration_cast<Clock::duration>(poll),
          [this] { return stopped_; });
      if (stopped_) return;
      shed_expired_queued_locked(&events);
      const auto now = Clock::now();
      for (const auto& job : running_jobs_) {
        const std::uint64_t beats =
            job->heartbeats.load(std::memory_order_relaxed);
        if (beats != job->watchdog_seen) {
          job->watchdog_seen = beats;
          job->watchdog_progress = now;
          continue;
        }
        if (!job->watchdog_flagged &&
            seconds_between(job->watchdog_progress, now) >
                config_.watchdog_timeout_seconds) {
          // Stuck: no progress heartbeat within the timeout. Cancel the
          // body cooperatively and journal the kill *now* (with the last
          // reported checkpoint), so the tenant holds a resumable record
          // even if the body takes a while to drain -- or never does.
          job->watchdog_flagged = true;
          job->token.request_stop();
          events.push_back(make_event(ServiceEventKind::kWatchdogKill, *job));
        }
      }
    }
    append_events(events);
  }
}

void CampaignService::shed_expired_queued_locked(
    std::vector<ServiceEvent>* events) {
  for (auto& [name, tenant] : tenants_) {
    for (auto& queue : tenant->queues) {
      for (auto& job : queue) {
        if (job->state != JobState::kQueued || job->cancel_requested) {
          continue;
        }
        const bool expired = job->token.cancelled();
        const bool doomed = config_.shed_doomed && job->deadline.finite() &&
                            job->deadline.remaining_seconds() < job->cost;
        if (expired || doomed) {
          events->push_back(make_event(ServiceEventKind::kShedExpired, *job));
          finalize_locked(job, JobState::kExpired);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Client-facing control

JobStatus CampaignService::poll(JobId id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("core::service", "unknown job id", std::to_string(id));
  }
  const Job& job = *it->second;
  JobStatus status;
  status.id = job.id;
  status.tenant = job.tenant;
  status.state = job.state;
  status.tier = job.tier;
  status.priority = job.priority;
  status.batch_size = job.batch_size;
  status.terminal = job.state != JobState::kQueued &&
                    job.state != JobState::kRunning;
  const auto now = Clock::now();
  const auto queue_end = job.started ? job.start_time
                        : job.ended  ? job.end_time
                                     : now;
  status.queue_seconds = seconds_between(job.submit_time, queue_end);
  if (job.started) {
    status.run_seconds =
        seconds_between(job.start_time, job.ended ? job.end_time : now);
  }
  status.hit_deadline = job.hit_deadline;
  status.checkpoint_path = job.checkpoint_path;
  status.error = job.error;
  return status;
}

bool CampaignService::cancel(JobId id) {
  std::vector<ServiceEvent> events;
  bool cancelled = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const std::shared_ptr<Job>& job = it->second;
    if (job->state == JobState::kQueued) {
      job->cancel_requested = true;
      job->token.request_stop();
      events.push_back(make_event(ServiceEventKind::kCancelled, *job));
      finalize_locked(job, JobState::kCancelled);
      cancelled = true;
    } else if (job->state == JobState::kRunning) {
      // The body drains cooperatively and finalises as kCancelled (the
      // journal record is written at finalisation via run_job).
      job->cancel_requested = true;
      job->token.request_stop();
      events.push_back(make_event(ServiceEventKind::kCancelled, *job));
      cancelled = true;
    }
  }
  append_events(events);
  return cancelled;
}

void CampaignService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

ServiceStats CampaignService::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServiceStats out = totals_;
  out.queued = queued_;
  out.running = running_;
  out.peak_queue_depth = peak_queue_depth_;
  for (const auto& [name, tenant] : tenants_) {
    TenantStats copy = tenant->stats;
    tenant->sojourns.snapshot(&copy.sojourn_seconds);
    out.tenants.emplace(name, std::move(copy));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Journal

double CampaignService::uptime_seconds() const {
  return seconds_between(epoch_, Clock::now());
}

ServiceEvent CampaignService::make_event(ServiceEventKind kind,
                                         const Job& job) const {
  ServiceEvent event;
  event.kind = kind;
  event.id = job.id;
  event.tenant = job.tenant;
  event.checkpoint_path = job.checkpoint_path;
  event.uptime_seconds = uptime_seconds();
  return event;
}

void CampaignService::append_events(const std::vector<ServiceEvent>& events) {
  if (!journal_ || events.empty()) return;
  std::unique_lock<std::mutex> lock(journal_mutex_);
  for (const ServiceEvent& event : events) {
    SnapshotWriter writer;
    writer.put_u8(static_cast<std::uint8_t>(event.kind));
    writer.put_u64(event.id);
    writer.put_string(event.tenant);
    writer.put_string(event.checkpoint_path);
    writer.put_f64(event.uptime_seconds);
    journal_->append(writer);
  }
}

std::vector<ServiceEvent> CampaignService::replay_events(
    const std::string& path) {
  std::vector<ServiceEvent> events;
  for (const JournalRecord& record : RunJournal::replay(path, kJournalKind)) {
    SnapshotReader reader(record.payload);
    ServiceEvent event;
    event.kind = static_cast<ServiceEventKind>(reader.get_u8());
    event.id = reader.get_u64();
    event.tenant = reader.get_string();
    event.checkpoint_path = reader.get_string();
    event.uptime_seconds = reader.get_f64();
    events.push_back(std::move(event));
  }
  return events;
}

// ---------------------------------------------------------------------------
// JobContext plumbing that needs the Job definition

void CampaignService::note_checkpoint(JobId id, const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) it->second->checkpoint_path = path;
}

}  // namespace icsc::core
