#include "core/service.hpp"

#include <algorithm>
#include <utility>

#include "core/trace.hpp"

namespace icsc::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Minimum DRR debit: a zero-cost job must still consume schedule share or
// a tenant flooding free jobs would monopolise the dispatchers.
constexpr double kMinDrrCost = 1e-3;
constexpr std::size_t kMaxSojournSamples = 1 << 16;

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
    case JobState::kWatchdogKilled: return "watchdog_killed";
  }
  return "?";
}

const char* degrade_tier_name(DegradeTier tier) {
  switch (tier) {
    case DegradeTier::kFull: return "full";
    case DegradeTier::kReduced: return "reduced";
    case DegradeTier::kMinimal: return "minimal";
  }
  return "?";
}

const char* service_event_kind_name(ServiceEventKind kind) {
  switch (kind) {
    case ServiceEventKind::kShedExpired: return "shed_expired";
    case ServiceEventKind::kWatchdogKill: return "watchdog_kill";
    case ServiceEventKind::kCancelled: return "cancelled";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Internal state

struct CampaignService::Job {
  JobId id = 0;
  std::string tenant;
  JobState state = JobState::kQueued;
  DegradeTier tier = DegradeTier::kFull;
  double cost = 0.0;      // caller's estimate, seconds
  double drr_cost = kMinDrrCost;
  Deadline deadline;
  CancelToken token;
  std::function<void(JobContext&)> body;
  bool cancel_requested = false;
  bool watchdog_flagged = false;
  bool hit_deadline = false;
  std::string checkpoint_path;  // guarded by the service mutex
  std::string error;
  Clock::time_point submit_time{};
  Clock::time_point start_time{};
  Clock::time_point end_time{};
  bool started = false;
  bool ended = false;
  std::atomic<std::uint64_t> heartbeats{0};
  // Watchdog bookkeeping (guarded by the service mutex).
  std::uint64_t watchdog_seen = 0;
  Clock::time_point watchdog_progress{};
};

struct CampaignService::Tenant {
  std::string name;
  TenantConfig config;
  std::deque<std::shared_ptr<Job>> queue;  // may hold finalised corpses
  std::size_t queued = 0;                  // jobs in `queue` still kQueued
  double queued_cost = 0.0;                // sum of their cost estimates
  double deficit = 0.0;                    // DRR credit, cost-seconds
  TenantStats stats;
};

// ---------------------------------------------------------------------------
// JobContext

void JobContext::heartbeat() {
  if (service_ != nullptr) service_->heartbeat_cell(id_);
}

std::string JobContext::checkpoint_path(const std::string& leaf) const {
  if (service_ == nullptr || service_->config().scratch_dir.empty()) return "";
  return service_->config().scratch_dir + "/job_" + std::to_string(id_) + "_" +
         leaf;
}

void JobContext::note_checkpoint(const std::string& path) {
  if (service_ != nullptr) service_->note_checkpoint(id_, path);
}

// ---------------------------------------------------------------------------
// Construction / teardown

CampaignService::CampaignService(ServiceConfig config,
                                 std::map<std::string, TenantConfig> tenants)
    : config_(std::move(config)), epoch_(Clock::now()) {
  if (config_.workers == 0) {
    throw Error("core::service", "workers must be >= 1");
  }
  if (config_.max_queue_depth == 0) {
    throw Error("core::service", "max_queue_depth must be >= 1");
  }
  if (config_.max_backlog_seconds < 0.0) {
    throw Error("core::service", "max_backlog_seconds must be >= 0");
  }
  if (config_.degrade_reduced_at < 0.0 || config_.degrade_minimal_at < 0.0 ||
      config_.degrade_reduced_at > config_.degrade_minimal_at) {
    throw Error("core::service",
                "degrade thresholds must satisfy 0 <= reduced <= minimal");
  }
  if (config_.watchdog_timeout_seconds < 0.0 ||
      config_.watchdog_poll_seconds <= 0.0) {
    throw Error("core::service", "invalid watchdog configuration");
  }
  if (config_.drr_quantum_seconds <= 0.0) {
    throw Error("core::service", "drr_quantum_seconds must be > 0");
  }
  for (auto& [name, tenant_config] : tenants) {
    if (name.empty()) {
      throw Error("core::service", "tenant name must be non-empty");
    }
    if (tenant_config.weight < 1) {
      throw Error("core::service", "tenant weight must be >= 1", name);
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    tenant->config = tenant_config;
    tenants_.emplace(name, std::move(tenant));
    tenant_order_.push_back(name);
  }
  if (!config_.journal_path.empty()) {
    journal_ = std::make_unique<RunJournal>(config_.journal_path, kJournalKind);
  }
  dispatchers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  }
  if (config_.watchdog_timeout_seconds > 0.0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

CampaignService::~CampaignService() { shutdown(); }

void CampaignService::shutdown() {
  std::vector<ServiceEvent> events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stopped_) {
      stopped_ = true;
      // Cancel everything still queued; running bodies get a cooperative
      // stop request and are joined below.
      for (auto& [name, tenant] : tenants_) {
        for (auto& job : tenant->queue) {
          if (job->state != JobState::kQueued) continue;
          job->cancel_requested = true;
          job->token.request_stop();
          events.push_back(make_event(ServiceEventKind::kCancelled, *job));
          finalize_locked(job, JobState::kCancelled);
        }
      }
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) job->token.request_stop();
      }
    }
    work_cv_.notify_all();
    watchdog_cv_.notify_all();
  }
  append_events(events);
  // Join outside the lock; guard against double-join on repeated calls.
  for (auto& thread : dispatchers_) {
    if (thread.joinable()) thread.join();
  }
  dispatchers_.clear();
  if (watchdog_.joinable()) watchdog_.join();
}

// ---------------------------------------------------------------------------
// Admission

CampaignService::Tenant& CampaignService::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  Tenant& ref = *tenant;
  tenants_.emplace(name, std::move(tenant));
  tenant_order_.push_back(name);
  return ref;
}

double CampaignService::backlog_seconds_locked() const {
  double total = 0.0;
  for (const auto& [name, tenant] : tenants_) total += tenant->queued_cost;
  return total / static_cast<double>(config_.workers);
}

SubmitOutcome CampaignService::submit(JobRequest request) {
  if (!request.body) {
    throw Error("core::service", "job has no body", request.tenant);
  }
  if (request.tenant.empty()) {
    throw Error("core::service", "tenant name must be non-empty");
  }
  const double cost = std::max(0.0, request.cost_estimate_seconds);

  SubmitOutcome outcome;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Tenant& tenant = tenant_locked(request.tenant);
    ++totals_.submitted;
    ++tenant.stats.submitted;

    const auto reject = [&](const char* reason, double retry_after) {
      ++totals_.rejected;
      ++tenant.stats.rejected;
      ICSC_TRACE_COUNT("service.rejected", 1);
      outcome.admitted = false;
      outcome.reason = reason;
      outcome.retry_after_seconds = retry_after;
    };

    const double backlog = backlog_seconds_locked();
    const double mean_cost =
        queued_ > 0 ? backlog * static_cast<double>(config_.workers) /
                          static_cast<double>(queued_)
                    : std::max(cost, kMinDrrCost);
    if (stopped_) {
      reject("shutdown", 0.0);
    } else if (request.deadline.finite() && request.deadline.expired()) {
      reject("expired", 0.0);
    } else if (tenant.config.max_queued > 0 &&
               tenant.queued >= tenant.config.max_queued) {
      reject("tenant_quota",
             std::max(kMinDrrCost,
                      tenant.queued_cost /
                          static_cast<double>(config_.workers)));
    } else if (queued_ >= config_.max_queue_depth) {
      // Hint: expected time for one queue slot to free up.
      reject("queue_full",
             std::max(kMinDrrCost,
                      mean_cost / static_cast<double>(config_.workers)));
    } else if (config_.max_backlog_seconds > 0.0 &&
               backlog + cost / static_cast<double>(config_.workers) >
                   config_.max_backlog_seconds) {
      reject("backlog", std::max(kMinDrrCost,
                                 backlog + cost /
                                     static_cast<double>(config_.workers) -
                                     config_.max_backlog_seconds));
    } else {
      // Admit; assign the degradation tier from current pressure.
      DegradeTier tier = DegradeTier::kFull;
      if (request.allow_degrade) {
        const double fill =
            static_cast<double>(queued_ + 1) /
            static_cast<double>(config_.max_queue_depth);
        double pressure = fill;
        if (config_.max_backlog_seconds > 0.0) {
          pressure = std::max(
              pressure, backlog / config_.max_backlog_seconds);
        }
        if (pressure >= config_.degrade_minimal_at) {
          tier = DegradeTier::kMinimal;
        } else if (pressure >= config_.degrade_reduced_at) {
          tier = DegradeTier::kReduced;
        }
      }
      auto job = std::make_shared<Job>();
      job->id = next_id_++;
      job->tenant = request.tenant;
      job->tier = tier;
      job->cost = cost;
      job->drr_cost = std::max(kMinDrrCost, cost);
      job->deadline = request.deadline;
      job->token = CancelToken(request.deadline);
      job->body = std::move(request.body);
      job->submit_time = Clock::now();
      jobs_.emplace(job->id, job);
      tenant.queue.push_back(job);
      ++tenant.queued;
      tenant.queued_cost += cost;
      ++queued_;
      peak_queue_depth_ = std::max(peak_queue_depth_, queued_);
      ++totals_.admitted;
      ++tenant.stats.admitted;
      if (tier != DegradeTier::kFull) {
        ++totals_.degraded;
        ++tenant.stats.degraded;
        ICSC_TRACE_COUNT("service.degraded", 1);
      }
      ICSC_TRACE_COUNT("service.admitted", 1);
      ICSC_TRACE_GAUGE("service/queue_depth", static_cast<double>(queued_));
      outcome.admitted = true;
      outcome.id = job->id;
      outcome.tier = tier;
      work_cv_.notify_one();
    }
  }
  return outcome;
}

JobId CampaignService::submit_or_throw(JobRequest request) {
  const SubmitOutcome outcome = submit(std::move(request));
  if (!outcome.admitted) {
    throw Overloaded(outcome.reason, outcome.retry_after_seconds);
  }
  return outcome.id;
}

// ---------------------------------------------------------------------------
// Scheduling (deficit round robin)

std::shared_ptr<CampaignService::Job> CampaignService::pick_job_locked() {
  if (queued_ == 0) return nullptr;
  const std::size_t n = tenant_order_.size();
  for (;;) {
    bool any = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (drr_cursor_ + k) % n;
      Tenant& tenant = *tenants_.at(tenant_order_[idx]);
      // Drop corpses (jobs finalised while queued: cancel/shed).
      while (!tenant.queue.empty() &&
             tenant.queue.front()->state != JobState::kQueued) {
        tenant.queue.pop_front();
      }
      if (tenant.queue.empty()) {
        tenant.deficit = 0.0;  // an idle tenant banks no credit
        continue;
      }
      any = true;
      const std::shared_ptr<Job> job = tenant.queue.front();
      if (tenant.deficit + 1e-12 >= job->drr_cost) {
        tenant.deficit = std::max(0.0, tenant.deficit - job->drr_cost);
        tenant.queue.pop_front();
        drr_cursor_ = idx;  // keep serving this tenant while credit lasts
        return job;
      }
    }
    if (!any) return nullptr;
    // No tenant had enough credit for its head-of-line job: credit one
    // quantum per weight unit and retry. Deficits grow without bound while
    // queues are non-empty, so this loop terminates.
    for (auto& [name, tenant] : tenants_) {
      if (tenant->queued > 0) {
        tenant->deficit +=
            config_.drr_quantum_seconds * tenant->config.weight;
      }
    }
  }
}

void CampaignService::dispatcher_main() {
  for (;;) {
    std::shared_ptr<Job> job;
    std::vector<ServiceEvent> events;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopped_ || queued_ > 0; });
      if (stopped_) return;  // shutdown() has already cancelled the queue
      job = pick_job_locked();
      if (!job) continue;
      // Shed-before-execution: expired deadlines, and jobs whose remaining
      // budget cannot cover their estimated cost (doomed to miss the SLO).
      const bool expired = job->token.cancelled() && !job->cancel_requested;
      const bool doomed =
          config_.shed_doomed && job->deadline.finite() &&
          job->deadline.remaining_seconds() < job->cost;
      if (job->cancel_requested) {
        events.push_back(make_event(ServiceEventKind::kCancelled, *job));
        finalize_locked(job, JobState::kCancelled);
        job.reset();
      } else if (expired || doomed) {
        events.push_back(make_event(ServiceEventKind::kShedExpired, *job));
        finalize_locked(job, JobState::kExpired);
        job.reset();
      } else {
        Tenant& tenant = *tenants_.at(job->tenant);
        --tenant.queued;
        tenant.queued_cost = std::max(0.0, tenant.queued_cost - job->cost);
        --queued_;
        ++running_;
        job->state = JobState::kRunning;
        job->started = true;
        job->start_time = Clock::now();
        job->watchdog_seen = job->heartbeats.load(std::memory_order_relaxed);
        job->watchdog_progress = job->start_time;
        running_jobs_.push_back(job);
        ICSC_TRACE_GAUGE("service/queue_depth", static_cast<double>(queued_));
      }
    }
    append_events(events);
    if (job) run_job(job);
  }
}

void CampaignService::run_job(const std::shared_ptr<Job>& job) {
  ICSC_TRACE_SPAN("service/job");
  JobContext ctx;
  ctx.service_ = this;
  ctx.id_ = job->id;
  ctx.tier_ = job->tier;
  ctx.tenant_ = job->tenant;
  ctx.cancel_ = job->token;
  bool failed = false;
  std::string error;
  try {
    job->body(ctx);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown exception";
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job->hit_deadline = job->deadline.finite() && job->deadline.expired();
    job->error = std::move(error);
    JobState state = JobState::kDone;
    if (failed) {
      state = JobState::kFailed;
    } else if (job->watchdog_flagged) {
      state = JobState::kWatchdogKilled;
    } else if (job->cancel_requested) {
      state = JobState::kCancelled;
    }
    finalize_locked(job, state);
  }
}

void CampaignService::finalize_locked(const std::shared_ptr<Job>& job,
                                      JobState state) {
  if (job->state == JobState::kQueued) {
    Tenant& tenant = *tenants_.at(job->tenant);
    if (tenant.queued > 0) --tenant.queued;
    tenant.queued_cost = std::max(0.0, tenant.queued_cost - job->cost);
    if (queued_ > 0) --queued_;
    ICSC_TRACE_GAUGE("service/queue_depth", static_cast<double>(queued_));
  } else if (job->state == JobState::kRunning) {
    if (running_ > 0) --running_;
    running_jobs_.erase(
        std::remove(running_jobs_.begin(), running_jobs_.end(), job),
        running_jobs_.end());
  }
  job->state = state;
  job->ended = true;
  job->end_time = Clock::now();
  Tenant& tenant = *tenants_.at(job->tenant);
  switch (state) {
    case JobState::kDone: {
      ++totals_.completed;
      ++tenant.stats.completed;
      ICSC_TRACE_COUNT("service.completed", 1);
      auto& sojourns = tenant.stats.sojourn_seconds;
      if (sojourns.size() >= kMaxSojournSamples) {
        sojourns.erase(sojourns.begin(),
                       sojourns.begin() + kMaxSojournSamples / 2);
      }
      sojourns.push_back(seconds_between(job->submit_time, job->end_time));
      break;
    }
    case JobState::kFailed:
      ++totals_.failed;
      ++tenant.stats.failed;
      ICSC_TRACE_COUNT("service.failed", 1);
      break;
    case JobState::kCancelled:
      ++totals_.cancelled;
      ++tenant.stats.cancelled;
      ICSC_TRACE_COUNT("service.cancelled", 1);
      break;
    case JobState::kExpired:
      ++totals_.shed_expired;
      ++tenant.stats.shed_expired;
      ICSC_TRACE_COUNT("service.shed", 1);
      break;
    case JobState::kWatchdogKilled:
      ++totals_.watchdog_kills;
      ++tenant.stats.watchdog_kills;
      ICSC_TRACE_COUNT("service.watchdog_kills", 1);
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;  // not terminal; never passed here
  }
  if (queued_ == 0 && running_ == 0) drain_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Watchdog

void CampaignService::watchdog_main() {
  const auto poll = std::chrono::duration<double>(config_.watchdog_poll_seconds);
  for (;;) {
    std::vector<ServiceEvent> events;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      watchdog_cv_.wait_for(
          lock, std::chrono::duration_cast<Clock::duration>(poll),
          [this] { return stopped_; });
      if (stopped_) return;
      shed_expired_queued_locked(&events);
      const auto now = Clock::now();
      for (const auto& job : running_jobs_) {
        const std::uint64_t beats =
            job->heartbeats.load(std::memory_order_relaxed);
        if (beats != job->watchdog_seen) {
          job->watchdog_seen = beats;
          job->watchdog_progress = now;
          continue;
        }
        if (!job->watchdog_flagged &&
            seconds_between(job->watchdog_progress, now) >
                config_.watchdog_timeout_seconds) {
          // Stuck: no progress heartbeat within the timeout. Cancel the
          // body cooperatively and journal the kill *now* (with the last
          // reported checkpoint), so the tenant holds a resumable record
          // even if the body takes a while to drain -- or never does.
          job->watchdog_flagged = true;
          job->token.request_stop();
          events.push_back(make_event(ServiceEventKind::kWatchdogKill, *job));
        }
      }
    }
    append_events(events);
  }
}

void CampaignService::shed_expired_queued_locked(
    std::vector<ServiceEvent>* events) {
  for (auto& [name, tenant] : tenants_) {
    for (auto& job : tenant->queue) {
      if (job->state != JobState::kQueued || job->cancel_requested) continue;
      const bool expired = job->token.cancelled();
      const bool doomed = config_.shed_doomed && job->deadline.finite() &&
                          job->deadline.remaining_seconds() < job->cost;
      if (expired || doomed) {
        events->push_back(make_event(ServiceEventKind::kShedExpired, *job));
        finalize_locked(job, JobState::kExpired);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Client-facing control

JobStatus CampaignService::poll(JobId id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("core::service", "unknown job id", std::to_string(id));
  }
  const Job& job = *it->second;
  JobStatus status;
  status.id = job.id;
  status.tenant = job.tenant;
  status.state = job.state;
  status.tier = job.tier;
  status.terminal = job.state != JobState::kQueued &&
                    job.state != JobState::kRunning;
  const auto now = Clock::now();
  const auto queue_end = job.started ? job.start_time
                        : job.ended  ? job.end_time
                                     : now;
  status.queue_seconds = seconds_between(job.submit_time, queue_end);
  if (job.started) {
    status.run_seconds =
        seconds_between(job.start_time, job.ended ? job.end_time : now);
  }
  status.hit_deadline = job.hit_deadline;
  status.checkpoint_path = job.checkpoint_path;
  status.error = job.error;
  return status;
}

bool CampaignService::cancel(JobId id) {
  std::vector<ServiceEvent> events;
  bool cancelled = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const std::shared_ptr<Job>& job = it->second;
    if (job->state == JobState::kQueued) {
      job->cancel_requested = true;
      job->token.request_stop();
      events.push_back(make_event(ServiceEventKind::kCancelled, *job));
      finalize_locked(job, JobState::kCancelled);
      cancelled = true;
    } else if (job->state == JobState::kRunning) {
      // The body drains cooperatively and finalises as kCancelled (the
      // journal record is written at finalisation via run_job).
      job->cancel_requested = true;
      job->token.request_stop();
      events.push_back(make_event(ServiceEventKind::kCancelled, *job));
      cancelled = true;
    }
  }
  append_events(events);
  return cancelled;
}

void CampaignService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

ServiceStats CampaignService::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServiceStats out = totals_;
  out.queued = queued_;
  out.running = running_;
  out.peak_queue_depth = peak_queue_depth_;
  for (const auto& [name, tenant] : tenants_) {
    out.tenants.emplace(name, tenant->stats);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Journal

double CampaignService::uptime_seconds() const {
  return seconds_between(epoch_, Clock::now());
}

ServiceEvent CampaignService::make_event(ServiceEventKind kind,
                                         const Job& job) const {
  ServiceEvent event;
  event.kind = kind;
  event.id = job.id;
  event.tenant = job.tenant;
  event.checkpoint_path = job.checkpoint_path;
  event.uptime_seconds = uptime_seconds();
  return event;
}

void CampaignService::append_events(const std::vector<ServiceEvent>& events) {
  if (!journal_ || events.empty()) return;
  std::unique_lock<std::mutex> lock(journal_mutex_);
  for (const ServiceEvent& event : events) {
    SnapshotWriter writer;
    writer.put_u8(static_cast<std::uint8_t>(event.kind));
    writer.put_u64(event.id);
    writer.put_string(event.tenant);
    writer.put_string(event.checkpoint_path);
    writer.put_f64(event.uptime_seconds);
    journal_->append(writer);
  }
}

std::vector<ServiceEvent> CampaignService::replay_events(
    const std::string& path) {
  std::vector<ServiceEvent> events;
  for (const JournalRecord& record : RunJournal::replay(path, kJournalKind)) {
    SnapshotReader reader(record.payload);
    ServiceEvent event;
    event.kind = static_cast<ServiceEventKind>(reader.get_u8());
    event.id = reader.get_u64();
    event.tenant = reader.get_string();
    event.checkpoint_path = reader.get_string();
    event.uptime_seconds = reader.get_f64();
    events.push_back(std::move(event));
  }
  return events;
}

// ---------------------------------------------------------------------------
// JobContext plumbing that needs the Job definition

void CampaignService::heartbeat_cell(JobId id) {
  ICSC_TRACE_COUNT("service.heartbeats", 1);
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) {
    it->second->heartbeats.fetch_add(1, std::memory_order_relaxed);
  }
}

void CampaignService::note_checkpoint(JobId id, const std::string& path) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) it->second->checkpoint_path = path;
}

}  // namespace icsc::core
