// NEON variant of the SIMD primitives (2 x 64-bit lanes). Advanced SIMD
// is architectural on aarch64, so no extra -m flags are needed; the TU is
// simply excluded from non-aarch64 builds.
#include <arm_neon.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd_dispatch.hpp"
#include "core/simd_scalar.hpp"

#define ICSC_SIMD_VARIANT 3

namespace icsc::core::simd::neon {

#include "core/simd_vec.inl"
#include "core/simd_kernels.inl"

}  // namespace icsc::core::simd::neon
