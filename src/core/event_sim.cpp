#include "core/event_sim.hpp"

#include <cassert>
#include <utility>

namespace icsc::core {

void EventSim::schedule_at(Time t, Action action) {
  assert(t >= now_);
  queue_.push(Event{t, next_sequence_++, std::move(action)});
}

void EventSim::schedule_after(Time delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

EventSim::Time EventSim::run(Time until) {
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().time > until) {
      now_ = until;
      return now_;
    }
    // priority_queue::top() is const; move out via const_cast on the copy
    // path is UB-prone, so copy the action handle instead.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.action();
  }
  return now_;
}

}  // namespace icsc::core
