// Shared thread-pool execution core.
//
// The framework's hot loops -- HLS design-space exploration (Sec. III),
// approximate convolution (Sec. V), DNA read clustering (Sec. VI), and
// per-tile IMC MVMs (Sec. IV) -- are embarrassingly parallel. This header
// provides the one process-wide worker pool they all share, plus two
// structured primitives built on it:
//
//   parallel_for(begin, end, grain, fn)  -- chunked index loop; fn receives
//       [chunk_begin, chunk_end) sub-ranges. Chunks are claimed dynamically
//       (work stealing over an atomic cursor) so uneven iterations balance.
//   parallel_map(count, grain, fn)       -- evaluates fn(i) for i in
//       [0, count) and returns the results in index order, regardless of
//       which thread computed each element.
//
// Concurrency is `ICSC_THREADS` when set (>= 1; 1 means fully serial,
// inline execution), else std::thread::hardware_concurrency(). The pool is
// lazily created on first use. Determinism contract: callers keep bit-exact
// reproducibility by (a) drawing all RNG values serially before fanning
// out, and (b) combining results in index order -- parallel_map guarantees
// (b) by construction.
//
// Cancellation: the overloads taking a CancelToken poll it once per chunk
// claim. When the token fires, no new chunks start, in-flight chunks
// drain, and the call returns the length of the *prefix* of iterations
// guaranteed to have executed -- the cooperative-cancellation substrate of
// the resilient campaign runtime (core/cancel.hpp). The token-free
// overloads are unchanged and pay zero overhead.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/cancel.hpp"

namespace icsc::core {

/// Total concurrency (worker threads + the calling thread). >= 1.
std::size_t parallel_threads();

/// Reconfigures the pool to `total_threads` total concurrency (1 = fully
/// serial). 0 re-reads ICSC_THREADS / hardware_concurrency. Must not be
/// called while parallel loops are in flight on other threads.
void set_parallel_threads(std::size_t total_threads);

/// RAII guard forcing all parallel loops issued from this thread to run
/// inline and serially for its lifetime. Used by the serial-vs-parallel
/// benchmark comparisons and the bit-exactness tests.
class ScopedSerial {
 public:
  ScopedSerial();
  ~ScopedSerial();
  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;

 private:
  bool previous_;
};

/// Runs fn over [begin, end) in chunks of up to `grain` indices, spread
/// across the pool. Runs inline (single call fn(begin, end)) when the range
/// fits in one grain, concurrency is 1, or a ScopedSerial is active.
/// Exceptions thrown by fn are caught, remaining chunks are skipped, and
/// the first exception is rethrown on the calling thread after all claimed
/// chunks retire. Nested calls from inside a worker run inline.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Cancellable variant: polls `cancel` once per chunk claim and stops
/// issuing work once it fires, letting claimed chunks drain. Returns n
/// such that every iteration in [begin, begin + n) executed. Under the
/// pool, fn may additionally have run on a few chunks past that prefix
/// before cancellation became visible to every worker; callers must derive
/// results only from the returned prefix (fn must be pure w.r.t. anything
/// outside its own chunk, which the determinism contract already demands).
std::size_t parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         const CancelToken& cancel);

/// Order-preserving map: out[i] = fn(i) for i in [0, count). The result
/// type must be default-constructible; elements are move-assigned in place
/// by whichever thread computes them, and the returned vector is always in
/// index order.
template <typename Fn>
auto parallel_map(std::size_t count, std::size_t grain, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{}))>;
  std::vector<Result> out(count);
  parallel_for(0, count, grain, [&out, &fn](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
  });
  return out;
}

/// Cancellable order-preserving map: evaluates fn(i) until `cancel` fires,
/// then returns the completed prefix only (the vector is truncated to the
/// iterations guaranteed to have executed, in index order). A full-length
/// result therefore means the map ran to completion.
template <typename Fn>
auto parallel_map(std::size_t count, std::size_t grain, Fn&& fn,
                  const CancelToken& cancel)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{}))>;
  std::vector<Result> out(count);
  const std::size_t done = parallel_for(
      0, count, grain,
      [&out, &fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
      },
      cancel);
  out.resize(done);
  return out;
}

}  // namespace icsc::core
