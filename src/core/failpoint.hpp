// Deterministic failpoint injection for durability code paths.
//
// The crash-safety claims in this framework -- "a process killed mid-save
// leaves the previous snapshot intact", "the store never serves a corrupt
// record" -- are only worth stating if they are *tested* at every I/O
// boundary, not just at the handful a SIGKILL bench happens to land on.
// This header provides named failpoints: sites compiled into the I/O paths
// of core/checkpoint and core/result_store that can be armed to fire a
// fault on a specific hit of a specific site, chosen deterministically
// from a seed. Supported faults:
//
//   kShortWrite -- the write persists only a prefix of the requested bytes
//                  and the process then "dies" (torn frame on disk).
//   kError      -- the syscall fails with an injected errno (EIO, ENOSPC);
//                  the process survives and must keep its invariants.
//   kFsyncError -- fsync reports failure; durability of the preceding
//                  writes is no longer guaranteed.
//   kCrash      -- simulated kill -9 at this exact point: no further bytes
//                  reach disk through any failpoint-guarded wrapper until
//                  clear_crash(); the wrapper throws CrashError to unwind.
//
// Determinism contract: a schedule is (site, hit index, action) derived
// statelessly from a seed over the site universe observed in a recording
// run, so every one of the ~1000 torture schedules is reproducible from
// its seed alone. With nothing armed, every wrapper is a plain passthrough
// behind one relaxed atomic load -- production builds pay ~nothing.
//
// Thread safety: arming/disarming and hit accounting are mutex-guarded;
// the fast path (nothing armed, no crash pending) is lock-free.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace icsc::core::failpoint {

enum class Action : std::uint8_t {
  kNone = 0,
  kShortWrite,  // persist keep_bytes of the buffer, then crash
  kError,       // fail the call with error_code
  kFsyncError,  // fail an fsync with error_code
  kCrash,       // simulated kill -9 at this point
};

const char* action_name(Action action);

/// Arms one fault at one site. `at_hit` is 0-based: the trigger fires on
/// the (at_hit+1)-th time the site is reached after arming.
struct Trigger {
  Action action = Action::kNone;
  std::uint64_t at_hit = 0;
  int error_code = 5;  // EIO; ENOSPC for space-exhaustion schedules
  /// kShortWrite: fraction of the requested bytes that reach disk before
  /// the simulated death, in [0, 1).
  double keep_fraction = 0.5;
};

/// Outcome of one hit() evaluation.
struct Fired {
  Action action = Action::kNone;
  int error_code = 0;
  double keep_fraction = 0.0;
};

/// True when any trigger is armed or a simulated crash is pending. One
/// relaxed atomic load; the wrappers return to the passthrough path
/// immediately when false.
bool enabled();

/// Arms `trigger` at `site` (replacing any trigger already armed there)
/// and resets the site's hit counter.
void arm(const std::string& site, const Trigger& trigger);

/// Removes every trigger and zeroes all hit counters. Does NOT clear a
/// pending crash (see clear_crash()).
void disarm_all();

/// Counts a hit at `site` and returns the fired action, if any. kCrash
/// and kShortWrite flip the process into the crashed state first.
Fired hit(const char* site);

/// Hit counts per site since the last disarm_all(), for recording runs
/// that enumerate the site universe a seeded schedule draws from.
std::map<std::string, std::uint64_t> hit_counts();

/// Simulated kill -9 state: while set, every failpoint-guarded I/O
/// wrapper throws CrashError before touching the file descriptor.
bool crashed();
void clear_crash();

/// Thrown by the wrappers when a crash action fires (or is pending): the
/// in-process stand-in for the process ceasing to exist. Catch it at the
/// torture harness level only; production code never sees one because
/// nothing is ever armed.
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& site)
      : Error("core::failpoint", "simulated crash", site) {}
};

/// One (site, trigger) schedule drawn deterministically from `seed` over
/// the site universe `universe` (site -> hit count from a recording run).
/// Sites and actions are chosen by stateless hashing, so schedule k is
/// reproducible from its seed alone. Returns an empty site when the
/// universe is empty.
struct Schedule {
  std::string site;
  Trigger trigger;
};

Schedule seeded_schedule(std::uint64_t seed,
                         const std::map<std::string, std::uint64_t>& universe);

// ---------------------------------------------------------------------------
// Failpoint-aware syscall wrappers. Passthroughs when nothing is armed.
// All of them throw CrashError when a crash is pending or fires here.

/// ::write with short-write/error/crash injection. Returns the byte count
/// actually written (possibly short), or -1 with errno set.
ssize_t checked_write(const char* site, int fd, const void* data,
                      std::size_t size);

/// ::fsync with fsync-failure/crash injection.
int checked_fsync(const char* site, int fd);

/// ::rename with error/crash injection.
int checked_rename(const char* site, const char* from, const char* to);

/// ::ftruncate with error/crash injection.
int checked_ftruncate(const char* site, int fd, off_t length);

}  // namespace icsc::core::failpoint
