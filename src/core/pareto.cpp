#include "core/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/error.hpp"

namespace icsc::core {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<ParetoPoint> pareto_front(const std::vector<ParetoPoint>& points) {
  std::vector<ParetoPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (&other == &candidate) continue;
      if (dominates(other.objectives, candidate.objectives)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  return front;
}

double hypervolume_2d(std::vector<ParetoPoint> front, double ref_x,
                      double ref_y) {
  // Validate arity before anything dereferences objectives[0]/[1]: the
  // former assert vanished under NDEBUG, turning a malformed front (a
  // point with < 2 or > 2 objectives) into an out-of-bounds read.
  for (std::size_t i = 0; i < front.size(); ++i) {
    if (front[i].objectives.size() != 2) {
      throw Error("core::hypervolume_2d",
                  "front points must have exactly 2 objectives",
                  "point " + std::to_string(i) + " has " +
                      std::to_string(front[i].objectives.size()));
    }
  }
  if (front.empty()) return 0.0;
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.objectives[0] < b.objectives[0];
            });
  double volume = 0.0;
  double prev_y = ref_y;
  for (const auto& p : front) {
    const double x = p.objectives[0];
    const double y = std::min(p.objectives[1], prev_y);
    if (x >= ref_x || y >= prev_y) continue;  // outside the reference box
    volume += (ref_x - x) * (prev_y - y);
    prev_y = y;
  }
  return volume;
}

}  // namespace icsc::core
