#include "approx/pooling.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/rng.hpp"

namespace icsc::approx {

namespace {

/// Q7.8 code of a float (the representation the comparator sees).
std::int32_t q16_code(float v) {
  const double scaled = std::round(static_cast<double>(v) * 256.0);
  return static_cast<std::int32_t>(std::clamp(scaled, -32768.0, 32767.0));
}

/// Approximate comparator: compares only the top `bits` of the 16-bit
/// two's-complement codes (low bits masked away).
bool approx_greater(float a, float b, int bits) {
  if (bits <= 0 || bits >= 16) return a > b;
  const std::int32_t mask = ~((1 << (16 - bits)) - 1);
  return (q16_code(a) & mask) > (q16_code(b) & mask);
}

}  // namespace

FeatureMap max_pool(const FeatureMap& input, std::size_t window,
                    int compare_bits, core::OpCounter* ops) {
  assert(input.rank() == 3 && window >= 1);
  const std::size_t c = input.dim(0);
  const std::size_t oh = input.dim(1) / window;
  const std::size_t ow = input.dim(2) / window;
  FeatureMap out({c, oh, ow});
  std::uint64_t comparisons = 0;
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t r = 0; r < oh; ++r) {
      for (std::size_t col = 0; col < ow; ++col) {
        float best = input(ch, r * window, col * window);
        for (std::size_t u = 0; u < window; ++u) {
          for (std::size_t v = 0; v < window; ++v) {
            if (u == 0 && v == 0) continue;
            const float candidate = input(ch, r * window + u, col * window + v);
            ++comparisons;
            if (approx_greater(candidate, best, compare_bits)) {
              best = candidate;
            }
          }
        }
        out(ch, r, col) = best;
      }
    }
  }
  if (ops) ops->add("pool_cmp", comparisons);
  return out;
}

FeatureMap avg_pool(const FeatureMap& input, std::size_t window,
                    core::OpCounter* ops) {
  assert(input.rank() == 3 && window >= 1);
  const std::size_t c = input.dim(0);
  const std::size_t oh = input.dim(1) / window;
  const std::size_t ow = input.dim(2) / window;
  FeatureMap out({c, oh, ow});
  const auto count = static_cast<float>(window * window);
  for (std::size_t ch = 0; ch < c; ++ch) {
    for (std::size_t r = 0; r < oh; ++r) {
      for (std::size_t col = 0; col < ow; ++col) {
        float acc = 0.0F;
        for (std::size_t u = 0; u < window; ++u) {
          for (std::size_t v = 0; v < window; ++v) {
            acc += input(ch, r * window + u, col * window + v);
          }
        }
        out(ch, r, col) = acc / count;
      }
    }
  }
  if (ops) {
    ops->add("pool_add", static_cast<std::uint64_t>(c) * oh * ow *
                             (window * window - 1));
  }
  return out;
}

double pool_comparator_cost(int compare_bits) {
  const int bits = (compare_bits <= 0 || compare_bits >= 16) ? 16 : compare_bits;
  return static_cast<double>(bits) / 16.0;
}

std::vector<float> fc_forward_approx(const FcLayer& layer,
                                     std::span<const float> input,
                                     const QuantConfig& quant,
                                     const ApproxArithConfig& arith,
                                     core::OpCounter* ops) {
  assert(layer.weights.rank() == 2);
  assert(layer.weights.dim(1) == input.size());
  // Reuse the approximate conv datapath: a 1x1 "image" with in_dim
  // channels and a [out, in, 1, 1] kernel.
  const std::size_t in_dim = input.size();
  const std::size_t out_dim = layer.weights.dim(0);
  ConvLayer conv;
  conv.weights = core::TensorF({out_dim, in_dim, 1, 1});
  for (std::size_t o = 0; o < out_dim; ++o) {
    for (std::size_t i = 0; i < in_dim; ++i) {
      conv.weights(o, i, 0, 0) = layer.weights(o, i);
    }
  }
  conv.bias = layer.bias;
  conv.relu = layer.relu;
  FeatureMap x({in_dim, 1, 1});
  for (std::size_t i = 0; i < in_dim; ++i) x(i, 0, 0) = input[i];
  const auto y = apply_approx(conv, x, quant, arith, ops);
  std::vector<float> out(out_dim);
  for (std::size_t o = 0; o < out_dim; ++o) out[o] = y(o, 0, 0);
  return out;
}

PoolErrorStats measure_pool_error(std::size_t size, std::size_t window,
                                  int compare_bits, std::uint64_t seed) {
  core::Rng rng(seed);
  FeatureMap input({1, size, size});
  for (auto& v : input.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));
  const auto exact = max_pool(input, window, 16);
  const auto approx = max_pool(input, window, compare_bits);
  PoolErrorStats stats;
  std::size_t mismatches = 0;
  double loss = 0.0;
  for (std::size_t i = 0; i < exact.numel(); ++i) {
    if (approx[i] != exact[i]) {
      ++mismatches;
      loss += static_cast<double>(exact[i]) - approx[i];
    }
  }
  stats.mismatch_rate =
      static_cast<double>(mismatches) / static_cast<double>(exact.numel());
  stats.mean_value_loss = mismatches > 0 ? loss / mismatches : 0.0;
  return stats;
}

}  // namespace icsc::approx
