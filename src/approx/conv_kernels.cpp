#include "approx/conv_kernels.hpp"

#include <cstring>

namespace icsc::approx {

ColumnInterior conv_interior(std::size_t width, std::size_t kernel) {
  ColumnInterior interior;
  const std::size_t pad = kernel / 2;
  // cc = c + v - pad in [0, w) for every v in [0, k): c >= pad and
  // c <= w - k + pad. Degenerate frames (w < k) have no interior at all.
  if (width < kernel) return interior;
  interior.begin = pad;
  interior.count = width - kernel + 1;
  return interior;
}

namespace {

/// Enumerates the valid (ic, u) source rows of output row `r` in reference
/// order, invoking fn(ic, u, rr) for each.
template <typename Fn>
void for_valid_rows(std::size_t cin, std::size_t h, std::size_t r,
                    std::size_t kernel, Fn&& fn) {
  const auto pad = static_cast<std::ptrdiff_t>(kernel / 2);
  for (std::size_t ic = 0; ic < cin; ++ic) {
    for (std::size_t u = 0; u < kernel; ++u) {
      const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r + u) - pad;
      if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h)) continue;
      fn(ic, u, static_cast<std::size_t>(rr));
    }
  }
}

}  // namespace

void build_conv_row_panel(const core::TensorF& input, std::size_t r,
                          std::size_t kernel, ConvRowPanel& panel) {
  const std::size_t cin = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t pad = kernel / 2;
  panel.interior = conv_interior(w, kernel);
  panel.taps = 0;
  panel.data.clear();
  panel.tap_flat.clear();
  if (panel.interior.count == 0) return;
  const std::size_t cols = panel.interior.count;
  for_valid_rows(cin, h, r, kernel, [&](std::size_t ic, std::size_t u,
                                        std::size_t rr) {
    // One panel row per horizontal tap v: the source row shifted so that
    // column c of the panel is input(ic, rr, begin + c + v - pad). Every
    // interior column's taps are in-bounds by construction.
    const float* src = &input(ic, rr, 0);
    for (std::size_t v = 0; v < kernel; ++v) {
      const std::size_t shift = panel.interior.begin + v - pad;
      panel.data.resize(panel.data.size() + cols);
      std::memcpy(panel.data.data() + panel.taps * cols, src + shift,
                  cols * sizeof(float));
      panel.tap_flat.push_back(
          static_cast<std::uint32_t>((ic * kernel + u) * kernel + v));
      ++panel.taps;
    }
  });
}

void conv_panel_dot_f32(const ConvRowPanel& panel, const float* w_flat,
                        double* acc) {
  const std::size_t cols = panel.interior.count;
  for (std::size_t t = 0; t < panel.taps; ++t) {
    const double wt = static_cast<double>(w_flat[panel.tap_flat[t]]);
    const float* row = panel.data.data() + t * cols;
    // Columns are independent accumulators: the compiler vectorises this
    // loop while each acc[c] still sees taps in reference order.
    for (std::size_t c = 0; c < cols; ++c) {
      acc[c] += wt * static_cast<double>(row[c]);
    }
  }
}

void build_qconv_row_panel(const std::int32_t* q_input, std::size_t cin,
                           std::size_t h, std::size_t w, std::size_t r,
                           std::size_t kernel, QConvRowPanel& panel) {
  const std::size_t pad = kernel / 2;
  panel.interior = conv_interior(w, kernel);
  panel.taps = 0;
  panel.data.clear();
  panel.tap_flat.clear();
  if (panel.interior.count == 0) return;
  const std::size_t cols = panel.interior.count;
  for_valid_rows(cin, h, r, kernel, [&](std::size_t ic, std::size_t u,
                                        std::size_t rr) {
    const std::int32_t* src = q_input + (ic * h + rr) * w;
    for (std::size_t v = 0; v < kernel; ++v) {
      const std::size_t shift = panel.interior.begin + v - pad;
      panel.data.resize(panel.data.size() + cols);
      std::memcpy(panel.data.data() + panel.taps * cols, src + shift,
                  cols * sizeof(std::int32_t));
      panel.tap_flat.push_back(
          static_cast<std::uint32_t>((ic * kernel + u) * kernel + v));
      ++panel.taps;
    }
  });
}

}  // namespace icsc::approx
