#include "approx/conv_kernels.hpp"

#include <cstring>

#include "approx/approx_arith.hpp"
#include "core/simd.hpp"

namespace icsc::approx {

ColumnInterior conv_interior(std::size_t width, std::size_t kernel) {
  ColumnInterior interior;
  const std::size_t pad = kernel / 2;
  // cc = c + v - pad in [0, w) for every v in [0, k): c >= pad and
  // c <= w - k + pad. Degenerate frames (w < k) have no interior at all.
  if (width < kernel) return interior;
  interior.begin = pad;
  interior.count = width - kernel + 1;
  return interior;
}

namespace {

/// Enumerates the valid (ic, u) source rows of output row `r` in reference
/// order, invoking fn(ic, u, rr) for each.
template <typename Fn>
void for_valid_rows(std::size_t cin, std::size_t h, std::size_t r,
                    std::size_t kernel, Fn&& fn) {
  const auto pad = static_cast<std::ptrdiff_t>(kernel / 2);
  for (std::size_t ic = 0; ic < cin; ++ic) {
    for (std::size_t u = 0; u < kernel; ++u) {
      const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r + u) - pad;
      if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h)) continue;
      fn(ic, u, static_cast<std::size_t>(rr));
    }
  }
}

}  // namespace

void build_conv_row_panel(const core::TensorF& input, std::size_t r,
                          std::size_t kernel, ConvRowPanel& panel) {
  const std::size_t cin = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t pad = kernel / 2;
  panel.interior = conv_interior(w, kernel);
  panel.taps = 0;
  panel.data.clear();
  panel.tap_flat.clear();
  if (panel.interior.count == 0) return;
  const std::size_t cols = panel.interior.count;
  for_valid_rows(cin, h, r, kernel, [&](std::size_t ic, std::size_t u,
                                        std::size_t rr) {
    // One panel row per horizontal tap v: the source row shifted so that
    // column c of the panel is input(ic, rr, begin + c + v - pad). Every
    // interior column's taps are in-bounds by construction.
    const float* src = &input(ic, rr, 0);
    for (std::size_t v = 0; v < kernel; ++v) {
      const std::size_t shift = panel.interior.begin + v - pad;
      panel.data.resize(panel.data.size() + cols);
      std::memcpy(panel.data.data() + panel.taps * cols, src + shift,
                  cols * sizeof(float));
      panel.tap_flat.push_back(
          static_cast<std::uint32_t>((ic * kernel + u) * kernel + v));
      ++panel.taps;
    }
  });
  // Tap-row pointers for the whole-panel SIMD dot; `data` has its final
  // size here, so the pointers stay valid until the next rebuild.
  panel.row_ptrs.resize(panel.taps);
  for (std::size_t t = 0; t < panel.taps; ++t) {
    panel.row_ptrs[t] = panel.data.data() + t * cols;
  }
}

void conv_panel_dot_f32(ConvRowPanel& panel, const float* w_flat,
                        double* acc) {
  const std::size_t cols = panel.interior.count;
  panel.tap_w.resize(panel.taps);
  for (std::size_t t = 0; t < panel.taps; ++t) {
    panel.tap_w[t] = static_cast<double>(w_flat[panel.tap_flat[t]]);
  }
  // Columns are independent accumulators: the SIMD lanes span columns
  // while each acc[c] still sees taps in reference order, one IEEE
  // multiply + add per element (no FMA), so results stay bit-identical
  // to the scalar oracle under every dispatched ISA. The whole-panel
  // primitive keeps the accumulator tile in registers across taps.
  core::simd::tap_panel_axpy_f32_f64(panel.row_ptrs.data(),
                                     panel.tap_w.data(), panel.taps, acc,
                                     cols);
}

void build_qconv_row_panel(const std::int32_t* q_input, std::size_t cin,
                           std::size_t h, std::size_t w, std::size_t r,
                           std::size_t kernel, QConvRowPanel& panel) {
  const std::size_t pad = kernel / 2;
  panel.interior = conv_interior(w, kernel);
  panel.taps = 0;
  panel.data.clear();
  panel.tap_flat.clear();
  if (panel.interior.count == 0) return;
  const std::size_t cols = panel.interior.count;
  for_valid_rows(cin, h, r, kernel, [&](std::size_t ic, std::size_t u,
                                        std::size_t rr) {
    const std::int32_t* src = q_input + (ic * h + rr) * w;
    for (std::size_t v = 0; v < kernel; ++v) {
      const std::size_t shift = panel.interior.begin + v - pad;
      panel.data.resize(panel.data.size() + cols);
      std::memcpy(panel.data.data() + panel.taps * cols, src + shift,
                  cols * sizeof(std::int32_t));
      panel.tap_flat.push_back(
          static_cast<std::uint32_t>((ic * kernel + u) * kernel + v));
      ++panel.taps;
    }
  });
}

void qconv_panel_dot(const QConvRowPanel& panel, const std::int32_t* w_flat,
                     const ApproxArithConfig& arith, std::int64_t* acc) {
  const std::size_t cols = panel.interior.count;
  const int loa_bits =
      arith.adder == ApproxArithConfig::Adder::kLoa ? arith.loa_bits : 0;
  for (std::size_t t = 0; t < panel.taps; ++t) {
    const std::int32_t b = w_flat[panel.tap_flat[t]];
    const std::int32_t* row = panel.data.data() + t * cols;
    switch (arith.multiplier) {
      case ApproxArithConfig::Multiplier::kExact:
        core::simd::qtap_exact(row, b, loa_bits, acc, cols);
        break;
      case ApproxArithConfig::Multiplier::kTruncated:
        core::simd::qtap_truncated(row, b, arith.truncated_bits, loa_bits,
                                   acc, cols);
        break;
      case ApproxArithConfig::Multiplier::kMitchell:
        for (std::size_t c = 0; c < cols; ++c) {
          const std::int64_t term = mitchell_mul(row[c], b);
          acc[c] = loa_bits > 0 ? loa_add(acc[c], term, loa_bits)
                                : acc[c] + term;
        }
        break;
    }
  }
}

}  // namespace icsc::approx
