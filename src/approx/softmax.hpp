// Aggressively approximated SoftMax (Sec. V, [18]).
//
// Spagnolo, Perri, Corsonello, "Aggressive Approximation of the SoftMax
// Function for Power-Efficient Hardware Implementations" replaces e^x with
// a base-2 exponential computed by shift-and-linear-interpolation and the
// normalising division with a shift by the leading-one position of the
// accumulated sum. We implement the exact reference, the approximate
// datapath, and error/op accounting so the power-accuracy trade-off can be
// reproduced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/metrics.hpp"

namespace icsc::approx {

/// Exact floating-point softmax (max-subtracted for stability).
///
/// Non-finite inputs: +Inf logits yield a finite distribution over the
/// infinite positions (each maps to exp(0) == 1 before normalisation);
/// all -Inf collapses to uniform; NaN logits propagate NaN to the output
/// without trapping. The same contract holds for the approximate variants.
std::vector<float> softmax_exact(std::span<const float> logits);

/// Hardware-approximate softmax:
///  1. subtract the running max (exact comparators),
///  2. 2^z with z = x*log2(e), exponent by shift, fraction by the
///     piecewise-linear approximation 2^f ~ 1 + f,
///  3. normalisation by the nearest power of two of the sum (leading-one
///     detector + shift) instead of a divider.
/// Outputs therefore sum to a value in (0.5, 2), not exactly 1 -- the
/// downstream argmax/attention consumer tolerates the scale error.
std::vector<float> softmax_approx(std::span<const float> logits,
                                  core::OpCounter* ops = nullptr);

/// Like softmax_approx but with an exact normalising division, isolating
/// the error contribution of the exponential approximation alone.
std::vector<float> softmax_approx_exact_norm(std::span<const float> logits);

/// Error metrics of an approximate probability vector vs the exact one.
struct SoftmaxError {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  bool argmax_preserved = true;
};

SoftmaxError compare_softmax(std::span<const float> exact,
                             std::span<const float> approx);

/// Monte-Carlo sweep: mean/max error and argmax-preservation rate over
/// random logit vectors of the given width.
struct SoftmaxSweep {
  double mean_max_abs_error = 0.0;
  double worst_max_abs_error = 0.0;
  double argmax_preservation_rate = 0.0;
};

SoftmaxSweep sweep_softmax(int width, int trials, double logit_range,
                           std::uint64_t seed);

}  // namespace icsc::approx
