// Analytic FPGA implementation-cost model for the Sec. V SR accelerators.
//
// We cannot synthesise bitstreams offline, so Table I's implementation
// columns (LUT/FF/DSP/BRAM/Fmax/power) are produced by an analytic model of
// the HTCONV engine micro-architecture: a fully pipelined MAC array sized
// for one network stage-slice per cycle, line-buffer BRAM between stages,
// and interpolation adders for the approximated phases. The model's
// calibration constants (LUTs per MAC lane, pJ per lane-cycle, ...) are
// fitted once against the published implementation of [14] on the
// XC7K410T; the bench then reports model-vs-paper deltas per column.
#pragma once

#include <string>
#include <vector>

#include "approx/fsrcnn.hpp"

namespace icsc::approx {

/// Parameters of a streaming SR accelerator implementing an FSRCNN variant.
struct SrEngineParams {
  /// Network topology; the published "New" engine runs FSRCNN(25,5,1).
  FsrcnnConfig model{25, 5, 1, FsrcnnConfig::Upsampler::kTent, 0.02, 2025};
  int data_bits = 16;
  int weight_bits = 16;
  TconvMode mode = TconvMode::kFoveated;
  double foveal_fraction = 0.06;  // fovea area / frame area
  std::size_t frame_width = 1920;   // LR line length, sizes line buffers
  std::size_t frame_height = 1080;
  /// DSP48-class primitives can pack two 16-bit MACs.
  int macs_per_dsp = 2;
};

/// Estimated implementation of the engine on a Kintex-7-class device.
struct CostEstimate {
  double macs_per_cycle = 0.0;   // MAC-array width (one LR pixel per cycle)
  int luts = 0;
  int ffs = 0;
  int dsps = 0;
  double bram_kb = 0.0;
  double fmax_mhz = 0.0;
  double out_throughput_mpix_s = 0.0;  // HR pixels per second
  double power_w = 0.0;
  double energy_eff_mpix_per_w = 0.0;
};

CostEstimate estimate_sr_engine(const SrEngineParams& params);

/// One row of Table I.
struct Table1Row {
  std::string method;
  std::string in_resolution;
  std::string bitwidth;
  std::string technology;
  double fmax_mhz = 0.0;
  double out_throughput_mpix_s = 0.0;
  int luts = 0;
  int ffs = 0;
  int dsps = 0;
  double bram_kb = 0.0;
  double power_w = 0.0;          // <= 0 means "NA"
  double energy_eff_mpix_per_w = 0.0;
};

/// The published state-of-the-art rows of Table I ([15] and [17]), as
/// printed in the paper (literature data, not simulated).
std::vector<Table1Row> table1_literature();

/// The paper's published "New" row (reference values for comparison).
Table1Row table1_new_published();

/// The "New" row as produced by our cost model for the given parameters
/// (defaults reproduce the published configuration).
Table1Row table1_new_modeled(const SrEngineParams& params);

/// Flexible CONV+TCONV engine study ([16]): one reconfigurable engine that
/// executes both operation types (mode muxes add LUT/FF overhead) vs two
/// dedicated engines (duplicated area, no overhead). The classic
/// flexibility-vs-area trade the Sec. V accelerators navigate.
struct FlexibleEngineComparison {
  CostEstimate dedicated_conv;    // CONV-only engine
  CostEstimate dedicated_tconv;   // TCONV-only engine
  CostEstimate flexible;          // one engine, both modes
  double dedicated_total_luts = 0.0;
  double flexible_overhead_luts = 0.0;
  /// Area saving of the flexible engine vs the dedicated pair.
  double area_saving_fraction = 0.0;
};

FlexibleEngineComparison compare_flexible_engine(const SrEngineParams& params);

}  // namespace icsc::approx
