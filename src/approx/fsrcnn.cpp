#include "approx/fsrcnn.hpp"

#include <array>
#include <cassert>
#include <cmath>

#include "core/rng.hpp"

namespace icsc::approx {

std::string FsrcnnConfig::name() const {
  return "FSRCNN(" + std::to_string(d) + "," + std::to_string(s) + "," +
         std::to_string(m) + ")";
}

namespace {

/// 1-D polyphase interpolation profile for stride-2 zero-insertion TCONV,
/// centred in a 9-tap window.
std::array<float, 9> upsampler_profile(FsrcnnConfig::Upsampler kind) {
  std::array<float, 9> prof{};
  prof[4] = 1.0F;
  switch (kind) {
    case FsrcnnConfig::Upsampler::kTent:
      prof[3] = prof[5] = 0.5F;
      break;
    case FsrcnnConfig::Upsampler::kCatmullRom:
      prof[3] = prof[5] = 9.0F / 16.0F;
      prof[1] = prof[7] = -1.0F / 16.0F;
      break;
  }
  return prof;
}

void fill_detail(core::TensorF& weights, core::Rng& rng, double scale) {
  for (auto& w : weights.data()) {
    w = static_cast<float>(rng.normal(0.0, scale));
  }
}

}  // namespace

Fsrcnn::Fsrcnn(const FsrcnnConfig& config) : config_(config) {
  core::Rng rng(config.seed);
  const auto d = static_cast<std::size_t>(config.d);
  const auto s = static_cast<std::size_t>(config.s);

  // Feature extraction: 5x5, 1 -> d. Channel 0 carries the image (delta
  // filter); the rest are small deterministic detail filters.
  ConvLayer feature;
  feature.weights = core::TensorF({d, 1, 5, 5});
  fill_detail(feature.weights, rng, config.detail_scale);
  for (std::size_t u = 0; u < 5; ++u) {
    for (std::size_t v = 0; v < 5; ++v) feature.weights(0, 0, u, v) = 0.0F;
  }
  feature.weights(0, 0, 2, 2) = 1.0F;
  feature.bias.assign(d, 0.0F);
  conv_layers_.push_back(std::move(feature));

  // Shrink: 1x1, d -> s.
  ConvLayer shrink;
  shrink.weights = core::TensorF({s, d, 1, 1});
  fill_detail(shrink.weights, rng, config.detail_scale * 0.5);
  for (std::size_t ic = 0; ic < d; ++ic) shrink.weights(0, ic, 0, 0) = 0.0F;
  shrink.weights(0, 0, 0, 0) = 1.0F;
  shrink.bias.assign(s, 0.0F);
  conv_layers_.push_back(std::move(shrink));

  // Mapping: m x (3x3, s -> s), identity on every channel plus detail.
  for (int layer = 0; layer < config.m; ++layer) {
    ConvLayer map;
    map.weights = core::TensorF({s, s, 3, 3});
    fill_detail(map.weights, rng, config.detail_scale * 0.25);
    for (std::size_t c = 0; c < s; ++c) {
      for (std::size_t ic = 0; ic < s; ++ic) {
        for (std::size_t u = 0; u < 3; ++u) {
          for (std::size_t v = 0; v < 3; ++v) {
            if (ic == c) map.weights(c, ic, u, v) = 0.0F;
          }
        }
      }
      map.weights(c, c, 1, 1) = 1.0F;
    }
    map.bias.assign(s, 0.0F);
    conv_layers_.push_back(std::move(map));
  }

  // Expand: 1x1, s -> d.
  ConvLayer expand;
  expand.weights = core::TensorF({d, s, 1, 1});
  fill_detail(expand.weights, rng, config.detail_scale * 0.5);
  for (std::size_t ic = 0; ic < s; ++ic) expand.weights(0, ic, 0, 0) = 0.0F;
  expand.weights(0, 0, 0, 0) = 1.0F;
  expand.bias.assign(d, 0.0F);
  conv_layers_.push_back(std::move(expand));

  // Deconvolution: 9x9 stride 2, d -> 1. Channel 0 is the separable
  // interpolator; the detail channels contribute faint texture.
  deconv_.weights = core::TensorF({d, 9, 9});
  fill_detail(deconv_.weights, rng, config.detail_scale * 0.05);
  const auto prof = upsampler_profile(config.upsampler);
  for (std::size_t u = 0; u < 9; ++u) {
    for (std::size_t v = 0; v < 9; ++v) {
      deconv_.weights(0, u, v) = prof[u] * prof[v];
    }
  }
  deconv_.bias = 0.0F;
}

core::Image Fsrcnn::upscale(const core::Image& lowres, const QuantConfig& quant,
                            TconvMode mode, const FovealRegion& fovea,
                            core::OpCounter* ops) const {
  FeatureMap act({1, lowres.height(), lowres.width()});
  for (std::size_t r = 0; r < lowres.height(); ++r) {
    for (std::size_t c = 0; c < lowres.width(); ++c) {
      act(0, r, c) = lowres.at(r, c);
    }
  }
  quantize_map(act, quant);
  for (const auto& layer : conv_layers_) {
    act = layer.apply(act, quant, ops);
  }
  core::Image out =
      mode == TconvMode::kExact
          ? deconv_.apply_exact(act, quant, ops)
          : deconv_.apply_foveated(act, fovea, quant, ops);
  out.clamp01();
  return out;
}

core::Image Fsrcnn::upscale(const core::Image& lowres, const QuantConfig& quant,
                            core::OpCounter* ops) const {
  return upscale(lowres, quant, TconvMode::kExact,
                 FovealRegion::full(lowres.height(), lowres.width()), ops);
}

double Fsrcnn::macs_per_lr_pixel(TconvMode mode, double foveal_fraction) const {
  const double d = config_.d;
  const double s = config_.s;
  const double m = config_.m;
  double macs = 25.0 * d        // feature extraction 5x5, 1 -> d
                + d * s         // shrink 1x1
                + m * 9.0 * s * s  // mapping 3x3, s -> s
                + s * d;        // expand 1x1
  const double phase = 81.0 * d;  // one TCONV phase: t^2 * Cin
  if (mode == TconvMode::kExact) {
    macs += 4.0 * phase;
  } else {
    macs += phase * (1.0 + 3.0 * foveal_fraction);
  }
  return macs;
}

SrResult evaluate_sr(const Fsrcnn& model, const core::Image& reference,
                     const QuantConfig& quant, TconvMode mode,
                     const FovealRegion& fovea) {
  const core::Image lowres = core::downscale2x_aligned(reference);
  core::OpCounter ops;
  const core::Image sr = model.upscale(lowres, quant, mode, fovea, &ops);
  SrResult result;
  result.psnr_db = core::psnr(reference, sr);
  result.macs = ops.count("mac");
  result.interp_adds = ops.count("interp_add");
  return result;
}

}  // namespace icsc::approx
