// FSRCNN-style super-resolution pipeline (Sec. V, Table I).
//
// The paper evaluates HTCONV inside "the pre-trained FSRCNN(25,5,1) model
// [19] quantized at 16-bit fixed-point", against the FSRCNN(56,12,4)
// baseline. We do not have the pre-trained Set91 weights offline, so the
// models are built with *analytically constructed* weights: the functional
// path implements a separable polyphase interpolator (tent for the compact
// model, Catmull-Rom for the large one) carried through the
// feature-extraction/shrink/map/expand stack, plus small deterministic
// detail filters that give quantisation and approximation something to
// perturb. This preserves exactly what the experiment measures: MAC-count
// ratios between model configurations (weight-independent) and the PSNR
// penalty of 16-bit quantisation and foveated approximation
// (weight-sensitive, reproduced in shape). See DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "approx/conv.hpp"
#include "core/image.hpp"
#include "core/metrics.hpp"

namespace icsc::approx {

/// FSRCNN(d, s, m): feature extraction (5x5, d) -> shrink (1x1, s) ->
/// m x mapping (3x3, s) -> expand (1x1, d) -> deconvolution (9x9, stride 2).
struct FsrcnnConfig {
  int d = 56;
  int s = 12;
  int m = 4;
  /// Interpolation family realised by the deconvolution kernel.
  enum class Upsampler { kTent, kCatmullRom } upsampler = Upsampler::kCatmullRom;
  /// Magnitude of the deterministic non-functional detail weights.
  double detail_scale = 0.02;
  std::uint64_t seed = 2025;

  std::string name() const;
};

/// How the final transposed convolution is evaluated.
enum class TconvMode {
  kExact,    // conventional TCONV, all phases accurate
  kFoveated  // HTCONV (Fig. 3)
};

class Fsrcnn {
public:
  explicit Fsrcnn(const FsrcnnConfig& config);

  /// Runs 2x super-resolution on a low-resolution image.
  core::Image upscale(const core::Image& lowres, const QuantConfig& quant,
                      TconvMode mode, const FovealRegion& fovea,
                      core::OpCounter* ops = nullptr) const;

  /// Convenience: exact-TCONV evaluation.
  core::Image upscale(const core::Image& lowres, const QuantConfig& quant,
                      core::OpCounter* ops = nullptr) const;

  /// Analytic MAC count per low-resolution pixel for the full network with
  /// the given TCONV mode and foveal fraction (matches OpCounter totals up
  /// to border effects).
  double macs_per_lr_pixel(TconvMode mode, double foveal_fraction) const;

  const FsrcnnConfig& config() const { return config_; }

private:
  FsrcnnConfig config_;
  std::vector<ConvLayer> conv_layers_;
  TconvLayer deconv_;
};

/// End-to-end evaluation record used by the Table I bench and tests.
struct SrResult {
  double psnr_db = 0.0;
  std::uint64_t macs = 0;
  std::uint64_t interp_adds = 0;
};

/// Downscales `reference` 2x, super-resolves it back with `model`, and
/// reports PSNR against the reference plus op counts.
SrResult evaluate_sr(const Fsrcnn& model, const core::Image& reference,
                     const QuantConfig& quant, TconvMode mode,
                     const FovealRegion& fovea);

}  // namespace icsc::approx
