// Approximate pooling and fully connected layers (Sec. V).
//
// "Our accelerators exploit approximate computing within critical layers
// typically employed in Deep Learning models, such as convolutions ...
// pooling, fully connected operations, and SoftMax". Max pooling in
// hardware is a comparator tree; a precision-scalable comparator that only
// examines the top bits of each operand shrinks the tree at a small risk
// of picking a near-maximal element instead of the maximum -- which
// pooling tolerates by construction. Fully connected layers reuse the
// approximate MAC datapath of approx_conv.
#pragma once

#include "approx/approx_conv.hpp"
#include "approx/conv.hpp"

namespace icsc::approx {

/// Max pooling with window w x w, stride w ("non-overlapping"), over a
/// [C, H, W] feature map. compare_bits < 16 uses an approximate comparator
/// that only examines the top `compare_bits` of the Q7.8 code (0 or >= 16
/// means exact).
FeatureMap max_pool(const FeatureMap& input, std::size_t window,
                    int compare_bits = 16, core::OpCounter* ops = nullptr);

/// Average pooling (exact adder tree + shift; w must be a power of two for
/// the shift-division to be exact, otherwise truncating divide).
FeatureMap avg_pool(const FeatureMap& input, std::size_t window,
                    core::OpCounter* ops = nullptr);

/// Relative comparator-tree cost of the approximate max pool: examining b
/// of 16 bits scales the comparator area/energy ~ linearly.
double pool_comparator_cost(int compare_bits);

/// Fully connected layer y = W x + b on the approximate integer datapath
/// (a 1x1 convolution over a 1x1 feature map, reusing apply_approx).
struct FcLayer {
  core::TensorF weights;  // [out, in]
  std::vector<float> bias;
  bool relu = true;
};

std::vector<float> fc_forward_approx(const FcLayer& layer,
                                     std::span<const float> input,
                                     const QuantConfig& quant,
                                     const ApproxArithConfig& arith,
                                     core::OpCounter* ops = nullptr);

/// Fraction of pooling windows where the approximate comparator picks a
/// different element than the exact max, and the mean value loss when it
/// does (the pooling counterpart of the PSNR studies).
struct PoolErrorStats {
  double mismatch_rate = 0.0;
  double mean_value_loss = 0.0;
};

PoolErrorStats measure_pool_error(std::size_t size, std::size_t window,
                                  int compare_bits, std::uint64_t seed);

}  // namespace icsc::approx
