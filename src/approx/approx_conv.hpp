// Convolution datapath with approximate arithmetic operators (Sec. V).
//
// "AI models can take advantage of sophisticated approximation strategies
// that allow the fine-tuning of the power-delay-accuracy tradeoffs": this
// module executes a fixed-point convolution bit-accurately through the
// approximate multipliers/adders of approx_arith.hpp (truncated, Mitchell,
// lower-part-OR accumulation) and reports the relative datapath energy, so
// the quality/energy Pareto of operator choices can be swept.
#pragma once

#include "approx/approx_arith.hpp"
#include "approx/conv.hpp"

namespace icsc::approx {

struct ApproxArithConfig {
  enum class Multiplier { kExact, kTruncated, kMitchell };
  enum class Adder { kExact, kLoa };

  Multiplier multiplier = Multiplier::kExact;
  int truncated_bits = 8;  // columns dropped from the multiplier array
  Adder adder = Adder::kExact;
  int loa_bits = 8;        // OR-ed low bits of the accumulator

  /// Datapath energy relative to the exact multiplier+adder (1.0).
  /// Multipliers dominate: 80% of MAC energy; adders the remaining 20%.
  double energy_factor() const;
};

/// Runs `layer` on `input` through an integer datapath built from the
/// configured approximate operators. Activations are Q(a_int).(a_frac),
/// weights Q(w_int).(w_frac) per `quant` (quant.enabled must be true: the
/// approximate units are integer hardware). Accumulation is 64-bit with
/// the configured adder; the result is rescaled, ReLU'd per the layer, and
/// re-quantised like ConvLayer::apply.
/// Fast path: quantised im2col row panels + register-blocked accumulation
/// (conv_kernels.hpp). Per-output operator application order is identical
/// to `apply_approx_reference`, so outputs are bit-identical even under
/// the non-associative approximate adders.
FeatureMap apply_approx(const ConvLayer& layer, const FeatureMap& input,
                        const QuantConfig& quant,
                        const ApproxArithConfig& arith,
                        core::OpCounter* ops = nullptr);

/// The original scalar 5-deep loop, retained as the equivalence oracle for
/// tests and the old-path baseline for bench_kernels.
FeatureMap apply_approx_reference(const ConvLayer& layer,
                                  const FeatureMap& input,
                                  const QuantConfig& quant,
                                  const ApproxArithConfig& arith,
                                  core::OpCounter* ops = nullptr);

/// Quality/energy point of one approximate configuration vs the exact
/// fixed-point datapath on a synthetic image and a smoothing+edge kernel
/// stack (the sweep behind the Sec. V trade-off discussion).
struct ApproxConvResult {
  double psnr_vs_exact_db = 0.0;
  double energy_factor = 1.0;
};

ApproxConvResult evaluate_approx_conv(const ApproxArithConfig& arith,
                                      std::size_t image_size,
                                      std::uint64_t seed);

}  // namespace icsc::approx
