#include "approx/approx_arith.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "core/rng.hpp"

namespace icsc::approx {

std::int64_t loa_add(std::int64_t a, std::int64_t b, int approx_bits) {
  if (approx_bits <= 0) return a + b;
  const std::uint64_t mask = (std::uint64_t{1} << approx_bits) - 1;
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  // Low part: bitwise OR (no carries). High part: exact add without a
  // carry-in from the low part (the LOA drops it).
  const std::uint64_t low = (ua | ub) & mask;
  const std::uint64_t high = (ua & ~mask) + (ub & ~mask);
  return static_cast<std::int64_t>(high | low);
}

std::int64_t truncated_mul(std::int32_t a, std::int32_t b,
                           int truncated_bits) {
  if (truncated_bits <= 0) {
    return static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
  }
  const bool negative = (a < 0) != (b < 0);
  std::uint64_t ua = static_cast<std::uint64_t>(std::llabs(a));
  const std::uint64_t ub = static_cast<std::uint64_t>(std::llabs(b));
  // Accumulate partial products a * bit_j(b) << j, dropping every partial
  // product bit of weight < 2^truncated_bits (column truncation).
  std::uint64_t acc = 0;
  for (int j = 0; j < 32; ++j) {
    if (((ub >> j) & 1) == 0) continue;
    std::uint64_t pp = ua << j;
    pp &= ~((std::uint64_t{1} << truncated_bits) - 1);
    acc += pp;
  }
  const auto magnitude = static_cast<std::int64_t>(acc);
  return negative ? -magnitude : magnitude;
}

std::int64_t mitchell_mul(std::int32_t a, std::int32_t b) {
  if (a == 0 || b == 0) return 0;
  const bool negative = (a < 0) != (b < 0);
  const auto ua = static_cast<std::uint32_t>(std::llabs(a));
  const auto ub = static_cast<std::uint32_t>(std::llabs(b));

  // log2(x) ~ k + f where k = position of leading one and f = fraction.
  // Use 30 fractional bits in fixed point for the characteristic sum.
  constexpr int kFracBits = 30;
  auto approx_log2 = [](std::uint32_t x) -> std::uint64_t {
    const int k = 31 - std::countl_zero(x);
    const std::uint64_t mantissa = static_cast<std::uint64_t>(x) -
                                   (std::uint64_t{1} << k);
    // f = mantissa / 2^k, scaled to kFracBits.
    const std::uint64_t frac =
        k >= 0 ? (mantissa << kFracBits) >> k : 0;
    return (static_cast<std::uint64_t>(k) << kFracBits) | frac;
  };

  const std::uint64_t log_sum = approx_log2(ua) + approx_log2(ub);
  const int k = static_cast<int>(log_sum >> kFracBits);
  const std::uint64_t frac = log_sum & ((std::uint64_t{1} << kFracBits) - 1);
  // antilog: 2^(k+f) ~ 2^k * (1 + f).
  const std::uint64_t one_plus_f = (std::uint64_t{1} << kFracBits) + frac;
  std::uint64_t magnitude;
  if (k >= kFracBits) {
    magnitude = one_plus_f << (k - kFracBits);
  } else {
    magnitude = one_plus_f >> (kFracBits - k);
  }
  const auto result = static_cast<std::int64_t>(magnitude);
  return negative ? -result : result;
}

ErrorStats measure_error(
    const std::function<std::int64_t(std::int32_t, std::int32_t)>& approx_op,
    const std::function<std::int64_t(std::int32_t, std::int32_t)>& exact_op,
    std::int32_t magnitude, int trials, std::uint64_t seed) {
  core::Rng rng(seed);
  ErrorStats stats;
  for (int t = 0; t < trials; ++t) {
    const auto a = static_cast<std::int32_t>(rng.range(-magnitude, magnitude));
    const auto b = static_cast<std::int32_t>(rng.range(-magnitude, magnitude));
    const double exact = static_cast<double>(exact_op(a, b));
    const double got = static_cast<double>(approx_op(a, b));
    const double err = got - exact;
    const double rel = std::abs(err) / std::max(1.0, std::abs(exact));
    stats.mean_relative_error += rel;
    stats.max_relative_error = std::max(stats.max_relative_error, rel);
    stats.mean_error += err;
    if (err != 0.0) stats.error_rate += 1.0;
  }
  const double n = std::max(1, trials);
  stats.mean_relative_error /= n;
  stats.mean_error /= n;
  stats.error_rate /= n;
  return stats;
}

double loa_energy_factor(int approx_bits, int total_bits) {
  // The carry chain dominates adder energy; OR-ing k of n bits removes
  // roughly that fraction of the chain plus the full-adder cells.
  const double fraction =
      std::clamp(static_cast<double>(approx_bits) / total_bits, 0.0, 1.0);
  return 1.0 - 0.85 * fraction;
}

double truncated_mul_energy_factor(int truncated_bits, int total_bits) {
  // Array multiplier energy scales with the number of partial-product
  // cells ~ n^2; truncating the low t columns removes ~ t*(t+1)/2 cells
  // out of n*(n+1)/2 for the triangular low section plus t*n rectangular.
  const double n = total_bits;
  const double t = std::clamp<double>(truncated_bits, 0.0, n);
  const double total_cells = n * n;
  const double removed = t * n - t * (t - 1) / 2.0;
  return std::max(0.1, 1.0 - removed / total_cells);
}

double mitchell_mul_energy_factor() {
  // Published log-multiplier syntheses land near 30-40% of an exact array
  // multiplier (adders + shifters replace the PP array).
  return 0.35;
}

}  // namespace icsc::approx
