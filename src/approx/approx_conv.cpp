#include "approx/approx_conv.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "approx/conv_kernels.hpp"
#include "core/image.hpp"
#include "core/parallel.hpp"

namespace icsc::approx {

double ApproxArithConfig::energy_factor() const {
  double mul_factor = 1.0;
  switch (multiplier) {
    case Multiplier::kExact: break;
    case Multiplier::kTruncated:
      mul_factor = truncated_mul_energy_factor(truncated_bits, 32);
      break;
    case Multiplier::kMitchell:
      mul_factor = mitchell_mul_energy_factor();
      break;
  }
  double add_factor = 1.0;
  if (adder == Adder::kLoa) add_factor = loa_energy_factor(loa_bits, 32);
  return 0.8 * mul_factor + 0.2 * add_factor;
}

namespace {

std::int32_t to_raw(float value, int int_bits, int frac_bits) {
  const double scale = static_cast<double>(1 << frac_bits);
  const double raw_max =
      static_cast<double>((1ll << (int_bits + frac_bits)) - 1);
  double scaled = std::round(static_cast<double>(value) * scale);
  scaled = std::clamp(scaled, -raw_max - 1.0, raw_max);
  return static_cast<std::int32_t>(scaled);
}

/// Everything both datapaths share: pre-quantised integer operands and the
/// configured multiplier/adder chain. Integer operands: activations Qa,
/// weights Qw; products carry a_frac + w_frac fractional bits.
struct QConvContext {
  const ConvLayer& layer;
  const QuantConfig& quant;
  const ApproxArithConfig& arith;
  int out_shift;     // back to activation scale
  double act_scale;
  std::vector<std::int32_t> q_weights;
  std::vector<std::int32_t> q_input;

  QConvContext(const ConvLayer& layer_in, const FeatureMap& input,
               const QuantConfig& quant_in, const ApproxArithConfig& arith_in)
      : layer(layer_in),
        quant(quant_in),
        arith(arith_in),
        out_shift(quant_in.weight_frac_bits),
        act_scale(static_cast<double>(1 << quant_in.activation_frac_bits)),
        q_weights(layer_in.weights.numel()),
        q_input(input.numel()) {
    for (std::size_t i = 0; i < q_weights.size(); ++i) {
      q_weights[i] = to_raw(layer.weights[i], quant.weight_int_bits,
                            quant.weight_frac_bits);
    }
    for (std::size_t i = 0; i < q_input.size(); ++i) {
      q_input[i] = to_raw(input[i], quant.activation_int_bits,
                          quant.activation_frac_bits);
    }
  }

  std::int64_t mul(std::int32_t a, std::int32_t b) const {
    switch (arith.multiplier) {
      case ApproxArithConfig::Multiplier::kExact:
        return static_cast<std::int64_t>(a) * b;
      case ApproxArithConfig::Multiplier::kTruncated:
        return truncated_mul(a, b, arith.truncated_bits);
      case ApproxArithConfig::Multiplier::kMitchell:
        return mitchell_mul(a, b);
    }
    return 0;
  }

  std::int64_t add(std::int64_t acc, std::int64_t term) const {
    if (arith.adder == ApproxArithConfig::Adder::kLoa) {
      return loa_add(acc, term, arith.loa_bits);
    }
    return acc + term;
  }

  std::int64_t bias_raw(std::size_t oc) const {
    return layer.bias.empty()
               ? 0
               : static_cast<std::int64_t>(
                     to_raw(layer.bias[oc], quant.activation_int_bits,
                            quant.activation_frac_bits))
                     << out_shift;
  }

  /// The original per-element operator chain, shared by the reference path
  /// and the fast path's border columns.
  std::int64_t scalar_element(std::size_t h, std::size_t w, std::size_t oc,
                              std::size_t r, std::size_t c) const {
    const std::size_t cin = layer.in_channels();
    const std::size_t k = layer.kernel();
    const auto pad = static_cast<std::ptrdiff_t>(k / 2);
    std::int64_t acc = bias_raw(oc);
    for (std::size_t ic = 0; ic < cin; ++ic) {
      for (std::size_t u = 0; u < k; ++u) {
        const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r + u) - pad;
        if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h)) continue;
        for (std::size_t v = 0; v < k; ++v) {
          const std::ptrdiff_t cc = static_cast<std::ptrdiff_t>(c + v) - pad;
          if (cc < 0 || cc >= static_cast<std::ptrdiff_t>(w)) continue;
          const std::int32_t a =
              q_input[(ic * h + static_cast<std::size_t>(rr)) * w +
                      static_cast<std::size_t>(cc)];
          const std::int32_t b = q_weights[((oc * cin + ic) * k + u) * k + v];
          acc = add(acc, mul(a, b));
        }
      }
    }
    return acc;
  }

  float finish(std::int64_t acc) const {
    std::int64_t result = acc >> out_shift;  // back to Qa scale
    if (layer.relu) result = std::max<std::int64_t>(0, result);
    return static_cast<float>(static_cast<double>(result) / act_scale);
  }
};

void book_approx_macs(std::size_t cout, std::size_t h, std::size_t w,
                      std::size_t k, std::size_t cin, core::OpCounter* ops) {
  if (ops) {
    ops->add("approx_mac",
             static_cast<std::uint64_t>(cout) * h * w * k * k * cin);
  }
}

}  // namespace

FeatureMap apply_approx(const ConvLayer& layer, const FeatureMap& input,
                        const QuantConfig& quant,
                        const ApproxArithConfig& arith,
                        core::OpCounter* ops) {
  assert(quant.enabled && "approximate units are integer hardware");
  const std::size_t cin = layer.in_channels();
  const std::size_t cout = layer.out_channels();
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t k = layer.kernel();
  const QConvContext ctx(layer, input, quant, arith);

  FeatureMap out({cout, h, w});
  // Rows fan out over the pool; each worker packs the quantised im2col
  // panel once per row and reuses it across output channels. Taps are
  // combined through the configured multiplier/adder in the reference
  // (ic, u, v) order per output, so even the non-associative approximate
  // operators produce bit-identical results vs apply_approx_reference.
  core::parallel_for(0, h, 1, [&](std::size_t begin, std::size_t end) {
    QConvRowPanel panel;
    core::aligned_vector<std::int64_t> acc;
    for (std::size_t r = begin; r < end; ++r) {
      build_qconv_row_panel(ctx.q_input.data(), cin, h, w, r, k, panel);
      const std::size_t c_lo = panel.interior.begin;
      const std::size_t c_hi = c_lo + panel.interior.count;
      const std::size_t cols = panel.interior.count;
      for (std::size_t oc = 0; oc < cout; ++oc) {
        if (!panel.empty()) {
          acc.assign(cols, ctx.bias_raw(oc));
          const std::int32_t* w_flat = ctx.q_weights.data() + oc * cin * k * k;
          qconv_panel_dot(panel, w_flat, arith, acc.data());
          for (std::size_t c = c_lo; c < c_hi; ++c) {
            out(oc, r, c) = ctx.finish(acc[c - c_lo]);
          }
        }
        for (std::size_t c = 0; c < w; ++c) {
          if (c >= c_lo && c < c_hi && !panel.empty()) continue;
          out(oc, r, c) = ctx.finish(ctx.scalar_element(h, w, oc, r, c));
        }
      }
    }
  });
  book_approx_macs(cout, h, w, k, cin, ops);
  quantize_map(out, quant);
  return out;
}

FeatureMap apply_approx_reference(const ConvLayer& layer,
                                  const FeatureMap& input,
                                  const QuantConfig& quant,
                                  const ApproxArithConfig& arith,
                                  core::OpCounter* ops) {
  assert(quant.enabled && "approximate units are integer hardware");
  const std::size_t cin = layer.in_channels();
  const std::size_t cout = layer.out_channels();
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t k = layer.kernel();
  const QConvContext ctx(layer, input, quant, arith);

  FeatureMap out({cout, h, w});
  // Independent (output channel, row) pairs fan out over the pool; the
  // integer arithmetic chain per element is untouched, so approximate
  // multiplier/adder behaviour is bit-exact vs the serial loop.
  core::parallel_for(0, cout * h, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const std::size_t oc = idx / h;
      const std::size_t r = idx % h;
      for (std::size_t c = 0; c < w; ++c) {
        out(oc, r, c) = ctx.finish(ctx.scalar_element(h, w, oc, r, c));
      }
    }
  });
  book_approx_macs(cout, h, w, k, cin, ops);
  quantize_map(out, quant);
  return out;
}

ApproxConvResult evaluate_approx_conv(const ApproxArithConfig& arith,
                                      std::size_t image_size,
                                      std::uint64_t seed) {
  const auto scene = core::make_scene(core::SceneKind::kNaturalComposite,
                                      image_size, image_size, seed);
  FeatureMap input({1, image_size, image_size});
  for (std::size_t r = 0; r < image_size; ++r) {
    for (std::size_t c = 0; c < image_size; ++c) {
      input(0, r, c) = scene.at(r, c);
    }
  }

  // A representative two-stage stack: 3x3 Gaussian smoothing into a 3x3
  // sharpening kernel (unsharp mask), both common in SR/vision pipelines.
  ConvLayer blur;
  blur.weights = core::TensorF({1, 1, 3, 3});
  const float g[3] = {0.25F, 0.5F, 0.25F};
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) blur.weights(0, 0, u, v) = g[u] * g[v];
  }
  blur.bias = {0.0F};
  blur.relu = false;

  ConvLayer sharpen;
  sharpen.weights = core::TensorF({1, 1, 3, 3});
  sharpen.weights(0, 0, 1, 1) = 1.8F;
  sharpen.weights(0, 0, 0, 1) = -0.2F;
  sharpen.weights(0, 0, 2, 1) = -0.2F;
  sharpen.weights(0, 0, 1, 0) = -0.2F;
  sharpen.weights(0, 0, 1, 2) = -0.2F;
  sharpen.bias = {0.0F};
  sharpen.relu = true;

  const QuantConfig q16;
  ApproxArithConfig exact;  // defaults: exact mul + exact add
  const auto ref = apply_approx(sharpen, apply_approx(blur, input, q16, exact),
                                q16, exact);
  const auto got = apply_approx(sharpen, apply_approx(blur, input, q16, arith),
                                q16, arith);

  core::Image ref_img(image_size, image_size), got_img(image_size, image_size);
  for (std::size_t r = 0; r < image_size; ++r) {
    for (std::size_t c = 0; c < image_size; ++c) {
      ref_img.at(r, c) = std::clamp(ref(0, r, c), 0.0F, 1.0F);
      got_img.at(r, c) = std::clamp(got(0, r, c), 0.0F, 1.0F);
    }
  }
  ApproxConvResult result;
  result.psnr_vs_exact_db = core::psnr(ref_img, got_img);
  result.energy_factor = arith.energy_factor();
  return result;
}

}  // namespace icsc::approx
