// Fixed-point convolution and transposed-convolution engines (Sec. V).
//
// These model the datapaths of the FPGA accelerators in [14], [16]: 16-bit
// fixed-point data/weights (Table I), wide accumulators, MAC counting per
// the hardware loop structure. HTCONV -- the paper's Fig. 3 contribution --
// computes the transposed convolution accurately inside a foveal region and
// interpolates three of the four output phases outside it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/image.hpp"
#include "core/metrics.hpp"
#include "core/tensor.hpp"

namespace icsc::approx {

/// Feature maps are [channels, height, width] float tensors whose values
/// have been quantised per the active QuantConfig (fixed-point simulation).
using FeatureMap = core::TensorF;

/// Fixed-point quantisation policy applied at layer boundaries.
/// Disabled => pure floating-point reference (the "FP" rows of Table I).
struct QuantConfig {
  bool enabled = true;
  int activation_int_bits = 7;   // Q7.8 activations ("16-bit data")
  int activation_frac_bits = 8;
  int weight_int_bits = 3;       // Q3.12 weights ("16-bit weights")
  int weight_frac_bits = 12;

  float quantize_activation(float v) const;
  float quantize_weight(float v) const;
};

/// Quantises every element of a feature map in place.
void quantize_map(FeatureMap& map, const QuantConfig& config);

/// Standard 2-D convolution layer: weights [Cout, Cin, k, k], zero padding
/// "same", stride 1, optional ReLU. MACs counted as k*k*Cin per output
/// element (the dense MAC-array loop the FPGA engine executes).
struct ConvLayer {
  core::TensorF weights;      // [Cout, Cin, k, k]
  std::vector<float> bias;    // [Cout]
  bool relu = true;

  std::size_t out_channels() const { return weights.dim(0); }
  std::size_t in_channels() const { return weights.dim(1); }
  std::size_t kernel() const { return weights.dim(2); }

  /// Fast path: im2col row panels + register-blocked accumulation
  /// (conv_kernels.hpp). Bit-identical to `apply_reference` -- the per-output
  /// (ic, u, v) accumulation order is preserved exactly.
  FeatureMap apply(const FeatureMap& input, const QuantConfig& config,
                   core::OpCounter* ops = nullptr) const;

  /// The original scalar 5-deep loop, retained as the equivalence oracle
  /// for tests and the old-path baseline for bench_kernels.
  FeatureMap apply_reference(const FeatureMap& input, const QuantConfig& config,
                             core::OpCounter* ops = nullptr) const;
};

/// Circular foveal region in low-resolution pixel coordinates. The human
/// visual system has "high visual acuity in a very small region, called the
/// fovea"; HTCONV computes accurately only there.
struct FovealRegion {
  double center_row = 0.0;
  double center_col = 0.0;
  double radius = 0.0;

  bool contains(std::size_t row, std::size_t col) const {
    const double dr = static_cast<double>(row) - center_row;
    const double dc = static_cast<double>(col) - center_col;
    return dr * dr + dc * dc <= radius * radius;
  }

  /// Fovea centred in an H x W frame covering `fraction` of its area.
  static FovealRegion centered(std::size_t height, std::size_t width,
                               double fraction);
  /// Fovea covering the whole frame (HTCONV degenerates to exact TCONV).
  static FovealRegion full(std::size_t height, std::size_t width);
};

/// Transposed-convolution (stride 2) layer producing a single output
/// channel from weights [Cin, t, t], evaluated via the zero-insertion
/// formulation of Fig. 3 with a centred kernel.
struct TconvLayer {
  core::TensorF weights;  // [Cin, t, t]
  float bias = 0.0F;

  std::size_t in_channels() const { return weights.dim(0); }
  std::size_t kernel() const { return weights.dim(1); }

  /// Conventional TCONV: all four output phases computed accurately.
  /// MACs counted as 4 * t^2 * Cin per LR pixel (the Fig. 3 loop bounds).
  core::Image apply_exact(const FeatureMap& input, const QuantConfig& config,
                          core::OpCounter* ops = nullptr) const;

  /// HTCONV (Fig. 3): inside `fovea` all four phases are accurate; outside,
  /// only the even phase is computed (t^2 * Cin MACs) and the other three
  /// are bilinear interpolations of even-phase neighbours (adds/shifts,
  /// counted as "interp_add").
  core::Image apply_foveated(const FeatureMap& input, const FovealRegion& fovea,
                             const QuantConfig& config,
                             core::OpCounter* ops = nullptr) const;

  /// The pre-blocking per-pixel tap walk (parity test and border clamp in
  /// the innermost loops), retained as the equivalence oracle for tests and
  /// the old-path baseline for bench_kernels. Bit-identical to
  /// `apply_foveated`.
  core::Image apply_foveated_reference(const FeatureMap& input,
                                       const FovealRegion& fovea,
                                       const QuantConfig& config,
                                       core::OpCounter* ops = nullptr) const;
};

}  // namespace icsc::approx
