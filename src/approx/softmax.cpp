#include "approx/softmax.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"

namespace icsc::approx {

std::vector<float> softmax_exact(std::span<const float> logits) {
  std::vector<float> out(logits.begin(), logits.end());
  if (out.empty()) return out;
  const float peak = *std::max_element(out.begin(), out.end());
  float sum = 0.0F;
  for (auto& v : out) {
    // v == peak maps to exp(0) == 1 directly; with an infinite peak the
    // naive peak subtraction would turn the peak itself into Inf - Inf ==
    // NaN. For finite logits this is bit-identical to exp(v - peak).
    v = v == peak ? 1.0F : std::exp(v - peak);
    sum += v;
  }
  for (auto& v : out) v /= sum;
  return out;
}

namespace {

constexpr float kLog2E = 1.4426950408889634F;

/// 2^z via exponent shift + linear mantissa: 2^(k+f) ~ 2^k * (1 + f).
/// z <= 0 after max subtraction, so the result is in (0, 1].
float pow2_linear(float z) {
  if (std::isinf(z)) return z < 0.0F ? 0.0F : z;  // 2^-inf == 0
  const float k = std::floor(z);
  const float f = z - k;
  return std::ldexp(1.0F + f, static_cast<int>(k));
}

/// Nearest power of two at or below x (leading-one detection).
float floor_pow2(float x) {
  if (x <= 0.0F) return 1.0F;
  return std::ldexp(1.0F, static_cast<int>(std::floor(std::log2(x))));
}

std::vector<float> approx_exponentials(std::span<const float> logits,
                                       core::OpCounter* ops) {
  std::vector<float> out(logits.begin(), logits.end());
  if (out.empty()) return out;
  const float peak = *std::max_element(out.begin(), out.end());
  if (ops) ops->add("cmp", out.size());
  for (auto& v : out) {
    // See softmax_exact: the peak element maps to 2^0 == 1 directly so an
    // infinite peak cannot produce Inf - Inf == NaN. Bit-identical to the
    // plain expression for finite logits (pow2_linear(0) == 1).
    v = v == peak ? 1.0F : pow2_linear((v - peak) * kLog2E);
  }
  // Per element: one subtract, one constant multiply (realised as
  // shift-add), one shift for the antilog.
  if (ops) {
    ops->add("add", out.size());
    ops->add("shift_add", out.size());
    ops->add("shift", out.size());
  }
  return out;
}

}  // namespace

std::vector<float> softmax_approx(std::span<const float> logits,
                                  core::OpCounter* ops) {
  auto out = approx_exponentials(logits, ops);
  if (out.empty()) return out;
  float sum = 0.0F;
  for (const auto v : out) sum += v;
  if (ops) ops->add("add", out.size());
  // Normalise by the nearest power of two below the sum: a shift, not a
  // divider ([18]'s aggressive normalisation).
  const float divisor = floor_pow2(sum);
  for (auto& v : out) v /= divisor;
  if (ops) {
    ops->add("lod", 1);  // leading-one detector
    ops->add("shift", out.size());
  }
  return out;
}

std::vector<float> softmax_approx_exact_norm(std::span<const float> logits) {
  auto out = approx_exponentials(logits, nullptr);
  if (out.empty()) return out;
  float sum = 0.0F;
  for (const auto v : out) sum += v;
  for (auto& v : out) v /= sum;
  return out;
}

SoftmaxError compare_softmax(std::span<const float> exact,
                             std::span<const float> approx) {
  SoftmaxError err;
  double sum_abs = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double e = std::abs(static_cast<double>(exact[i]) - approx[i]);
    err.max_abs_error = std::max(err.max_abs_error, e);
    sum_abs += e;
  }
  if (!exact.empty()) {
    err.mean_abs_error = sum_abs / static_cast<double>(exact.size());
    const auto argmax_exact =
        std::max_element(exact.begin(), exact.end()) - exact.begin();
    const auto argmax_approx =
        std::max_element(approx.begin(), approx.end()) - approx.begin();
    err.argmax_preserved = (argmax_exact == argmax_approx);
  }
  return err;
}

SoftmaxSweep sweep_softmax(int width, int trials, double logit_range,
                           std::uint64_t seed) {
  core::Rng rng(seed);
  SoftmaxSweep sweep;
  int preserved = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<float> logits(width);
    for (auto& v : logits) {
      v = static_cast<float>(rng.uniform(-logit_range, logit_range));
    }
    const auto exact = softmax_exact(logits);
    // Compare against the exact-norm variant: the power-of-two scale error
    // is uniform across elements and argmax-neutral, so the per-element
    // shape error is what matters for accuracy studies.
    const auto approx = softmax_approx_exact_norm(logits);
    const auto err = compare_softmax(exact, approx);
    sweep.mean_max_abs_error += err.max_abs_error;
    sweep.worst_max_abs_error =
        std::max(sweep.worst_max_abs_error, err.max_abs_error);
    preserved += err.argmax_preserved ? 1 : 0;
  }
  if (trials > 0) {
    sweep.mean_max_abs_error /= trials;
    sweep.argmax_preservation_rate =
        static_cast<double>(preserved) / trials;
  }
  return sweep;
}

}  // namespace icsc::approx
