// Approximate arithmetic operators (Sec. V).
//
// "Approximate computing has gained popularity as a powerful methodology to
// design efficient hardware accelerators with limited power consumption and
// resource utilization" [12], [13]. We implement the three classic
// bit-level approximate operators used in such accelerators -- the
// lower-part-OR adder (LOA), the truncated array multiplier, and Mitchell's
// logarithmic multiplier -- plus error-statistics helpers used by the
// ablation benches to quantify the power/accuracy trade-off.
#pragma once

#include <cstdint>
#include <functional>

namespace icsc::approx {

/// Lower-part-OR adder: the low `approx_bits` are OR-ed instead of added
/// (no carry chain), the upper part is added exactly. Classic LOA.
std::int64_t loa_add(std::int64_t a, std::int64_t b, int approx_bits);

/// Truncated multiplier: partial products whose weight is below
/// 2^truncated_bits are discarded before accumulation. Models a
/// fixed-width array multiplier with the low columns pruned.
std::int64_t truncated_mul(std::int32_t a, std::int32_t b, int truncated_bits);

/// Mitchell's logarithmic multiplier: |a|*|b| ~ 2^(log2|a| + log2|b|) with
/// the piecewise-linear log approximation log2(1+f) ~ f. Sign handled
/// exactly; either operand zero gives zero.
std::int64_t mitchell_mul(std::int32_t a, std::int32_t b);

/// Error statistics of an approximate binary operator against the exact
/// one over `trials` random operand pairs drawn uniformly from
/// [-magnitude, magnitude].
struct ErrorStats {
  double mean_relative_error = 0.0;  // mean |approx-exact| / max(1, |exact|)
  double max_relative_error = 0.0;
  double mean_error = 0.0;  // signed bias
  double error_rate = 0.0;  // fraction of trials with any error
};

ErrorStats measure_error(
    const std::function<std::int64_t(std::int32_t, std::int32_t)>& approx_op,
    const std::function<std::int64_t(std::int32_t, std::int32_t)>& exact_op,
    std::int32_t magnitude, int trials, std::uint64_t seed);

/// Relative hardware-cost factors (energy per op, normalised to the exact
/// operator = 1.0) used by the ablation bench. Calibrated from published
/// LOA / truncation / Mitchell synthesis results at 16 bit.
double loa_energy_factor(int approx_bits, int total_bits);
double truncated_mul_energy_factor(int truncated_bits, int total_bits);
double mitchell_mul_energy_factor();

}  // namespace icsc::approx
