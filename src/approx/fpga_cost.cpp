#include "approx/fpga_cost.hpp"

#include <cmath>

namespace icsc::approx {

namespace {

// Calibration constants, fitted once against the published XC7K410T
// implementation of [14] (Table I "New" row). See DESIGN.md.
constexpr double kLutsPerMacLane = 15.75;  // control + alignment per DSP lane
constexpr double kLutsPerInterpUnit = 120.0;  // one 16-bit interp adder chain
constexpr double kLutsFixed = 2500.0;         // AXI, control FSM, activation
constexpr double kFfsPerMacLane = 52.3;       // deep pipelining registers
constexpr double kDspOverhead = 1.12;  // pre-adders, phase mux, bias path
constexpr double kLineBufferCalibration = 1.225;  // FIFOs + double buffering
constexpr double kStaticPowerW = 0.9;
constexpr double kLaneEnergyPj = 8.07;  // per MAC-lane per cycle at 16 bit
constexpr double kBaseFmax16bMhz = 222.0;  // pipelined DSP datapath, Kintex-7

}  // namespace

CostEstimate estimate_sr_engine(const SrEngineParams& params) {
  const double d = params.model.d;
  const double s = params.model.s;
  const double m = params.model.m;

  // One LR pixel enters the pipeline per cycle; every stage holds a MAC
  // array wide enough for its per-pixel work. The deconvolution stage is
  // sized for a single phase (the even phase, always computed); foveal
  // pixels recirculate for the three extra phases, which costs cycles,
  // not area.
  const double conv_macs = 25.0 * d + d * s + m * 9.0 * s * s + s * d;
  const double phase_macs = 81.0 * d;
  const double macs_per_cycle = conv_macs + phase_macs;

  CostEstimate est;
  est.macs_per_cycle = macs_per_cycle;
  const double lanes = macs_per_cycle / params.macs_per_dsp;
  est.dsps = static_cast<int>(std::ceil(lanes * kDspOverhead));
  const double interp_units = params.mode == TconvMode::kFoveated ? 8.0 : 0.0;
  est.luts = static_cast<int>(std::round(
      kLutsPerMacLane * lanes + kLutsPerInterpUnit * interp_units + kLutsFixed));
  est.ffs = static_cast<int>(std::round(kFfsPerMacLane * lanes));

  // Line buffers: (k-1) LR lines per conv stage per input channel; the
  // deconvolution keeps (t-1)/2 lines of the d-channel feature map (only
  // even taps are live after zero insertion).
  const double lines = (5.0 - 1.0) * 1.0          // feature extraction
                       + m * (3.0 - 1.0) * s      // mapping stages
                       + (9.0 - 1.0) / 2.0 * d;   // deconvolution
  const double bytes_per_line =
      static_cast<double>(params.frame_width) * params.data_bits / 8.0;
  est.bram_kb = lines * bytes_per_line * kLineBufferCalibration / 1024.0;

  // Fmax: dominated by the DSP cascade; mildly sensitive to operand width.
  est.fmax_mhz = kBaseFmax16bMhz * std::sqrt(16.0 / params.data_bits);

  // Throughput: 4 HR pixels per LR pixel; foveal pixels take 4 passes
  // through the deconvolution stage instead of 1.
  const double f = params.mode == TconvMode::kFoveated
                       ? params.foveal_fraction
                       : 1.0;
  const double cycles_per_lr_pixel = 1.0 + 3.0 * f;
  est.out_throughput_mpix_s = 4.0 * est.fmax_mhz / cycles_per_lr_pixel;

  est.power_w = kStaticPowerW +
                kLaneEnergyPj * 1e-12 * lanes * est.fmax_mhz * 1e6;
  est.energy_eff_mpix_per_w = est.out_throughput_mpix_s / est.power_w;
  return est;
}

std::vector<Table1Row> table1_literature() {
  return {
      {"[15]", "1440x640 (2880x1280)", "(13, 13)", "XC7K410T", 130.0, 495.7,
       171008, 161792, 1512, 922.0, 5.38, 92.13},
      {"[17]", "1920x1080 (3840x2160)", "(12, 12)", "XC7VX485T", 200.0, 762.53,
       107520, 125592, 1558, 1118.0, -1.0, -1.0},
  };
}

Table1Row table1_new_published() {
  return {"New (paper)", "1920x1080 (3840x2160)", "(16, 16)", "XC7K410T",
          222.0, 753.04, 28080, 81791, 1750, 542.25, 3.7, 203.5};
}

Table1Row table1_new_modeled(const SrEngineParams& params) {
  const CostEstimate est = estimate_sr_engine(params);
  Table1Row row;
  row.method = "New (model)";
  row.in_resolution = std::to_string(params.frame_width) + "x" +
                      std::to_string(params.frame_height) + " (" +
                      std::to_string(2 * params.frame_width) + "x" +
                      std::to_string(2 * params.frame_height) + ")";
  row.bitwidth = "(" + std::to_string(params.data_bits) + ", " +
                 std::to_string(params.weight_bits) + ")";
  row.technology = "XC7K410T (modeled)";
  row.fmax_mhz = est.fmax_mhz;
  row.out_throughput_mpix_s = est.out_throughput_mpix_s;
  row.luts = est.luts;
  row.ffs = est.ffs;
  row.dsps = est.dsps;
  row.bram_kb = est.bram_kb;
  row.power_w = est.power_w;
  row.energy_eff_mpix_per_w = est.energy_eff_mpix_per_w;
  return row;
}

FlexibleEngineComparison compare_flexible_engine(const SrEngineParams& params) {
  FlexibleEngineComparison cmp;

  // Dedicated TCONV engine: the params as given (exact mode so the
  // comparison is between operation types, not foveation).
  SrEngineParams tconv = params;
  tconv.mode = TconvMode::kExact;
  cmp.dedicated_tconv = estimate_sr_engine(tconv);

  // Dedicated CONV engine: same MAC fabric without the phase recirculation
  // or interpolators; model as the conv-stage MAC array alone.
  SrEngineParams conv = params;
  conv.mode = TconvMode::kExact;
  CostEstimate conv_est = estimate_sr_engine(conv);
  // Remove the deconv phase array share from the estimate: conv MACs only.
  const double conv_macs = 25.0 * params.model.d +
                           params.model.d * params.model.s +
                           params.model.m * 9.0 * params.model.s * params.model.s +
                           params.model.s * params.model.d;
  const double scale = conv_macs / conv_est.macs_per_cycle;
  conv_est.macs_per_cycle = conv_macs;
  conv_est.luts = static_cast<int>(conv_est.luts * scale);
  conv_est.ffs = static_cast<int>(conv_est.ffs * scale);
  conv_est.dsps = static_cast<int>(conv_est.dsps * scale);
  cmp.dedicated_conv = conv_est;

  // Flexible engine: the TCONV-capable fabric covers the CONV dataflow too
  // ([16]); the mode muxes and the reconfigurable address generators add
  // ~12% LUTs and ~6% FFs on top.
  cmp.flexible = cmp.dedicated_tconv;
  cmp.flexible.luts = static_cast<int>(cmp.flexible.luts * 1.12);
  cmp.flexible.ffs = static_cast<int>(cmp.flexible.ffs * 1.06);

  cmp.dedicated_total_luts =
      static_cast<double>(cmp.dedicated_conv.luts) + cmp.dedicated_tconv.luts;
  cmp.flexible_overhead_luts =
      static_cast<double>(cmp.flexible.luts) - cmp.dedicated_tconv.luts;
  cmp.area_saving_fraction =
      1.0 - static_cast<double>(cmp.flexible.luts) / cmp.dedicated_total_luts;
  return cmp;
}

}  // namespace icsc::approx
