// Register-blocked convolution micro-kernels (im2col row panels).
//
// The scalar engines in conv.cpp / approx_conv.cpp walk (ic, u, v) with
// padding guards inside the innermost loop. These helpers restructure that
// walk without changing any per-output accumulation order, so quantized
// outputs stay bit-identical to the reference loops:
//
//   * a per-output-row im2col panel packs every valid (ic, u, v) tap into a
//     dense (taps x interior-width) matrix, built once per row and reused
//     across all output channels;
//   * the micro-kernels iterate taps in the panel's (ic, u, v) order with
//     the column loop innermost, so each output column's accumulator sees
//     exactly the reference tap sequence while the compiler vectorises
//     across the independent columns;
//   * border columns (where some horizontal tap falls outside the frame)
//     are excluded from the panel entirely -- zero-padding them instead
//     would insert `acc + 0` terms the reference never executes, which is
//     not an FP identity (it can flip -0.0 to +0.0).
//
// Rows/columns whose panel is empty (w < k, degenerate shapes) simply fall
// back to the callers' retained scalar paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "approx/approx_conv.hpp"
#include "core/aligned.hpp"
#include "core/tensor.hpp"

namespace icsc::approx {

/// The contiguous run of output columns for which every horizontal kernel
/// tap cc = c + v - pad stays inside [0, w). Outside it (the left/right
/// borders, or everywhere when w < k) callers use the scalar path.
struct ColumnInterior {
  std::size_t begin = 0;
  std::size_t count = 0;
};
ColumnInterior conv_interior(std::size_t width, std::size_t kernel);

/// Dense im2col panel for one output row of a stride-1 "same" convolution:
/// row t holds input(ic, r + u - pad, begin + v - pad ... ) for the t-th
/// valid tap (ic, u, v), enumerated in exactly the reference loop's
/// (ic, u, v) order with vertically-clipped taps skipped. `tap_flat` maps
/// each panel row back to its (ic * k + u) * k + v weight offset.
struct ConvRowPanel {
  ColumnInterior interior;
  std::size_t taps = 0;
  core::aligned_vector<float> data;     // taps x interior.count, row-major
  std::vector<std::uint32_t> tap_flat;  // taps entries into [cin*k*k) weights
  std::vector<const float*> row_ptrs;   // taps pointers into data
  core::aligned_vector<double> tap_w;   // per-channel weight scratch

  bool empty() const { return taps == 0 || interior.count == 0; }
};

/// (Re)builds `panel` for output row `r`. `input` is a [cin, h, w] tensor.
/// The panel's storage is reused across calls, so one scratch panel per
/// worker serves a whole row range without reallocating.
void build_conv_row_panel(const core::TensorF& input, std::size_t r,
                          std::size_t kernel, ConvRowPanel& panel);

/// Accumulates the panel against one output channel's flattened weights
/// (`w_flat`, laid out [cin*k*k] in (ic, u, v) order): for each interior
/// column c, acc[c] += sum over panel taps of w * tap, added in panel tap
/// order -- the reference accumulation sequence. `acc` has interior.count
/// entries, pre-seeded with the bias by the caller. Takes the panel
/// mutably only to reuse its per-channel weight scratch.
void conv_panel_dot_f32(ConvRowPanel& panel, const float* w_flat,
                        double* acc);

/// Integer twin for the approximate datapath: the panel packs pre-quantised
/// i32 activations and the caller combines them through the configurable
/// multiplier/adder functors. Same ordering guarantees as the float panel.
struct QConvRowPanel {
  ColumnInterior interior;
  std::size_t taps = 0;
  core::aligned_vector<std::int32_t> data;  // taps x interior.count, row-major
  std::vector<std::uint32_t> tap_flat;

  bool empty() const { return taps == 0 || interior.count == 0; }
};

/// `q_input` is the flattened [cin, h, w] quantised activation array.
void build_qconv_row_panel(const std::int32_t* q_input, std::size_t cin,
                           std::size_t h, std::size_t w, std::size_t r,
                           std::size_t kernel, QConvRowPanel& panel);

/// Accumulates the quantised panel against one output channel's flattened
/// weights through the configured approximate multiplier/adder chain:
/// acc[c] = add(acc[c], mul(tap, w)) in panel tap order. Exact and
/// truncated multipliers (with exact or LOA adders) run on the SIMD lanes
/// of core/simd.hpp, bit-identical to the scalar operator chain; the
/// Mitchell multiplier keeps the scalar functors (its leading-one scan
/// does not vectorise into the same bit pattern cheaply).
void qconv_panel_dot(const QConvRowPanel& panel, const std::int32_t* w_flat,
                     const ApproxArithConfig& arith, std::int64_t* acc);

}  // namespace icsc::approx
