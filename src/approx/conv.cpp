#include "approx/conv.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/parallel.hpp"
#include "core/trace.hpp"

namespace icsc::approx {

namespace {

float quantize_runtime(float v, int int_bits, int frac_bits) {
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  const double raw_max =
      static_cast<double>((std::int64_t{1} << (int_bits + frac_bits)) - 1);
  const double raw_min = -raw_max - 1.0;
  double scaled = static_cast<double>(v) * scale;
  scaled = scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
  scaled = std::clamp(scaled, raw_min, raw_max);
  return static_cast<float>(scaled / scale);
}

}  // namespace

float QuantConfig::quantize_activation(float v) const {
  if (!enabled) return v;
  return quantize_runtime(v, activation_int_bits, activation_frac_bits);
}

float QuantConfig::quantize_weight(float v) const {
  if (!enabled) return v;
  return quantize_runtime(v, weight_int_bits, weight_frac_bits);
}

void quantize_map(FeatureMap& map, const QuantConfig& config) {
  if (!config.enabled) return;
  map.transform([&config](float v) { return config.quantize_activation(v); });
}

FeatureMap ConvLayer::apply(const FeatureMap& input, const QuantConfig& config,
                            core::OpCounter* ops) const {
  ICSC_TRACE_SPAN("conv/apply");
  assert(input.rank() == 3);
  assert(input.dim(0) == in_channels());
  const std::size_t cin = in_channels();
  const std::size_t cout = out_channels();
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t k = kernel();
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);

  core::TensorF q_weights = weights;
  q_weights.transform([&config](float v) { return config.quantize_weight(v); });

  FeatureMap out({cout, h, w});
  // Each (output channel, row) pair is independent; fan them out over the
  // pool. Every output element is computed by exactly one thread with the
  // same accumulation order as the serial loop, so results are bit-exact.
  core::parallel_for(0, cout * h, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const std::size_t oc = idx / h;
      const std::size_t r = idx % h;
      for (std::size_t c = 0; c < w; ++c) {
        double acc = bias.empty() ? 0.0 : bias[oc];
        for (std::size_t ic = 0; ic < cin; ++ic) {
          for (std::size_t u = 0; u < k; ++u) {
            const std::ptrdiff_t rr =
                static_cast<std::ptrdiff_t>(r + u) - pad;
            if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t v = 0; v < k; ++v) {
              const std::ptrdiff_t cc =
                  static_cast<std::ptrdiff_t>(c + v) - pad;
              if (cc < 0 || cc >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += static_cast<double>(q_weights(oc, ic, u, v)) *
                     input(ic, static_cast<std::size_t>(rr),
                           static_cast<std::size_t>(cc));
            }
          }
        }
        if (relu) acc = std::max(0.0, acc);
        out(oc, r, c) = static_cast<float>(acc);
      }
    }
  });
  const std::uint64_t macs =
      static_cast<std::uint64_t>(cout) * h * w * k * k * cin;
  if (ops) {
    // The MAC array executes the full k*k*Cin loop per output element
    // regardless of padding (zero-padded operands still occupy a slot).
    ops->add("mac", macs);
  }
  ICSC_TRACE_COUNT("conv.macs", macs);
  quantize_map(out, config);
  return out;
}

FovealRegion FovealRegion::centered(std::size_t height, std::size_t width,
                                    double fraction) {
  FovealRegion region;
  region.center_row = static_cast<double>(height) / 2.0;
  region.center_col = static_cast<double>(width) / 2.0;
  const double area = fraction * static_cast<double>(height) *
                      static_cast<double>(width);
  region.radius = std::sqrt(std::max(0.0, area) / 3.14159265358979323846);
  return region;
}

FovealRegion FovealRegion::full(std::size_t height, std::size_t width) {
  FovealRegion region;
  region.center_row = static_cast<double>(height) / 2.0;
  region.center_col = static_cast<double>(width) / 2.0;
  region.radius = static_cast<double>(height + width);  // covers all corners
  return region;
}

namespace {

/// Computes output phase (p, q) of the zero-insertion TCONV at LR pixel
/// (i, j): sum over channels and kernel taps hitting even upsampled
/// coordinates. `off` centres the kernel.
double tconv_phase(const FeatureMap& input, const core::TensorF& k_weights,
                   std::size_t i, std::size_t j, int p, int q) {
  const std::size_t cin = input.dim(0);
  const int h = static_cast<int>(input.dim(1));
  const int w = static_cast<int>(input.dim(2));
  const std::size_t t = k_weights.dim(1);
  const int off = static_cast<int>(t - 1) / 2;
  double acc = 0.0;
  for (std::size_t u = 0; u < t; ++u) {
    const int y = 2 * static_cast<int>(i) + p + static_cast<int>(u) - off;
    if ((y & 1) != 0) continue;  // structural zero of the upsampled grid
    // Border policy: replicate the edge sample (the hardware line buffers
    // hold the last valid line), matching the interpolated path's clamping.
    const int src_r = std::clamp(y / 2, 0, h - 1);
    for (std::size_t v = 0; v < t; ++v) {
      const int x = 2 * static_cast<int>(j) + q + static_cast<int>(v) - off;
      if ((x & 1) != 0) continue;
      const int src_c = std::clamp(x / 2, 0, w - 1);
      for (std::size_t c = 0; c < cin; ++c) {
        acc += static_cast<double>(k_weights(c, u, v)) *
               input(c, static_cast<std::size_t>(src_r),
                     static_cast<std::size_t>(src_c));
      }
    }
  }
  return acc;
}

}  // namespace

core::Image TconvLayer::apply_exact(const FeatureMap& input,
                                    const QuantConfig& config,
                                    core::OpCounter* ops) const {
  return apply_foveated(input, FovealRegion::full(input.dim(1), input.dim(2)),
                        config, ops);
}

core::Image TconvLayer::apply_foveated(const FeatureMap& input,
                                       const FovealRegion& fovea,
                                       const QuantConfig& config,
                                       core::OpCounter* ops) const {
  ICSC_TRACE_SPAN("htconv/apply_foveated");
  assert(input.rank() == 3);
  assert(input.dim(0) == in_channels());
  assert(kernel() % 2 == 1 && "centred kernels must be odd-sized");
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t t = kernel();
  const std::size_t cin = in_channels();

  core::TensorF q_weights = weights;
  q_weights.transform([&config](float v) { return config.quantize_weight(v); });

  core::Image out(2 * h, 2 * w);
  const std::uint64_t phase_macs =
      static_cast<std::uint64_t>(t) * t * cin;  // Fig. 3 loop bounds

  // Pass 1: even phase O(2i, 2j) for every LR pixel (always accurate).
  // Rows are independent (each writes only its own even output row).
  {
    ICSC_TRACE_SPAN("htconv/even_phase");
    core::parallel_for(0, h, 2, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          out.at(2 * i, 2 * j) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 0, 0));
        }
      }
    });
  }
  if (ops) ops->add("mac", phase_macs * h * w);

  // Pass 2: odd phases -- accurate in the fovea, interpolated outside.
  // The interpolation path only reads even-phase outputs, which pass 1
  // fully wrote and pass 2 never touches, so rows stay independent. Per-row
  // foveal counts are reduced serially afterwards for a deterministic sum.
  std::vector<std::uint64_t> row_foveal(h, 0);
  ICSC_TRACE_SPAN("htconv/odd_phase");
  core::parallel_for(0, h, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        if (fovea.contains(i, j)) {
          ++row_foveal[i];
          out.at(2 * i + 1, 2 * j) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 1, 0));
          out.at(2 * i, 2 * j + 1) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 0, 1));
          out.at(2 * i + 1, 2 * j + 1) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 1, 1));
        } else {
          // Bilinear interpolation of even-phase neighbours (Fig. 3 lines
          // 19-21), clamping at the frame border.
          const std::size_t i_next = std::min(i + 1, h - 1);
          const std::size_t j_next = std::min(j + 1, w - 1);
          const float e00 = out.at(2 * i, 2 * j);
          const float e10 = out.at(2 * i_next, 2 * j);
          const float e01 = out.at(2 * i, 2 * j_next);
          const float e11 = out.at(2 * i_next, 2 * j_next);
          out.at(2 * i + 1, 2 * j) = 0.5F * (e00 + e10);
          out.at(2 * i, 2 * j + 1) = 0.5F * (e00 + e01);
          out.at(2 * i + 1, 2 * j + 1) = 0.25F * (e00 + e01 + e10 + e11);
        }
      }
    }
  });
  std::uint64_t foveal_pixels = 0;
  for (const std::uint64_t n : row_foveal) foveal_pixels += n;
  ICSC_TRACE_COUNT("htconv.foveal_pixels", foveal_pixels);
  ICSC_TRACE_COUNT("htconv.interpolated_pixels", h * w - foveal_pixels);
  if (ops) {
    ops->add("mac", 3 * phase_macs * foveal_pixels);
    const std::uint64_t interpolated = h * w - foveal_pixels;
    ops->add("interp_add", 8 * interpolated);
  }

  if (config.enabled) {
    out.tensor().transform(
        [&config](float v) { return config.quantize_activation(v); });
  }
  return out;
}

}  // namespace icsc::approx
