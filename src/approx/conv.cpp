#include "approx/conv.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "approx/conv_kernels.hpp"
#include "core/aligned.hpp"
#include "core/parallel.hpp"
#include "core/simd.hpp"
#include "core/trace.hpp"

namespace icsc::approx {

namespace {

float quantize_runtime(float v, int int_bits, int frac_bits) {
  const double scale = static_cast<double>(std::int64_t{1} << frac_bits);
  const double raw_max =
      static_cast<double>((std::int64_t{1} << (int_bits + frac_bits)) - 1);
  const double raw_min = -raw_max - 1.0;
  double scaled = static_cast<double>(v) * scale;
  scaled = scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
  scaled = std::clamp(scaled, raw_min, raw_max);
  return static_cast<float>(scaled / scale);
}

/// Weight-tensor twin of quantize_map (Q weight_int.weight_frac policy).
void quantize_weight_tensor(core::TensorF& w, const QuantConfig& config) {
  if (!config.enabled) return;
  const auto data = w.data();
  core::simd::quantize_fixed_f32(data.data(), data.size(),
                                 config.weight_int_bits,
                                 config.weight_frac_bits);
}

}  // namespace

float QuantConfig::quantize_activation(float v) const {
  if (!enabled) return v;
  return quantize_runtime(v, activation_int_bits, activation_frac_bits);
}

float QuantConfig::quantize_weight(float v) const {
  if (!enabled) return v;
  return quantize_runtime(v, weight_int_bits, weight_frac_bits);
}

void quantize_map(FeatureMap& map, const QuantConfig& config) {
  if (!config.enabled) return;
  // Whole-buffer quantisation runs on the SIMD lanes; every element is an
  // independent round/clamp, bit-identical to quantize_activation per
  // element under every dispatched ISA.
  const auto data = map.data();
  core::simd::quantize_fixed_f32(data.data(), data.size(),
                                 config.activation_int_bits,
                                 config.activation_frac_bits);
}

namespace {

/// The original scalar accumulation for one output element, shared by the
/// reference path and the fast path's border columns.
double conv_scalar_element(const FeatureMap& input,
                           const core::TensorF& q_weights, std::size_t oc,
                           std::size_t r, std::size_t c, double bias_term) {
  const std::size_t cin = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t k = q_weights.dim(2);
  const auto pad = static_cast<std::ptrdiff_t>(k / 2);
  double acc = bias_term;
  for (std::size_t ic = 0; ic < cin; ++ic) {
    for (std::size_t u = 0; u < k; ++u) {
      const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r + u) - pad;
      if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(h)) continue;
      for (std::size_t v = 0; v < k; ++v) {
        const std::ptrdiff_t cc = static_cast<std::ptrdiff_t>(c + v) - pad;
        if (cc < 0 || cc >= static_cast<std::ptrdiff_t>(w)) continue;
        acc += static_cast<double>(q_weights(oc, ic, u, v)) *
               input(ic, static_cast<std::size_t>(rr),
                     static_cast<std::size_t>(cc));
      }
    }
  }
  return acc;
}

void book_conv_macs(std::size_t cout, std::size_t h, std::size_t w,
                    std::size_t k, std::size_t cin, core::OpCounter* ops) {
  const std::uint64_t macs =
      static_cast<std::uint64_t>(cout) * h * w * k * k * cin;
  if (ops) {
    // The MAC array executes the full k*k*Cin loop per output element
    // regardless of padding (zero-padded operands still occupy a slot).
    ops->add("mac", macs);
  }
  ICSC_TRACE_COUNT("conv.macs", macs);
}

}  // namespace

FeatureMap ConvLayer::apply(const FeatureMap& input, const QuantConfig& config,
                            core::OpCounter* ops) const {
  ICSC_TRACE_SPAN("conv/apply");
  assert(input.rank() == 3);
  assert(input.dim(0) == in_channels());
  const std::size_t cin = in_channels();
  const std::size_t cout = out_channels();
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t k = kernel();

  core::TensorF q_weights = weights;
  quantize_weight_tensor(q_weights, config);

  FeatureMap out({cout, h, w});
  // Rows are independent; each worker packs the row's im2col panel once and
  // reuses it across every output channel. Interior columns go through the
  // register-blocked panel dot, border columns through the scalar element --
  // both accumulate taps in the reference (ic, u, v) order, so every output
  // is bit-exact vs apply_reference regardless of thread count.
  core::parallel_for(0, h, 1, [&](std::size_t begin, std::size_t end) {
    ConvRowPanel panel;
    core::aligned_vector<double> acc;
    for (std::size_t r = begin; r < end; ++r) {
      build_conv_row_panel(input, r, k, panel);
      const std::size_t c_lo = panel.interior.begin;
      const std::size_t c_hi = c_lo + panel.interior.count;
      for (std::size_t oc = 0; oc < cout; ++oc) {
        const double bias_term = bias.empty() ? 0.0 : bias[oc];
        if (!panel.empty()) {
          acc.assign(panel.interior.count, bias_term);
          conv_panel_dot_f32(panel, &q_weights(oc, 0, 0, 0), acc.data());
          for (std::size_t c = c_lo; c < c_hi; ++c) {
            const double a = relu ? std::max(0.0, acc[c - c_lo]) : acc[c - c_lo];
            out(oc, r, c) = static_cast<float>(a);
          }
        }
        for (std::size_t c = 0; c < w; ++c) {
          if (c >= c_lo && c < c_hi && !panel.empty()) continue;
          double a = conv_scalar_element(input, q_weights, oc, r, c, bias_term);
          if (relu) a = std::max(0.0, a);
          out(oc, r, c) = static_cast<float>(a);
        }
      }
    }
  });
  book_conv_macs(cout, h, w, k, cin, ops);
  quantize_map(out, config);
  return out;
}

FeatureMap ConvLayer::apply_reference(const FeatureMap& input,
                                      const QuantConfig& config,
                                      core::OpCounter* ops) const {
  ICSC_TRACE_SPAN("conv/apply_reference");
  assert(input.rank() == 3);
  assert(input.dim(0) == in_channels());
  const std::size_t cin = in_channels();
  const std::size_t cout = out_channels();
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t k = kernel();

  core::TensorF q_weights = weights;
  quantize_weight_tensor(q_weights, config);

  FeatureMap out({cout, h, w});
  // Each (output channel, row) pair is independent; fan them out over the
  // pool. Every output element is computed by exactly one thread with the
  // same accumulation order as the serial loop, so results are bit-exact.
  core::parallel_for(0, cout * h, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t idx = begin; idx < end; ++idx) {
      const std::size_t oc = idx / h;
      const std::size_t r = idx % h;
      for (std::size_t c = 0; c < w; ++c) {
        double acc = conv_scalar_element(input, q_weights, oc, r, c,
                                         bias.empty() ? 0.0 : bias[oc]);
        if (relu) acc = std::max(0.0, acc);
        out(oc, r, c) = static_cast<float>(acc);
      }
    }
  });
  book_conv_macs(cout, h, w, k, cin, ops);
  quantize_map(out, config);
  return out;
}

FovealRegion FovealRegion::centered(std::size_t height, std::size_t width,
                                    double fraction) {
  FovealRegion region;
  region.center_row = static_cast<double>(height) / 2.0;
  region.center_col = static_cast<double>(width) / 2.0;
  const double area = fraction * static_cast<double>(height) *
                      static_cast<double>(width);
  region.radius = std::sqrt(std::max(0.0, area) / 3.14159265358979323846);
  return region;
}

FovealRegion FovealRegion::full(std::size_t height, std::size_t width) {
  FovealRegion region;
  region.center_row = static_cast<double>(height) / 2.0;
  region.center_col = static_cast<double>(width) / 2.0;
  region.radius = static_cast<double>(height + width);  // covers all corners
  return region;
}

namespace {

/// Computes output phase (p, q) of the zero-insertion TCONV at LR pixel
/// (i, j): sum over channels and kernel taps hitting even upsampled
/// coordinates. `off` centres the kernel.
double tconv_phase(const FeatureMap& input, const core::TensorF& k_weights,
                   std::size_t i, std::size_t j, int p, int q) {
  const std::size_t cin = input.dim(0);
  const int h = static_cast<int>(input.dim(1));
  const int w = static_cast<int>(input.dim(2));
  const std::size_t t = k_weights.dim(1);
  const int off = static_cast<int>(t - 1) / 2;
  double acc = 0.0;
  for (std::size_t u = 0; u < t; ++u) {
    const int y = 2 * static_cast<int>(i) + p + static_cast<int>(u) - off;
    if ((y & 1) != 0) continue;  // structural zero of the upsampled grid
    // Border policy: replicate the edge sample (the hardware line buffers
    // hold the last valid line), matching the interpolated path's clamping.
    const int src_r = std::clamp(y / 2, 0, h - 1);
    for (std::size_t v = 0; v < t; ++v) {
      const int x = 2 * static_cast<int>(j) + q + static_cast<int>(v) - off;
      if ((x & 1) != 0) continue;
      const int src_c = std::clamp(x / 2, 0, w - 1);
      for (std::size_t c = 0; c < cin; ++c) {
        acc += static_cast<double>(k_weights(c, u, v)) *
               input(c, static_cast<std::size_t>(src_r),
                     static_cast<std::size_t>(src_c));
      }
    }
  }
  return acc;
}

/// One surviving kernel tap after hoisting the parity filter and border
/// clamp out of the pixel loops: tap index and resolved source coordinate.
struct TconvTap {
  std::uint32_t tap = 0;  // u (row tables) or v (column tables)
  std::uint32_t src = 0;  // clamped source row/column
};

/// Per-phase tap tables for the zero-insertion TCONV. The structural-zero
/// parity test and the border clamp in tconv_phase depend only on
/// (i, p, u) for rows and (j, q, v) for columns, so they are evaluated
/// once per axis coordinate here instead of once per (pixel, tap).
/// Iterating a table walks the surviving taps in the same ascending
/// u (resp. v) order as the reference loops, so accumulation order -- and
/// therefore every output bit -- is unchanged.
struct TconvTapTables {
  std::size_t t = 0;
  // rows[p][i], cols[q][j]: flattened small vectors (at most ceil(t/2)
  // entries each) with a [start, end) index per coordinate.
  std::array<std::vector<TconvTap>, 2> row_taps, col_taps;
  std::array<std::vector<std::uint32_t>, 2> row_start, col_start;

  TconvTapTables(std::size_t cin, std::size_t h, std::size_t w,
                 std::size_t kernel) {
    (void)cin;
    t = kernel;
    const int off = static_cast<int>(t - 1) / 2;
    for (int p = 0; p < 2; ++p) {
      build_axis(row_taps[p], row_start[p], t, h, p, off);
      build_axis(col_taps[p], col_start[p], t, w, p, off);
    }
  }

  static void build_axis(std::vector<TconvTap>& taps,
                         std::vector<std::uint32_t>& start, std::size_t t,
                         std::size_t n, int phase, int off) {
    // reused for rows and columns: axis coordinate a, upsampled
    // y = 2a + phase + tap - off must be even and clamps to [0, n).
    start.assign(n + 1, 0);
    taps.clear();
    for (std::size_t a = 0; a < n; ++a) {
      start[a] = static_cast<std::uint32_t>(taps.size());
      for (std::size_t u = 0; u < t; ++u) {
        const int y = 2 * static_cast<int>(a) + phase +
                      static_cast<int>(u) - off;
        if ((y & 1) != 0) continue;
        const int src = std::clamp(y / 2, 0, static_cast<int>(n) - 1);
        taps.push_back({static_cast<std::uint32_t>(u),
                        static_cast<std::uint32_t>(src)});
      }
    }
    start[n] = static_cast<std::uint32_t>(taps.size());
  }
};

/// tconv_phase with the (i, p) / (j, q) tap lists precomputed: identical
/// tap visit order (ascending u, then ascending v, then channels), so the
/// double accumulator sees exactly the reference addition sequence.
double tconv_phase_blocked(const FeatureMap& input,
                           const core::TensorF& k_weights,
                           const TconvTapTables& tables, std::size_t i,
                           std::size_t j, int p, int q) {
  const std::size_t cin = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t t = tables.t;
  const auto& rows = tables.row_taps[p];
  const auto& cols = tables.col_taps[q];
  const std::uint32_t r_lo = tables.row_start[p][i];
  const std::uint32_t r_hi = tables.row_start[p][i + 1];
  const std::uint32_t c_lo = tables.col_start[q][j];
  const std::uint32_t c_hi = tables.col_start[q][j + 1];
  const float* wts = &k_weights(0, 0, 0);
  const float* in = &input(0, 0, 0);
  double acc = 0.0;
  for (std::uint32_t ri = r_lo; ri < r_hi; ++ri) {
    const std::size_t u = rows[ri].tap;
    const std::size_t src_r = rows[ri].src;
    for (std::uint32_t ci = c_lo; ci < c_hi; ++ci) {
      const std::size_t v = cols[ci].tap;
      const std::size_t base_w = u * t + v;       // + c * t * t per channel
      const std::size_t base_i = src_r * w + cols[ci].src;  // + c * h * w
      for (std::size_t c = 0; c < cin; ++c) {
        acc += static_cast<double>(wts[c * t * t + base_w]) *
               static_cast<double>(in[c * h * w + base_i]);
      }
    }
  }
  return acc;
}

/// Column geometry of one horizontal phase q after hoisting the parity
/// filter: the surviving v taps (ascending, shared by every column because
/// 2j never changes the parity of 2j + q + v - off) with their unclamped
/// source offsets, and the half-open j interval where no tap clamps at the
/// border. Outside [j_lo, j_hi) callers use tconv_phase_blocked.
struct TconvColPlan {
  std::vector<std::uint32_t> taps;  // surviving v, ascending
  std::vector<int> shift;           // src_c = j + shift for interior j
  std::size_t j_lo = 0, j_hi = 0;

  TconvColPlan(std::size_t t, std::size_t w, int q) {
    const int off = (static_cast<int>(t) - 1) / 2;
    int min_shift = 0, max_shift = 0;
    for (std::size_t v = 0; v < t; ++v) {
      const int x = q + static_cast<int>(v) - off;
      if ((x & 1) != 0) continue;  // structural zero of the upsampled grid
      const int s = x / 2;  // exact: x is even
      if (taps.empty()) {
        min_shift = max_shift = s;
      } else {
        min_shift = std::min(min_shift, s);
        max_shift = std::max(max_shift, s);
      }
      taps.push_back(static_cast<std::uint32_t>(v));
      shift.push_back(s);
    }
    if (taps.empty() || w == 0) return;
    const auto wi = static_cast<int>(w);
    const int lo = std::max(0, -min_shift);
    const int hi = std::min(wi - 1, wi - 1 - max_shift);
    if (lo > hi) return;
    j_lo = static_cast<std::size_t>(lo);
    j_hi = static_cast<std::size_t>(hi) + 1;
  }
};

/// Accumulates phase (p, q) over `count` clamp-free columns starting at
/// `j0` of output row `i` into acc (pre-zeroed): lanes span the
/// independent output columns while each column sees taps in the exact
/// reference (u, v, channel) order, so outputs match tconv_phase_blocked
/// bit for bit.
void tconv_phase_row(const FeatureMap& input, const core::TensorF& k_weights,
                     const TconvTapTables& tables, const TconvColPlan& plan,
                     std::size_t i, int p, std::size_t j0, std::size_t count,
                     double* acc) {
  const std::size_t cin = input.dim(0);
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t t = tables.t;
  const auto& rows = tables.row_taps[p];
  const std::uint32_t r_lo = tables.row_start[p][i];
  const std::uint32_t r_hi = tables.row_start[p][i + 1];
  const float* wts = &k_weights(0, 0, 0);
  const float* in = &input(0, 0, 0);
  // Gather the (u, v, channel) tap sequence once, then run the whole-panel
  // SIMD dot: per output column the accumulation order is exactly the
  // reference chain, but the accumulator tile stays in registers across
  // all taps instead of round-tripping through memory per tap.
  static thread_local std::vector<const float*> tap_rows;
  static thread_local core::aligned_vector<double> tap_w;
  tap_rows.clear();
  tap_w.clear();
  for (std::uint32_t ri = r_lo; ri < r_hi; ++ri) {
    const std::size_t u = rows[ri].tap;
    const std::size_t src_r = rows[ri].src;
    for (std::size_t vi = 0; vi < plan.taps.size(); ++vi) {
      const std::size_t v = plan.taps[vi];
      const auto src0 = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(j0) + plan.shift[vi]);
      for (std::size_t c = 0; c < cin; ++c) {
        tap_rows.push_back(in + c * h * w + src_r * w + src0);
        tap_w.push_back(static_cast<double>(wts[c * t * t + u * t + v]));
      }
    }
  }
  core::simd::tap_panel_axpy_f32_f64(tap_rows.data(), tap_w.data(),
                                     tap_rows.size(), acc, count);
}

}  // namespace

core::Image TconvLayer::apply_exact(const FeatureMap& input,
                                    const QuantConfig& config,
                                    core::OpCounter* ops) const {
  return apply_foveated(input, FovealRegion::full(input.dim(1), input.dim(2)),
                        config, ops);
}

core::Image TconvLayer::apply_foveated(const FeatureMap& input,
                                       const FovealRegion& fovea,
                                       const QuantConfig& config,
                                       core::OpCounter* ops) const {
  ICSC_TRACE_SPAN("htconv/apply_foveated");
  assert(input.rank() == 3);
  assert(input.dim(0) == in_channels());
  assert(kernel() % 2 == 1 && "centred kernels must be odd-sized");
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t t = kernel();
  const std::size_t cin = in_channels();

  core::TensorF q_weights = weights;
  quantize_weight_tensor(q_weights, config);

  core::Image out(2 * h, 2 * w);
  const std::uint64_t phase_macs =
      static_cast<std::uint64_t>(t) * t * cin;  // Fig. 3 loop bounds

  // Hoisted parity/clamp tap tables shared by both passes; the per-pixel
  // kernels then visit taps in the reference order (see TconvTapTables).
  const TconvTapTables tables(cin, h, w, t);
  // Column plans for the two horizontal phases: phases (0,0) and (1,0)
  // share q = 0, phases (0,1) and (1,1) share q = 1.
  const std::array<TconvColPlan, 2> col_plans = {TconvColPlan(t, w, 0),
                                                 TconvColPlan(t, w, 1)};

  // Computes phase (p, q) of row i for j in [lo, hi): the clamp-free span
  // through the SIMD row kernel, the clamped remainder per pixel. `row`
  // and `col` give the output position 2i + (p?1:0), 2j + (q?1:0).
  const auto phase_span = [&](core::aligned_vector<double>& acc, std::size_t i,
                              int p, int q, std::size_t lo, std::size_t hi) {
    const TconvColPlan& plan = col_plans[static_cast<std::size_t>(q)];
    const std::size_t v_lo = std::max(lo, plan.j_lo);
    const std::size_t v_hi = std::min(hi, plan.j_hi);
    const std::size_t row = 2 * i + (p != 0 ? 1 : 0);
    const std::size_t col_off = q != 0 ? 1 : 0;
    if (v_lo < v_hi) {
      acc.assign(v_hi - v_lo, 0.0);
      tconv_phase_row(input, q_weights, tables, plan, i, p, v_lo, v_hi - v_lo,
                      acc.data());
      for (std::size_t j = v_lo; j < v_hi; ++j) {
        out.at(row, 2 * j + col_off) = static_cast<float>(bias + acc[j - v_lo]);
      }
    }
    for (std::size_t j = lo; j < hi; ++j) {
      if (j >= v_lo && j < v_hi) continue;
      out.at(row, 2 * j + col_off) = static_cast<float>(
          bias + tconv_phase_blocked(input, q_weights, tables, i, j, p, q));
    }
  };

  // Pass 1: even phase O(2i, 2j) for every LR pixel (always accurate).
  // Rows are independent (each writes only its own even output row).
  {
    ICSC_TRACE_SPAN("htconv/even_phase");
    core::parallel_for(0, h, 2, [&](std::size_t begin, std::size_t end) {
      core::aligned_vector<double> acc;
      for (std::size_t i = begin; i < end; ++i) {
        phase_span(acc, i, 0, 0, 0, w);
      }
    });
  }
  if (ops) ops->add("mac", phase_macs * h * w);

  // Pass 2: odd phases -- accurate in the fovea, interpolated outside.
  // The fovea is a disc, so its intersection with a row is one contiguous
  // j interval; the three odd phases run the SIMD row kernel over it and
  // the interpolated flanks only read even-phase outputs, which pass 1
  // fully wrote and pass 2 never touches, so rows stay independent.
  // Per-row foveal counts are reduced serially for a deterministic sum.
  std::vector<std::uint64_t> row_foveal(h, 0);
  ICSC_TRACE_SPAN("htconv/odd_phase");
  core::parallel_for(0, h, 2, [&](std::size_t begin, std::size_t end) {
    core::aligned_vector<double> acc;
    for (std::size_t i = begin; i < end; ++i) {
      std::size_t f_lo = w, f_hi = w;
      for (std::size_t j = 0; j < w; ++j) {
        if (fovea.contains(i, j)) {
          f_lo = j;
          break;
        }
      }
      if (f_lo < w) {
        f_hi = f_lo + 1;
        for (std::size_t j = w; j-- > f_lo + 1;) {
          if (fovea.contains(i, j)) {
            f_hi = j + 1;
            break;
          }
        }
        row_foveal[i] = f_hi - f_lo;
        phase_span(acc, i, 1, 0, f_lo, f_hi);
        phase_span(acc, i, 0, 1, f_lo, f_hi);
        phase_span(acc, i, 1, 1, f_lo, f_hi);
      }
      for (std::size_t j = 0; j < w; ++j) {
        if (j >= f_lo && j < f_hi) continue;
        // Bilinear interpolation of even-phase neighbours (Fig. 3 lines
        // 19-21), clamping at the frame border.
        const std::size_t i_next = std::min(i + 1, h - 1);
        const std::size_t j_next = std::min(j + 1, w - 1);
        const float e00 = out.at(2 * i, 2 * j);
        const float e10 = out.at(2 * i_next, 2 * j);
        const float e01 = out.at(2 * i, 2 * j_next);
        const float e11 = out.at(2 * i_next, 2 * j_next);
        out.at(2 * i + 1, 2 * j) = 0.5F * (e00 + e10);
        out.at(2 * i, 2 * j + 1) = 0.5F * (e00 + e01);
        out.at(2 * i + 1, 2 * j + 1) = 0.25F * (e00 + e01 + e10 + e11);
      }
    }
  });
  std::uint64_t foveal_pixels = 0;
  for (const std::uint64_t n : row_foveal) foveal_pixels += n;
  ICSC_TRACE_COUNT("htconv.foveal_pixels", foveal_pixels);
  ICSC_TRACE_COUNT("htconv.interpolated_pixels", h * w - foveal_pixels);
  if (ops) {
    ops->add("mac", 3 * phase_macs * foveal_pixels);
    const std::uint64_t interpolated = h * w - foveal_pixels;
    ops->add("interp_add", 8 * interpolated);
  }

  if (config.enabled) {
    out.tensor().transform(
        [&config](float v) { return config.quantize_activation(v); });
  }
  return out;
}

core::Image TconvLayer::apply_foveated_reference(const FeatureMap& input,
                                                 const FovealRegion& fovea,
                                                 const QuantConfig& config,
                                                 core::OpCounter* ops) const {
  ICSC_TRACE_SPAN("htconv/apply_foveated_reference");
  assert(input.rank() == 3);
  assert(input.dim(0) == in_channels());
  assert(kernel() % 2 == 1 && "centred kernels must be odd-sized");
  const std::size_t h = input.dim(1);
  const std::size_t w = input.dim(2);
  const std::size_t t = kernel();
  const std::size_t cin = in_channels();

  core::TensorF q_weights = weights;
  quantize_weight_tensor(q_weights, config);

  core::Image out(2 * h, 2 * w);
  const std::uint64_t phase_macs =
      static_cast<std::uint64_t>(t) * t * cin;  // Fig. 3 loop bounds

  {
    core::parallel_for(0, h, 2, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          out.at(2 * i, 2 * j) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 0, 0));
        }
      }
    });
  }
  if (ops) ops->add("mac", phase_macs * h * w);

  std::vector<std::uint64_t> row_foveal(h, 0);
  core::parallel_for(0, h, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        if (fovea.contains(i, j)) {
          ++row_foveal[i];
          out.at(2 * i + 1, 2 * j) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 1, 0));
          out.at(2 * i, 2 * j + 1) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 0, 1));
          out.at(2 * i + 1, 2 * j + 1) = static_cast<float>(
              bias + tconv_phase(input, q_weights, i, j, 1, 1));
        } else {
          const std::size_t i_next = std::min(i + 1, h - 1);
          const std::size_t j_next = std::min(j + 1, w - 1);
          const float e00 = out.at(2 * i, 2 * j);
          const float e10 = out.at(2 * i_next, 2 * j);
          const float e01 = out.at(2 * i, 2 * j_next);
          const float e11 = out.at(2 * i_next, 2 * j_next);
          out.at(2 * i + 1, 2 * j) = 0.5F * (e00 + e10);
          out.at(2 * i, 2 * j + 1) = 0.5F * (e00 + e01);
          out.at(2 * i + 1, 2 * j + 1) = 0.25F * (e00 + e01 + e10 + e11);
        }
      }
    }
  });
  std::uint64_t foveal_pixels = 0;
  for (const std::uint64_t n : row_foveal) foveal_pixels += n;
  if (ops) {
    ops->add("mac", 3 * phase_macs * foveal_pixels);
    const std::uint64_t interpolated = h * w - foveal_pixels;
    ops->add("interp_add", 8 * interpolated);
  }

  if (config.enabled) {
    out.tensor().transform(
        [&config](float v) { return config.quantize_activation(v); });
  }
  return out;
}

}  // namespace icsc::approx
